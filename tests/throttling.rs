//! The contention-aware throttling option (paper §IV-F): the resident-TB
//! cap is honored exactly, verified by replaying the dispatch/completion
//! event trace.

use std::collections::HashMap;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::trace::{TraceEvent, VecSink};
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
use workloads::{suite, Scale, SharedSource};

fn max_resident_per_smx(throttle: Option<u32>) -> (usize, usize) {
    let all = suite(Scale::Tiny);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").unwrap();
    let mut cfg = GpuConfig::kepler_k20c();
    cfg.num_smxs = 4;
    let mut laperm_cfg = LaPermConfig::for_gpu(&cfg);
    if let Some(t) = throttle {
        laperm_cfg = laperm_cfg.with_throttle_tbs(t);
    }
    let sink = VecSink::new();
    let handle = sink.clone();
    let mut sim = Simulator::new(cfg, Box::new(SharedSource(w.clone())))
        .with_scheduler(Box::new(LaPermScheduler::new(LaPermPolicy::AdaptiveBind, laperm_cfg)))
        .with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::uniform(100)))
        .with_trace(Box::new(sink));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).unwrap();
    }
    sim.run_to_completion().unwrap();

    // Replay the trace: track per-SMX residency.
    let mut resident: HashMap<u16, i64> = HashMap::new();
    let mut max_resident = 0i64;
    let mut total = 0usize;
    for r in handle.records() {
        match r.event {
            TraceEvent::TbDispatched { smx, .. } => {
                let e = resident.entry(smx.0).or_insert(0);
                *e += 1;
                max_resident = max_resident.max(*e);
                total += 1;
            }
            TraceEvent::TbCompleted { smx, .. } => {
                *resident.entry(smx.0).or_insert(0) -= 1;
            }
            _ => {}
        }
    }
    (max_resident as usize, total)
}

#[test]
fn throttle_caps_resident_tbs() {
    let (max_resident, total) = max_resident_per_smx(Some(4));
    assert!(max_resident <= 4, "throttle violated: {max_resident} resident");
    assert!(total > 0);
}

#[test]
fn unthrottled_run_exceeds_the_cap() {
    let (max_resident, _) = max_resident_per_smx(None);
    assert!(max_resident > 4, "baseline should pack more than 4 TBs per SMX, got {max_resident}");
}

#[test]
fn throttled_and_unthrottled_complete_the_same_work() {
    let (_, throttled_total) = max_resident_per_smx(Some(2));
    let (_, free_total) = max_resident_per_smx(None);
    assert_eq!(throttled_total, free_total);
}
