//! Integration tests of the launch paths: KDU saturation, the CDP
//! concurrent-kernel limit, the DTBL fallback when a parent's KDU entry
//! retires before a group matures, and deep nesting.

use dynpar::{DtblModel, LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::kernel::{BatchKind, ResourceReq};
use gpu_sim::program::{KernelKindId, LaunchSpec, ProgramSource, TbOp, TbProgram};
use gpu_sim::types::Priority;

const ROOT: KernelKindId = KernelKindId(0);
const SPAWN: KernelKindId = KernelKindId(1);

/// Every TB of kind SPAWN launches one child of kind SPAWN with
/// `param - 1`, until param reaches zero — a nesting chain.
struct ChainSource;

impl ProgramSource for ChainSource {
    fn tb_program(&self, kind: KernelKindId, param: u64, _tb: u32) -> TbProgram {
        let mut ops = vec![TbOp::Compute(4)];
        if (kind == ROOT || kind == SPAWN) && param > 0 {
            ops.push(TbOp::Launch(LaunchSpec {
                kind: SPAWN,
                param: param - 1,
                num_tbs: 1,
                req: ResourceReq::new(32, 8, 0),
            }));
        }
        ops.push(TbOp::Compute(4));
        TbProgram::new(ops)
    }
}

/// Plain compute kernels, no launches.
struct LeafSource;

impl ProgramSource for LeafSource {
    fn tb_program(&self, _kind: KernelKindId, _param: u64, _tb: u32) -> TbProgram {
        TbProgram::new(vec![TbOp::Compute(50)])
    }
}

fn cfg() -> GpuConfig {
    let mut cfg = GpuConfig::small_test();
    cfg.max_concurrent_kernels = 8;
    cfg
}

#[test]
fn kdu_saturation_with_many_host_kernels() {
    let cfg = cfg();
    let mut sim = Simulator::new(cfg.clone(), Box::new(LeafSource));
    for i in 0..40 {
        sim.launch_host_kernel(ROOT, i, 2, ResourceReq::new(32, 8, 0)).unwrap();
    }
    // Step manually and watch the KDU never exceed capacity.
    let mut max_occupancy = 0;
    let mut max_pending = 0;
    while !sim.is_done() {
        sim.step().unwrap();
        max_occupancy = max_occupancy.max(sim.kdu_occupancy());
        max_pending = max_pending.max(sim.kmu_pending());
        assert!(sim.cycle() < 1_000_000, "stuck");
    }
    assert!(max_occupancy <= 8);
    assert!(max_pending >= 30, "KMU should have queued the overflow");
    let stats = sim.stats();
    assert_eq!(stats.tb_records.len(), 80);
}

#[test]
fn deep_nesting_chain_saturates_priority() {
    let cfg = cfg();
    let depth = 300u64; // deeper than u8::MAX priorities
    let mut sim = Simulator::new(cfg, Box::new(ChainSource))
        .with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::zero()));
    sim.launch_host_kernel(ROOT, depth, 1, ResourceReq::new(32, 8, 0)).unwrap();
    let stats = sim.run_to_completion().unwrap();
    assert_eq!(stats.tb_records.len() as u64, depth + 1);
    let max_priority = sim.batches().iter().map(|b| b.priority).max().unwrap();
    assert_eq!(max_priority, Priority(u8::MAX), "priority must saturate, not wrap");
}

#[test]
fn dtbl_falls_back_to_kernel_path_when_parent_entry_is_gone() {
    // One short-lived parent TB launches one group with a huge latency;
    // by the time the group matures, the parent kernel's KDU entry has
    // retired and the group must take the device-kernel path instead.
    let cfg = cfg();
    let mut sim = Simulator::new(cfg, Box::new(ChainSource))
        .with_launch_model(Box::new(DtblModel::new(LaunchLatency::uniform(50_000))));
    sim.launch_host_kernel(ROOT, 1, 1, ResourceReq::new(32, 8, 0)).unwrap();
    let stats = sim.run_to_completion().unwrap();
    assert_eq!(stats.tb_records.len(), 2);
    let child = &sim.batches()[1];
    assert_eq!(
        child.batch_kind,
        BatchKind::DeviceKernel,
        "matured group should have fallen back to a kernel launch"
    );
    assert!(child.origin.is_some(), "fallback keeps parent information");
}

#[test]
fn dtbl_uses_group_path_when_parent_kernel_is_alive() {
    // Many sibling parent TBs keep the kernel's entry alive long enough
    // for a fast group to coalesce onto it.
    let cfg = cfg();
    let mut sim = Simulator::new(cfg, Box::new(ChainSource))
        .with_launch_model(Box::new(DtblModel::new(LaunchLatency::uniform(10))));
    sim.launch_host_kernel(ROOT, 1, 16, ResourceReq::new(32, 8, 0)).unwrap();
    sim.run_to_completion().unwrap();
    let groups = sim.batches().iter().filter(|b| b.batch_kind == BatchKind::TbGroup).count();
    assert!(groups > 0, "fast groups should coalesce onto the live kernel");
}

#[test]
fn cdp_chain_survives_kdu_pressure() {
    // A nesting chain under CDP: each level occupies a KDU entry; with
    // capacity 8 the chain must still complete by draining level by
    // level.
    let cfg = cfg();
    let mut sim = Simulator::new(cfg, Box::new(ChainSource))
        .with_launch_model(LaunchModelKind::Cdp.build(LaunchLatency::uniform(20)));
    sim.launch_host_kernel(ROOT, 50, 1, ResourceReq::new(32, 8, 0)).unwrap();
    let stats = sim.run_to_completion().unwrap();
    assert_eq!(stats.tb_records.len(), 51);
}

#[test]
fn phased_execution_reuses_the_machine() {
    // Iterative algorithms (BFS waves, AMR timesteps) launch a kernel,
    // synchronize, and launch the next. The engine supports this by
    // reusing the simulator across run_to_completion calls — caches stay
    // warm between phases.
    let cfg = cfg();
    let mut sim = Simulator::new(cfg, Box::new(LeafSource));
    sim.launch_host_kernel(ROOT, 0, 4, ResourceReq::new(32, 8, 0)).unwrap();
    let phase1 = sim.run_to_completion().unwrap();
    assert!(sim.is_done());

    sim.launch_host_kernel(ROOT, 1, 4, ResourceReq::new(32, 8, 0)).unwrap();
    assert!(!sim.is_done());
    let phase2 = sim.run_to_completion().unwrap();

    assert_eq!(phase1.tb_records.len(), 4);
    assert_eq!(phase2.tb_records.len(), 8, "stats accumulate across phases");
    assert!(phase2.cycles > phase1.cycles);
    assert_eq!(sim.resident_tbs(), 0);
}

#[test]
fn public_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Simulator>();
    assert_send::<gpu_sim::stats::SimStats>();
    assert_send::<gpu_sim::config::GpuConfig>();
    assert_send::<laperm::LaPermScheduler>();
    assert_send::<dynpar::CdpModel>();
    assert_send::<dynpar::DtblModel>();
}

#[test]
fn mixed_host_and_device_kernels_complete() {
    let cfg = cfg();
    let mut sim = Simulator::new(cfg, Box::new(ChainSource))
        .with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::uniform(10)));
    for i in 0..4 {
        sim.launch_host_kernel(ROOT, 3, 4, ResourceReq::new(32, 8, 0)).unwrap();
        let _ = i;
    }
    let stats = sim.run_to_completion().unwrap();
    // 4 kernels x 4 TBs, each TB spawning a chain of 3 children.
    assert_eq!(stats.tb_records.len(), 4 * 4 * 4);
}
