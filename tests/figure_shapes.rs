//! Regression tests for the paper's headline result *shapes* (not
//! absolute numbers): scheduler orderings on cache hit rates and IPC,
//! and the Figure 2 locality structure.
//!
//! These use the `small` scale, which is large enough to create the
//! dispatch backlog the paper's effects depend on; they take a few
//! seconds each in debug builds.

use dynpar::LaunchModelKind;
use gpu_sim::config::GpuConfig;
use sim_metrics::footprint::FootprintAnalysis;
use sim_metrics::harness::{run_once, RunRecord, SchedulerKind};
use workloads::{suite, Scale, Workload};

fn bfs_citation() -> std::sync::Arc<dyn Workload> {
    suite(Scale::Small)
        .into_iter()
        .find(|w| w.full_name() == "bfs-citation")
        .expect("bfs-citation in suite")
}

fn run(sched: SchedulerKind) -> RunRecord {
    run_once(&bfs_citation(), LaunchModelKind::Dtbl, sched, &GpuConfig::kepler_k20c())
        .expect("run completes")
}

#[test]
fn laperm_improves_ipc_over_baseline_dtbl() {
    let rr = run(SchedulerKind::RoundRobin);
    let adaptive = run(SchedulerKind::AdaptiveBind);
    assert!(
        adaptive.ipc > rr.ipc * 1.10,
        "Adaptive-Bind IPC {} should clearly beat RR {}",
        adaptive.ipc,
        rr.ipc
    );
}

#[test]
fn tb_pri_improves_l2_and_child_wait() {
    let rr = run(SchedulerKind::RoundRobin);
    let pri = run(SchedulerKind::TbPri);
    assert!(
        pri.l2_hit_rate > rr.l2_hit_rate,
        "TB-Pri L2 {} should beat RR {}",
        pri.l2_hit_rate,
        rr.l2_hit_rate
    );
    assert!(pri.mean_child_wait < rr.mean_child_wait / 2.0);
}

#[test]
fn smx_bind_improves_l1_over_tb_pri() {
    let pri = run(SchedulerKind::TbPri);
    let bind = run(SchedulerKind::SmxBind);
    assert!(
        bind.l1_hit_rate > pri.l1_hit_rate + 0.02,
        "SMX-Bind L1 {} should clearly beat TB-Pri {}",
        bind.l1_hit_rate,
        pri.l1_hit_rate
    );
    assert_eq!(bind.parent_smx_affinity, 1.0);
}

#[test]
fn adaptive_bind_balances_better_than_smx_bind() {
    let bind = run(SchedulerKind::SmxBind);
    let adaptive = run(SchedulerKind::AdaptiveBind);
    assert!(
        adaptive.load_imbalance <= bind.load_imbalance + 1e-9,
        "Adaptive imbalance {} should not exceed SMX-Bind {}",
        adaptive.load_imbalance,
        bind.load_imbalance
    );
    assert!(adaptive.ipc >= bind.ipc * 0.98);
    assert!(adaptive.steals > 0);
}

#[test]
fn figure2_structure_holds() {
    let tiny = suite(Scale::Tiny);
    let by_name = |name: &str| {
        let w = tiny.iter().find(|w| w.full_name() == name).expect("workload");
        FootprintAnalysis::analyze(w.as_ref())
    };
    let bfs_cit = by_name("bfs-citation");
    let bfs_500 = by_name("bfs-graph500");
    let amr = by_name("amr");
    let join = by_name("join-uniform");

    // Parent-child sharing is substantial everywhere and far above
    // parent-parent sharing.
    for a in [&bfs_cit, &bfs_500, &amr, &join] {
        assert!(a.parent_child > 0.10, "{}: pc {}", a.workload, a.parent_child);
        assert!(a.parent_child > a.parent_parent, "{}", a.workload);
    }
    // Clustered graphs beat random ones on sibling sharing; amr and join
    // sit at the bottom (paper Figure 2).
    assert!(bfs_cit.child_sibling > bfs_500.child_sibling);
    assert!(amr.child_sibling < 0.1);
    assert!(join.child_sibling < bfs_cit.child_sibling);
}

#[test]
fn join_gaussian_punishes_strict_binding() {
    // The skewed join is the paper's example of SMX-Bind losing to RR on
    // load balance while Adaptive-Bind recovers.
    let w = suite(Scale::Small)
        .into_iter()
        .find(|w| w.full_name() == "join-gaussian")
        .expect("join-gaussian");
    let cfg = GpuConfig::kepler_k20c();
    let rr = run_once(&w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &cfg).unwrap();
    let bind = run_once(&w, LaunchModelKind::Dtbl, SchedulerKind::SmxBind, &cfg).unwrap();
    let adaptive = run_once(&w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg).unwrap();
    assert!(bind.ipc < rr.ipc, "binding should lose on the skewed join");
    assert!(adaptive.ipc > bind.ipc, "stealing should recover the loss");
}
