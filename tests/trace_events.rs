//! Integration tests of the scheduling-event trace: the event stream is
//! complete, ordered, and consistent with the run's statistics.

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, LaunchSpec, ProgramSource, TbOp, TbProgram};
use gpu_sim::trace::{render, TraceEvent, VecSink};

const PARENT: KernelKindId = KernelKindId(0);
const CHILD: KernelKindId = KernelKindId(1);

struct TwoLevel;

impl ProgramSource for TwoLevel {
    fn tb_program(&self, kind: KernelKindId, _param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => {
                let mut ops = vec![TbOp::Compute(10)];
                if tb_index.is_multiple_of(2) {
                    ops.push(TbOp::Launch(LaunchSpec {
                        kind: CHILD,
                        param: u64::from(tb_index),
                        num_tbs: 2,
                        req: ResourceReq::new(32, 8, 0),
                    }));
                }
                // Keep the parent kernel alive long enough for DTBL
                // groups to coalesce onto its KDU entry.
                ops.push(TbOp::Compute(400));
                TbProgram::new(ops)
            }
            _ => TbProgram::new(vec![TbOp::Compute(10)]),
        }
    }
}

fn traced_run(model: LaunchModelKind) -> (Vec<gpu_sim::trace::TraceRecord>, gpu_sim::SimStats) {
    let cfg = GpuConfig::small_test();
    let sink = VecSink::new();
    let handle = sink.clone();
    let mut sim = Simulator::new(cfg, Box::new(TwoLevel))
        .with_launch_model(model.build(LaunchLatency::uniform(50)))
        .with_trace(Box::new(sink));
    sim.launch_host_kernel(PARENT, 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
    let stats = sim.run_to_completion().unwrap();
    (handle.records(), stats)
}

#[test]
fn every_dispatch_has_a_completion() {
    let (records, stats) = traced_run(LaunchModelKind::Dtbl);
    let dispatches: Vec<_> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::TbDispatched { tb, .. } => Some(tb),
            _ => None,
        })
        .collect();
    let completions: Vec<_> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::TbCompleted { tb, .. } => Some(tb),
            _ => None,
        })
        .collect();
    assert_eq!(dispatches.len(), stats.tb_records.len());
    assert_eq!(completions.len(), dispatches.len());
    let mut d = dispatches.clone();
    let mut c = completions.clone();
    d.sort();
    c.sort();
    assert_eq!(d, c, "dispatch/completion multisets differ");
}

#[test]
fn events_are_time_ordered() {
    let (records, _) = traced_run(LaunchModelKind::Dtbl);
    for pair in records.windows(2) {
        assert!(pair[0].cycle <= pair[1].cycle);
    }
}

#[test]
fn completion_never_precedes_dispatch_per_tb() {
    let (records, _) = traced_run(LaunchModelKind::Cdp);
    use std::collections::HashMap;
    let mut dispatched_at = HashMap::new();
    for r in &records {
        match r.event {
            TraceEvent::TbDispatched { tb, .. } => {
                assert!(dispatched_at.insert(tb, r.cycle).is_none(), "{tb} dispatched twice");
            }
            TraceEvent::TbCompleted { tb, .. } => {
                let d = dispatched_at.get(&tb).expect("completed TB was dispatched");
                assert!(r.cycle >= *d);
            }
            _ => {}
        }
    }
}

#[test]
fn dtbl_traces_coalesced_groups_and_cdp_traces_kernels() {
    let (dtbl, _) = traced_run(LaunchModelKind::Dtbl);
    assert!(dtbl.iter().any(|r| matches!(r.event, TraceEvent::GroupCoalesced { .. })));

    let (cdp, _) = traced_run(LaunchModelKind::Cdp);
    let queued = cdp.iter().filter(|r| matches!(r.event, TraceEvent::KernelQueued { .. })).count();
    // 1 host kernel + 4 launching parents' device kernels.
    assert_eq!(queued, 5);
    assert!(!cdp.iter().any(|r| matches!(r.event, TraceEvent::GroupCoalesced { .. })));
}

#[test]
fn launch_events_match_launching_parents() {
    let (records, _) = traced_run(LaunchModelKind::Dtbl);
    let launches: Vec<_> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::LaunchIssued { by, num_tbs } => Some((by, num_tbs)),
            _ => None,
        })
        .collect();
    assert_eq!(launches.len(), 4);
    for (by, num_tbs) in launches {
        assert_eq!(by.index % 2, 0, "only even parents launch");
        assert_eq!(num_tbs, 2);
    }
}

#[test]
fn rendered_trace_is_readable() {
    let (records, _) = traced_run(LaunchModelKind::Dtbl);
    let text = render(&records);
    assert_eq!(text.lines().count(), records.len());
    assert!(text.contains("dispatched to SMX"));
    assert!(text.contains("completed on SMX"));
}
