//! Property-based fuzzing of the whole engine: random program shapes,
//! random launch structures, every scheduler — the machine must always
//! drain completely, retire every TB exactly once, and leave no residue.

use proptest::prelude::*;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{
    AddrPattern, KernelKindId, LaunchSpec, MemOp, ProgramSource, TbOp, TbProgram,
};
use sim_metrics::harness::SchedulerKind;

const PARENT: KernelKindId = KernelKindId(0);
const CHILD: KernelKindId = KernelKindId(1);

/// One randomly generated op.
#[derive(Debug, Clone)]
enum OpSpec {
    Compute(u32),
    Load(u64),
    Store(u64),
    Shared,
    Sync,
}

impl OpSpec {
    fn to_op(&self) -> TbOp {
        match *self {
            OpSpec::Compute(c) => TbOp::Compute(c),
            OpSpec::Load(base) => {
                TbOp::Mem(MemOp::load(AddrPattern::Strided { base, stride: 4 }))
            }
            OpSpec::Store(base) => {
                TbOp::Mem(MemOp::store(AddrPattern::Strided { base, stride: 4 }))
            }
            OpSpec::Shared => TbOp::Mem(MemOp::shared(AddrPattern::Broadcast(0))),
            OpSpec::Sync => TbOp::Sync,
        }
    }
}

#[derive(Debug, Clone)]
struct FuzzSpec {
    parent_ops: Vec<OpSpec>,
    child_ops: Vec<OpSpec>,
    parents: u32,
    /// (parent TB that launches, child TB count).
    launches: Vec<(u32, u32)>,
}

#[derive(Debug)]
struct FuzzSource {
    spec: FuzzSpec,
}

impl ProgramSource for FuzzSource {
    fn tb_program(&self, kind: KernelKindId, _param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => {
                let mut ops: Vec<TbOp> =
                    self.spec.parent_ops.iter().map(OpSpec::to_op).collect();
                for &(launcher, num_tbs) in &self.spec.launches {
                    if launcher == tb_index {
                        ops.push(TbOp::Launch(LaunchSpec {
                            kind: CHILD,
                            param: u64::from(tb_index),
                            num_tbs,
                            req: ResourceReq::new(32, 8, 0),
                        }));
                    }
                }
                TbProgram::new(ops)
            }
            _ => TbProgram::new(self.spec.child_ops.iter().map(OpSpec::to_op).collect()),
        }
    }
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (1u32..32).prop_map(OpSpec::Compute),
        (0u64..100_000).prop_map(|a| OpSpec::Load(a & !3)),
        (0u64..100_000).prop_map(|a| OpSpec::Store(a & !3)),
        Just(OpSpec::Shared),
        Just(OpSpec::Sync),
    ]
}

fn spec_strategy() -> impl Strategy<Value = FuzzSpec> {
    (
        prop::collection::vec(op_strategy(), 0..12),
        prop::collection::vec(op_strategy(), 0..8),
        1u32..12,
        prop::collection::vec((0u32..12, 1u32..4), 0..6),
    )
        .prop_map(|(parent_ops, child_ops, parents, mut launches)| {
            for l in &mut launches {
                l.0 %= parents;
            }
            FuzzSpec { parent_ops, child_ops, parents, launches }
        })
}

fn scheduler_strategy() -> impl Strategy<Value = SchedulerKind> {
    prop::sample::select(SchedulerKind::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_always_drains(
        spec in spec_strategy(),
        sched in scheduler_strategy(),
        dtbl in any::<bool>(),
        latency in 0u32..2000,
    ) {
        let mut cfg = GpuConfig::small_test();
        cfg.max_cycles = 5_000_000;
        let parents = spec.parents;
        let expected_children: u32 = spec.launches.iter().map(|&(_, n)| n).sum();
        let model = if dtbl { LaunchModelKind::Dtbl } else { LaunchModelKind::Cdp };
        let mut sim = Simulator::new(cfg.clone(), Box::new(FuzzSource { spec }))
            .with_scheduler(sched.build(&cfg))
            .with_launch_model(model.build(LaunchLatency::uniform(latency)));
        sim.launch_host_kernel(PARENT, 0, parents, ResourceReq::new(32, 8, 0))
            .expect("host kernel valid");
        let stats = sim.run_to_completion().expect("simulation drains");

        prop_assert!(sim.is_done());
        prop_assert_eq!(sim.resident_tbs(), 0);
        prop_assert_eq!(
            stats.tb_records.len() as u32,
            parents + expected_children,
            "TB conservation violated"
        );
        for r in &stats.tb_records {
            prop_assert!(r.finished_at >= r.dispatched_at);
            prop_assert!(r.dispatched_at >= r.created_at);
        }
        // Batches fully accounted.
        for b in sim.batches() {
            prop_assert_eq!(b.finished_tbs, b.num_tbs);
        }
    }
}
