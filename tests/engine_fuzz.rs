//! Randomized fuzzing of the whole engine: random program shapes, random
//! launch structures, every scheduler — the machine must always drain
//! completely, retire every TB exactly once, and leave no residue.
//!
//! Formerly a proptest property; now a seeded sweep using the workloads
//! crate's SplitMix64 so the suite has no external dependencies.

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{
    AddrPattern, KernelKindId, LaunchSpec, MemOp, ProgramSource, TbOp, TbProgram,
};
use sim_metrics::harness::SchedulerKind;
use workloads::rng::SplitMix64;

const PARENT: KernelKindId = KernelKindId(0);
const CHILD: KernelKindId = KernelKindId(1);

/// One randomly generated op.
#[derive(Debug, Clone)]
enum OpSpec {
    Compute(u32),
    Load(u64),
    Store(u64),
    Shared,
    Sync,
}

impl OpSpec {
    fn to_op(&self) -> TbOp {
        match *self {
            OpSpec::Compute(c) => TbOp::Compute(c),
            OpSpec::Load(base) => TbOp::Mem(MemOp::load(AddrPattern::Strided { base, stride: 4 })),
            OpSpec::Store(base) => {
                TbOp::Mem(MemOp::store(AddrPattern::Strided { base, stride: 4 }))
            }
            OpSpec::Shared => TbOp::Mem(MemOp::shared(AddrPattern::Broadcast(0))),
            OpSpec::Sync => TbOp::Sync,
        }
    }

    fn random(rng: &mut SplitMix64) -> Self {
        match rng.below(5) {
            0 => OpSpec::Compute(1 + rng.below(31) as u32),
            1 => OpSpec::Load(rng.below(100_000) & !3),
            2 => OpSpec::Store(rng.below(100_000) & !3),
            3 => OpSpec::Shared,
            _ => OpSpec::Sync,
        }
    }
}

#[derive(Debug, Clone)]
struct FuzzSpec {
    parent_ops: Vec<OpSpec>,
    child_ops: Vec<OpSpec>,
    parents: u32,
    /// (parent TB that launches, child TB count).
    launches: Vec<(u32, u32)>,
}

impl FuzzSpec {
    fn random(rng: &mut SplitMix64) -> Self {
        let parents = 1 + rng.below(11) as u32;
        let parent_ops = (0..rng.below(12)).map(|_| OpSpec::random(rng)).collect();
        let child_ops = (0..rng.below(8)).map(|_| OpSpec::random(rng)).collect();
        let launches = (0..rng.below(6))
            .map(|_| (rng.below(u64::from(parents)) as u32, 1 + rng.below(3) as u32))
            .collect();
        FuzzSpec { parent_ops, child_ops, parents, launches }
    }
}

#[derive(Debug)]
struct FuzzSource {
    spec: FuzzSpec,
}

impl ProgramSource for FuzzSource {
    fn tb_program(&self, kind: KernelKindId, _param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => {
                let mut ops: Vec<TbOp> = self.spec.parent_ops.iter().map(OpSpec::to_op).collect();
                for &(launcher, num_tbs) in &self.spec.launches {
                    if launcher == tb_index {
                        ops.push(TbOp::Launch(LaunchSpec {
                            kind: CHILD,
                            param: u64::from(tb_index),
                            num_tbs,
                            req: ResourceReq::new(32, 8, 0),
                        }));
                    }
                }
                TbProgram::new(ops)
            }
            _ => TbProgram::new(self.spec.child_ops.iter().map(OpSpec::to_op).collect()),
        }
    }
}

#[test]
fn engine_always_drains() {
    let schedulers = SchedulerKind::all();
    let mut rng = SplitMix64::new(0x5EED_F00D);
    for case in 0..64u64 {
        let spec = FuzzSpec::random(&mut rng);
        let sched = schedulers[rng.below(schedulers.len() as u64) as usize];
        let dtbl = rng.below(2) == 1;
        let latency = rng.below(2000) as u32;

        let mut cfg = GpuConfig::small_test();
        cfg.max_cycles = 5_000_000;
        let parents = spec.parents;
        let expected_children: u32 = spec.launches.iter().map(|&(_, n)| n).sum();
        let model = if dtbl { LaunchModelKind::Dtbl } else { LaunchModelKind::Cdp };
        let mut sim = Simulator::new(cfg.clone(), Box::new(FuzzSource { spec }))
            .with_scheduler(sched.build(&cfg))
            .with_launch_model(model.build(LaunchLatency::uniform(latency)));
        sim.launch_host_kernel(PARENT, 0, parents, ResourceReq::new(32, 8, 0))
            .expect("host kernel valid");
        let stats = sim.run_to_completion().expect("simulation drains");

        assert!(sim.is_done());
        assert_eq!(sim.resident_tbs(), 0);
        assert_eq!(
            stats.tb_records.len() as u32,
            parents + expected_children,
            "TB conservation violated (case {case})"
        );
        for r in &stats.tb_records {
            assert!(r.finished_at >= r.dispatched_at);
            assert!(r.dispatched_at >= r.created_at);
        }
        // Batches fully accounted.
        for b in sim.batches() {
            assert_eq!(b.finished_tbs, b.num_tbs);
        }
    }
}
