//! Randomized liveness suite for the hardened launch path.
//!
//! Every scenario here — seed-derived fault plans, finite launch-path
//! capacities under both overflow policies, and permanently killed SMXs
//! — must end in one of exactly two ways: completed statistics, or a
//! structured [`SimError`]. A panic or a silent spin to `max_cycles`
//! fails the suite. This is the executable form of the robustness
//! contract in docs/ARCHITECTURE.md ("Robustness").

use std::sync::Arc;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::{EngineMode, GpuConfig, LaunchLimits, OverflowPolicy};
use gpu_sim::engine::Simulator;
use gpu_sim::error::SimError;
use gpu_sim::fault::{Fault, FaultPlan};
use gpu_sim::program::{KernelKindId, ProgramSource, TbOp, TbProgram};
use gpu_sim::stats::SimStats;
use gpu_sim::types::SmxId;
use sim_metrics::harness::SchedulerKind;
use workloads::{suite, Scale, SharedSource, Workload};

fn base_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::small_test();
    // Fault windows compose with fast-forward (their edges are wake-up
    // sources), so faulted runs stay quick; keep the watchdog window
    // small anyway so a genuinely wedged run fails fast — the wedge
    // jump lands on the deadline instead of grinding toward max_cycles.
    cfg.watchdog_window = Some(100_000);
    cfg
}

fn build_sim(
    w: &Arc<dyn Workload>,
    model: LaunchModelKind,
    sched: SchedulerKind,
    cfg: &GpuConfig,
) -> Simulator {
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(sched.build(cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("host launch");
    }
    sim
}

/// Runs one faulted scenario to its structured end. Completion must
/// leave real statistics; an error must be one of the liveness-layer
/// variants, never an engine invariant violation.
fn run_faulted(
    w: &Arc<dyn Workload>,
    model: LaunchModelKind,
    sched: SchedulerKind,
    cfg: &GpuConfig,
    plan: FaultPlan,
) -> Result<SimStats, SimError> {
    let seed = plan.seed();
    let mut sim = build_sim(w, model, sched, cfg).with_fault_plan(plan);
    let result = sim.run_to_completion();
    match &result {
        Ok(stats) => {
            assert!(stats.cycles > 0, "seed {seed}: completed with no cycles");
        }
        Err(SimError::NoForwardProgress { suspects, .. }) => {
            assert!(!suspects.is_empty(), "seed {seed}: watchdog fired without naming suspects");
        }
        Err(SimError::CycleLimitExceeded { .. }) => {}
        Err(other) => panic!("seed {seed}: unexpected error class: {other}"),
    }
    result
}

/// Every seed-derived fault plan terminates with stats or a structured
/// error, across schedulers and both launch models.
#[test]
fn every_fault_seed_terminates_structurally() {
    let all = suite(Scale::Tiny);
    let cfg = base_cfg();
    let models = LaunchModelKind::all();
    let scheds = SchedulerKind::all();
    for seed in 0..16u64 {
        let w = &all[seed as usize % all.len()];
        let model = models[seed as usize % models.len()];
        let sched = scheds[seed as usize % scheds.len()];
        let plan = FaultPlan::from_seed(seed, cfg.num_smxs);
        let _ = run_faulted(w, model, sched, &cfg, plan);
    }
}

/// Fault seeds survive finite launch-path capacities under both
/// overflow policies: degradation composes with fault injection.
#[test]
fn fault_seeds_survive_finite_limits_under_both_policies() {
    let all = suite(Scale::Tiny);
    let policies =
        [OverflowPolicy::StallParent, OverflowPolicy::SpillVirtual { extra_latency: 200 }];
    for seed in 0..8u64 {
        for (pi, policy) in policies.iter().enumerate() {
            let mut cfg = base_cfg();
            cfg.launch_limits = LaunchLimits {
                kmu_capacity: Some(2),
                pending_launch_capacity: Some(2),
                smx_queue_capacity: Some(64),
                policy: *policy,
            };
            let w = &all[(seed as usize + pi) % all.len()];
            let plan = FaultPlan::from_seed(seed, cfg.num_smxs);
            let _ = run_faulted(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg, plan);
        }
    }
}

/// The same fault seed replays bit-identically: completed runs produce
/// equal statistics, failed runs produce the same error.
#[test]
fn fault_seeds_replay_bit_identically() {
    let all = suite(Scale::Tiny);
    let cfg = base_cfg();
    for seed in [3u64, 7, 11] {
        let w = &all[seed as usize % all.len()];
        let run = || {
            run_faulted(
                w,
                LaunchModelKind::Dtbl,
                SchedulerKind::AdaptiveBind,
                &cfg,
                FaultPlan::from_seed(seed, cfg.num_smxs),
            )
        };
        match (run(), run()) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "seed {seed}: stats diverged between replays"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "seed {seed}: errors diverged")
            }
            (a, b) => panic!("seed {seed}: outcome class diverged: {a:?} vs {b:?}"),
        }
    }
}

/// Killing every SMX forever wedges the machine; the watchdog must fire
/// with named suspects instead of spinning to the cycle limit.
#[test]
fn permanently_killed_smxs_trip_the_watchdog() {
    let all = suite(Scale::Tiny);
    let w = all.first().expect("non-empty suite");
    let mut cfg = base_cfg();
    cfg.watchdog_window = Some(20_000);
    let faults = (0..cfg.num_smxs)
        .map(|i| Fault::KillSmx { smx: SmxId(i), from: 0, until: u64::MAX })
        .collect();
    let mut sim = build_sim(w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &cfg)
        .with_fault_plan(FaultPlan::new(faults));
    match sim.run_to_completion() {
        Err(SimError::NoForwardProgress { window, cycle, suspects }) => {
            assert_eq!(window, 20_000);
            assert!(cycle >= window, "watchdog fired before a full window elapsed");
            assert!(!suspects.is_empty(), "watchdog fired without naming stuck TBs");
        }
        other => panic!("expected NoForwardProgress, got {other:?}"),
    }
}

/// A legitimate idle stretch far longer than the watchdog window must
/// not trip it: a fast-forward jump lands on real machine progress by
/// construction, so it pushes the deadline past itself. CDP launch
/// latencies (2500+ cycles) dwarf the 1000-cycle window here; the run
/// must still complete, in both engine modes.
#[test]
fn legit_idle_longer_than_watchdog_window_completes() {
    let all = suite(Scale::Tiny);
    let w = all.first().expect("non-empty suite");
    for engine in [EngineMode::Event, EngineMode::CycleStepped] {
        let mut cfg = base_cfg();
        cfg.engine_mode = engine;
        cfg.watchdog_window = Some(1_000);
        let mut sim = build_sim(w, LaunchModelKind::Cdp, SchedulerKind::RoundRobin, &cfg);
        let stats = sim
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{engine}: legit idle tripped the engine: {e}"));
        assert!(stats.cycles > 2_500, "{engine}: run never crossed a launch-latency window");
        assert!(
            sim.fast_forwarded_cycles() > 0,
            "{engine}: the idle stretches were stepped, not skipped"
        );
    }
}

/// A genuine wedge arising mid-run — every SMX killed forever after the
/// machine has fully dispatched its work — must trip the watchdog even
/// though the engine is fully quiescent (no wake-up left anywhere, no
/// TB awaiting dispatch): the wedge jump deliberately lands on the
/// watchdog deadline, where the progress compare fires. Both engines
/// must diagnose the identical wedge at the identical cycle, and
/// neither may grind there cycle-by-cycle.
#[test]
fn wedge_during_quiescence_still_trips_watchdog() {
    /// Four long-running compute TBs: all dispatched within a few
    /// cycles, all still resident when the kill window opens.
    struct FourLongTbs;
    impl ProgramSource for FourLongTbs {
        fn tb_program(&self, _kind: KernelKindId, _param: u64, _tb: u32) -> TbProgram {
            TbProgram::new(vec![TbOp::Compute(500)])
        }
    }
    let mut outcomes = Vec::new();
    for engine in [EngineMode::Event, EngineMode::CycleStepped] {
        let mut cfg = base_cfg();
        cfg.engine_mode = engine;
        cfg.watchdog_window = Some(20_000);
        let faults = (0..cfg.num_smxs)
            .map(|i| Fault::KillSmx { smx: SmxId(i), from: 20, until: u64::MAX })
            .collect();
        let mut sim = Simulator::new(cfg.clone(), Box::new(FourLongTbs))
            .with_fault_plan(FaultPlan::new(faults));
        sim.launch_host_kernel(KernelKindId(0), 0, 4, gpu_sim::kernel::ResourceReq::new(32, 8, 0))
            .expect("host launch");
        match sim.run_to_completion() {
            Err(SimError::NoForwardProgress { window, cycle, suspects }) => {
                assert_eq!(window, 20_000);
                assert!(cycle >= window, "{engine}: watchdog fired before a full window");
                assert!(!suspects.is_empty(), "{engine}: watchdog named no suspects");
                outcomes.push((cycle, suspects.len()));
            }
            other => panic!("{engine}: expected NoForwardProgress, got {other:?}"),
        }
        assert!(
            sim.fast_forwarded_cycles() > 0,
            "{engine}: the wedge was ground out cycle-by-cycle instead of jumped"
        );
    }
    assert_eq!(outcomes[0], outcomes[1], "engines diagnosed the wedge differently");
}

/// Both fault layers at once: simulator-level fault plans (seed-derived
/// per cell) composed with harness-level injections (a panicking cell,
/// a wedged cell). The harness layer must recover independently — its
/// transient faults retry away without disturbing what the simulator
/// layer produces — so the composed sweep ends exactly like a sweep
/// under simulator faults alone, at any `--jobs`.
#[test]
fn composed_sim_and_harness_faults_recover_independently() {
    use laperm_bench::sweep::matrix_cells;
    use laperm_bench::{run_matrix_cells_resilient, HarnessFault, HarnessFaultPlan, Resilience};

    let cells = matrix_cells(Scale::Tiny, 0);
    let subset = &cells[..8];
    let cfg = base_cfg();
    let sim_only =
        Resilience { retries: 2, backoff_ms: 0, sim_fault_seed: Some(42), ..Resilience::default() };
    let composed = Resilience {
        faults: Some(HarnessFaultPlan::new(vec![
            HarnessFault::PanicCell { cell: 1, attempts: 1 },
            HarnessFault::WedgeCell { cell: 4, attempts: 2 },
        ])),
        ..sim_only.clone()
    };

    let baseline = run_matrix_cells_resilient(subset, 4, &cfg, "tiny/42", &sim_only)
        .expect("sim-fault sweep")
        .0;
    // Every simulator-layer end is structured (the core liveness
    // contract), and the attribution fields survive the sweep layer.
    for f in &baseline.failures {
        assert!(
            f.error.contains("no forward progress") || f.error.contains("cycle limit"),
            "unstructured sim-fault end: {}",
            f.error
        );
        assert_eq!(f.attempts, 3, "deterministic sim fault must exhaust the retry budget");
    }

    for jobs in [1, 4] {
        let (outcome, _) = run_matrix_cells_resilient(subset, jobs, &cfg, "tiny/42", &composed)
            .expect("composed sweep");
        for f in &outcome.failures {
            assert!(
                !f.error.contains("injected"),
                "jobs {jobs}: transient harness fault leaked into the report: {}",
                f.error
            );
        }
        assert_eq!(
            outcome.records, baseline.records,
            "jobs {jobs}: harness faults disturbed simulator-layer records"
        );
        assert_eq!(
            outcome.failures, baseline.failures,
            "jobs {jobs}: harness faults disturbed simulator-layer failures"
        );
    }
}

/// A transient full-dispatch-queue window only delays the run: the
/// machine drains the backlog afterwards and completes with the same
/// work done.
#[test]
fn transient_queue_full_window_is_survivable() {
    let all = suite(Scale::Tiny);
    let w = all.first().expect("non-empty suite");
    let cfg = base_cfg();
    let healthy = {
        let mut sim = build_sim(w, LaunchModelKind::Cdp, SchedulerKind::RoundRobin, &cfg);
        sim.run_to_completion().expect("healthy run")
    };
    let plan = FaultPlan::new(vec![Fault::QueueFull { from: 100, until: 3_000 }]);
    let mut sim =
        build_sim(w, LaunchModelKind::Cdp, SchedulerKind::RoundRobin, &cfg).with_fault_plan(plan);
    let faulted = sim.run_to_completion().expect("faulted run should still complete");
    assert_eq!(
        faulted.tb_records.len(),
        healthy.tb_records.len(),
        "queue-full window changed the amount of work completed"
    );
    assert!(faulted.cycles >= healthy.cycles, "stalling dispatch cannot speed the run up");
}
