//! Tier-2 snapshot test: the ci-scale reproduction report must match
//! the checked-in golden byte-for-byte.
//!
//! This is the offline half of the CI reproduction gate: the `repro-gate`
//! workflow job runs the same sweep through the `repro` binary and diffs
//! against the same golden, so a drift fails both here and there. The
//! test is `#[ignore]`d because the full ci-scale sweep takes tens of
//! seconds — CI runs it explicitly with `cargo test -- --ignored`.
//!
//! If a deliberate model change alters the output, regenerate with
//! `cargo run --release -p laperm-bench --bin repro -- all --scale ci \
//!  --json /tmp/repro.json > tests/golden/repro_ci.txt`
//! and review the diff like any other code change.

use laperm_bench::{default_jobs, evaluate_shapes, full_report, MatrixRecords, SweepDoc};
use workloads::Scale;

#[test]
#[ignore = "ci-scale sweep takes tens of seconds; run with --ignored"]
fn ci_scale_report_matches_golden() {
    let golden = include_str!("golden/repro_ci.txt");
    let doc = SweepDoc::build(Scale::Ci, 0, default_jobs());
    assert!(doc.failures.is_empty(), "sweep failures: {:?}", doc.failures);
    let m = MatrixRecords::from_records(doc.records.clone());
    let current = full_report(Scale::Ci, default_jobs(), &m);
    assert_eq!(
        current, golden,
        "ci-scale reproduction report drifted from tests/golden/repro_ci.txt"
    );
}

#[test]
#[ignore = "ci-scale sweep takes tens of seconds; run with --ignored"]
fn ci_scale_shapes_all_pass() {
    let doc = SweepDoc::build(Scale::Ci, 0, default_jobs());
    let outcomes = evaluate_shapes(&doc);
    let failed: Vec<String> =
        outcomes.iter().filter(|o| !o.passed).map(|o| format!("{}: {}", o.id, o.detail)).collect();
    assert!(failed.is_empty(), "shape assertions failed at ci scale:\n{}", failed.join("\n"));
}

/// The engine-profiled twin of [`ci_scale_report_matches_golden`]: the
/// `repro profile` section at ci scale is deterministic (simulated-side
/// counters only, no wall clock) and must match its golden. Regenerate
/// with `cargo run --release -p laperm-bench --bin repro -- profile \
/// --scale ci --json /tmp/repro_profile.json \
/// > tests/golden/repro_profile_ci.txt`
#[test]
#[ignore = "ci-scale sweep takes tens of seconds; run with --ignored"]
fn ci_scale_profile_matches_golden() {
    use gpu_sim::config::EngineMode;
    let golden = include_str!("golden/repro_profile_ci.txt");
    let doc = SweepDoc::build_profiled(Scale::Ci, 0, default_jobs(), EngineMode::Event);
    assert!(doc.failures.is_empty(), "sweep failures: {:?}", doc.failures);

    // The engine shape assertions bind on a profiled document.
    let outcomes = evaluate_shapes(&doc);
    let failed: Vec<String> =
        outcomes.iter().filter(|o| !o.passed).map(|o| format!("{}: {}", o.id, o.detail)).collect();
    assert!(failed.is_empty(), "shape assertions failed on profiled doc:\n{}", failed.join("\n"));

    let m = MatrixRecords::from_records(doc.records);
    let current = laperm_bench::profile(&m);
    assert_eq!(
        current, golden,
        "ci-scale profile report drifted from tests/golden/repro_profile_ci.txt"
    );
}

/// The latency-attribution twin: `repro latency` at ci scale is
/// deterministic (lifecycle edges are simulated-cycle stamps, never wall
/// clock) and must match its golden byte-for-byte regardless of `--jobs`.
/// Regenerate with `cargo run --release -p laperm-bench --bin repro -- \
/// latency --scale ci > tests/golden/repro_latency_ci.txt`
#[test]
#[ignore = "ci-scale sweep takes tens of seconds; run with --ignored"]
fn ci_scale_latency_matches_golden() {
    use gpu_sim::config::EngineMode;
    let golden = include_str!("golden/repro_latency_ci.txt");
    let doc = SweepDoc::build_profiled(Scale::Ci, 0, default_jobs(), EngineMode::Event);
    assert!(doc.failures.is_empty(), "sweep failures: {:?}", doc.failures);

    // The latency shape assertions bind on a profiled document.
    let outcomes = evaluate_shapes(&doc);
    let failed: Vec<String> =
        outcomes.iter().filter(|o| !o.passed).map(|o| format!("{}: {}", o.id, o.detail)).collect();
    assert!(failed.is_empty(), "shape assertions failed on profiled doc:\n{}", failed.join("\n"));

    let m = MatrixRecords::from_records(doc.records);
    let current = laperm_bench::latency_report(Scale::Ci, default_jobs(), &m);
    assert_eq!(
        current, golden,
        "ci-scale latency report drifted from tests/golden/repro_latency_ci.txt"
    );
}
