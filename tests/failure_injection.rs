//! Failure injection: the engine must reject misbehaving schedulers,
//! malformed device launches, and absurd configurations with typed
//! errors — never by corrupting the simulation.

use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::error::SimError;
use gpu_sim::kernel::{Batch, ResourceReq};
use gpu_sim::program::{KernelKindId, LaunchSpec, ProgramSource, TbOp, TbProgram};
use gpu_sim::tb_sched::{DispatchDecision, DispatchView, TbScheduler};
use gpu_sim::types::{BatchId, Cycle, SmxId};

struct Compute;

impl ProgramSource for Compute {
    fn tb_program(&self, _k: KernelKindId, _p: u64, _tb: u32) -> TbProgram {
        TbProgram::new(vec![TbOp::Compute(4)])
    }
}

/// Launches children with an empty grid — a workload bug.
struct EmptyLauncher;

impl ProgramSource for EmptyLauncher {
    fn tb_program(&self, kind: KernelKindId, _p: u64, _tb: u32) -> TbProgram {
        if kind.0 == 0 {
            TbProgram::new(vec![TbOp::Launch(LaunchSpec {
                kind: KernelKindId(1),
                param: 0,
                num_tbs: 0,
                req: ResourceReq::new(32, 8, 0),
            })])
        } else {
            TbProgram::new(vec![TbOp::Compute(1)])
        }
    }
}

/// A scheduler that dispatches to an SMX that does not exist.
struct BadSmxScheduler;

impl TbScheduler for BadSmxScheduler {
    fn name(&self) -> &'static str {
        "bad-smx"
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision> {
        view.schedulable
            .iter()
            .copied()
            .find(|&b| view.batch(b).has_undispatched_tbs())
            .map(|batch| DispatchDecision { batch, smx: SmxId(250) })
    }
}

/// A scheduler that dispatches a batch that was never made schedulable.
struct PhantomBatchScheduler;

impl TbScheduler for PhantomBatchScheduler {
    fn name(&self) -> &'static str {
        "phantom"
    }

    fn on_batch_schedulable(&mut self, _b: &Batch, _c: Cycle) {}

    fn pick(&mut self, _view: &DispatchView<'_>) -> Option<DispatchDecision> {
        Some(DispatchDecision { batch: BatchId(999), smx: SmxId(0) })
    }
}

/// A scheduler that keeps re-dispatching the same batch past exhaustion.
struct OverDispatchScheduler {
    target: Option<BatchId>,
}

impl TbScheduler for OverDispatchScheduler {
    fn name(&self) -> &'static str {
        "over-dispatch"
    }

    fn on_batch_schedulable(&mut self, b: &Batch, _c: Cycle) {
        self.target.get_or_insert(b.id);
    }

    fn pick(&mut self, _view: &DispatchView<'_>) -> Option<DispatchDecision> {
        self.target.map(|batch| DispatchDecision { batch, smx: SmxId(0) })
    }
}

fn run_with(scheduler: Box<dyn TbScheduler>) -> Result<(), SimError> {
    let mut sim =
        Simulator::new(GpuConfig::small_test(), Box::new(Compute)).with_scheduler(scheduler);
    sim.launch_host_kernel(KernelKindId(0), 0, 1, ResourceReq::new(32, 8, 0))?;
    sim.run_to_completion().map(|_| ())
}

#[test]
fn nonexistent_smx_is_rejected() {
    let err = run_with(Box::new(BadSmxScheduler)).unwrap_err();
    assert!(matches!(err, SimError::BadDispatch { smx: SmxId(250), .. }), "{err}");
}

#[test]
fn phantom_batch_is_rejected() {
    let err = run_with(Box::new(PhantomBatchScheduler)).unwrap_err();
    assert!(matches!(err, SimError::BadDispatch { batch: BatchId(999), .. }), "{err}");
}

#[test]
fn over_dispatch_is_rejected() {
    // Two one-TB kernels; the scheduler keeps naming the first batch, so
    // its second decision targets an exhausted batch (the engine only
    // asks while *some* batch has undispatched TBs).
    let mut sim = Simulator::new(GpuConfig::small_test(), Box::new(Compute))
        .with_scheduler(Box::new(OverDispatchScheduler { target: None }));
    sim.launch_host_kernel(KernelKindId(0), 0, 1, ResourceReq::new(32, 8, 0)).unwrap();
    sim.launch_host_kernel(KernelKindId(0), 1, 1, ResourceReq::new(32, 8, 0)).unwrap();
    let err = sim.run_to_completion().unwrap_err();
    let SimError::BadDispatch { reason, .. } = &err else {
        panic!("expected BadDispatch, got {err}");
    };
    assert!(reason.contains("exhausted"), "{reason}");
}

#[test]
fn empty_device_launch_fails_loudly() {
    let mut sim = Simulator::new(GpuConfig::small_test(), Box::new(EmptyLauncher));
    sim.launch_host_kernel(KernelKindId(0), 0, 1, ResourceReq::new(32, 8, 0)).unwrap();
    let err = sim.run_to_completion().unwrap_err();
    assert!(matches!(err, SimError::KernelTooLarge { .. }), "{err}");
}

#[test]
fn error_messages_name_the_culprits() {
    let err = run_with(Box::new(BadSmxScheduler)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("SMX250"), "{msg}");
    assert!(msg.contains("B0"), "{msg}");
}

#[test]
#[should_panic(expected = "invalid GpuConfig")]
fn invalid_config_panics_at_construction() {
    let mut cfg = GpuConfig::small_test();
    cfg.l1_assoc = 7; // does not divide the line count
    let _ = Simulator::new(cfg, Box::new(Compute));
}
