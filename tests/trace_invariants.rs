//! Cross-layer invariants of the full trace stream: scheduler events,
//! engine events, and final statistics all tell one consistent story,
//! and the Perfetto export of a real run validates.

use std::sync::Arc;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::stats::SimStats;
use gpu_sim::trace::{TraceEvent, TraceRecord, VecSink};
use sim_metrics::harness::SchedulerKind;
use sim_metrics::{perfetto_json, registry_for_run, validate_trace};
use workloads::{suite, Scale, SharedSource, Workload};

const NUM_SMXS: u16 = 4;

fn traced(
    w: &Arc<dyn Workload>,
    model: LaunchModelKind,
    sched: SchedulerKind,
) -> (Vec<TraceRecord>, SimStats) {
    let mut cfg = GpuConfig::small_test();
    cfg.num_smxs = NUM_SMXS;
    let sink = VecSink::new();
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(sched.build(&cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)))
        .with_trace(Box::new(sink.clone()));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
    }
    let stats = sim.run_to_completion().expect("run to completion");
    (sink.records(), stats)
}

#[test]
fn tb_completes_on_its_dispatch_smx() {
    let all = suite(Scale::Tiny);
    for w in all.iter().take(3) {
        for sched in SchedulerKind::all() {
            let (records, _) = traced(w, LaunchModelKind::Dtbl, sched);
            let mut dispatch_smx = std::collections::HashMap::new();
            for r in &records {
                match r.event {
                    TraceEvent::TbDispatched { tb, smx } => {
                        assert!(
                            dispatch_smx.insert(tb, smx).is_none(),
                            "{tb} dispatched twice under {sched}"
                        );
                    }
                    TraceEvent::TbCompleted { tb, smx } => {
                        assert_eq!(
                            dispatch_smx.get(&tb),
                            Some(&smx),
                            "{tb} completed on a different SMX than it was dispatched to"
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}

#[test]
fn trace_cycles_never_decrease() {
    let all = suite(Scale::Tiny);
    for w in all.iter().take(3) {
        let (records, _) = traced(w, LaunchModelKind::Cdp, SchedulerKind::AdaptiveBind);
        for pair in records.windows(2) {
            assert!(
                pair[0].cycle <= pair[1].cycle,
                "trace went backwards: {} then {}",
                pair[0].cycle,
                pair[1].cycle
            );
        }
    }
}

#[test]
fn traced_steals_match_scheduler_counter() {
    let all = suite(Scale::Tiny);
    let mut total_steals = 0;
    for w in all.iter().take(3) {
        let (records, stats) = traced(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind);
        let traced_steals =
            records.iter().filter(|r| matches!(r.event, TraceEvent::Stage3Steal { .. })).count()
                as u64;
        let counted = stats
            .scheduler_counters
            .iter()
            .find(|(k, _)| *k == "stage3_steals")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(
            traced_steals,
            counted,
            "{}: trace shows {traced_steals} steals, counter says {counted}",
            w.full_name()
        );
        total_steals += counted;
    }
    assert!(total_steals > 0, "no steal ever happened across the sweep");
}

#[test]
fn every_laperm_dispatch_dequeues_exactly_once() {
    let all = suite(Scale::Tiny);
    for w in all.iter().take(3) {
        let (records, stats) = traced(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind);
        let dequeues =
            records.iter().filter(|r| matches!(r.event, TraceEvent::QueueDequeued { .. })).count();
        assert_eq!(
            dequeues,
            stats.tb_records.len(),
            "{}: every dispatched TB leaves a queue exactly once",
            w.full_name()
        );
        let enqueues =
            records.iter().filter(|r| matches!(r.event, TraceEvent::QueueEnqueued { .. })).count();
        assert!(enqueues > 0, "no batch was ever enqueued");
    }
}

#[test]
fn perfetto_export_of_real_run_validates() {
    let all = suite(Scale::Tiny);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs in suite");
    let (records, stats) = traced(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind);
    let json = perfetto_json(&records, &stats, &[], NUM_SMXS);
    let check = validate_trace(&json).expect("trace validates");
    assert_eq!(check.smx_tracks, usize::from(NUM_SMXS));
    assert_eq!(check.spans, stats.tb_records.len());
    assert!(check.counters > 0, "no queue-depth counter samples");
    assert!(check.instants > 0, "no instant events");
}

#[test]
fn registry_of_real_run_is_consistent() {
    let all = suite(Scale::Tiny);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs in suite");
    let (records, stats) = traced(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind);
    let registry = registry_for_run(&stats, &records);
    assert_eq!(registry.counter_value("cycles"), stats.cycles);
    assert_eq!(registry.counter_value("tbs_total"), stats.tb_records.len() as u64);
    let stall_sum: u64 = [
        "stall_scoreboard_cycles",
        "stall_memory_pending_cycles",
        "stall_mshr_full_cycles",
        "stall_barrier_cycles",
        "stall_no_tb_cycles",
    ]
    .iter()
    .map(|k| registry.counter_value(k))
    .sum();
    assert_eq!(stall_sum, stats.total_stalls().total());
    let json = registry.to_json();
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"histograms\""));
}
