//! The stall-cause accounting invariant: every SMX cycle is attributed
//! to exactly one bucket — busy, or one of the five `StallCause`s — so
//! per SMX `busy + stalls.total() == cycles`, with or without idle-cycle
//! fast-forward.

use std::sync::Arc;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::stats::SimStats;
use sim_metrics::harness::SchedulerKind;
use workloads::{suite, Scale, SharedSource, Workload};

fn run(
    w: &Arc<dyn Workload>,
    model: LaunchModelKind,
    sched: SchedulerKind,
    fast_forward: bool,
) -> SimStats {
    let mut cfg = GpuConfig::small_test();
    cfg.num_smxs = 4;
    cfg.fast_forward = fast_forward;
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(sched.build(&cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
    }
    sim.run_to_completion().expect("run to completion")
}

#[test]
fn every_smx_cycle_is_attributed() {
    let all = suite(Scale::Tiny);
    for w in all.iter().take(3) {
        for model in LaunchModelKind::all() {
            for sched in SchedulerKind::all() {
                for ff in [true, false] {
                    let stats = run(w, model, sched, ff);
                    assert_eq!(stats.smx_stalls.len(), stats.smx_busy_cycles.len());
                    for (i, (busy, stalls)) in
                        stats.smx_busy_cycles.iter().zip(&stats.smx_stalls).enumerate()
                    {
                        assert_eq!(
                            busy + stalls.total(),
                            stats.cycles,
                            "{} under {model}/{sched} (ff={ff}): SMX{i} attribution \
                             {busy} busy + {} stalled != {} cycles ({stalls:?})",
                            w.full_name(),
                            stalls.total(),
                            stats.cycles,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn stall_mix_reflects_workload_behavior() {
    let all = suite(Scale::Tiny);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs in suite");
    let stats = run(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, true);
    let total = stats.total_stalls();
    // A graph traversal with global-memory loads must stall on memory
    // somewhere, and scoreboard waits (ALU latency) are unavoidable.
    assert!(total.memory_pending > 0, "no memory stalls in a memory-bound workload: {total:?}");
    assert!(total.scoreboard > 0, "no scoreboard stalls: {total:?}");
    // Dead cycles between kernel phases are charged to NoTb, never lost.
    assert!(total.no_tb > 0, "no idle (NoTb) cycles attributed: {total:?}");
}
