//! Crash-safety suite for the resilient sweep executor.
//!
//! Proves the three contracts the cell cache and per-cell supervision
//! exist for (docs/ARCHITECTURE.md, "Resilient sweeps"):
//!
//! 1. **Kill-and-resume byte-identity** — a sweep interrupted after any
//!    number of committed cells resumes from `--cache-dir` and writes a
//!    `repro.json` byte-identical to a one-shot run, at any `--jobs`.
//! 2. **Corrupt entries are recomputed, never served** — checksum flips
//!    and truncated tails in the journal are detected at open, dropped,
//!    repaired, and the affected cells recomputed to identical records.
//! 3. **Retries are deterministic and jobs-invariant** — injected
//!    harness faults (panics, wedges) retry on a fixed schedule and
//!    produce identical documents regardless of worker count.
//!
//! The in-process kill here truncates the run at a cell boundary (the
//! journal commits each cell in one write, so a SIGKILL can only ever
//! land between commits or mid-record — both covered). The real
//! SIGKILL rehearsal lives in the CI `sweep-resilience` job, which
//! kills `repro all --kill-after-cells N` from outside and resumes.

use std::path::{Path, PathBuf};

use gpu_sim::config::{EngineMode, GpuConfig};
use laperm_bench::sweep::{matrix_cells, ProgramPath};
use laperm_bench::{
    run_matrix_cells_resilient, CellCache, HarnessFault, HarnessFaultPlan, Resilience, SweepDoc,
};
use workloads::Scale;

/// The exact configuration `SweepDoc::build` hands the executor — cache
/// keys fold the config in, so the pre-populated journal in the resume
/// test must be written under the same one.
fn doc_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::kepler_k20c();
    cfg.profile_locality = true;
    cfg.engine_mode = EngineMode::Event;
    cfg
}

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("laperm-sweep-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn cached(dir: &Path) -> Resilience {
    Resilience { cache_dir: Some(dir.to_path_buf()), ..Resilience::default() }
}

/// Contract 1. A run killed after 40 committed cells (simulated by
/// running only a 40-cell prefix against the cache) resumes into a
/// byte-identical `repro.json`, and a further all-hits rerun at a
/// different `--jobs` renders the same bytes from the cache alone.
#[test]
fn kill_and_resume_repro_json_is_byte_identical() {
    let dir = temp_dir("resume");
    let one_shot = SweepDoc::build(Scale::Tiny, 0, 4).to_json();

    // The "killed" first run: only 40 of 128 cells ever committed.
    let cells = matrix_cells(Scale::Tiny, 0);
    let cfg = doc_cfg();
    let (partial, report) =
        run_matrix_cells_resilient(&cells[..40], 4, &cfg, "tiny/0", &cached(&dir))
            .expect("partial run");
    assert!(partial.failures.is_empty(), "{:?}", partial.failures);
    assert_eq!(report.committed, 40);

    // Resume: the 40 cached cells are served, the remaining 88 computed.
    let (doc, report) = SweepDoc::build_resilient(
        Scale::Tiny,
        0,
        4,
        EngineMode::Event,
        ProgramPath::Generator,
        &cached(&dir),
    )
    .expect("resumed build");
    assert_eq!(report.cache_hits, 40, "resume recomputed cached cells");
    assert_eq!(report.cache_misses, 88);
    assert_eq!(report.committed, 88);
    assert_eq!(report.journal_damage, None);
    assert_eq!(doc.to_json(), one_shot, "resumed repro.json differs from one-shot");

    // A fully warm rerun at a different --jobs is pure cache reads and
    // still renders the identical bytes.
    let (doc, report) = SweepDoc::build_resilient(
        Scale::Tiny,
        0,
        1,
        EngineMode::Event,
        ProgramPath::Generator,
        &cached(&dir),
    )
    .expect("warm rerun");
    assert_eq!(report.cache_hits, 128);
    assert_eq!(report.committed, 0);
    assert_eq!(doc.to_json(), one_shot, "warm-cache repro.json differs from one-shot");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Contract 2. Flipping a checksum byte mid-journal invalidates that
/// record and everything after it (append-only framing cannot trust a
/// suffix behind a bad header); the next open reports the damage,
/// repairs the file, and the dropped cells are recomputed to records
/// identical to the originals.
#[test]
fn corrupt_cache_entries_are_recomputed_not_served() {
    let dir = temp_dir("corrupt");
    let cells = matrix_cells(Scale::Tiny, 0);
    let subset = &cells[..6];
    let cfg = doc_cfg();

    let (first, report) =
        run_matrix_cells_resilient(subset, 2, &cfg, "tiny/0", &cached(&dir)).expect("seed run");
    assert_eq!(report.committed, 6);

    // Flip one checksum byte in record 3 of 6.
    let plan = HarnessFaultPlan::new(vec![HarnessFault::FlipChecksumByte { record: 3 }]);
    let applied = plan.apply_journal_faults(&CellCache::journal_path(&dir)).expect("apply fault");
    assert_eq!(applied.len(), 1, "fault did not land: {applied:?}");

    let (second, report) =
        run_matrix_cells_resilient(subset, 2, &cfg, "tiny/0", &cached(&dir)).expect("repair run");
    let damage = report.journal_damage.expect("damage went undetected");
    assert!(damage.contains("checksum mismatch"), "wrong damage class: {damage}");
    assert_eq!(report.cache_hits, 3, "a corrupt record was served");
    assert_eq!(report.cache_misses, 3);
    assert_eq!(second.records, first.records, "recomputed cells diverged from originals");

    // Truncate mid-record (the shape a SIGKILL mid-write leaves), then
    // prove the journal heals: the third open repairs, the fourth is
    // clean and fully warm.
    let plan = HarnessFaultPlan::new(vec![HarnessFault::TruncateJournal { record: 5 }]);
    let applied =
        plan.apply_journal_faults(&CellCache::journal_path(&dir)).expect("apply truncation");
    assert_eq!(applied.len(), 1, "truncation did not land: {applied:?}");
    let (third, report) =
        run_matrix_cells_resilient(subset, 2, &cfg, "tiny/0", &cached(&dir)).expect("heal run");
    let damage = report.journal_damage.expect("truncation went undetected");
    assert!(damage.contains("truncated"), "wrong damage class: {damage}");
    assert_eq!(third.records, first.records);

    let (_, report) =
        run_matrix_cells_resilient(subset, 2, &cfg, "tiny/0", &cached(&dir)).expect("warm run");
    assert_eq!(report.journal_damage, None, "journal not repaired on previous open");
    assert_eq!(report.cache_hits, 6);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Contract 3. Transient injected faults — a cell that panics on its
/// first two attempts, another wedged on its first — are retried on the
/// deterministic schedule and leave no trace in the output: records
/// match a fault-free run and are jobs-invariant.
#[test]
fn transient_faults_retry_deterministically_across_jobs() {
    let cells = matrix_cells(Scale::Tiny, 0);
    let subset = &cells[..8];
    let cfg = doc_cfg();

    let clean = run_matrix_cells_resilient(subset, 4, &cfg, "tiny/0", &Resilience::default())
        .expect("clean run")
        .0;

    let res = Resilience {
        retries: 2,
        backoff_ms: 0,
        faults: Some(HarnessFaultPlan::new(vec![
            HarnessFault::PanicCell { cell: 2, attempts: 2 },
            HarnessFault::WedgeCell { cell: 5, attempts: 1 },
        ])),
        ..Resilience::default()
    };
    for jobs in [1, 4] {
        let (outcome, report) =
            run_matrix_cells_resilient(subset, jobs, &cfg, "tiny/0", &res).expect("faulted run");
        assert!(outcome.failures.is_empty(), "jobs {jobs}: transient faults leaked: {:?}", {
            &outcome.failures
        });
        assert_eq!(outcome.records, clean.records, "jobs {jobs}: retries changed the records");
        assert_eq!(report.retried_attempts, 3, "jobs {jobs}: retry schedule drifted");
    }
}

/// Permanent faults exhaust the retry budget and degrade the sweep with
/// full attribution — cell index, attempt count, and a cause naming the
/// injection (panic) or the tripped deadline (wedge) — identically at
/// any `--jobs`, while every healthy cell still completes.
#[test]
fn permanent_faults_degrade_with_attribution() {
    let cells = matrix_cells(Scale::Tiny, 0);
    let subset = &cells[..4];
    let cfg = doc_cfg();
    let res = Resilience {
        retries: 1,
        backoff_ms: 0,
        faults: Some(HarnessFaultPlan::new(vec![
            HarnessFault::PanicCell { cell: 1, attempts: u32::MAX },
            HarnessFault::WedgeCell { cell: 3, attempts: u32::MAX },
        ])),
        ..Resilience::default()
    };

    let (first, _) =
        run_matrix_cells_resilient(subset, 2, &cfg, "tiny/0", &res).expect("faulted run");
    assert_eq!(first.records.len(), 2, "healthy cells did not survive");
    assert_eq!(first.failures.len(), 2);

    let panic_failure = &first.failures[0];
    assert_eq!(panic_failure.cell_index, 1);
    assert_eq!(panic_failure.attempts, 2, "retry budget not exhausted");
    assert_eq!(panic_failure.workload, subset[1].workload.full_name());
    assert_eq!(panic_failure.scheduler, subset[1].scheduler.to_string());
    assert!(
        panic_failure.error.contains("injected harness panic: cell 1"),
        "panic cause lost: {}",
        panic_failure.error
    );

    let wedge_failure = &first.failures[1];
    assert_eq!(wedge_failure.cell_index, 3);
    assert_eq!(wedge_failure.attempts, 2);
    assert!(
        wedge_failure.error.contains("no forward progress"),
        "wedge must surface as a deadline trip: {}",
        wedge_failure.error
    );

    let (second, _) =
        run_matrix_cells_resilient(subset, 1, &cfg, "tiny/0", &res).expect("serial run");
    assert_eq!(second.records, first.records, "records not jobs-invariant under faults");
    assert_eq!(second.failures, first.failures, "failures not jobs-invariant under faults");
}

/// `--cell-deadline` reaches the engine and the cache key. A wedged
/// cell under a 5 000-cycle deadline must trip the watchdog at exactly
/// that window (the wedge fallback window is 20 000, so seeing 5 000 in
/// the error proves the flag tightened it), and changing the deadline
/// must miss the cache while the original policy still hits.
#[test]
fn cell_deadline_is_enforced_and_keyed() {
    let dir = temp_dir("deadline");
    let cells = matrix_cells(Scale::Tiny, 0);
    let subset = &cells[..2];
    let cfg = doc_cfg();

    let healthy =
        run_matrix_cells_resilient(subset, 2, &cfg, "tiny/0", &cached(&dir)).expect("healthy").0;
    assert!(healthy.failures.is_empty());

    let res = Resilience {
        cell_deadline: Some(5_000),
        faults: Some(HarnessFaultPlan::new(vec![HarnessFault::WedgeCell {
            cell: 0,
            attempts: u32::MAX,
        }])),
        ..cached(&dir)
    };
    let (strangled, report) =
        run_matrix_cells_resilient(subset, 2, &cfg, "tiny/0", &res).expect("strangled");
    assert_eq!(report.cache_hits, 0, "deadline change must miss the cache");
    assert_eq!(strangled.records.len(), 1, "healthy cell must survive");
    assert_eq!(strangled.failures.len(), 1);
    let f = &strangled.failures[0];
    assert_eq!(f.cell_index, 0);
    assert_eq!(f.attempts, 1);
    assert!(
        f.error.contains("no forward progress for 5000 cycles"),
        "deadline did not reach the engine: {}",
        f.error
    );

    // Back at the original policy the healthy entries still hit.
    let (_, report) =
        run_matrix_cells_resilient(subset, 2, &cfg, "tiny/0", &cached(&dir)).expect("warm");
    assert_eq!(report.cache_hits, 2);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
