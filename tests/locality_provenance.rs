//! Locality provenance profiler invariants, end to end: every cache hit
//! of a profiled run is attributed to exactly one lineage class, the
//! profiler is purely observational (cycle counts and every other
//! statistic are bit-identical with it on or off), it composes with the
//! fast-forward optimization, and an unprofiled run's `repro.json`
//! record keeps the schema-v1 byte layout.

use std::sync::Arc;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::cache::ReuseClass;
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::stats::SimStats;
use sim_metrics::harness::{run_once, RunRecord, SchedulerKind};
use sim_metrics::run_to_json;
use workloads::{suite, Scale, SharedSource, Workload};

/// Runs one workload to completion with explicit profiling and
/// fast-forward settings.
fn run(
    w: &Arc<dyn Workload>,
    model: LaunchModelKind,
    sched: SchedulerKind,
    profile: bool,
    fast_forward: bool,
) -> SimStats {
    let mut cfg = GpuConfig::small_test();
    cfg.num_smxs = 4;
    cfg.profile_locality = profile;
    cfg.fast_forward = fast_forward;
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(sched.build(&cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
    }
    sim.run_to_completion().expect("run to completion")
}

#[test]
fn every_hit_is_attributed_to_exactly_one_class() {
    let all = suite(Scale::Tiny);
    let mut classified = 0;
    for w in all.iter().take(3) {
        for model in LaunchModelKind::all() {
            for sched in SchedulerKind::all() {
                let stats = run(w, model, sched, true, true);
                let name = w.full_name();
                assert_eq!(
                    stats.l1.prov.total(),
                    stats.l1.hits,
                    "{name} {model}/{sched}: L1 hits escaped classification"
                );
                assert_eq!(
                    stats.l2.prov.total(),
                    stats.l2.hits,
                    "{name} {model}/{sched}: L2 hits escaped classification"
                );
                assert_eq!(
                    stats.l2.prov.same_smx + stats.l2.prov.cross_smx,
                    stats.l2.hits,
                    "{name} {model}/{sched}: L2 same/cross-SMX split broken"
                );
                // An L1 is private to its SMX: nothing can cross.
                assert_eq!(stats.l1.prov.cross_smx, 0, "{name}: cross-SMX L1 hit");
                // Reuse-distance histograms record exactly the classified hits.
                let loc = stats.locality.as_ref().expect("profiled run has locality stats");
                for class in ReuseClass::ALL {
                    let i = class.index();
                    assert_eq!(loc.l1_reuse_dist[i].count, stats.l1.prov.by_class[i]);
                    assert_eq!(loc.l2_reuse_dist[i].count, stats.l2.prov.by_class[i]);
                }
                classified += stats.l1.prov.total() + stats.l2.prov.total();
            }
        }
    }
    assert!(classified > 0, "the sweep produced no classified hits at all");
}

#[test]
fn profiling_is_observational() {
    // The profiler must not perturb the simulation: every architectural
    // statistic is identical with it on or off. (`SimStats` is compared
    // field by field after blanking the locality-only fields.)
    let all = suite(Scale::Tiny);
    for w in all.iter().take(3) {
        for sched in [SchedulerKind::RoundRobin, SchedulerKind::AdaptiveBind] {
            let on = run(w, LaunchModelKind::Dtbl, sched, true, true);
            let off = run(w, LaunchModelKind::Dtbl, sched, false, true);
            assert!(on.locality.is_some() && off.locality.is_none());
            let mut blanked = on.clone();
            blanked.locality = None;
            blanked.l1.prov = Default::default();
            blanked.l2.prov = Default::default();
            assert_eq!(
                blanked,
                off,
                "{} under {sched}: profiling changed an architectural statistic",
                w.full_name()
            );
        }
    }
}

#[test]
fn provenance_is_bit_identical_under_fast_forward() {
    let all = suite(Scale::Tiny);
    for w in all.iter().take(3) {
        for model in LaunchModelKind::all() {
            for sched in [SchedulerKind::TbPri, SchedulerKind::SmxBind] {
                let on = run(w, model, sched, true, true);
                let off = run(w, model, sched, true, false);
                assert_eq!(
                    on,
                    off,
                    "{} under {model}/{sched}: fast-forward changed provenance",
                    w.full_name()
                );
            }
        }
    }
}

#[test]
fn unprofiled_record_serializes_with_schema_v1_bytes() {
    // A run without the profiler produces a `repro.json` record with no
    // `locality` key at all — byte-identical to the pre-profiler schema.
    let all = suite(Scale::Tiny);
    let w = &all[0];
    let cfg = {
        let mut c = GpuConfig::small_test();
        c.num_smxs = 4;
        c
    };
    let plain: RunRecord =
        run_once(w, LaunchModelKind::Dtbl, SchedulerKind::SmxBind, &cfg).expect("run");
    assert!(plain.locality.is_none());
    let text = run_to_json(&plain).render();
    assert!(!text.contains("locality"), "unprofiled record leaked a locality field: {text}");

    let mut profiled_cfg = cfg.clone();
    profiled_cfg.profile_locality = true;
    let profiled: RunRecord =
        run_once(w, LaunchModelKind::Dtbl, SchedulerKind::SmxBind, &profiled_cfg).expect("run");
    let ptext = run_to_json(&profiled).render();
    // Same run, same numbers: the profiled record is the schema-v1 bytes
    // plus a trailing locality object.
    assert!(ptext.starts_with(&text[..text.len() - 1]), "profiled record rewrote v1 fields");
    assert!(ptext.contains("\"locality\":{"));
}
