//! Golden-file regression tests: deterministic artifacts must not drift.
//!
//! If a deliberate model change alters these outputs, regenerate with
//! `cargo run --release -p laperm-bench --bin repro -- fig4 > tests/golden/fig4.txt`
//! and review the diff like any other code change.

use laperm_bench::figure4;

#[test]
fn figure4_matches_golden() {
    let golden = include_str!("golden/fig4.txt");
    let current = figure4();
    assert_eq!(current.trim(), golden.trim(), "Figure 4 placements drifted from the golden file");
}
