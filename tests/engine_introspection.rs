//! Engine introspection end-to-end: the two-clock self-profile layer
//! must (a) partition every loop iteration over wake sources exactly,
//! (b) be purely additive — turning it on changes no simulated
//! statistic and no serialized byte of the unprofiled document — and
//! (c) observe the *engine*, not the simulation: the event engine and
//! the cycle-stepped engine report identical `SimStats` for the same
//! cell while their introspection legitimately differs (the event
//! engine elides idle cycles, so it iterates fewer times).

use std::sync::Arc;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::{EngineMode, GpuConfig};
use gpu_sim::engine::Simulator;
use gpu_sim::stats::SimStats;
use laperm_bench::sweep::SweepDoc;
use sim_metrics::harness::SchedulerKind;
use workloads::{suite, Scale, SharedSource, Workload};

fn run(w: &Arc<dyn Workload>, engine: EngineMode, profile: bool) -> SimStats {
    run_ff(w, engine, profile, true)
}

fn run_ff(
    w: &Arc<dyn Workload>,
    engine: EngineMode,
    profile: bool,
    fast_forward: bool,
) -> SimStats {
    let mut cfg = GpuConfig::small_test();
    cfg.num_smxs = 4;
    cfg.engine_mode = engine;
    cfg.profile_engine = profile;
    cfg.fast_forward = fast_forward;
    let model = LaunchModelKind::Dtbl;
    let sched = SchedulerKind::AdaptiveBind;
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(sched.build(&cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
    }
    sim.run_to_completion().expect("run")
}

/// Wake-source counts partition loop iterations exactly, in both
/// engines, and the reconstruction invariant holds: every iteration
/// advanced the clock by one cycle plus its recorded jump.
#[test]
fn wake_sources_partition_iterations_in_both_engines() {
    let all = suite(Scale::Tiny);
    for engine in [EngineMode::Event, EngineMode::CycleStepped] {
        for w in &all {
            let stats = run(w, engine, true);
            let eng = stats.engine.as_ref().expect("profiled run has engine stats");
            assert!(eng.loop_iterations > 0, "{}: no iterations recorded", w.full_name());
            assert_eq!(
                eng.wake_total(),
                eng.loop_iterations,
                "{} under {engine:?}: wake counts do not partition iterations",
                w.full_name()
            );
            assert_eq!(
                eng.loop_iterations + eng.jump_len.sum,
                stats.cycles,
                "{} under {engine:?}: iterations + jumped cycles != cycles",
                w.full_name()
            );
            assert!(
                eng.host_samples > 0,
                "{} under {engine:?}: host sampling never fired",
                w.full_name()
            );
        }
    }
}

/// Cross-engine: identical `SimStats` once the engine introspection is
/// stripped, while the introspection itself differs — the event engine
/// (fast-forward on) iterates strictly fewer times than a cycle-stepped
/// engine with fast-forward off (which steps every single cycle), and
/// only the event engine populates the heap histograms. Fast-forward is
/// semantics-preserving, so even across that flag the simulated
/// statistics must match.
#[test]
fn engines_agree_on_simulation_and_differ_in_introspection() {
    let all = suite(Scale::Tiny);
    let w = &all[0];
    let mut event = run(w, EngineMode::Event, true);
    let mut stepped = run_ff(w, EngineMode::CycleStepped, true, false);
    let event_eng = event.engine.take().expect("event engine stats");
    let stepped_eng = stepped.engine.take().expect("stepped engine stats");
    assert_eq!(event, stepped, "simulated statistics must not depend on the engine");

    // Without fast-forward the cycle-stepped engine iterates once per
    // cycle; the event engine skips idle stretches, so it must iterate
    // less on a workload with launch-latency gaps.
    assert_eq!(stepped_eng.loop_iterations, stepped.cycles);
    assert_eq!(stepped_eng.jump_len.count, 0);
    assert!(
        event_eng.loop_iterations < stepped_eng.loop_iterations,
        "event engine elided nothing: {} vs {} iterations",
        event_eng.loop_iterations,
        stepped_eng.loop_iterations
    );
    // Only the event engine has an event heap to observe.
    assert!(event_eng.heap_depth.count > 0);
    assert_eq!(stepped_eng.heap_depth.count, 0);
}

/// Profiling is observational: the simulated statistics are bit-equal
/// with and without it.
#[test]
fn profiling_does_not_perturb_the_simulation() {
    let all = suite(Scale::Tiny);
    let w = &all[0];
    for engine in [EngineMode::Event, EngineMode::CycleStepped] {
        let mut with = run(w, engine, true);
        let without = run(w, engine, false);
        assert!(without.engine.is_none(), "unprofiled run must carry no engine stats");
        with.engine = None;
        assert_eq!(with, without, "profiling changed simulated statistics under {engine:?}");
    }
}

/// Schema v4 is a pure suffix extension: the unprofiled document
/// serializes no `engine` key at all, and a profiled record's JSON is
/// the unprofiled record's JSON with the engine object appended — every
/// preexisting byte is unchanged.
#[test]
fn unprofiled_documents_have_no_engine_key() {
    let doc = SweepDoc::build_with_engine(Scale::Tiny, 0, 2, EngineMode::Event);
    let json = doc.to_json();
    assert!(!json.contains("\"engine\""), "unprofiled repro.json must not mention the engine");
    assert!(!json.contains("host_ns"), "wall-clock time must never reach repro.json");

    let profiled = SweepDoc::build_profiled(Scale::Tiny, 0, 2, EngineMode::Event);
    let profiled_json = profiled.to_json();
    assert!(profiled_json.contains("\"engine\""));
    assert!(!profiled_json.contains("host_ns"));
    assert_eq!(doc.records.len(), profiled.records.len());

    // Same cells, same simulated numbers: line by line, the profiled
    // document is the unprofiled one with an engine object spliced in
    // just before each record's closing brace. Every preexisting byte
    // survives unchanged.
    let (a_lines, b_lines): (Vec<&str>, Vec<&str>) =
        (json.lines().collect(), profiled_json.lines().collect());
    assert_eq!(a_lines.len(), b_lines.len());
    for (a, b) in a_lines.iter().zip(&b_lines) {
        if a == b {
            continue;
        }
        let sep = if a.ends_with(',') { "," } else { "" };
        let prefix = a
            .strip_suffix(sep)
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or_else(|| panic!("differing non-record line: {a}"));
        assert!(
            b.starts_with(prefix) && b.ends_with(&format!("}}{sep}")) && b.contains("\"engine\""),
            "profiled line is not a suffix extension:\n  {a}\n  {b}"
        );
    }
}

/// The profiled document round-trips: parsing and re-rendering
/// reproduces the exact byte stream, engine objects included.
#[test]
fn profiled_document_roundtrips_byte_exactly() {
    let doc = SweepDoc::build_profiled(Scale::Tiny, 0, 2, EngineMode::Event);
    let json = doc.to_json();
    let parsed = SweepDoc::from_json(&json).expect("parse profiled document");
    assert_eq!(parsed.to_json(), json);
}
