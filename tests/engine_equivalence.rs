//! Cross-engine equivalence: the event-driven engine and the
//! cycle-stepped engine are two executions of the *same* machine, and
//! must be observationally indistinguishable. This suite samples random
//! configuration cells — workload × scheduler × launch model × optional
//! fault seed × fast-forward flag × optional finite launch-path limits
//! — runs each under both [`EngineMode`]s, and requires the outcomes to
//! match exactly: completed runs produce equal [`SimStats`], failed
//! runs produce the same error. A second test renders the full
//! tiny-scale sweep document (`repro.json`) once per engine and
//! compares the JSON byte-for-byte, mirroring the CI
//! `engine-equivalence` job at ci scale.

use std::sync::Arc;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::{EngineMode, GpuConfig, LaunchLimits, OverflowPolicy};
use gpu_sim::engine::Simulator;
use gpu_sim::fault::FaultPlan;
use gpu_sim::stats::SimStats;
use laperm_bench::sweep::SweepDoc;
use sim_metrics::harness::SchedulerKind;
use workloads::{suite, Scale, SharedSource, Workload};

/// Minimal xorshift64 PRNG: the cell sample is deterministic, so a
/// failure names a reproducible cell.
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One sampled configuration cell. `Debug` output is the reproduction
/// recipe printed on mismatch.
#[derive(Debug, Clone)]
struct Cell {
    workload_idx: usize,
    model: LaunchModelKind,
    sched: SchedulerKind,
    fault_seed: Option<u64>,
    fast_forward: bool,
    limits: Option<LaunchLimits>,
}

fn sample_cell(rng: &mut XorShift64, num_workloads: usize) -> Cell {
    let models = LaunchModelKind::all();
    let scheds = SchedulerKind::all();
    let limits = match rng.next() % 3 {
        0 => None,
        1 => Some(LaunchLimits {
            kmu_capacity: Some(2),
            pending_launch_capacity: Some(2),
            smx_queue_capacity: Some(64),
            policy: OverflowPolicy::StallParent,
        }),
        _ => Some(LaunchLimits {
            kmu_capacity: Some(2),
            pending_launch_capacity: Some(2),
            smx_queue_capacity: Some(64),
            policy: OverflowPolicy::SpillVirtual { extra_latency: 200 },
        }),
    };
    Cell {
        workload_idx: rng.pick(num_workloads),
        model: models[rng.pick(models.len())],
        sched: scheds[rng.pick(scheds.len())],
        fault_seed: rng.next().is_multiple_of(2).then(|| rng.next() % 64),
        // Mostly on: skipping is where the engines' control flow
        // diverges most, so it deserves the larger share of cells.
        fast_forward: !rng.next().is_multiple_of(4),
        limits,
    }
}

/// Runs one cell under one engine mode to its structured end. Errors
/// are compared by display string: the variants carry the diagnosis
/// (wedge cycle, suspects), so equal strings mean an equal diagnosis.
fn run_cell(w: &Arc<dyn Workload>, cell: &Cell, engine: EngineMode) -> Result<SimStats, String> {
    let mut cfg = GpuConfig::small_test();
    cfg.num_smxs = 4;
    cfg.engine_mode = engine;
    cfg.fast_forward = cell.fast_forward;
    // A wedged cell must fail structurally (and identically) in both
    // engines rather than spin to max_cycles.
    cfg.watchdog_window = Some(100_000);
    if let Some(limits) = cell.limits {
        cfg.launch_limits = limits;
    }
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(cell.sched.build(&cfg))
        .with_launch_model(cell.model.build(LaunchLatency::default_for(cell.model)));
    if let Some(seed) = cell.fault_seed {
        sim = sim.with_fault_plan(FaultPlan::from_seed(seed, cfg.num_smxs));
    }
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).map_err(|e| e.to_string())?;
    }
    sim.run_to_completion().map_err(|e| e.to_string())
}

/// Property: any sampled cell ends the same way — equal statistics or
/// an equal structured error — under both engines.
#[test]
fn random_cells_are_engine_equivalent() {
    let all = suite(Scale::Tiny);
    let mut rng = XorShift64(0x5EED_CE11_u64 | 1);
    let mut faulted = 0;
    for trial in 0..16 {
        let cell = sample_cell(&mut rng, all.len());
        let w = &all[cell.workload_idx];
        faulted += usize::from(cell.fault_seed.is_some());
        let event = run_cell(w, &cell, EngineMode::Event);
        let stepped = run_cell(w, &cell, EngineMode::CycleStepped);
        match (event, stepped) {
            (Ok(a), Ok(b)) => assert_eq!(
                a,
                b,
                "trial {trial}, {} {cell:?}: engines produced different statistics",
                w.full_name()
            ),
            (Err(a), Err(b)) => assert_eq!(
                a,
                b,
                "trial {trial}, {} {cell:?}: engines produced different errors",
                w.full_name()
            ),
            (a, b) => panic!(
                "trial {trial}, {} {cell:?}: outcome class diverged: \
                 event={a:?} vs cycle-stepped={b:?}",
                w.full_name()
            ),
        }
    }
    // The sample is only meaningful if it actually covered faulted
    // cells; with 16 coin flips this failing is a (fixed) seed problem,
    // not flakiness.
    assert!(faulted > 0, "the sample never drew a faulted cell");
}

/// The rendered sweep document — the actual `repro.json` byte stream —
/// is identical under both engines at tiny scale. The document carries
/// no wall-clock or engine-mode fields, so byte equality means every
/// record of every matrix cell (cycles, rates, stalls, locality
/// provenance) is the same. CI repeats this comparison at ci scale.
#[test]
fn tiny_sweep_documents_are_byte_identical() {
    let event = SweepDoc::build_with_engine(Scale::Tiny, 0, 2, EngineMode::Event).to_json();
    let stepped =
        SweepDoc::build_with_engine(Scale::Tiny, 0, 2, EngineMode::CycleStepped).to_json();
    if event != stepped {
        for (i, (a, b)) in event.lines().zip(stepped.lines()).enumerate() {
            assert_eq!(a, b, "repro.json line {} differs between engines", i + 1);
        }
        panic!("repro.json documents differ in length between engines");
    }
}
