//! Cross-crate invariants of the scheduling machinery, checked on raw
//! engine statistics rather than harness summaries.

use dynpar::{FamilyTree, LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::stats::SimStats;
use gpu_sim::types::Priority;
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
use workloads::{suite, Scale, SharedSource, Workload};

fn run(
    w: &std::sync::Arc<dyn Workload>,
    policy: Option<LaPermPolicy>,
    model: LaunchModelKind,
) -> (SimStats, Vec<gpu_sim::kernel::Batch>) {
    let mut cfg = GpuConfig::kepler_k20c();
    cfg.num_smxs = 4;
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())));
    if let Some(p) = policy {
        sim = sim.with_scheduler(Box::new(LaPermScheduler::new(p, LaPermConfig::for_gpu(&cfg))));
    }
    sim = sim.with_launch_model(model.build(LaunchLatency::default_for(model)));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).unwrap();
    }
    let stats = sim.run_to_completion().unwrap();
    (stats, sim.batches().to_vec())
}

fn amr() -> std::sync::Arc<dyn Workload> {
    suite(Scale::Tiny).remove(0)
}

fn bfs_citation() -> std::sync::Arc<dyn Workload> {
    suite(Scale::Tiny).remove(2)
}

#[test]
fn every_launched_batch_retires_completely() {
    let (stats, batches) =
        run(&bfs_citation(), Some(LaPermPolicy::AdaptiveBind), LaunchModelKind::Dtbl);
    let expected: u32 = batches.iter().map(|b| b.num_tbs).sum();
    assert_eq!(stats.tb_records.len() as u32, expected);
    for b in &batches {
        assert_eq!(b.finished_tbs, b.num_tbs, "batch {} incomplete", b.id);
        assert_eq!(b.next_tb, b.num_tbs, "batch {} not fully dispatched", b.id);
    }
}

#[test]
fn no_tb_starts_before_its_batch_was_launched() {
    let (stats, _) = run(&bfs_citation(), Some(LaPermPolicy::TbPri), LaunchModelKind::Dtbl);
    for r in &stats.tb_records {
        assert!(
            r.dispatched_at >= r.created_at,
            "TB {} dispatched at {} before launch at {}",
            r.tb,
            r.dispatched_at,
            r.created_at
        );
        assert!(r.finished_at >= r.dispatched_at, "TB {}", r.tb);
    }
}

#[test]
fn child_priority_is_parent_plus_one() {
    let (_, batches) = run(&amr(), Some(LaPermPolicy::AdaptiveBind), LaunchModelKind::Dtbl);
    for b in &batches {
        match &b.origin {
            None => assert_eq!(b.priority, Priority::HOST),
            Some(origin) => {
                let parent = &batches[origin.parent_batch.index()];
                assert_eq!(b.priority, parent.priority.child());
            }
        }
    }
}

#[test]
fn amr_nests_at_least_two_levels() {
    let (_, batches) = run(&amr(), Some(LaPermPolicy::AdaptiveBind), LaunchModelKind::Dtbl);
    let tree = FamilyTree::from_batches(&batches);
    let max_depth = batches.iter().map(|b| tree.depth(b.id, &batches)).max().unwrap_or(0);
    assert!(max_depth >= 2, "AMR should refine recursively, got depth {max_depth}");
}

#[test]
fn family_tree_matches_engine_records() {
    let (stats, batches) = run(&bfs_citation(), Some(LaPermPolicy::SmxBind), LaunchModelKind::Dtbl);
    let tree = FamilyTree::from_batches(&batches);
    for r in stats.tb_records.iter().filter(|r| r.is_dynamic) {
        let parent = tree.direct_parent(r.tb.batch).expect("dynamic TB has parent");
        let (pb, ptb, _) = r.parent.expect("record carries parent");
        assert_eq!((parent.batch, parent.index), (pb, ptb));
    }
}

#[test]
fn cdp_respects_concurrent_kernel_limit_via_waits() {
    // Under CDP, children behind the 32-entry KDU wait much longer than
    // the raw launch latency; under DTBL they do not.
    let (cdp, _) = run(&bfs_citation(), None, LaunchModelKind::Cdp);
    let latency = LaunchLatency::default_for(LaunchModelKind::Cdp);
    assert!(cdp.mean_child_wait() > f64::from(latency.base));
}

#[test]
fn dtbl_children_share_parents_kdu_entry() {
    let (_, batches) = run(&bfs_citation(), None, LaunchModelKind::Dtbl);
    use gpu_sim::kernel::BatchKind;
    let groups = batches.iter().filter(|b| b.batch_kind == BatchKind::TbGroup).count();
    assert!(groups > 0, "DTBL should coalesce most children as TB groups");
    // Under DTBL at most a handful fall back to the device-kernel path
    // (parent entry already retired).
    let kernels = batches.iter().filter(|b| b.batch_kind == BatchKind::DeviceKernel).count();
    assert!(kernels <= groups, "fallbacks ({kernels}) dominate groups ({groups})");
}
