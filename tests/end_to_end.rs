//! End-to-end integration: every suite workload runs to completion under
//! every scheduler and both launch models, and the engine's global
//! invariants hold.

use dynpar::LaunchModelKind;
use gpu_sim::config::GpuConfig;
use sim_metrics::harness::{run_once, SchedulerKind};
use workloads::{suite, Scale};

fn small_gpu() -> GpuConfig {
    // A reduced machine keeps debug-mode runtimes low while preserving
    // multi-SMX scheduling behavior.
    let mut cfg = GpuConfig::kepler_k20c();
    cfg.num_smxs = 4;
    cfg
}

#[test]
fn every_workload_completes_under_every_scheduler_dtbl() {
    let cfg = small_gpu();
    for w in suite(Scale::Tiny) {
        for sched in SchedulerKind::all() {
            let rec = run_once(&w, LaunchModelKind::Dtbl, sched, &cfg)
                .unwrap_or_else(|e| panic!("{} under {sched}: {e}", w.full_name()));
            assert!(rec.cycles > 0, "{} {sched}", w.full_name());
            assert!(rec.dynamic_tbs > 0, "{} {sched} launched nothing", w.full_name());
        }
    }
}

#[test]
fn every_workload_completes_under_cdp() {
    let cfg = small_gpu();
    for w in suite(Scale::Tiny) {
        let rec = run_once(&w, LaunchModelKind::Cdp, SchedulerKind::AdaptiveBind, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", w.full_name()));
        assert!(rec.total_tbs > rec.dynamic_tbs);
    }
}

#[test]
fn cache_rates_are_sane_everywhere() {
    let cfg = small_gpu();
    for w in suite(Scale::Tiny) {
        let rec =
            run_once(&w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &cfg).expect("run");
        for (name, v) in [
            ("l1", rec.l1_hit_rate),
            ("l2", rec.l2_hit_rate),
            ("child-l1", rec.child_l1_hit_rate),
            ("affinity", rec.parent_smx_affinity),
            ("utilization", rec.smx_utilization),
        ] {
            assert!((0.0..=1.0).contains(&v), "{} {name} = {v} out of range", w.full_name());
        }
        assert!(rec.load_imbalance >= 1.0, "{}", w.full_name());
    }
}

#[test]
fn smx_bind_keeps_every_child_on_its_parents_smx() {
    let cfg = small_gpu();
    for w in suite(Scale::Tiny) {
        let rec = run_once(&w, LaunchModelKind::Dtbl, SchedulerKind::SmxBind, &cfg).expect("run");
        assert_eq!(rec.parent_smx_affinity, 1.0, "{} violated SMX binding", w.full_name());
        assert_eq!(rec.steals, 0, "{}", w.full_name());
    }
}

#[test]
fn instruction_mix_accounts_for_all_warp_instructions() {
    use dynpar::{LaunchLatency, LaunchModelKind};
    use gpu_sim::engine::Simulator;
    use workloads::SharedSource;

    let cfg = small_gpu();
    let all = suite(Scale::Tiny);
    let w = &all[2]; // bfs-citation
    let mut sim = Simulator::new(cfg, Box::new(SharedSource(w.clone())))
        .with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::zero()));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).unwrap();
    }
    let stats = sim.run_to_completion().unwrap();
    assert_eq!(stats.instruction_mix.total(), stats.warp_instructions);
    assert!(stats.instruction_mix.loads > 0);
    assert!(stats.instruction_mix.stores > 0);
    assert!(stats.instruction_mix.launches > 0);
    assert!(stats.instruction_mix.memory_fraction() > 0.3);
}

#[test]
fn identical_runs_are_bit_identical() {
    let cfg = small_gpu();
    let all = suite(Scale::Tiny);
    let w = &all[2]; // bfs-citation
    let a = run_once(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg).unwrap();
    let b = run_once(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn launch_models_agree_on_work_but_not_on_timing() {
    let cfg = small_gpu();
    let all = suite(Scale::Tiny);
    let w = &all[2]; // bfs-citation
    let cdp = run_once(w, LaunchModelKind::Cdp, SchedulerKind::RoundRobin, &cfg).unwrap();
    let dtbl = run_once(w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &cfg).unwrap();
    // Same application → same TB population…
    assert_eq!(cdp.total_tbs, dtbl.total_tbs);
    assert_eq!(cdp.dynamic_tbs, dtbl.dynamic_tbs);
    // …but the slow CDP launch path delays children.
    assert!(cdp.mean_child_wait > dtbl.mean_child_wait);
}
