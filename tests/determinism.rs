//! End-to-end determinism: the simulator is a pure function of its
//! inputs, and the idle-cycle fast-forward optimization changes *no*
//! observable statistic — it only skips cycles that would have been
//! no-ops (see the "Performance" section of docs/ARCHITECTURE.md).

use std::sync::Arc;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::{EngineMode, GpuConfig, LaunchLimits, OverflowPolicy};
use gpu_sim::engine::Simulator;
use gpu_sim::fault::{Fault, FaultPlan};
use gpu_sim::stats::SimStats;
use gpu_sim::trace::{TraceEvent, TraceRecord, VecSink};
use gpu_sim::types::SmxId;
use sim_metrics::harness::SchedulerKind;
use workloads::{suite, Scale, SharedSource, Workload};

/// Runs one workload to completion and returns its full statistics plus
/// the number of cycles the engine fast-forwarded over.
fn run(
    w: &Arc<dyn Workload>,
    model: LaunchModelKind,
    sched: SchedulerKind,
    fast_forward: bool,
) -> (SimStats, u64) {
    let mut cfg = GpuConfig::small_test();
    cfg.num_smxs = 4;
    cfg.fast_forward = fast_forward;
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(sched.build(&cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
    }
    let stats = sim.run_to_completion().expect("run to completion");
    (stats, sim.fast_forwarded_cycles())
}

/// [`run`] with a trace sink attached, returning the event stream too.
fn run_traced(
    w: &Arc<dyn Workload>,
    model: LaunchModelKind,
    sched: SchedulerKind,
    fast_forward: bool,
) -> (SimStats, Vec<TraceRecord>) {
    let mut cfg = GpuConfig::small_test();
    cfg.num_smxs = 4;
    cfg.fast_forward = fast_forward;
    let sink = VecSink::new();
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(sched.build(&cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)))
        .with_trace(Box::new(sink.clone()));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
    }
    let stats = sim.run_to_completion().expect("run to completion");
    (stats, sink.records())
}

#[test]
fn repeated_runs_are_bit_identical() {
    let all = suite(Scale::Tiny);
    for w in all.iter().take(3) {
        for sched in SchedulerKind::all() {
            let (a, _) = run(w, LaunchModelKind::Dtbl, sched, true);
            let (b, _) = run(w, LaunchModelKind::Dtbl, sched, true);
            assert_eq!(a, b, "{} under {sched} diverged between runs", w.full_name());
        }
    }
}

#[test]
fn fast_forward_changes_no_statistic() {
    let all = suite(Scale::Tiny);
    let mut total_skipped = 0;
    for w in all.iter().take(3) {
        for model in LaunchModelKind::all() {
            for sched in SchedulerKind::all() {
                let (on, skipped) = run(w, model, sched, true);
                let (off, none_skipped) = run(w, model, sched, false);
                assert_eq!(
                    on,
                    off,
                    "{} under {model}/{sched}: fast-forward changed the statistics",
                    w.full_name()
                );
                assert_eq!(none_skipped, 0, "fast-forward ran while disabled");
                total_skipped += skipped;
            }
        }
    }
    // The invariant is only meaningful if the optimization actually
    // engaged somewhere in the sweep (CDP launch latencies leave the
    // machine idle while a child kernel matures).
    assert!(total_skipped > 0, "fast-forward never skipped a cycle");
}

/// [`run`] with finite launch-path limits under a chosen overflow
/// policy.
fn run_limited(
    w: &Arc<dyn Workload>,
    model: LaunchModelKind,
    sched: SchedulerKind,
    policy: OverflowPolicy,
    fast_forward: bool,
) -> (SimStats, u64) {
    let mut cfg = GpuConfig::small_test();
    cfg.num_smxs = 4;
    cfg.fast_forward = fast_forward;
    cfg.launch_limits = LaunchLimits {
        kmu_capacity: Some(2),
        pending_launch_capacity: Some(2),
        smx_queue_capacity: Some(64),
        policy,
    };
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(sched.build(&cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)));
    for hk in w.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
    }
    let stats = sim.run_to_completion().expect("run to completion");
    (stats, sim.fast_forwarded_cycles())
}

/// Backpressure determinism: with finite launch-path capacities under
/// either overflow policy, fast-forward still changes no statistic —
/// stalled parents, spilled launches, and backlogged kernels all resolve
/// on the same cycles whether idle gaps were stepped or jumped.
#[test]
fn finite_limits_are_fast_forward_invariant() {
    let all = suite(Scale::Tiny);
    let policies =
        [OverflowPolicy::StallParent, OverflowPolicy::SpillVirtual { extra_latency: 200 }];
    for w in all.iter().take(2) {
        for model in LaunchModelKind::all() {
            for policy in policies {
                let (on, _) = run_limited(w, model, SchedulerKind::AdaptiveBind, policy, true);
                let (off, skipped) =
                    run_limited(w, model, SchedulerKind::AdaptiveBind, policy, false);
                assert_eq!(
                    on,
                    off,
                    "{} under {model}/{}: fast-forward changed statistics with finite limits",
                    w.full_name(),
                    policy.name()
                );
                assert_eq!(skipped, 0, "fast-forward ran while disabled");
            }
        }
    }
}

/// Finite-limit runs are repeatable: the same configuration produces
/// bit-identical statistics on every execution.
#[test]
fn finite_limit_runs_are_bit_identical() {
    let all = suite(Scale::Tiny);
    let w = all.first().expect("non-empty suite");
    for policy in [OverflowPolicy::StallParent, OverflowPolicy::SpillVirtual { extra_latency: 200 }]
    {
        let (a, _) = run_limited(w, LaunchModelKind::Dtbl, SchedulerKind::SmxBind, policy, true);
        let (b, _) = run_limited(w, LaunchModelKind::Dtbl, SchedulerKind::SmxBind, policy, true);
        assert_eq!(a, b, "{} diverged between runs", policy.name());
    }
}

/// Attaching a fault plan must not silently disable fast-forward: a
/// faulted run whose launch latencies leave long idle stretches still
/// skips them (the fault windows become wake-up edges, not an
/// off-switch), and the skip changes no statistic — in either engine
/// mode. Guards the regression where `with_fault_plan` cleared
/// `cfg.fast_forward`.
#[test]
fn faulted_runs_keep_fast_forward_active() {
    let all = suite(Scale::Tiny);
    let w = all.first().expect("non-empty suite");
    for engine in [EngineMode::Event, EngineMode::CycleStepped] {
        let run = |fast_forward: bool| {
            let mut cfg = GpuConfig::small_test();
            cfg.num_smxs = 4;
            cfg.engine_mode = engine;
            cfg.fast_forward = fast_forward;
            let model = LaunchModelKind::Cdp;
            let plan = FaultPlan::new(vec![
                Fault::QueueFull { from: 100, until: 3_000 },
                Fault::KillSmx { smx: SmxId(1), from: 200, until: 9_000 },
            ]);
            let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
                .with_scheduler(SchedulerKind::AdaptiveBind.build(&cfg))
                .with_launch_model(model.build(LaunchLatency::default_for(model)))
                .with_fault_plan(plan);
            for hk in w.host_kernels() {
                sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("launch");
            }
            let stats = sim.run_to_completion().expect("faulted run completes");
            (stats, sim.fast_forwarded_cycles())
        };
        let (on, skipped) = run(true);
        let (off, none_skipped) = run(false);
        assert_eq!(on, off, "{engine}: fast-forward changed the statistics of a faulted run");
        assert!(skipped > 0, "{engine}: fault plan silently disabled fast-forward");
        assert_eq!(none_skipped, 0, "{engine}: fast-forward ran while disabled");
    }
}

#[test]
fn fast_forward_preserves_trace_stream() {
    // Beyond the aggregate statistics: the *event stream* is identical
    // with fast-forward on and off, modulo the FastForward markers the
    // optimization itself emits. Every other event lands on the same
    // cycle with the same payload.
    let all = suite(Scale::Tiny);
    let mut jumps = 0;
    for w in all.iter().take(3) {
        for model in LaunchModelKind::all() {
            for sched in [SchedulerKind::RoundRobin, SchedulerKind::AdaptiveBind] {
                let (_, on) = run_traced(w, model, sched, true);
                let (_, off) = run_traced(w, model, sched, false);
                jumps +=
                    on.iter().filter(|r| matches!(r.event, TraceEvent::FastForward { .. })).count();
                let on_filtered: Vec<&TraceRecord> = on
                    .iter()
                    .filter(|r| !matches!(r.event, TraceEvent::FastForward { .. }))
                    .collect();
                assert!(
                    !off.iter().any(|r| matches!(r.event, TraceEvent::FastForward { .. })),
                    "FastForward emitted while disabled"
                );
                assert_eq!(on_filtered.len(), off.len());
                for (a, b) in on_filtered.iter().zip(&off) {
                    assert_eq!(
                        **a,
                        *b,
                        "{} under {model}/{sched}: trace streams diverge",
                        w.full_name()
                    );
                }
            }
        }
    }
    assert!(jumps > 0, "no FastForward event was ever traced");
}
