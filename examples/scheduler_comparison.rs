//! Compares the four TB schedulers (baseline round-robin and the three
//! LaPerm policies) on one workload under both dynamic-parallelism
//! models, printing cache hit rates and IPC — a miniature of the paper's
//! Figures 7-9.
//!
//! Usage: `cargo run --release --example scheduler_comparison [workload]`
//! where `workload` is a suite name like `bfs-citation` (default).

use dynpar::LaunchModelKind;
use gpu_sim::config::GpuConfig;
use sim_metrics::harness::{run_once, SchedulerKind};
use sim_metrics::report::{pct, Table};
use workloads::{suite, Scale};

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "bfs-citation".to_string());
    let all = suite(Scale::Small);
    let workload = all.iter().find(|w| w.full_name() == target).unwrap_or_else(|| {
        eprintln!("unknown workload {target}; available:");
        for w in &all {
            eprintln!("  {}", w.full_name());
        }
        std::process::exit(1);
    });
    let cfg = GpuConfig::kepler_k20c();

    println!("workload: {}  (GPU: {} SMXs)\n", workload.full_name(), cfg.num_smxs);
    for model in LaunchModelKind::all() {
        let mut table = Table::new(vec![
            "scheduler",
            "L1 hit",
            "L2 hit",
            "IPC",
            "norm IPC",
            "child wait",
            "affinity",
        ]);
        let mut base_ipc = None;
        for sched in SchedulerKind::all() {
            let rec = run_once(workload, model, sched, &cfg).expect("simulation failed");
            let base = *base_ipc.get_or_insert(rec.ipc);
            table.row(vec![
                rec.scheduler.clone(),
                pct(rec.l1_hit_rate),
                pct(rec.l2_hit_rate),
                format!("{:.1}", rec.ipc),
                format!("{:.3}", rec.ipc / base),
                format!("{:.0}", rec.mean_child_wait),
                pct(rec.parent_smx_affinity),
            ]);
        }
        println!("launch model: {model}");
        println!("{}", table.render());
    }
}
