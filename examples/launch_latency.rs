//! Launch-latency sensitivity (paper Section IV-D).
//!
//! LaPerm assumes child TBs can start soon after their direct parent; a
//! slow launch path erodes the exploitable temporal locality. This
//! example sweeps a uniform launch latency and reports the Adaptive-Bind
//! gain over the baseline at each point.
//!
//! Usage: `cargo run --release --example launch_latency [workload]`

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use sim_metrics::harness::{run_with_latency, SchedulerKind};
use sim_metrics::report::Table;
use workloads::{suite, Scale};

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "sssp-cage15".to_string());
    let all = suite(Scale::Small);
    let workload = all.iter().find(|w| w.full_name() == target).unwrap_or_else(|| {
        eprintln!("unknown workload {target}");
        std::process::exit(1);
    });
    let cfg = GpuConfig::kepler_k20c();

    println!("workload: {}, DTBL delivery, small scale\n", workload.full_name());
    let mut t = Table::new(vec!["latency (cycles)", "rr IPC", "adaptive IPC", "gain"]);
    for base in [0u32, 250, 1000, 4000, 16000, 64000] {
        let latency = LaunchLatency::uniform(base);
        let rr = run_with_latency(
            workload,
            LaunchModelKind::Dtbl,
            latency,
            SchedulerKind::RoundRobin,
            &cfg,
        )
        .expect("rr run");
        let ad = run_with_latency(
            workload,
            LaunchModelKind::Dtbl,
            latency,
            SchedulerKind::AdaptiveBind,
            &cfg,
        )
        .expect("adaptive run");
        t.row(vec![
            base.to_string(),
            format!("{:.1}", rr.ipc),
            format!("{:.1}", ad.ipc),
            format!("{:.2}x", ad.ipc / rr.ipc),
        ]);
    }
    println!("{}", t.render());
    println!("The locality advantage decays as launches get slower (Section IV-D).");
}
