//! Writing your own TB scheduling policy against the public API.
//!
//! This example implements "Newest-First" — a deliberately simple policy
//! that always dispatches from the most recently arrived batch (children
//! therefore preempt dispatch order like TB-Pri, but parents of later
//! kernels also preempt earlier ones) — and races it against the
//! baseline and LaPerm on one benchmark.
//!
//! Usage: `cargo run --release --example custom_policy`

use dynpar::LaunchModelKind;
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::kernel::Batch;
use gpu_sim::tb_sched::{DispatchDecision, DispatchView, RoundRobinScheduler, TbScheduler};
use gpu_sim::types::{BatchId, Cycle};
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
use sim_metrics::report::Table;
use workloads::{suite, Scale, SharedSource};

/// Dispatch from the newest batch that still has work; place round-robin.
#[derive(Debug, Default)]
struct NewestFirst {
    stack: Vec<BatchId>,
    cursor: usize,
}

impl TbScheduler for NewestFirst {
    fn name(&self) -> &'static str {
        "newest-first"
    }

    fn on_batch_schedulable(&mut self, batch: &Batch, _cycle: Cycle) {
        self.stack.push(batch.id);
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision> {
        // Drop exhausted batches from the top (LIFO consumption).
        while let Some(&top) = self.stack.last() {
            if view.batch(top).has_undispatched_tbs() {
                break;
            }
            self.stack.pop();
        }
        let batch = *self.stack.last()?;
        let req = view.batch(batch).req;
        let smx = view.first_fit_from(self.cursor, &req)?;
        self.cursor = (smx.index() + 1) % view.num_smxs();
        Some(DispatchDecision { batch, smx })
    }
}

fn main() {
    let all = suite(Scale::Small);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs-citation in suite");
    let cfg = GpuConfig::kepler_k20c();

    let schedulers: Vec<(&str, Box<dyn TbScheduler>)> = vec![
        ("rr", Box::new(RoundRobinScheduler::new())),
        ("newest-first", Box::new(NewestFirst::default())),
        (
            "adaptive-bind",
            Box::new(LaPermScheduler::new(LaPermPolicy::AdaptiveBind, LaPermConfig::for_gpu(&cfg))),
        ),
    ];

    let mut table = Table::new(vec!["scheduler", "cycles", "IPC", "L1 hit", "child wait"]);
    for (name, sched) in schedulers {
        let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
            .with_scheduler(sched)
            .with_launch_model(LaunchModelKind::Dtbl.build_default());
        for hk in w.host_kernels() {
            sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("kernel fits");
        }
        let stats = sim.run_to_completion().expect("run completes");
        table.row(vec![
            name.to_string(),
            stats.cycles.to_string(),
            format!("{:.1}", stats.ipc()),
            format!("{:.1}%", stats.l1.hit_rate() * 100.0),
            format!("{:.0}", stats.mean_child_wait()),
        ]);
    }
    println!(
        "A custom policy vs the baseline and LaPerm (bfs-citation, DTBL)\n\n{}",
        table.render()
    );
    println!(
        "Newest-first gets part of TB-Pri's effect for free (children are\n\
         the newest batches) without any locality machinery; LaPerm's\n\
         binding still wins. Implementing TbScheduler is all it took."
    );
}
