//! Adaptive mesh refinement with nested device launches.
//!
//! AMR is the suite's stress test for *nesting*: refined cells can refine
//! again, exercising LaPerm's priority-level clamp `L`. It is also the
//! workload with the least child-sibling locality (each child owns its
//! private fine mesh), so most of LaPerm's benefit comes from
//! parent-child reuse and from starting children early.
//!
//! Usage: `cargo run --release --example adaptive_mesh`

use std::sync::Arc;

use dynpar::LaunchModelKind;
use gpu_sim::config::GpuConfig;
use sim_metrics::footprint::FootprintAnalysis;
use sim_metrics::harness::{run_once, SchedulerKind};
use sim_metrics::report::{pct, Table};
use workloads::apps::amr::Amr;
use workloads::{Scale, Workload};

fn main() {
    let amr = Amr::new(Scale::Small);
    println!(
        "AMR: {} coarse cells, {} flagged for refinement",
        amr.num_cells(),
        amr.refined_cells()
    );
    let fp = FootprintAnalysis::analyze(&amr);
    println!(
        "footprints: parent-child {}, child-sibling {} (siblings own private fine meshes)\n",
        pct(fp.parent_child),
        pct(fp.child_sibling)
    );

    let w: Arc<dyn Workload> = Arc::new(amr);
    let cfg = GpuConfig::kepler_k20c();
    let mut t = Table::new(vec!["scheduler", "cycles", "IPC", "L1 hit", "child wait"]);
    for sched in SchedulerKind::all() {
        let rec = run_once(&w, LaunchModelKind::Dtbl, sched, &cfg).expect("simulation");
        t.row(vec![
            rec.scheduler.clone(),
            rec.cycles.to_string(),
            format!("{:.1}", rec.ipc),
            pct(rec.l1_hit_rate),
            format!("{:.0}", rec.mean_child_wait),
        ]);
    }
    println!("DTBL, small scale\n{}", t.render());
}
