//! Dynamic-parallelism BFS across the three graph inputs.
//!
//! Shows how input clustering drives child-sibling locality (Figure 2 of
//! the paper) and how much of it each scheduler converts into cache hits.
//!
//! Usage: `cargo run --release --example graph_bfs`

use std::sync::Arc;

use dynpar::LaunchModelKind;
use gpu_sim::config::GpuConfig;
use sim_metrics::footprint::FootprintAnalysis;
use sim_metrics::harness::{run_once, SchedulerKind};
use sim_metrics::report::{pct, Table};
use workloads::apps::bfs::Bfs;
use workloads::graph::GraphKind;
use workloads::{Scale, Workload};

fn main() {
    let cfg = GpuConfig::kepler_k20c();
    let mut t = Table::new(vec![
        "input",
        "parent-child",
        "child-sibling",
        "rr L1",
        "adaptive L1",
        "IPC gain",
    ]);
    for kind in GraphKind::all() {
        let w: Arc<dyn Workload> = Arc::new(Bfs::new(kind, Scale::Small));
        let fp = FootprintAnalysis::analyze(w.as_ref());
        let rr =
            run_once(&w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &cfg).expect("rr run");
        let ad = run_once(&w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg)
            .expect("adaptive run");
        t.row(vec![
            kind.name().to_string(),
            pct(fp.parent_child),
            pct(fp.child_sibling),
            pct(rr.l1_hit_rate),
            pct(ad.l1_hit_rate),
            format!("{:.2}x", ad.ipc / rr.ipc),
        ]);
    }
    println!("BFS with device-side launches, DTBL, small scale\n{}", t.render());
    println!(
        "Clustered inputs (citation, cage15) give sibling TBs overlapping\n\
         neighbor data; LaPerm's SMX binding turns that into L1 hits."
    );
}
