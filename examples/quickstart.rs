//! Quickstart: define a tiny dynamic-parallelism kernel by hand, run it
//! under the baseline and under LaPerm, and compare.
//!
//! Usage: `cargo run --release --example quickstart`

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{
    AddrPattern, KernelKindId, LaunchSpec, MemOp, ProgramSource, TbOp, TbProgram,
};
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};

const PARENT: KernelKindId = KernelKindId(0);
const CHILD: KernelKindId = KernelKindId(1);

/// Each parent TB streams a private 4 KB block, then launches two child
/// TBs that re-read the same block (parent-child locality for LaPerm to
/// exploit).
struct Quickstart;

impl ProgramSource for Quickstart {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        let block = match kind {
            PARENT => u64::from(tb_index) * 4096,
            _ => param * 4096,
        };
        let load = |offset: u64| {
            TbOp::Mem(MemOp::load(AddrPattern::Strided { base: block + offset, stride: 4 }))
        };
        match kind {
            PARENT => TbProgram::new(vec![
                load(0),
                TbOp::Compute(8),
                TbOp::Mem(MemOp::store(AddrPattern::Strided { base: block, stride: 4 })),
                TbOp::Launch(LaunchSpec {
                    kind: CHILD,
                    param: u64::from(tb_index),
                    num_tbs: 2,
                    req: ResourceReq::new(64, 16, 0),
                }),
                load(256),
                TbOp::Compute(16),
            ]),
            _ => TbProgram::new(vec![load(0), TbOp::Compute(8), load(128), TbOp::Compute(8)]),
        }
    }
}

fn run(use_laperm: bool) -> gpu_sim::stats::SimStats {
    let cfg = GpuConfig::kepler_k20c();
    let mut sim = Simulator::new(cfg.clone(), Box::new(Quickstart));
    if use_laperm {
        sim = sim.with_scheduler(Box::new(LaPermScheduler::new(
            LaPermPolicy::AdaptiveBind,
            LaPermConfig::for_gpu(&cfg),
        )));
    }
    sim = sim.with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::uniform(300)));
    sim.launch_host_kernel(PARENT, 0, 1024, ResourceReq::new(128, 16, 0)).expect("kernel fits");
    sim.run_to_completion().expect("simulation completes")
}

fn main() {
    for (name, use_laperm) in [("round-robin baseline", false), ("LaPerm adaptive-bind", true)] {
        let stats = run(use_laperm);
        println!("{name}:");
        println!("  cycles             {}", stats.cycles);
        println!("  IPC                {:.1}", stats.ipc());
        println!("  L1 hit rate        {:.1}%", stats.l1.hit_rate() * 100.0);
        println!("  L2 hit rate        {:.1}%", stats.l2.hit_rate() * 100.0);
        println!("  child TBs          {}", stats.dynamic_tbs());
        println!("  parent-SMX affinity {:.1}%", stats.parent_smx_affinity() * 100.0);
        println!();
    }
}
