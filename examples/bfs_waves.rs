//! Iterative (wave-by-wave) execution: launch a kernel, synchronize,
//! launch the next — the host-side pattern of level-synchronous BFS and
//! AMR timesteps. The simulator is reused across waves, so caches stay
//! warm between phases, and statistics accumulate.
//!
//! Usage: `cargo run --release --example bfs_waves`

use dynpar::LaunchModelKind;
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
use sim_metrics::report::Table;
use workloads::{suite, Scale, SharedSource};

const WAVES: usize = 3;

fn main() {
    let all = suite(Scale::Small);
    let w = all.iter().find(|w| w.full_name() == "bfs-citation").expect("bfs-citation in suite");
    let cfg = GpuConfig::kepler_k20c();

    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(w.clone())))
        .with_scheduler(Box::new(LaPermScheduler::new(
            LaPermPolicy::AdaptiveBind,
            LaPermConfig::for_gpu(&cfg),
        )))
        .with_launch_model(LaunchModelKind::Dtbl.build_default());

    let mut table = Table::new(vec!["wave", "cycles (cumulative)", "IPC so far", "L1 hit", "TBs"]);
    for wave in 0..WAVES {
        for hk in w.host_kernels() {
            sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).expect("kernel fits");
        }
        let stats = sim.run_to_completion().expect("wave completes");
        table.row(vec![
            (wave + 1).to_string(),
            stats.cycles.to_string(),
            format!("{:.1}", stats.ipc()),
            format!("{:.1}%", stats.l1.hit_rate() * 100.0),
            stats.tb_records.len().to_string(),
        ]);
    }
    println!(
        "BFS frontier waves on one machine (Adaptive-Bind, DTBL)\n\
         Each wave relaunches the sweep; later waves start with warm caches.\n\n{}",
        table.render()
    );
}
