//! Umbrella crate for the LaPerm reproduction.
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can use a single dependency. Library users should
//! depend on the individual crates ([`gpu_sim`], [`dynpar`], [`laperm`],
//! [`workloads`], [`sim_metrics`]) directly.
//!
//! # Example
//!
//! ```
//! use laperm_repro::prelude::*;
//!
//! let config = GpuConfig::small_test();
//! assert!(config.num_smxs >= 1);
//! ```

pub use dynpar;
pub use gpu_sim;
pub use laperm;
pub use sim_metrics;
pub use workloads;

/// Commonly used items across the reproduction.
pub mod prelude {
    pub use dynpar::{LaunchLatency, LaunchModelKind};
    pub use gpu_sim::config::GpuConfig;
    pub use gpu_sim::engine::Simulator;
    pub use gpu_sim::tb_sched::RoundRobinScheduler;
    pub use laperm::{LaPermPolicy, LaPermScheduler};
    pub use sim_metrics::footprint::FootprintAnalysis;
    pub use workloads::{suite, Workload};
}
