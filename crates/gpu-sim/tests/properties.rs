//! Property-based tests of the simulator substrate.

use proptest::prelude::*;

use gpu_sim::cache::{AccessClass, Cache, ProbeResult};
use gpu_sim::coalesce::{coalesce, transaction_count};
use gpu_sim::dram::Dram;
use gpu_sim::program::AddrPattern;

/// A reference LRU model: a vector of (set, tag) in recency order.
struct ReferenceLru {
    num_sets: u64,
    assoc: usize,
    sets: Vec<Vec<u64>>, // per set: tags, most recent last
}

impl ReferenceLru {
    fn new(num_sets: u64, assoc: usize) -> Self {
        ReferenceLru {
            num_sets,
            assoc,
            sets: vec![Vec::new(); num_sets as usize],
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&t| t == tag) {
            entries.remove(pos);
            entries.push(tag);
            true
        } else {
            if entries.len() == self.assoc {
                entries.remove(0);
            }
            entries.push(tag);
            false
        }
    }
}

proptest! {
    /// The cache model agrees with a straightforward reference LRU.
    #[test]
    fn cache_matches_reference_lru(lines in prop::collection::vec(0u64..64, 1..300)) {
        // 4 sets x 2 ways.
        let mut cache = Cache::new(1024, 2, 128);
        let mut reference = ReferenceLru::new(4, 2);
        for &line in &lines {
            let expected = reference.access(line);
            let got = cache.access(line, true, AccessClass::Parent) == ProbeResult::Hit;
            prop_assert_eq!(got, expected, "divergence on line {}", line);
        }
        prop_assert_eq!(cache.stats().accesses(), lines.len() as u64);
    }

    /// Hits + misses always equals accesses, and the hit rate is a valid
    /// probability.
    #[test]
    fn cache_stats_are_consistent(lines in prop::collection::vec(0u64..1000, 0..200)) {
        let mut cache = Cache::new(4096, 4, 128);
        for &line in &lines {
            cache.access(line, true, AccessClass::Child);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lines.len() as u64);
        prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
        prop_assert_eq!(s.child_hits + s.child_misses, lines.len() as u64);
    }

    /// Coalescing produces between 1 and N transactions for N addresses,
    /// deduplicated and order-stable.
    #[test]
    fn coalescer_bounds(addrs in prop::collection::vec(0u64..1_000_000, 1..64)) {
        let lines = coalesce(&addrs, 7);
        prop_assert!(!lines.is_empty());
        prop_assert!(lines.len() <= addrs.len());
        // No duplicates.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), lines.len());
        // Every address maps to some returned line.
        for &a in &addrs {
            prop_assert!(lines.contains(&(a >> 7)));
        }
        prop_assert_eq!(transaction_count(&addrs, 7), lines.len());
    }

    /// Consecutive addresses within one line always coalesce to a single
    /// transaction.
    #[test]
    fn coalescer_merges_within_line(base in 0u64..1_000_000, count in 1usize..32) {
        let line_base = base & !127;
        let addrs: Vec<u64> = (0..count as u64).map(|i| line_base + i * 4).collect();
        prop_assert_eq!(transaction_count(&addrs, 7), 1);
    }

    /// DRAM latency is never below the base latency, and an idle channel
    /// always gives exactly the base latency.
    #[test]
    fn dram_latency_bounds(
        requests in prop::collection::vec((0u64..64, 0u64..10_000), 1..100),
    ) {
        let mut dram = Dram::new(4, 200, 8);
        let mut sorted = requests.clone();
        sorted.sort_by_key(|&(_, t)| t);
        for &(line, now) in &sorted {
            let lat = dram.access(line, now);
            prop_assert!(lat >= 200, "latency {} below DRAM minimum", lat);
        }
        prop_assert_eq!(dram.accesses(), sorted.len() as u64);
        prop_assert!(dram.mean_queueing() >= 0.0);
    }

    /// Strided warp address generation covers exactly the active lanes.
    #[test]
    fn strided_pattern_lane_math(
        base in 0u64..1_000_000,
        stride in 1u32..64,
        threads in 1u32..256,
        warp in 0u32..8,
    ) {
        let p = AddrPattern::Strided { base, stride };
        let addrs = p.warp_addrs(warp, 32, threads);
        let first = warp * 32;
        let expected = if first >= threads { 0 } else { 32.min(threads - first) };
        prop_assert_eq!(addrs.len() as u32, expected);
        for (i, &a) in addrs.iter().enumerate() {
            prop_assert_eq!(a, base + u64::from(first + i as u32) * u64::from(stride));
        }
    }

    /// The union of all warps' addresses equals the TB's addresses.
    #[test]
    fn warp_addrs_partition_tb_addrs(
        base in 0u64..1_000_000,
        stride in 1u32..16,
        threads in 1u32..128,
    ) {
        let p = AddrPattern::Strided { base, stride };
        let mut from_warps = Vec::new();
        for warp in 0..threads.div_ceil(32) {
            from_warps.extend(p.warp_addrs(warp, 32, threads));
        }
        prop_assert_eq!(from_warps, p.tb_addrs(threads));
    }
}
