//! Randomized (seeded, deterministic) tests of the simulator substrate.
//!
//! These were originally proptest properties; they are now driven by a
//! small local SplitMix64 generator so the suite builds with no external
//! dependencies. Each test sweeps many seeds, so the coverage is the
//! same in spirit: random inputs, invariant assertions.

use gpu_sim::cache::{AccessClass, Cache, ProbeResult};
use gpu_sim::coalesce::{coalesce, coalesce_into, transaction_count};
use gpu_sim::dram::Dram;
use gpu_sim::program::AddrPattern;

/// SplitMix64: tiny, statistically fine for test-input generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

/// A reference LRU model: a vector of (set, tag) in recency order.
struct ReferenceLru {
    num_sets: u64,
    assoc: usize,
    sets: Vec<Vec<u64>>, // per set: tags, most recent last
}

impl ReferenceLru {
    fn new(num_sets: u64, assoc: usize) -> Self {
        ReferenceLru { num_sets, assoc, sets: vec![Vec::new(); num_sets as usize] }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&t| t == tag) {
            entries.remove(pos);
            entries.push(tag);
            true
        } else {
            if entries.len() == self.assoc {
                entries.remove(0);
            }
            entries.push(tag);
            false
        }
    }
}

/// The cache model agrees with a straightforward reference LRU.
#[test]
fn cache_matches_reference_lru() {
    for seed in 0..64 {
        let mut rng = Rng(seed);
        let len = rng.range(1, 300) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(64)).collect();
        // 4 sets x 2 ways.
        let mut cache = Cache::new(1024, 2, 128);
        let mut reference = ReferenceLru::new(4, 2);
        for &line in &lines {
            let expected = reference.access(line);
            let got = cache.access(line, true, AccessClass::Parent) == ProbeResult::Hit;
            assert_eq!(got, expected, "divergence on line {line} (seed {seed})");
        }
        assert_eq!(cache.stats().accesses(), lines.len() as u64);
    }
}

/// Hits + misses always equals accesses, and the hit rate is a valid
/// probability.
#[test]
fn cache_stats_are_consistent() {
    for seed in 0..64 {
        let mut rng = Rng(1000 + seed);
        let len = rng.below(200) as usize;
        let mut cache = Cache::new(4096, 4, 128);
        for _ in 0..len {
            cache.access(rng.below(1000), true, AccessClass::Child);
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, len as u64);
        assert!((0.0..=1.0).contains(&s.hit_rate()));
        assert_eq!(s.child_hits + s.child_misses, len as u64);
    }
}

/// Coalescing produces between 1 and N transactions for N addresses,
/// deduplicated and order-stable, and the buffer-reusing variant agrees.
#[test]
fn coalescer_bounds() {
    let mut scratch = Vec::new();
    for seed in 0..128 {
        let mut rng = Rng(2000 + seed);
        let len = rng.range(1, 64) as usize;
        let addrs: Vec<u64> = (0..len).map(|_| rng.below(1_000_000)).collect();
        let lines = coalesce(&addrs, 7);
        assert!(!lines.is_empty());
        assert!(lines.len() <= addrs.len());
        // No duplicates.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), lines.len());
        // Every address maps to some returned line.
        for &a in &addrs {
            assert!(lines.contains(&(a >> 7)));
        }
        assert_eq!(transaction_count(&addrs, 7), lines.len());
        coalesce_into(&addrs, 7, &mut scratch);
        assert_eq!(scratch, lines);
    }
}

/// Consecutive addresses within one line always coalesce to a single
/// transaction.
#[test]
fn coalescer_merges_within_line() {
    for seed in 0..64 {
        let mut rng = Rng(3000 + seed);
        let base = rng.below(1_000_000);
        let count = rng.range(1, 32);
        let line_base = base & !127;
        let addrs: Vec<u64> = (0..count).map(|i| line_base + i * 4).collect();
        assert_eq!(transaction_count(&addrs, 7), 1);
    }
}

/// DRAM latency is never below the base latency, and accounting holds
/// for any request mix.
#[test]
fn dram_latency_bounds() {
    for seed in 0..32 {
        let mut rng = Rng(4000 + seed);
        let len = rng.range(1, 100) as usize;
        let mut requests: Vec<(u64, u64)> =
            (0..len).map(|_| (rng.below(64), rng.below(10_000))).collect();
        requests.sort_by_key(|&(_, t)| t);
        let mut dram = Dram::new(4, 200, 8);
        for &(line, now) in &requests {
            let lat = dram.access(line, now);
            assert!(lat >= 200, "latency {lat} below DRAM minimum");
        }
        assert_eq!(dram.accesses(), requests.len() as u64);
        assert!(dram.mean_queueing() >= 0.0);
    }
}

/// Strided warp address generation covers exactly the active lanes.
#[test]
fn strided_pattern_lane_math() {
    for seed in 0..128 {
        let mut rng = Rng(5000 + seed);
        let base = rng.below(1_000_000);
        let stride = rng.range(1, 64) as u32;
        let threads = rng.range(1, 256) as u32;
        let warp = rng.below(8) as u32;
        let p = AddrPattern::Strided { base, stride };
        let addrs = p.warp_addrs(warp, 32, threads);
        let first = warp * 32;
        let expected = if first >= threads { 0 } else { 32.min(threads - first) };
        assert_eq!(addrs.len() as u32, expected);
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(a, base + u64::from(first + i as u32) * u64::from(stride));
        }
    }
}

/// The union of all warps' addresses equals the TB's addresses, and the
/// buffer-reusing variant agrees with the allocating one.
#[test]
fn warp_addrs_partition_tb_addrs() {
    let mut scratch = Vec::new();
    for seed in 0..64 {
        let mut rng = Rng(6000 + seed);
        let base = rng.below(1_000_000);
        let stride = rng.range(1, 16) as u32;
        let threads = rng.range(1, 128) as u32;
        let p = AddrPattern::Strided { base, stride };
        let mut from_warps = Vec::new();
        for warp in 0..threads.div_ceil(32) {
            let alloc = p.warp_addrs(warp, 32, threads);
            p.warp_addrs_into(warp, 32, threads, &mut scratch);
            assert_eq!(scratch, alloc);
            from_warps.extend(alloc);
        }
        assert_eq!(from_warps, p.tb_addrs(threads));
    }
}
