//! The discrete-event component interface.
//!
//! Every hardware block the engine owns publishes when it next needs to
//! run through [`Component::next_tick`]; the event engine keeps those
//! wake-ups in a min-heap keyed `(cycle, component)` and advances the
//! clock from one wake-up to the next instead of stepping every cycle
//! (see `docs/ARCHITECTURE.md`, "Engine"). The contract:
//!
//! - `next_tick` returns the earliest future cycle at which ticking the
//!   component could change observable state, or `None` when nothing
//!   can happen until some *other* component hands it work. It must
//!   never return a cycle later than the true next state change — early
//!   wake-ups cost time but stay correct (a woken component that has
//!   nothing to do is a no-op); late ones change statistics.
//! - `tick` runs the component at `cycle`. Components whose stepping
//!   needs shared context the trait cannot carry (the SMXs borrow the
//!   memory system and a launch-credit pool) keep their richer stepping
//!   entry point and implement `tick` as a bookkeeping no-op; the
//!   engine drives them through that entry point at the cycles
//!   `next_tick` publishes.
//!
//! Purely *reactive* components return `None` forever: the caches, the
//! DRAM model, and the KDU have no clock of their own. Cache and DRAM
//! latencies are computed lazily at access time (a probe at cycle `c`
//! answers "when would this line have arrived"), so there is no
//! residual event to wake up for; the KDU is a table mutated by the
//! KMU and completion sweeps. Modeling them as components keeps the
//! engine's inventory uniform and documents *why* they contribute no
//! heap entries.

use crate::cache::Cache;
use crate::dram::Dram;
use crate::kdu::Kdu;
use crate::kmu::Kmu;
use crate::mem::MemorySystem;
use crate::smx::Smx;
use crate::types::Cycle;

/// A hardware block driven by the discrete-event engine.
pub trait Component {
    /// The earliest future cycle at which ticking this component could
    /// change observable state, or `None` when it is idle until handed
    /// work by another component.
    fn next_tick(&self) -> Option<u64>;

    /// Runs the component at `cycle`. The default is a no-op for
    /// components that are either reactive (ticked implicitly by the
    /// accesses of others) or stepped through a context-carrying entry
    /// point the engine calls directly.
    fn tick(&mut self, cycle: u64) {
        let _ = cycle;
    }
}

impl Component for Smx {
    /// An SMX next acts at its resident TBs' earliest ready cycle
    /// ([`Smx::next_event`]); with nothing resident it sleeps until a
    /// TB is placed. The engine additionally clamps the published wake
    /// past any `KillSmx` fault window before scheduling it.
    fn next_tick(&self) -> Option<u64> {
        (self.resident_tbs() > 0).then(|| self.next_event())
    }

    /// SMX stepping borrows the shared memory system and the per-cycle
    /// launch-credit pool, so the engine drives it through
    /// [`Smx::step_gated`] at the published cycle; `tick` itself has
    /// nothing left to do.
    fn tick(&mut self, _cycle: Cycle) {}
}

impl Component for Kmu {
    /// A non-empty KMU can dispatch on any cycle a KDU entry is free,
    /// so it publishes "immediately"; the engine intersects this with
    /// KDU occupancy and `QueueFull` fault windows.
    fn next_tick(&self) -> Option<u64> {
        (!self.is_empty()).then_some(0)
    }
}

impl Component for Kdu {
    /// Reactive: the KDU is a table the KMU inserts into and the
    /// completion sweep removes from; it never acts on its own.
    fn next_tick(&self) -> Option<u64> {
        None
    }
}

impl Component for Cache {
    /// Reactive: hit/miss latencies are computed lazily at access time,
    /// so a cache holds no future event of its own.
    fn next_tick(&self) -> Option<u64> {
        None
    }
}

impl Component for Dram {
    /// Reactive: channel queueing delay is folded into each access's
    /// lazily computed latency.
    fn next_tick(&self) -> Option<u64> {
        None
    }
}

impl Component for MemorySystem {
    /// Reactive: the whole memory hierarchy (L1s, L2, DRAM) answers
    /// accesses synchronously with lazily computed latencies.
    fn next_tick(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmu_publishes_only_when_pending() {
        let mut kmu = Kmu::new();
        assert_eq!(Component::next_tick(&kmu), None);
        kmu.push(crate::types::BatchId(0));
        assert_eq!(Component::next_tick(&kmu), Some(0));
    }

    #[test]
    fn reactive_components_publish_nothing() {
        let cfg = crate::config::GpuConfig::small_test();
        let kdu = Kdu::new(cfg.max_concurrent_kernels);
        assert_eq!(Component::next_tick(&kdu), None);
        let mem = MemorySystem::new(&cfg);
        assert_eq!(Component::next_tick(&mem), None);
    }
}
