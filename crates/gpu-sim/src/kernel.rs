//! Kernel and thread-block batch bookkeeping.
//!
//! The schedulable unit in this simulator is a [`Batch`]: a host kernel, a
//! CDP device kernel, or a DTBL thread-block group. CDP kernels occupy a
//! KDU entry of their own; DTBL groups are coalesced onto the entry of the
//! kernel whose TB launched them (so they are always visible to the SMX
//! scheduler, matching Section IV-C of the paper).

use crate::program::KernelKindId;
use crate::types::{BatchId, Cycle, Priority, SmxId};

/// Per-TB resource requirements, used for SMX occupancy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceReq {
    /// Threads per TB.
    pub threads: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory per TB in bytes.
    pub smem_bytes: u32,
}

impl ResourceReq {
    /// Creates a resource requirement.
    pub fn new(threads: u32, regs_per_thread: u32, smem_bytes: u32) -> Self {
        ResourceReq { threads, regs_per_thread, smem_bytes }
    }

    /// Total registers one TB consumes.
    pub fn regs_per_tb(&self) -> u32 {
        self.threads * self.regs_per_thread
    }
}

/// Where a dynamically launched batch came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Origin {
    /// The batch whose TB issued the launch.
    pub parent_batch: BatchId,
    /// Index of the launching (direct parent) TB within its batch.
    pub parent_tb: u32,
    /// The SMX the direct parent TB was executing on.
    pub parent_smx: SmxId,
    /// The parent batch's priority at launch time.
    pub parent_priority: Priority,
}

/// How a batch entered the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchKind {
    /// Launched from the host; occupies a KDU entry.
    HostKernel,
    /// CDP device kernel; occupies a KDU entry, subject to the
    /// 32-concurrent-kernel limit.
    DeviceKernel,
    /// DTBL TB group; coalesced onto the parent kernel's KDU entry.
    TbGroup,
}

/// Lifecycle of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchState {
    /// Created but not yet visible to the SMX scheduler (waiting in the
    /// KMU or in the launch path).
    Pending,
    /// Visible in the KDU; TBs may be dispatched.
    Schedulable,
    /// All TBs dispatched and retired.
    Complete,
}

/// A schedulable batch of thread blocks.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Unique id, in creation order.
    pub id: BatchId,
    /// Which launch path created this batch.
    pub batch_kind: BatchKind,
    /// Kernel kind (workload-defined function identity).
    pub kind: KernelKindId,
    /// Opaque workload parameter for program generation.
    pub param: u64,
    /// Number of TBs in the batch.
    pub num_tbs: u32,
    /// Per-TB resource requirement.
    pub req: ResourceReq,
    /// Parent information for device-launched batches.
    pub origin: Option<Origin>,
    /// Nesting depth: 0 for host kernels, parent+1 for children
    /// (unclamped; schedulers clamp to their own maximum level).
    pub priority: Priority,
    /// Cycle the launch was issued (host: 0 or launch call time).
    pub created_at: Cycle,
    /// Cycle the batch became schedulable (entered the KDU), if it has.
    pub schedulable_at: Option<Cycle>,
    /// Lifecycle state.
    pub state: BatchState,
    /// Next TB index to dispatch.
    pub next_tb: u32,
    /// Number of retired TBs.
    pub finished_tbs: u32,
    /// KDU entry this batch is attached to while schedulable.
    pub kdu_entry: Option<usize>,
}

impl Batch {
    /// `true` if at least one TB has not yet been dispatched.
    pub fn has_undispatched_tbs(&self) -> bool {
        self.next_tb < self.num_tbs
    }

    /// Number of TBs not yet dispatched.
    pub fn undispatched_tbs(&self) -> u32 {
        self.num_tbs - self.next_tb
    }

    /// `true` once every TB has retired.
    pub fn is_complete(&self) -> bool {
        self.finished_tbs == self.num_tbs
    }

    /// `true` if this batch was launched from the device.
    pub fn is_dynamic(&self) -> bool {
        self.origin.is_some()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn sample_batch() -> Batch {
        Batch {
            id: BatchId(0),
            batch_kind: BatchKind::HostKernel,
            kind: KernelKindId(0),
            param: 0,
            num_tbs: 3,
            req: ResourceReq::new(64, 16, 256),
            origin: None,
            priority: Priority::HOST,
            created_at: 0,
            schedulable_at: None,
            state: BatchState::Pending,
            next_tb: 0,
            finished_tbs: 0,
            kdu_entry: None,
        }
    }

    #[test]
    fn regs_per_tb_multiplies() {
        assert_eq!(ResourceReq::new(128, 32, 0).regs_per_tb(), 4096);
    }

    #[test]
    fn batch_dispatch_progress() {
        let mut b = sample_batch();
        assert!(b.has_undispatched_tbs());
        assert_eq!(b.undispatched_tbs(), 3);
        b.next_tb = 3;
        assert!(!b.has_undispatched_tbs());
        assert!(!b.is_complete());
        b.finished_tbs = 3;
        assert!(b.is_complete());
    }

    #[test]
    fn host_batch_is_not_dynamic() {
        assert!(!sample_batch().is_dynamic());
    }

    #[test]
    fn device_batch_is_dynamic() {
        let mut b = sample_batch();
        b.origin = Some(Origin {
            parent_batch: BatchId(0),
            parent_tb: 2,
            parent_smx: SmxId(1),
            parent_priority: Priority::HOST,
        });
        assert!(b.is_dynamic());
    }
}
