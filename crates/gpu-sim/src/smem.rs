//! Shared-memory bank-conflict model.
//!
//! GPU shared memory is organized as 32 four-byte banks; a warp access
//! completes in one pass only if no two active threads hit different
//! words in the same bank (same-word accesses broadcast for free). Each
//! extra conflicting word adds a serialization pass.

use crate::types::Addr;

/// Number of shared-memory banks (Kepler and newer).
pub const NUM_BANKS: u64 = 32;

/// Bytes per bank word.
pub const BANK_WIDTH: u64 = 4;

/// Number of serialized passes a warp shared-memory access needs: the
/// maximum, over banks, of distinct words addressed in that bank.
/// Broadcasts (all lanes on one word) take a single pass.
pub fn conflict_passes(addrs: &[Addr]) -> u32 {
    if addrs.is_empty() {
        return 1;
    }
    // words_per_bank[b] holds the distinct words seen in bank b; warp
    // accesses are at most 32 lanes so linear scans beat hashing.
    let mut words_per_bank: [smallvec::SmallVec; NUM_BANKS as usize] =
        std::array::from_fn(|_| smallvec::SmallVec::new());
    for &a in addrs {
        let word = a / BANK_WIDTH;
        let bank = (word % NUM_BANKS) as usize;
        if !words_per_bank[bank].contains(word) {
            words_per_bank[bank].push(word);
        }
    }
    words_per_bank.iter().map(smallvec::SmallVec::len).max().unwrap_or(1).max(1) as u32
}

/// A tiny fixed-capacity vector (≤ 32 lanes can hit one bank), avoiding
/// allocation in the per-access hot path.
mod smallvec {
    #[derive(Debug, Clone)]
    pub struct SmallVec {
        items: [u64; 32],
        len: usize,
    }

    impl SmallVec {
        pub fn new() -> Self {
            SmallVec { items: [0; 32], len: 0 }
        }

        pub fn push(&mut self, value: u64) {
            debug_assert!(self.len < 32);
            self.items[self.len] = value;
            self.len += 1;
        }

        pub fn contains(&self, value: u64) -> bool {
            self.items[..self.len].contains(&value)
        }

        pub fn len(&self) -> usize {
            self.len
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn stride_one_word_is_conflict_free() {
        let addrs: Vec<Addr> = (0..32).map(|t| t * 4).collect();
        assert_eq!(conflict_passes(&addrs), 1);
    }

    #[test]
    fn broadcast_is_one_pass() {
        let addrs = vec![128u64; 32];
        assert_eq!(conflict_passes(&addrs), 1);
    }

    #[test]
    fn stride_two_words_gives_two_way_conflicts() {
        // Stride 8 bytes = 2 words: lanes 0 and 16 share bank 0, etc.
        let addrs: Vec<Addr> = (0..32).map(|t| t * 8).collect();
        assert_eq!(conflict_passes(&addrs), 2);
    }

    #[test]
    fn same_bank_all_lanes_is_fully_serialized() {
        // Stride of 128 bytes = 32 words: every lane hits bank 0 with a
        // different word.
        let addrs: Vec<Addr> = (0..32).map(|t| t * 128).collect();
        assert_eq!(conflict_passes(&addrs), 32);
    }

    #[test]
    fn empty_access_is_one_pass() {
        assert_eq!(conflict_passes(&[]), 1);
    }

    #[test]
    fn mixed_broadcast_and_conflict() {
        // 31 lanes broadcast word 0; one lane hits word 32 (same bank 0).
        let mut addrs = vec![0u64; 31];
        addrs.push(32 * 4);
        assert_eq!(conflict_passes(&addrs), 2);
    }
}
