//! Scheduling event traces.
//!
//! When a [`TraceSink`] is attached to the engine
//! ([`Simulator::with_trace`](crate::engine::Simulator::with_trace)),
//! every scheduling-relevant event is reported as it happens: kernels
//! entering the KMU/KDU, TB dispatches and completions, device launches
//! issued and matured, priority-queue activity inside the TB scheduler,
//! stage-3 steals, and idle-cycle fast-forward jumps. [`VecSink`]
//! collects events for programmatic inspection; [`render`] formats an
//! event stream as text; `sim_metrics::perfetto` renders one as a
//! Chrome/Perfetto `trace_event` JSON file.
//!
//! With no sink attached the trace path costs nothing: the engine's
//! `emit` is a branch on a `None` option and schedulers only buffer
//! events after [`TbScheduler::set_tracing`] enabled them.
//!
//! [`TbScheduler::set_tracing`]: crate::tb_sched::TbScheduler::set_tracing

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::types::{BatchId, Cycle, Priority, SmxId, TbRef};

/// One scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A kernel was queued at the KMU (host launch or matured CDP child).
    KernelQueued {
        /// The kernel's batch.
        batch: BatchId,
    },
    /// A kernel moved from the KMU into a KDU entry.
    KernelToKdu {
        /// The kernel's batch.
        batch: BatchId,
        /// The KDU entry index it occupies.
        entry: usize,
    },
    /// A DTBL TB group was coalesced onto an existing KDU entry.
    GroupCoalesced {
        /// The group's batch.
        batch: BatchId,
        /// The entry it attached to.
        entry: usize,
    },
    /// A TB was dispatched to an SMX.
    TbDispatched {
        /// The TB.
        tb: TbRef,
        /// Destination SMX.
        smx: SmxId,
    },
    /// A TB retired.
    TbCompleted {
        /// The TB.
        tb: TbRef,
        /// The SMX it ran on.
        smx: SmxId,
    },
    /// A running TB issued a device-side launch.
    LaunchIssued {
        /// The launching TB.
        by: TbRef,
        /// Number of child TBs requested.
        num_tbs: u32,
    },
    /// A batch entered a scheduler priority-queue set.
    ///
    /// `level == 0` is the shared parent (level-0) queue; levels `1..=L`
    /// are the per-set dynamic queues. `depth` is the set's occupancy
    /// *after* the enqueue (for level 0, the shared queue's occupancy).
    QueueEnqueued {
        /// The enqueued batch.
        batch: BatchId,
        /// Queue set index (SMX/cluster under binding policies).
        set: u16,
        /// Clamped priority level the batch was filed at.
        level: u8,
        /// Set occupancy after the enqueue.
        depth: u32,
    },
    /// A TB was dispatched out of a scheduler queue set.
    ///
    /// Batches hold many TBs and stay queued until exhausted, so one
    /// enqueue can produce many dequeue events — one per TB dispatched
    /// from that queue. `level == 0` means the shared parent queue was
    /// drained (by the SMX of cluster `set` under binding policies).
    /// `depth` is the set's occupancy at dispatch time.
    QueueDequeued {
        /// The batch a TB was dispatched from.
        batch: BatchId,
        /// Queue set index the dispatching SMX consulted.
        set: u16,
        /// Priority level the batch was served from (0 = parent queue).
        level: u8,
        /// Set occupancy at dispatch time.
        depth: u32,
    },
    /// Adaptive-Bind stage 3: an idle SMX dispatched work from another
    /// set's queues.
    Stage3Steal {
        /// The stealing (idle) SMX.
        thief: SmxId,
        /// The queue set the work was taken from.
        victim_set: u16,
        /// The batch a TB was stolen from.
        batch: BatchId,
        /// TBs moved by this steal (one per dispatch in this model).
        tbs_moved: u32,
    },
    /// A dynamic batch was assigned its (possibly clamped) priority
    /// level on entering the scheduler.
    PriorityAssigned {
        /// The batch.
        batch: BatchId,
        /// Raw nesting priority (parent + 1, saturating).
        raw: Priority,
        /// Level actually used after clamping to the scheduler's `L`.
        clamped: Priority,
    },
    /// Adaptive-Bind recorded a (new) backup queue set for a cluster.
    BackupAdopted {
        /// The SMX that adopted the backup.
        smx: SmxId,
        /// The backup queue set it will drain.
        backup_set: u16,
    },
    /// The engine fast-forwarded over a provably idle stretch.
    ///
    /// Cycles in `from..to` were never stepped; no event can occur
    /// within the jumped range, so a trace with fast-forward enabled is
    /// identical to one without it *except* for these markers (asserted
    /// by `tests/determinism.rs`).
    FastForward {
        /// First skipped cycle.
        from: Cycle,
        /// Cycle execution resumed at.
        to: Cycle,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle the event occurred.
    pub cycle: Cycle,
    /// The event.
    pub event: TraceEvent,
}

/// Receives engine events as they happen.
pub trait TraceSink: Send {
    /// Called once per event, in simulation order.
    fn record(&mut self, cycle: Cycle, event: TraceEvent);
}

impl fmt::Debug for Box<dyn TraceSink> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceSink")
    }
}

/// Collects events into a shared vector (clone the handle before passing
/// the sink to the engine, then read after the run).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the shared buffer, recovering from poisoning: a panic in
    /// another holder (e.g. a harness thread that died mid-run) must not
    /// take the already-collected events down with it. The buffer is a
    /// plain `Vec` of `Copy` records, so every interrupted mutation
    /// leaves it in a valid state.
    fn lock(&self) -> MutexGuard<'_, Vec<TraceRecord>> {
        self.records.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A snapshot of the events recorded so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, cycle: Cycle, event: TraceEvent) {
        self.lock().push(TraceRecord { cycle, event });
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::KernelQueued { batch } => write!(f, "kernel {batch} queued at KMU"),
            TraceEvent::KernelToKdu { batch, entry } => {
                write!(f, "kernel {batch} -> KDU entry {entry}")
            }
            TraceEvent::GroupCoalesced { batch, entry } => {
                write!(f, "group {batch} coalesced onto KDU entry {entry}")
            }
            TraceEvent::TbDispatched { tb, smx } => write!(f, "{tb} dispatched to {smx}"),
            TraceEvent::TbCompleted { tb, smx } => write!(f, "{tb} completed on {smx}"),
            TraceEvent::LaunchIssued { by, num_tbs } => {
                write!(f, "{by} launched {num_tbs} child TBs")
            }
            TraceEvent::QueueEnqueued { batch, set, level, depth } => {
                write!(f, "{batch} enqueued at set {set} level {level} (depth {depth})")
            }
            TraceEvent::QueueDequeued { batch, set, level, depth } => {
                write!(f, "{batch} dequeued from set {set} level {level} (depth {depth})")
            }
            TraceEvent::Stage3Steal { thief, victim_set, batch, tbs_moved } => {
                write!(f, "{thief} stole {tbs_moved} TB of {batch} from set {victim_set}")
            }
            TraceEvent::PriorityAssigned { batch, raw, clamped } => {
                write!(f, "{batch} priority {raw} clamped to {clamped}")
            }
            TraceEvent::BackupAdopted { smx, backup_set } => {
                write!(f, "{smx} adopted backup set {backup_set}")
            }
            TraceEvent::FastForward { from, to } => {
                write!(f, "fast-forward {from} -> {to} ({} idle cycles)", to - from)
            }
        }
    }
}

/// Renders an event stream as one line per event.
pub fn render(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!("{:>10}  {}\n", r.cycle, r.event));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn vec_sink_records_in_order() {
        let sink = VecSink::new();
        let mut handle = sink.clone();
        handle.record(5, TraceEvent::KernelQueued { batch: BatchId(0) });
        handle.record(9, TraceEvent::KernelToKdu { batch: BatchId(0), entry: 3 });
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].cycle, 5);
        assert_eq!(records[1].cycle, 9);
        assert!(!sink.is_empty());
    }

    #[test]
    fn vec_sink_survives_poisoning() {
        // Regression: a panic while the buffer lock is held used to make
        // every later `record`/`records` call panic on the poisoned
        // mutex, killing the surviving run's whole trace.
        let sink = VecSink::new();
        let mut handle = sink.clone();
        handle.record(1, TraceEvent::KernelQueued { batch: BatchId(0) });

        let poisoner = sink.clone();
        let joined = std::thread::spawn(move || {
            let _guard = poisoner.records.lock().unwrap();
            panic!("die while holding the trace lock");
        })
        .join();
        assert!(joined.is_err(), "poisoning thread must have panicked");
        assert!(sink.records.lock().is_err(), "mutex should be poisoned");

        // The sink still records and reads back everything.
        handle.record(2, TraceEvent::FastForward { from: 2, to: 7 });
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].cycle, 2);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn render_formats_every_event_kind() {
        let tb = TbRef { batch: BatchId(1), index: 2 };
        let events = [
            TraceEvent::KernelQueued { batch: BatchId(0) },
            TraceEvent::KernelToKdu { batch: BatchId(0), entry: 0 },
            TraceEvent::GroupCoalesced { batch: BatchId(2), entry: 0 },
            TraceEvent::TbDispatched { tb, smx: SmxId(3) },
            TraceEvent::TbCompleted { tb, smx: SmxId(3) },
            TraceEvent::LaunchIssued { by: tb, num_tbs: 4 },
            TraceEvent::QueueEnqueued { batch: BatchId(2), set: 1, level: 1, depth: 3 },
            TraceEvent::QueueDequeued { batch: BatchId(2), set: 1, level: 1, depth: 2 },
            TraceEvent::Stage3Steal {
                thief: SmxId(0),
                victim_set: 1,
                batch: BatchId(2),
                tbs_moved: 1,
            },
            TraceEvent::PriorityAssigned {
                batch: BatchId(2),
                raw: Priority(7),
                clamped: Priority(4),
            },
            TraceEvent::BackupAdopted { smx: SmxId(0), backup_set: 1 },
            TraceEvent::FastForward { from: 10, to: 60 },
        ];
        let records: Vec<TraceRecord> = events
            .iter()
            .enumerate()
            .map(|(i, &event)| TraceRecord { cycle: i as u64, event })
            .collect();
        let text = render(&records);
        assert_eq!(text.lines().count(), events.len());
        assert!(text.contains("queued at KMU"));
        assert!(text.contains("coalesced"));
        assert!(text.contains("dispatched to SMX3"));
        assert!(text.contains("launched 4 child TBs"));
        assert!(text.contains("enqueued at set 1 level 1 (depth 3)"));
        assert!(text.contains("dequeued from set 1"));
        assert!(text.contains("SMX0 stole 1 TB of B2 from set 1"));
        assert!(text.contains("priority P7 clamped to P4"));
        assert!(text.contains("adopted backup set 1"));
        assert!(text.contains("fast-forward 10 -> 60 (50 idle cycles)"));
    }
}
