//! Scheduling event traces.
//!
//! When a [`TraceSink`] is attached to the engine
//! ([`Simulator::with_trace`](crate::engine::Simulator::with_trace)),
//! every scheduling-relevant event is reported as it happens: kernels
//! entering the KMU/KDU, TB dispatches and completions, device launches
//! issued and matured. [`VecSink`] collects events for programmatic
//! inspection; [`render`] formats an event stream as text.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::types::{BatchId, Cycle, SmxId, TbRef};

/// One scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A kernel was queued at the KMU (host launch or matured CDP child).
    KernelQueued {
        /// The kernel's batch.
        batch: BatchId,
    },
    /// A kernel moved from the KMU into a KDU entry.
    KernelToKdu {
        /// The kernel's batch.
        batch: BatchId,
        /// The KDU entry index it occupies.
        entry: usize,
    },
    /// A DTBL TB group was coalesced onto an existing KDU entry.
    GroupCoalesced {
        /// The group's batch.
        batch: BatchId,
        /// The entry it attached to.
        entry: usize,
    },
    /// A TB was dispatched to an SMX.
    TbDispatched {
        /// The TB.
        tb: TbRef,
        /// Destination SMX.
        smx: SmxId,
    },
    /// A TB retired.
    TbCompleted {
        /// The TB.
        tb: TbRef,
        /// The SMX it ran on.
        smx: SmxId,
    },
    /// A running TB issued a device-side launch.
    LaunchIssued {
        /// The launching TB.
        by: TbRef,
        /// Number of child TBs requested.
        num_tbs: u32,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle the event occurred.
    pub cycle: Cycle,
    /// The event.
    pub event: TraceEvent,
}

/// Receives engine events as they happen.
pub trait TraceSink: Send {
    /// Called once per event, in simulation order.
    fn record(&mut self, cycle: Cycle, event: TraceEvent);
}

impl fmt::Debug for Box<dyn TraceSink> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceSink")
    }
}

/// Collects events into a shared vector (clone the handle before passing
/// the sink to the engine, then read after the run).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events recorded so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("trace sink poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("trace sink poisoned").len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, cycle: Cycle, event: TraceEvent) {
        self.records.lock().expect("trace sink poisoned").push(TraceRecord { cycle, event });
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::KernelQueued { batch } => write!(f, "kernel {batch} queued at KMU"),
            TraceEvent::KernelToKdu { batch, entry } => {
                write!(f, "kernel {batch} -> KDU entry {entry}")
            }
            TraceEvent::GroupCoalesced { batch, entry } => {
                write!(f, "group {batch} coalesced onto KDU entry {entry}")
            }
            TraceEvent::TbDispatched { tb, smx } => write!(f, "{tb} dispatched to {smx}"),
            TraceEvent::TbCompleted { tb, smx } => write!(f, "{tb} completed on {smx}"),
            TraceEvent::LaunchIssued { by, num_tbs } => {
                write!(f, "{by} launched {num_tbs} child TBs")
            }
        }
    }
}

/// Renders an event stream as one line per event.
pub fn render(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!("{:>10}  {}\n", r.cycle, r.event));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_in_order() {
        let sink = VecSink::new();
        let mut handle = sink.clone();
        handle.record(5, TraceEvent::KernelQueued { batch: BatchId(0) });
        handle.record(9, TraceEvent::KernelToKdu { batch: BatchId(0), entry: 3 });
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].cycle, 5);
        assert_eq!(records[1].cycle, 9);
        assert!(!sink.is_empty());
    }

    #[test]
    fn render_formats_every_event_kind() {
        let tb = TbRef { batch: BatchId(1), index: 2 };
        let events = [
            TraceEvent::KernelQueued { batch: BatchId(0) },
            TraceEvent::KernelToKdu { batch: BatchId(0), entry: 0 },
            TraceEvent::GroupCoalesced { batch: BatchId(2), entry: 0 },
            TraceEvent::TbDispatched { tb, smx: SmxId(3) },
            TraceEvent::TbCompleted { tb, smx: SmxId(3) },
            TraceEvent::LaunchIssued { by: tb, num_tbs: 4 },
        ];
        let records: Vec<TraceRecord> = events
            .iter()
            .enumerate()
            .map(|(i, &event)| TraceRecord { cycle: i as u64, event })
            .collect();
        let text = render(&records);
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("queued at KMU"));
        assert!(text.contains("coalesced"));
        assert!(text.contains("dispatched to SMX3"));
        assert!(text.contains("launched 4 child TBs"));
    }
}
