//! The SMX-level thread-block scheduler interface and the baseline
//! round-robin policy.
//!
//! Each cycle the engine offers the scheduler a [`DispatchView`] of the
//! machine; the scheduler may dispatch at most one TB (the next
//! undispatched TB of a batch it names) to an SMX with room. The baseline
//! [`RoundRobinScheduler`] reproduces Section II-B of the paper; the
//! LaPerm policies in the `laperm` crate implement the same trait.
//!
//! Every dispatch decision made here is also a *provenance* decision:
//! the chosen SMX fixes which L1 a TB fills and which installed lines it
//! can reuse. When `GpuConfig::profile_locality` is set, the engine
//! snapshots the TB's lineage at dispatch time and the caches attribute
//! each later hit back to it (see `cache::ReuseClass`), which is how the
//! `repro locality` report scores scheduling policies mechanistically.
//!
//! It is also a *latency* decision: the gap between a batch turning
//! schedulable (`Batch::schedulable_at`) and each of its TBs
//! dispatching is the queue-wait the policies reorder. When
//! `GpuConfig::profile_latency` is set, the engine stamps both edges
//! per TB and the `repro latency` report compares policies by
//! queue-wait percentiles and critical-path inflation.

use crate::kernel::{Batch, ResourceReq};
use crate::smx::SmxResources;
use crate::trace::TraceEvent;
use crate::types::{BatchId, Cycle, SmxId, TbRef};

/// A read-only snapshot the scheduler uses to make one dispatch decision.
#[derive(Debug)]
pub struct DispatchView<'a> {
    /// Current cycle.
    pub cycle: Cycle,
    /// Batches visible in the KDU, FCFS order (base kernels followed by
    /// their coalesced groups). Includes batches with no TBs left.
    pub schedulable: &'a [BatchId],
    /// All batches ever created, indexed by [`BatchId`].
    pub batches: &'a [Batch],
    /// Free resources of each SMX.
    pub smx_free: &'a [SmxResources],
}

impl DispatchView<'_> {
    /// Looks up a batch.
    pub fn batch(&self, id: BatchId) -> &Batch {
        &self.batches[id.index()]
    }

    /// `true` if `req` fits on `smx` right now.
    pub fn fits(&self, smx: SmxId, req: &ResourceReq) -> bool {
        self.smx_free[smx.index()].fits(req)
    }

    /// Number of SMXs.
    pub fn num_smxs(&self) -> usize {
        self.smx_free.len()
    }

    /// The first SMX at or after `start` (wrapping) where `req` fits.
    pub fn first_fit_from(&self, start: usize, req: &ResourceReq) -> Option<SmxId> {
        let n = self.num_smxs();
        (0..n).map(|i| SmxId(((start + i) % n) as u16)).find(|&smx| self.fits(smx, req))
    }
}

/// A read-only, allocation-free view of the KMU's pending-kernel queue,
/// used for one [`kmu_pick`](TbScheduler::kmu_pick) decision.
///
/// `pending` is a slice over the KMU's own storage (FCFS order) and
/// `batches` the engine's batch table, so building the view copies
/// nothing per cycle.
#[derive(Debug)]
pub struct KmuView<'a> {
    /// Pending kernels, FCFS order (oldest first). Non-empty.
    pub pending: &'a [BatchId],
    /// All batches ever created, indexed by [`BatchId`].
    pub batches: &'a [Batch],
}

impl KmuView<'_> {
    /// Number of pending kernels.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is pending (the engine never asks then).
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The batch of the `i`-th pending kernel.
    pub fn batch(&self, i: usize) -> &Batch {
        &self.batches[self.pending[i].index()]
    }
}

/// One dispatch: the next undispatched TB of `batch` goes to `smx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchDecision {
    /// Batch to take the TB from.
    pub batch: BatchId,
    /// Destination SMX.
    pub smx: SmxId,
}

/// An SMX-level TB scheduling policy.
///
/// Implementations receive lifecycle notifications (`on_*`) and are asked
/// for at most one [`DispatchDecision`] per cycle. Decisions the engine
/// cannot honor (batch not schedulable, TB does not fit) abort the
/// simulation with [`SimError::BadDispatch`](crate::error::SimError), so
/// policies must check resources through the view.
pub trait TbScheduler: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// A batch became visible in the KDU (its TBs may now be dispatched).
    fn on_batch_schedulable(&mut self, _batch: &Batch, _cycle: Cycle) {}

    /// A TB retired.
    fn on_tb_finished(&mut self, _tb: TbRef, _smx: SmxId, _cycle: Cycle) {}

    /// Chooses at most one TB dispatch for this cycle.
    fn pick(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision>;

    /// Chooses which pending KMU kernel to move into the KDU next, or
    /// `None` to decline this cycle (backpressure: a policy whose queues
    /// are at a configured hard cap leaves the kernel in the KMU).
    ///
    /// The view is FCFS-ordered and non-empty; the returned index selects
    /// from it. The baseline takes the oldest and never declines.
    fn kmu_pick(&mut self, _view: &KmuView<'_>) -> Option<usize> {
        Some(0)
    }

    /// Extra policy-specific counters for reports (steals, overflows, …).
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Enables or disables event reporting. The engine turns this on when
    /// a [`TraceSink`](crate::trace::TraceSink) is attached; while off (the
    /// default), implementations must not buffer or allocate anything, so
    /// untraced runs pay nothing.
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Moves events buffered since the last drain into `out` (in the
    /// order they happened). The engine drains after every call that can
    /// produce events and timestamps them with the current cycle.
    fn drain_trace(&mut self, _out: &mut Vec<TraceEvent>) {}
}

impl std::fmt::Debug for Box<dyn TbScheduler> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TbScheduler({})", self.name())
    }
}

/// The baseline round-robin TB scheduler of Section II-B.
///
/// Each cycle it takes the next TB (in TB-id order) of the oldest KDU
/// batch that still has undispatched TBs, and places it on the next SMX —
/// scanning round-robin from a cursor — that has enough free resources.
/// Dynamic TBs are therefore dispatched strictly after the TBs already
/// queued, with no locality awareness.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TbScheduler for RoundRobinScheduler {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision> {
        let batch_id =
            view.schedulable.iter().copied().find(|&b| view.batch(b).has_undispatched_tbs())?;
        let req = view.batch(batch_id).req;
        let smx = view.first_fit_from(self.cursor, &req)?;
        self.cursor = (smx.index() + 1) % view.num_smxs();
        Some(DispatchDecision { batch: batch_id, smx })
    }
}

/// A seeded random TB scheduler: picks a uniformly random schedulable
/// batch and a random SMX with room.
///
/// Not part of the paper — a control baseline for ablations: it has the
/// baseline's lack of locality awareness *and* gives up round-robin's
/// even spreading, bounding how much of LaPerm's gain is mere placement
/// luck.
#[derive(Debug)]
pub struct RandomScheduler {
    state: u64,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: plenty for a control policy.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

impl TbScheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision> {
        let candidates: Vec<BatchId> = view
            .schedulable
            .iter()
            .copied()
            .filter(|&b| view.batch(b).has_undispatched_tbs())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let batch = candidates[self.below(candidates.len())];
        let req = view.batch(batch).req;
        let start = self.below(view.num_smxs());
        let smx = view.first_fit_from(start, &req)?;
        Some(DispatchDecision { batch, smx })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::config::GpuConfig;
    use crate::kernel::{BatchKind, BatchState};
    use crate::program::KernelKindId;
    use crate::types::Priority;

    fn batch(id: u32, num_tbs: u32, next_tb: u32) -> Batch {
        Batch {
            id: BatchId(id),
            batch_kind: BatchKind::HostKernel,
            kind: KernelKindId(0),
            param: 0,
            num_tbs,
            req: ResourceReq::new(64, 8, 0),
            origin: None,
            priority: Priority::HOST,
            created_at: 0,
            schedulable_at: Some(0),
            state: BatchState::Schedulable,
            next_tb,
            finished_tbs: 0,
            kdu_entry: Some(0),
        }
    }

    fn free_smxs(n: usize) -> Vec<SmxResources> {
        let cfg = GpuConfig::small_test();
        (0..n).map(|_| SmxResources::full(&cfg)).collect()
    }

    #[test]
    fn rr_distributes_across_smxs_in_order() {
        let mut sched = RoundRobinScheduler::new();
        let mut batches = vec![batch(0, 10, 0)];
        let smxs = free_smxs(4);
        let schedulable = vec![BatchId(0)];
        let mut placements = Vec::new();
        for _ in 0..8 {
            let view = DispatchView {
                cycle: 0,
                schedulable: &schedulable,
                batches: &batches,
                smx_free: &smxs,
            };
            let d = sched.pick(&view).unwrap();
            placements.push(d.smx.0);
            batches[0].next_tb += 1;
        }
        assert_eq!(placements, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn rr_skips_full_smx() {
        let mut sched = RoundRobinScheduler::new();
        let batches = vec![batch(0, 10, 0)];
        let mut smxs = free_smxs(3);
        // SMX0 has no room.
        smxs[0].threads = 0;
        let schedulable = vec![BatchId(0)];
        let view = DispatchView {
            cycle: 0,
            schedulable: &schedulable,
            batches: &batches,
            smx_free: &smxs,
        };
        let d = sched.pick(&view).unwrap();
        assert_eq!(d.smx, SmxId(1));
    }

    #[test]
    fn rr_returns_none_when_everything_full() {
        let mut sched = RoundRobinScheduler::new();
        let batches = vec![batch(0, 10, 0)];
        let mut smxs = free_smxs(2);
        for s in &mut smxs {
            s.tb_slots = 0;
        }
        let schedulable = vec![BatchId(0)];
        let view = DispatchView {
            cycle: 0,
            schedulable: &schedulable,
            batches: &batches,
            smx_free: &smxs,
        };
        assert!(sched.pick(&view).is_none());
    }

    #[test]
    fn rr_moves_to_next_batch_when_first_exhausted() {
        let mut sched = RoundRobinScheduler::new();
        let batches = vec![batch(0, 4, 4), batch(1, 4, 0)];
        let smxs = free_smxs(2);
        let schedulable = vec![BatchId(0), BatchId(1)];
        let view = DispatchView {
            cycle: 0,
            schedulable: &schedulable,
            batches: &batches,
            smx_free: &smxs,
        };
        let d = sched.pick(&view).unwrap();
        assert_eq!(d.batch, BatchId(1));
    }

    #[test]
    fn rr_returns_none_with_no_work() {
        let mut sched = RoundRobinScheduler::new();
        let batches = vec![batch(0, 4, 4)];
        let smxs = free_smxs(2);
        let schedulable = vec![BatchId(0)];
        let view = DispatchView {
            cycle: 0,
            schedulable: &schedulable,
            batches: &batches,
            smx_free: &smxs,
        };
        assert!(sched.pick(&view).is_none());
    }

    #[test]
    fn first_fit_wraps_around() {
        let batches = vec![batch(0, 1, 0)];
        let mut smxs = free_smxs(3);
        smxs[2].tb_slots = 0;
        let schedulable = vec![BatchId(0)];
        let view = DispatchView {
            cycle: 0,
            schedulable: &schedulable,
            batches: &batches,
            smx_free: &smxs,
        };
        let req = ResourceReq::new(32, 8, 0);
        assert_eq!(view.first_fit_from(2, &req), Some(SmxId(0)));
    }

    #[test]
    fn default_kmu_pick_is_fcfs() {
        let mut sched = RoundRobinScheduler::new();
        let batches = vec![batch(0, 1, 0), batch(1, 1, 0)];
        let pending = vec![BatchId(0), BatchId(1)];
        let view = KmuView { pending: &pending, batches: &batches };
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.batch(1).id, BatchId(1));
        assert_eq!(sched.kmu_pick(&view), Some(0));
    }

    #[test]
    fn random_scheduler_dispatches_valid_work() {
        let mut sched = RandomScheduler::new(42);
        let mut batches = vec![batch(0, 8, 0), batch(1, 8, 8)];
        let smxs = free_smxs(4);
        let schedulable = vec![BatchId(0), BatchId(1)];
        for _ in 0..8 {
            let view = DispatchView {
                cycle: 0,
                schedulable: &schedulable,
                batches: &batches,
                smx_free: &smxs,
            };
            let d = sched.pick(&view).expect("work available");
            // Batch 1 is exhausted; only batch 0 may be chosen.
            assert_eq!(d.batch, BatchId(0));
            assert!(d.smx.index() < 4);
            batches[0].next_tb += 1;
        }
        let view = DispatchView {
            cycle: 0,
            schedulable: &schedulable,
            batches: &batches,
            smx_free: &smxs,
        };
        assert!(sched.pick(&view).is_none());
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let picks = |seed: u64| -> Vec<u16> {
            let mut sched = RandomScheduler::new(seed);
            let mut batches = vec![batch(0, 16, 0)];
            let smxs = free_smxs(8);
            let schedulable = vec![BatchId(0)];
            (0..16)
                .map(|_| {
                    let view = DispatchView {
                        cycle: 0,
                        schedulable: &schedulable,
                        batches: &batches,
                        smx_free: &smxs,
                    };
                    let d = sched.pick(&view).unwrap();
                    batches[0].next_tb += 1;
                    d.smx.0
                })
                .collect()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }
}
