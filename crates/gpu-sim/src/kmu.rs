//! Kernel Management Unit (KMU).
//!
//! The KMU holds kernels that are not yet in the KDU: host launches and
//! matured CDP device launches. The baseline dispatches them FCFS; the
//! LaPerm extension asks the TB scheduler which pending kernel to move
//! into the KDU next (highest priority first, Section IV-C).

use std::collections::VecDeque;

use crate::types::BatchId;

/// The pending-kernel queue in front of the KDU.
#[derive(Debug, Default)]
pub struct Kmu {
    pending: VecDeque<BatchId>,
    depth_hwm: u64,
}

impl Kmu {
    /// Creates an empty KMU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a kernel (host launch or matured device launch).
    pub fn push(&mut self, batch: BatchId) {
        self.pending.push_back(batch);
        self.depth_hwm = self.depth_hwm.max(self.pending.len() as u64);
    }

    /// High-water mark of the pending-queue depth over the run — how
    /// backed up the launch path got at its worst. Maintained
    /// unconditionally (a max of an already-known length is free);
    /// reported only under latency profiling.
    pub fn depth_hwm(&self) -> u64 {
        self.depth_hwm
    }

    /// Pending kernels, FCFS order.
    pub fn pending(&self) -> impl Iterator<Item = BatchId> + '_ {
        self.pending.iter().copied()
    }

    /// Number of pending kernels.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The pending kernels as one contiguous FCFS slice, rearranging the
    /// ring buffer's two halves in place if needed (amortized cheap: the
    /// queue is contiguous again until a wrap-around occurs).
    ///
    /// Lets the engine hand the TB scheduler a borrowed view of the
    /// queue without collecting it into a fresh `Vec` every cycle.
    pub fn make_contiguous(&mut self) -> &[BatchId] {
        self.pending.make_contiguous()
    }

    /// Removes and returns the pending kernel at `index` (0 = oldest), or
    /// `None` when `index` is out of range. The engine converts `None`
    /// into a structured [`SimError::EngineInvariant`] instead of
    /// panicking on a racing retire.
    ///
    /// [`SimError::EngineInvariant`]: crate::error::SimError::EngineInvariant
    pub fn take(&mut self, index: usize) -> Option<BatchId> {
        self.pending.remove(index)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn fcfs_ordering() {
        let mut kmu = Kmu::new();
        kmu.push(BatchId(3));
        kmu.push(BatchId(1));
        let order: Vec<_> = kmu.pending().collect();
        assert_eq!(order, vec![BatchId(3), BatchId(1)]);
    }

    #[test]
    fn take_by_index() {
        let mut kmu = Kmu::new();
        kmu.push(BatchId(0));
        kmu.push(BatchId(1));
        kmu.push(BatchId(2));
        assert_eq!(kmu.take(1), Some(BatchId(1)));
        assert_eq!(kmu.len(), 2);
        assert_eq!(kmu.take(0), Some(BatchId(0)));
        assert_eq!(kmu.take(0), Some(BatchId(2)));
        assert!(kmu.is_empty());
    }

    #[test]
    fn make_contiguous_preserves_fcfs_across_wraparound() {
        let mut kmu = Kmu::new();
        // Force the VecDeque to wrap: push, pop from the front, push more.
        for i in 0..8 {
            kmu.push(BatchId(i));
        }
        for _ in 0..5 {
            kmu.take(0);
        }
        for i in 8..16 {
            kmu.push(BatchId(i));
        }
        let expected: Vec<BatchId> = kmu.pending().collect();
        assert_eq!(kmu.make_contiguous(), &expected[..]);
    }

    #[test]
    fn depth_high_water_mark_survives_drains() {
        let mut kmu = Kmu::new();
        assert_eq!(kmu.depth_hwm(), 0);
        for i in 0..4 {
            kmu.push(BatchId(i));
        }
        for _ in 0..4 {
            kmu.take(0);
        }
        kmu.push(BatchId(9));
        assert_eq!(kmu.depth_hwm(), 4);
    }

    #[test]
    fn take_out_of_range_returns_none() {
        let mut kmu = Kmu::new();
        assert_eq!(kmu.take(0), None);
        kmu.push(BatchId(0));
        assert_eq!(kmu.take(5), None);
        assert_eq!(kmu.len(), 1);
    }
}
