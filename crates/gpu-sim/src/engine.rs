//! The simulation engine: owns the SMXs, memory system, KMU/KDU, launch
//! model, and TB scheduler, and advances them cycle by cycle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

use crate::cache::{AccessClass, Lineage, ReuseClass};
use crate::component::Component;
use crate::config::{EngineMode, GpuConfig, OverflowPolicy};
use crate::error::{SimError, StuckTb};
use crate::fault::{FaultPlan, LaunchDisposition};
use crate::kdu::Kdu;
use crate::kernel::{Batch, BatchKind, BatchState, Origin, ResourceReq};
use crate::kmu::Kmu;
use crate::launch::{Delivery, DynamicLaunchModel, ImmediateLaunchModel, LaunchRequest};
use crate::mem::MemorySystem;
use crate::program::{KernelKindId, ProgramSource};
use crate::smx::{Smx, SmxResources, TbCompletion};
use crate::stats::{
    CriticalPath, EngineStats, LatencyStats, LocalityStats, Pow2Hist, SimStats, TbRecord,
    WakeSource,
};
use crate::tb_sched::{DispatchDecision, DispatchView, KmuView, RoundRobinScheduler, TbScheduler};
use crate::trace::{TraceEvent, TraceSink};
use crate::types::{BatchId, Cycle, Priority, SmxId, TbRef};
use crate::warp_sched::{GreedyThenOldest, LooseRoundRobin, WarpScheduler};

/// Compact `sched_list`/`sched_seq` once the exhausted prefix exceeds this
/// many entries, amortizing the two `drain`s over thousands of dispatches.
const SCHED_PRUNE_THRESHOLD: usize = 4096;

/// Most suspects named by a [`SimError::NoForwardProgress`] report.
const MAX_WATCHDOG_SUSPECTS: usize = 8;

/// Everything the watchdog considers "forward progress", snapshotted once
/// per window: TB dispatches, TB retirements, batch creations, retired
/// warp instructions, launch submissions, and launch deliveries.
type ProgressSignature = (u64, u64, u64, u64, u64, u64);

/// Engine introspection state, boxed behind an `Option` so unprofiled
/// runs allocate nothing and the loop pays one branch per stage (the
/// locality profiler's zero-cost-when-off pattern).
struct EngineProf {
    /// The accumulating statistics surfaced as [`SimStats::engine`].
    stats: EngineStats,
    /// Why the *next* loop iteration will run — decided by the advance
    /// step of the current iteration, charged at the start of the next.
    next_wake: WakeSource,
}

impl EngineProf {
    fn new(host_sampling: u64) -> Self {
        EngineProf {
            stats: EngineStats { host_sampling, ..EngineStats::default() },
            // The first iteration runs because work was launched, which
            // is a component (KMU) publishing.
            next_wake: WakeSource::ComponentTick,
        }
    }
}

/// Per-TB lifecycle stamps held engine-side while latency profiling
/// (`cfg.profile_latency`) is on, boxed behind an `Option` so
/// unprofiled runs allocate nothing (the locality profiler's
/// zero-cost-when-off pattern). `Batch` already carries `created_at`
/// and `schedulable_at` and `TbRecord` the dispatch/retire cycles; the
/// remaining edges live here so the public types stay unchanged.
struct LatencyState {
    /// Cycle each batch's launch matured into the scheduling hardware
    /// (KMU enqueue for kernels, direct KDU attach for DTBL groups),
    /// indexed by `BatchId`; `Cycle::MAX` until maturation.
    batch_matured: Vec<Cycle>,
    /// Per-TB stamps, parallel to `Simulator::tb_records`.
    tb: Vec<TbLat>,
}

/// The lifecycle edges of one TB that `TbRecord` does not carry.
#[derive(Clone, Copy)]
struct TbLat {
    /// Cycle the TB's batch matured (entered KMU/KDU).
    matured_at: Cycle,
    /// Cycle the TB's batch became schedulable (entered the KDU).
    schedulable_at: Cycle,
    /// Cycle the TB's first instruction issued; `Cycle::MAX` until the
    /// TB retires (stamped from its [`TbCompletion`], with retirement
    /// itself as the fallback for TBs that never issue), so the
    /// sentinel doubles as "not finished yet" during a run.
    first_issue_at: Cycle,
}

/// A complete GPU simulation.
///
/// Build one with [`Simulator::new`], optionally swap in a TB scheduler
/// ([`with_scheduler`](Self::with_scheduler)) and launch model
/// ([`with_launch_model`](Self::with_launch_model)), launch host kernels,
/// then [`run_to_completion`](Self::run_to_completion).
pub struct Simulator {
    cfg: GpuConfig,
    cycle: Cycle,
    smxs: Vec<Smx>,
    mem: MemorySystem,
    kmu: Kmu,
    kdu: Kdu,
    batches: Vec<Batch>,
    scheduler: Box<dyn TbScheduler>,
    launch_model: Box<dyn DynamicLaunchModel>,
    source: Box<dyn ProgramSource>,
    // KDU-FCFS-ordered list of schedulable batches; `sched_head` is a
    // lazily advanced cursor past exhausted prefix entries.
    sched_list: Vec<BatchId>,
    sched_seq: Vec<u64>,
    sched_head: usize,
    undispatched: u64,
    dispatch_seq: u64,
    tb_records: Vec<TbRecord>,
    record_index: HashMap<TbRef, usize>,
    fast_forwarded_cycles: u64,
    // Finite-launch-path state. All four queues stay empty under the
    // default unbounded limits with no fault plan, so the default
    // configuration takes none of these paths (goldens are bit-identical).
    launch_backlog: VecDeque<(Cycle, Delivery)>,
    spill_queue: VecDeque<(Cycle, LaunchRequest)>,
    delayed_launches: Vec<(Cycle, LaunchRequest)>,
    fault: Option<FaultPlan>,
    launch_submitted_total: u64,
    delivered_total: u64,
    finished_tbs_total: u64,
    kmu_overflows: u64,
    backlog_hwm: u64,
    spill_events: u64,
    spill_hwm: u64,
    // Forward-progress watchdog: the counter snapshot taken at the last
    // window boundary, and the next cycle at which to compare.
    watchdog_sig: ProgressSignature,
    watchdog_deadline: Cycle,
    // Event-engine state: a min-heap of SMX wake-ups keyed
    // (cycle, smx index) and the authoritative wake per SMX. Heap
    // entries whose cycle no longer matches `smx_wake` are stale and
    // discarded on pop (lazy invalidation); `Cycle::MAX` means no wake
    // is scheduled. Only maintained once the event loop arms
    // `event_live`, so manual steppers pay nothing.
    event_heap: BinaryHeap<Reverse<(Cycle, u16)>>,
    smx_wake: Vec<Cycle>,
    event_live: bool,
    // Engine introspection (`cfg.profile_engine`): wake-source tagging,
    // structural histograms, and sampled host-time spans. `None` (no
    // allocation, no work) when profiling is off.
    engine_prof: Option<Box<EngineProf>>,
    // Per-TB lifecycle stamps (`cfg.profile_latency`); `None` when
    // latency profiling is off.
    latency: Option<Box<LatencyState>>,
    // Scratch buffers reused every cycle so the hot loop allocates
    // nothing in steady state.
    delivery_scratch: Vec<Delivery>,
    smx_free_scratch: Vec<SmxResources>,
    sched_trace_scratch: Vec<TraceEvent>,
    trace: Option<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.cycle)
            .field("scheduler", &self.scheduler.name())
            .field("launch_model", &self.launch_model.name())
            .field("batches", &self.batches.len())
            .field("undispatched", &self.undispatched)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator with the baseline round-robin TB scheduler and
    /// a zero-latency CDP-style launch model.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GpuConfig::validate`].
    pub fn new(cfg: GpuConfig, source: Box<dyn ProgramSource>) -> Self {
        cfg.validate().expect("invalid GpuConfig");
        let make_warp_sched = || -> Box<dyn WarpScheduler> {
            match cfg.warp_scheduler {
                crate::config::WarpSchedPolicy::Gto => Box::new(GreedyThenOldest::new()),
                crate::config::WarpSchedPolicy::Lrr => Box::new(LooseRoundRobin::new()),
            }
        };
        let smxs = (0..cfg.num_smxs).map(|i| Smx::new(SmxId(i), &cfg, make_warp_sched())).collect();
        let mut mem = MemorySystem::new(&cfg);
        if cfg.profile_locality {
            mem.enable_provenance();
        }
        let kdu = Kdu::new(cfg.max_concurrent_kernels);
        Simulator {
            cycle: 0,
            smxs,
            mem,
            kmu: Kmu::new(),
            kdu,
            batches: Vec::new(),
            scheduler: Box::new(RoundRobinScheduler::new()),
            launch_model: Box::new(ImmediateLaunchModel::new()),
            source,
            sched_list: Vec::new(),
            sched_seq: Vec::new(),
            sched_head: 0,
            undispatched: 0,
            dispatch_seq: 0,
            tb_records: Vec::new(),
            record_index: HashMap::new(),
            fast_forwarded_cycles: 0,
            launch_backlog: VecDeque::new(),
            spill_queue: VecDeque::new(),
            delayed_launches: Vec::new(),
            fault: None,
            launch_submitted_total: 0,
            delivered_total: 0,
            finished_tbs_total: 0,
            kmu_overflows: 0,
            backlog_hwm: 0,
            spill_events: 0,
            spill_hwm: 0,
            watchdog_sig: (0, 0, 0, 0, 0, 0),
            watchdog_deadline: cfg.watchdog_window.unwrap_or(Cycle::MAX),
            event_heap: BinaryHeap::new(),
            smx_wake: Vec::new(),
            event_live: false,
            engine_prof: cfg
                .profile_engine
                .then(|| Box::new(EngineProf::new(cfg.engine_host_sampling))),
            latency: cfg
                .profile_latency
                .then(|| Box::new(LatencyState { batch_matured: Vec::new(), tb: Vec::new() })),
            delivery_scratch: Vec::new(),
            smx_free_scratch: Vec::new(),
            sched_trace_scratch: Vec::new(),
            trace: None,
            cfg,
        }
    }

    /// Replaces the TB scheduler (call before launching kernels).
    pub fn with_scheduler(mut self, mut scheduler: Box<dyn TbScheduler>) -> Self {
        scheduler.set_tracing(self.trace.is_some());
        self.scheduler = scheduler;
        self
    }

    /// Replaces the dynamic launch model (call before launching kernels).
    pub fn with_launch_model(mut self, model: Box<dyn DynamicLaunchModel>) -> Self {
        self.launch_model = model;
        self
    }

    /// Attaches a scheduling-event trace sink (see [`crate::trace`]).
    pub fn with_trace(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self.scheduler.set_tracing(true);
        self
    }

    /// Attaches a deterministic fault-injection plan (see [`crate::fault`]).
    ///
    /// Fault windows compose with idle-cycle skipping in both engine
    /// modes: `KillSmx` release edges become wake-up sources
    /// (`FaultPlan::first_alive`) and delayed launches contribute
    /// their maturity cycles, so skips land exactly where the machine
    /// next changes state. Statistics are bit-identical to stepping
    /// every cycle (asserted by `tests/determinism.rs`).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The attached fault plan, with its fired-fault counters.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    fn emit(&mut self, cycle: Cycle, event: TraceEvent) {
        if let Some(sink) = &mut self.trace {
            sink.record(cycle, event);
        }
    }

    /// Forwards events buffered inside the TB scheduler to the sink,
    /// stamped with the current cycle. A branch and nothing else when no
    /// sink is attached (schedulers only buffer while tracing is on).
    fn drain_sched_trace(&mut self, now: Cycle) {
        if self.trace.is_none() {
            return;
        }
        let mut buf = std::mem::take(&mut self.sched_trace_scratch);
        self.scheduler.drain_trace(&mut buf);
        for event in buf.drain(..) {
            self.emit(now, event);
        }
        self.sched_trace_scratch = buf;
    }

    /// The hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// All batches created so far.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// Thread blocks currently resident across all SMXs.
    pub fn resident_tbs(&self) -> usize {
        self.smxs.iter().map(Smx::resident_tbs).sum()
    }

    /// Occupied KDU entries (concurrently resident kernels).
    pub fn kdu_occupancy(&self) -> usize {
        self.kdu.occupied()
    }

    /// Kernels waiting in the KMU for a free KDU entry.
    pub fn kmu_pending(&self) -> usize {
        self.kmu.len()
    }

    /// Idle cycles skipped by the fast-forward path (0 when
    /// `cfg.fast_forward` is off). These cycles are still counted in
    /// [`cycle`](Self::cycle); they just were not stepped one by one.
    pub fn fast_forwarded_cycles(&self) -> u64 {
        self.fast_forwarded_cycles
    }

    /// A cheap counter snapshot for windowed time-series analysis (see
    /// [`MachineSample`](crate::stats::MachineSample)).
    pub fn sample(&self) -> crate::stats::MachineSample {
        let l1 = self.mem.l1_stats_total();
        let l2 = self.mem.l2_stats();
        crate::stats::MachineSample {
            cycle: self.cycle,
            thread_instructions: self.smxs.iter().map(|s| s.thread_instructions).sum(),
            l1_hits: l1.hits,
            l1_misses: l1.misses,
            l2_hits: l2.hits,
            l2_misses: l2.misses,
            resident_tbs: self.resident_tbs(),
            undispatched_tbs: self.undispatched,
            l1_parent_child_hits: l1.prov.class(ReuseClass::ParentChild),
            l2_parent_child_hits: l2.prov.class(ReuseClass::ParentChild),
        }
    }

    /// Launches a kernel from the host.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::KernelTooLarge`] if a single TB of the kernel
    /// can never fit on an SMX, or if the grid is empty.
    pub fn launch_host_kernel(
        &mut self,
        kind: KernelKindId,
        param: u64,
        num_tbs: u32,
        req: ResourceReq,
    ) -> Result<BatchId, SimError> {
        let id = self.create_batch(BatchKind::HostKernel, kind, param, num_tbs, req, None)?;
        self.kmu.push(id);
        self.lat_mature(id, self.cycle);
        self.emit(self.cycle, TraceEvent::KernelQueued { batch: id });
        Ok(id)
    }

    /// Stamps batch `id`'s maturation cycle — its entry into the
    /// scheduling hardware — when latency profiling is on. A branch and
    /// nothing else otherwise.
    fn lat_mature(&mut self, id: BatchId, at: Cycle) {
        if let Some(lat) = &mut self.latency {
            let idx = id.index();
            if lat.batch_matured.len() <= idx {
                lat.batch_matured.resize(idx + 1, Cycle::MAX);
            }
            lat.batch_matured[idx] = at;
        }
    }

    fn create_batch(
        &mut self,
        batch_kind: BatchKind,
        kind: KernelKindId,
        param: u64,
        num_tbs: u32,
        req: ResourceReq,
        origin: Option<Origin>,
    ) -> Result<BatchId, SimError> {
        let id = BatchId(self.batches.len() as u32);
        let reason = if num_tbs == 0 {
            Some("grid has zero TBs".to_string())
        } else if req.threads == 0 {
            Some("TB has zero threads".to_string())
        } else if req.threads > self.cfg.max_threads_per_smx {
            Some(format!("{} threads exceed SMX limit", req.threads))
        } else if req.regs_per_tb() > self.cfg.max_regs_per_smx {
            Some(format!("{} registers exceed SMX limit", req.regs_per_tb()))
        } else if req.smem_bytes > self.cfg.max_smem_per_smx {
            Some(format!("{} bytes shared memory exceed SMX limit", req.smem_bytes))
        } else {
            None
        };
        if let Some(reason) = reason {
            return Err(SimError::KernelTooLarge { batch: id, reason });
        }
        let priority = match &origin {
            Some(o) => o.parent_priority.child(),
            None => Priority::HOST,
        };
        self.batches.push(Batch {
            id,
            batch_kind,
            kind,
            param,
            num_tbs,
            req,
            origin,
            priority,
            created_at: self.cycle,
            schedulable_at: None,
            state: BatchState::Pending,
            next_tb: 0,
            finished_tbs: 0,
            kdu_entry: None,
        });
        Ok(id)
    }

    /// `true` when no work remains anywhere in the machine.
    pub fn is_done(&self) -> bool {
        self.kmu.is_empty()
            && self.launch_model.in_flight() == 0
            && self.launch_backlog.is_empty()
            && self.spill_queue.is_empty()
            && self.delayed_launches.is_empty()
            && self.undispatched == 0
            && self.smxs.iter().all(|s| s.resident_tbs() == 0)
    }

    /// Opens a profiled loop iteration: charges the pending wake-source
    /// tag (set by the *previous* iteration's advance), counts the
    /// iteration, records heap depth (event engine only), and decides
    /// whether this iteration's host-time spans are sampled. Returns
    /// `false` (never sample) when profiling is off, so the hot loop
    /// pays one branch.
    fn prof_begin(&mut self, heap_depth: Option<u64>) -> bool {
        let Some(p) = &mut self.engine_prof else { return false };
        p.stats.wake_counts[p.next_wake.index()] += 1;
        p.stats.loop_iterations += 1;
        if let Some(d) = heap_depth {
            p.stats.heap_depth.record(d);
        }
        let sample = (p.stats.loop_iterations - 1) % p.stats.host_sampling == 0;
        p.stats.host_samples += u64::from(sample);
        sample
    }

    /// Closes a sampled host-time span around stage `stage`
    /// (indexes [`crate::stats::ENGINE_HOST_COMPONENTS`]).
    fn prof_add(&mut self, stage: usize, t0: Option<Instant>) {
        if let (Some(t0), Some(p)) = (t0, &mut self.engine_prof) {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            p.stats.host_ns[stage] = p.stats.host_ns[stage].saturating_add(ns);
        }
    }

    /// Tags what the *next* loop iteration will have been woken by, and
    /// records the length of the cycle jump that reaches it (0 for a
    /// consecutive cycle).
    fn prof_set_wake(&mut self, source: WakeSource, jump: u64) {
        if let Some(p) = &mut self.engine_prof {
            if jump > 0 {
                p.stats.jump_len.record(jump);
            }
            p.next_wake = source;
        }
    }

    /// Advances the simulation by one cycle.
    ///
    /// # Errors
    ///
    /// Propagates scheduler misbehavior ([`SimError::BadDispatch`]),
    /// invalid device launches ([`SimError::KernelTooLarge`]), a tripped
    /// forward-progress watchdog ([`SimError::NoForwardProgress`]), and
    /// violated engine invariants ([`SimError::EngineInvariant`]).
    pub fn step(&mut self) -> Result<(), SimError> {
        let now = self.cycle;
        let sample = self.prof_begin(None);
        self.watchdog_check(now)?;
        let t = sample.then(Instant::now);
        self.stage_launch_maturation(now)?;
        self.prof_add(0, t);
        let t = sample.then(Instant::now);
        self.stage_kmu_dispatch(now)?;
        self.prof_add(1, t);
        let t = sample.then(Instant::now);
        self.stage_tb_dispatch(now)?;
        self.prof_add(2, t);

        // 4. SMXs execute, in ascending index order (the launch-credit
        // pool and launch submission order depend on it).
        let t = sample.then(Instant::now);
        let mut launch_credits = self.launch_credit_pool();
        for i in 0..self.smxs.len() {
            if self.fault.as_ref().is_some_and(|p| p.smx_killed_at(SmxId(i as u16), now)) {
                // A killed SMX issues nothing this cycle. Its deferred
                // stall accounting charges the frozen span to whatever
                // it was last waiting on.
                continue;
            }
            self.run_smx(i, now, &mut launch_credits)?;
        }
        self.prof_add(3, t);

        self.cycle += 1;
        if self.cfg.fast_forward {
            let t = sample.then(Instant::now);
            self.fast_forward();
            self.prof_add(4, t);
        } else {
            // Stepping every cycle: the next iteration is an ordinary
            // per-component tick on the consecutive cycle.
            self.prof_set_wake(WakeSource::ComponentTick, 0);
        }
        Ok(())
    }

    /// Stage 0: once per window, compare the progress counters against
    /// the last snapshot and re-arm the deadline.
    fn watchdog_check(&mut self, now: Cycle) -> Result<(), SimError> {
        if now >= self.watchdog_deadline {
            let sig = self.progress_signature();
            if sig == self.watchdog_sig {
                return Err(self.no_forward_progress(now));
            }
            self.watchdog_sig = sig;
            self.watchdog_deadline =
                now.saturating_add(self.cfg.watchdog_window.unwrap_or(Cycle::MAX));
        }
        Ok(())
    }

    /// Stage 1: matured device-side launches enter the scheduling
    /// hardware.
    fn stage_launch_maturation(&mut self, now: Cycle) -> Result<(), SimError> {
        // Held-back work first (fault delays, spilled launches, KMU
        // backlog — all empty in the default unbounded configuration),
        // then the launch model's own matured launches.
        if !self.delayed_launches.is_empty() {
            let mut i = 0;
            while i < self.delayed_launches.len() {
                if self.delayed_launches[i].0 <= now {
                    let (_, req) = self.delayed_launches.remove(i);
                    self.admit_to_launch_model(req, now);
                } else {
                    i += 1;
                }
            }
        }
        while let Some(&(ready, _)) = self.spill_queue.front() {
            if ready > now || !self.launch_buffer_has_space() {
                break;
            }
            if let Some((_, req)) = self.spill_queue.pop_front() {
                self.launch_model.submit(req);
            }
        }
        while let Some(&(ready, _)) = self.launch_backlog.front() {
            if ready > now {
                break;
            }
            let Some((_, delivery)) = self.launch_backlog.pop_front() else { break };
            if let Some(rejected) = self.deliver_launch(delivery, now)? {
                // The KMU is still full; everything behind this entry
                // contends for the same queue, so stop for this cycle.
                self.launch_backlog.push_front((self.backlog_retry_at(now), rejected));
                break;
            }
        }
        if self.launch_model.in_flight() > 0 {
            let mut deliveries = std::mem::take(&mut self.delivery_scratch);
            self.launch_model.drain_ready(now, &mut deliveries);
            for delivery in deliveries.drain(..) {
                if let Some(rejected) = self.deliver_launch(delivery, now)? {
                    self.kmu_overflows += 1;
                    self.launch_backlog.push_back((self.backlog_retry_at(now), rejected));
                    self.backlog_hwm = self.backlog_hwm.max(self.launch_backlog.len() as u64);
                }
            }
            self.delivery_scratch = deliveries;
        }
        Ok(())
    }

    /// Stage 2: KMU moves pending kernels into free KDU entries (unless
    /// a fault window holds the dispatch path down).
    fn stage_kmu_dispatch(&mut self, now: Cycle) -> Result<(), SimError> {
        let kmu_blocked = self.fault.as_ref().is_some_and(|p| p.queue_full_at(now));
        if !kmu_blocked {
            for _ in 0..self.cfg.kmu_dispatch_per_cycle {
                if self.kmu.is_empty() || !self.kdu.has_free_entry() {
                    break;
                }
                let picked = {
                    let view =
                        KmuView { pending: self.kmu.make_contiguous(), batches: &self.batches };
                    let len = view.len();
                    self.scheduler.kmu_pick(&view).map(|idx| idx.min(len - 1))
                };
                // A scheduler may decline to dispatch (backpressure on
                // its internal queues); the kernel stays in the KMU.
                let Some(idx) = picked else { break };
                let Some(id) = self.kmu.take(idx) else {
                    return Err(SimError::EngineInvariant {
                        cycle: now,
                        what: format!("KMU pick {idx} out of range"),
                    });
                };
                let Some(entry) = self.kdu.insert(id) else {
                    return Err(SimError::EngineInvariant {
                        cycle: now,
                        what: format!("KDU rejected {id} despite a checked-free entry"),
                    });
                };
                self.emit(now, TraceEvent::KernelToKdu { batch: id, entry });
                self.make_schedulable(id, entry, now)?;
            }
        }
        Ok(())
    }

    /// Stage 3: the SMX scheduler dispatches at most one TB. The
    /// scheduler's `pick` runs (and may mutate its cost counters) on
    /// every cycle with undispatched TBs, so neither engine mode may
    /// skip such a cycle.
    fn stage_tb_dispatch(&mut self, now: Cycle) -> Result<(), SimError> {
        if self.undispatched > 0 {
            self.prune_sched_list();
            self.smx_free_scratch.clear();
            self.smx_free_scratch.extend(self.smxs.iter().map(Smx::free));
            let decision = self.scheduler.pick(&DispatchView {
                cycle: now,
                schedulable: &self.sched_list[self.sched_head..],
                batches: &self.batches,
                smx_free: &self.smx_free_scratch,
            });
            // Queue dequeues / steals / backup adoptions happen inside
            // `pick`; surface them before the dispatch they produced.
            self.drain_sched_trace(now);
            if let Some(d) = decision {
                self.place(d, now)?;
            }
        }
        Ok(())
    }

    /// The stage-4 launch-credit pool. Under a finite pending-launch
    /// buffer with the StallParent policy, the remaining buffer slots
    /// gate launch issue as a credit pool shared across SMXs this
    /// cycle; with unbounded limits the pool is infinite and the gate
    /// is inert.
    fn launch_credit_pool(&self) -> u64 {
        match (self.cfg.launch_limits.pending_launch_capacity, self.cfg.launch_limits.policy) {
            (Some(cap), OverflowPolicy::StallParent) => {
                (cap as u64).saturating_sub(self.launch_model.in_flight() as u64)
            }
            _ => u64::MAX,
        }
    }

    /// Steps one (alive) SMX and absorbs its launches and completions.
    fn run_smx(&mut self, i: usize, now: Cycle, launch_credits: &mut u64) -> Result<(), SimError> {
        {
            let events = self.smxs[i].step_gated(now, &mut self.mem, &self.cfg, launch_credits);
            for launch in events.launches {
                let parent_batch = launch.by.batch;
                let parent_priority = self.batches[parent_batch.index()].priority;
                // Validate the child's shape before it enters the launch
                // path, so misbehaving workloads fail loudly.
                if launch.spec.num_tbs == 0 || launch.spec.req.threads == 0 {
                    return Err(SimError::KernelTooLarge {
                        batch: BatchId(self.batches.len() as u32),
                        reason: "device launch with empty grid or zero-thread TBs".into(),
                    });
                }
                self.emit(
                    now,
                    TraceEvent::LaunchIssued { by: launch.by, num_tbs: launch.spec.num_tbs },
                );
                self.submit_launch(
                    LaunchRequest {
                        kind: launch.spec.kind,
                        param: launch.spec.param,
                        num_tbs: launch.spec.num_tbs,
                        req: launch.spec.req,
                        origin: Origin {
                            parent_batch,
                            parent_tb: launch.by.index,
                            parent_smx: launch.smx,
                            parent_priority,
                        },
                        issued_at: now,
                    },
                    now,
                );
            }
            for completion in events.completions {
                self.finish_tb(completion, now)?;
            }
        }
        Ok(())
    }

    /// The cycle at which SMX `i` next does observable work, at or after
    /// `floor`: its resident TBs' earliest ready time, pushed past any
    /// `KillSmx` window covering it. `Cycle::MAX` when the SMX is empty
    /// or a window holds it down forever.
    fn smx_wake_for(&self, i: usize, floor: Cycle) -> Cycle {
        if self.smxs[i].resident_tbs() == 0 {
            return Cycle::MAX;
        }
        let wake = self.smxs[i].next_event().max(floor);
        match &self.fault {
            Some(p) => p.first_alive(SmxId(i as u16), wake).unwrap_or(Cycle::MAX),
            None => wake,
        }
    }

    /// Records `at` as SMX `i`'s next wake-up and schedules it in the
    /// event heap. Superseded heap entries are left in place; they are
    /// recognized (cycle no longer matches `smx_wake`) and discarded
    /// when popped.
    fn set_smx_wake(&mut self, i: usize, at: Cycle) {
        if self.smx_wake[i] == at {
            return;
        }
        self.smx_wake[i] = at;
        if at != Cycle::MAX {
            self.event_heap.push(Reverse((at, i as u16)));
        }
    }

    /// One iteration of the event engine: the same stage pipeline as
    /// [`step`](Self::step), but stage 4 visits only the SMXs whose
    /// scheduled wake-up is due (popped from the min-heap in
    /// (cycle, index) order, which preserves the launch-credit and
    /// submission ordering of the linear scan), and the cycle counter
    /// then jumps to the machine's next event instead of incrementing
    /// blindly.
    fn step_event(&mut self) -> Result<(), SimError> {
        let now = self.cycle;
        let heap_depth = self.event_heap.len() as u64;
        let sample = self.prof_begin(Some(heap_depth));
        self.watchdog_check(now)?;
        let t = sample.then(Instant::now);
        self.stage_launch_maturation(now)?;
        self.prof_add(0, t);
        let t = sample.then(Instant::now);
        self.stage_kmu_dispatch(now)?;
        self.prof_add(1, t);
        let t = sample.then(Instant::now);
        self.stage_tb_dispatch(now)?;
        self.prof_add(2, t);

        let t = sample.then(Instant::now);
        let mut launch_credits = self.launch_credit_pool();
        let mut due: u64 = 0;
        while let Some(&Reverse((wake, idx))) = self.event_heap.peek() {
            if wake > now {
                break;
            }
            self.event_heap.pop();
            let i = idx as usize;
            if self.smx_wake[i] != wake {
                continue; // superseded entry
            }
            due += 1;
            if self.fault.as_ref().is_some_and(|p| p.smx_killed_at(SmxId(idx), now)) {
                let at = self.smx_wake_for(i, now.saturating_add(1));
                self.set_smx_wake(i, at);
                continue;
            }
            self.run_smx(i, now, &mut launch_credits)?;
            let at = self.smx_wake_for(i, now.saturating_add(1));
            self.set_smx_wake(i, at);
        }
        self.prof_add(3, t);
        if let Some(p) = &mut self.engine_prof {
            p.stats.events_per_cycle.record(due);
        }

        self.cycle += 1;
        let t = sample.then(Instant::now);
        self.event_advance();
        self.prof_add(4, t);
        Ok(())
    }

    /// Advances `cycle` to the next cycle on which any stage can act:
    /// the earliest of TB dispatch (every cycle while TBs await
    /// dispatch), KMU→KDU dispatch (every cycle the queue is open with
    /// a free entry — the scheduler's `kmu_pick` may mutate counters
    /// even when it declines), held-back launch-path work, launch-model
    /// maturity, and the SMX wake heap. With no event pending on a
    /// non-drained machine (every resident SMX killed forever), jumps
    /// to the watchdog deadline *without* re-arming it, so the wedge is
    /// diagnosed on the same cycle as single-stepping would.
    ///
    /// Disabled (the engine steps every cycle) when `cfg.fast_forward`
    /// is off, which keeps the off-switch meaning "no cycle is ever
    /// skipped" in both engine modes.
    fn event_advance(&mut self) {
        if !self.cfg.fast_forward {
            // Stepping every cycle: every iteration is an ordinary
            // consecutive-cycle tick.
            self.prof_set_wake(WakeSource::ComponentTick, 0);
            return;
        }
        let c = self.cycle;
        let mut target = Cycle::MAX;
        // Which candidate arm produced the winning (earliest) target.
        // Ties keep the first winner, matching the original
        // `target.min(at)` fold exactly (`at < target` strictly).
        let mut source = WakeSource::ComponentTick;
        if self.undispatched > 0 {
            target = c;
        } else {
            if !self.kmu.is_empty() && self.kdu.has_free_entry() {
                let open = match &self.fault {
                    Some(p) => p.first_queue_open(c),
                    None => Some(c),
                };
                if let Some(open) = open {
                    let at = open.max(c);
                    if at < target {
                        target = at;
                        // Waiting on a QueueFull window to lift is a
                        // fault edge; an already-open queue is a plain
                        // dispatch tick.
                        source = if open > c {
                            WakeSource::FaultEdge
                        } else {
                            WakeSource::ComponentTick
                        };
                    }
                }
            }
            for &(ready, _) in &self.delayed_launches {
                let at = ready.max(c);
                if at < target {
                    target = at;
                    source = WakeSource::FaultEdge;
                }
            }
            if let Some(&(ready, _)) = self.spill_queue.front() {
                if self.launch_buffer_has_space() {
                    let at = ready.max(c);
                    if at < target {
                        target = at;
                        source = WakeSource::BackpressureRelease;
                    }
                }
                // With the buffer full, the release is gated on a
                // delivery maturing, which the in-flight arm below
                // already wakes for.
            }
            if let Some(&(ready, _)) = self.launch_backlog.front() {
                let at = ready.max(c);
                if at < target {
                    target = at;
                    source = WakeSource::BackpressureRelease;
                }
            }
            if self.launch_model.in_flight() > 0 {
                let ready = self.launch_model.next_ready().unwrap_or(c);
                let at = ready.max(c);
                if at < target {
                    target = at;
                    source = WakeSource::ComponentTick;
                }
            }
            while let Some(&Reverse((wake, idx))) = self.event_heap.peek() {
                if self.smx_wake[idx as usize] == wake {
                    if wake < target {
                        target = wake;
                        source = WakeSource::ComponentTick;
                    }
                    break;
                }
                self.event_heap.pop(); // superseded entry
            }
        }

        let wedge = target == Cycle::MAX;
        if wedge {
            if self.is_done() {
                return;
            }
            target = self.watchdog_deadline;
        }
        let target = target.min(self.cfg.max_cycles.saturating_add(1));
        let jump = target.saturating_sub(c);
        self.prof_set_wake(
            if wedge {
                WakeSource::WatchdogDeadline
            } else if jump >= 1 {
                WakeSource::FastForwardJump
            } else {
                source
            },
            jump,
        );
        if target > c {
            self.fast_forwarded_cycles += target - c;
            self.emit(c, TraceEvent::FastForward { from: c, to: target });
            self.cycle = target;
            if !wedge {
                // A jump lands exactly on the machine's next event,
                // which is progress by construction; push the watchdog
                // deadline past it so a long (legitimate) idle stretch
                // cannot trip it. A wedge jump deliberately leaves the
                // deadline alone so the stage-0 compare fires there.
                if let Some(window) = self.cfg.watchdog_window {
                    self.watchdog_deadline =
                        self.watchdog_deadline.max(target.saturating_add(window));
                }
            }
        }
    }

    /// Runs the machine on the discrete-event engine until
    /// [`is_done`](Self::is_done) or the cycle limit.
    fn run_event(&mut self) -> Result<SimStats, SimError> {
        self.event_live = true;
        self.event_heap.clear();
        self.smx_wake.clear();
        self.smx_wake.resize(self.smxs.len(), Cycle::MAX);
        for i in 0..self.smxs.len() {
            // Seed from each component's published wake-up.
            if Component::next_tick(&self.smxs[i]).is_some() {
                let at = self.smx_wake_for(i, self.cycle);
                self.set_smx_wake(i, at);
            }
        }
        while !self.is_done() {
            self.step_event()?;
            if self.cycle > self.cfg.max_cycles {
                return Err(SimError::CycleLimitExceeded { limit: self.cfg.max_cycles });
            }
        }
        Ok(self.stats())
    }

    /// Jumps `cycle` over a provably idle stretch.
    ///
    /// Safe because idle cycles mutate nothing: SMX `step` early-returns
    /// before [`Smx::next_event`], launch models only act when a launch
    /// matures, and memory latencies are computed lazily at access time.
    /// The jump is therefore bit-identical to stepping each skipped cycle
    /// (asserted by `tests/determinism.rs`). We only jump when no KMU
    /// kernel is pending and no TB is undispatched, since those stages
    /// (and their scheduler cost counters) can act on any cycle.
    ///
    /// Fault windows clamp rather than disable the jump: a killed SMX
    /// contributes its release edge (`FaultPlan::first_alive`) and a
    /// fault-delayed launch its maturity cycle, so the skip lands
    /// exactly where the machine next changes state.
    fn fast_forward(&mut self) {
        if !self.kmu.is_empty() || self.undispatched > 0 {
            self.prof_set_wake(WakeSource::ComponentTick, 0);
            return;
        }
        // KMU-backlog retries and spill releases can act on any upcoming
        // cycle the buffer has space; never jump over them. Both queues
        // stay empty under unbounded limits.
        if !self.launch_backlog.is_empty() || !self.spill_queue.is_empty() {
            self.prof_set_wake(WakeSource::BackpressureRelease, 0);
            return;
        }
        let mut target = match self.launch_model.next_ready() {
            Some(ready) => ready,
            None => Cycle::MAX,
        };
        for &(ready, _) in &self.delayed_launches {
            target = target.min(ready.max(self.cycle));
        }
        let mut any_resident = false;
        for i in 0..self.smxs.len() {
            if self.smxs[i].resident_tbs() > 0 {
                any_resident = true;
                target = target.min(self.smx_wake_for(i, self.cycle));
            }
        }
        let wedge = target == Cycle::MAX;
        if wedge {
            if !any_resident {
                // Machine is done; leave `cycle` where the last event
                // put it.
                return;
            }
            // Every resident SMX is killed with no release edge and no
            // launch can mature: jump to the watchdog deadline without
            // re-arming it, so the stage-0 compare fires on the same
            // cycle single-stepping would reach.
            target = self.watchdog_deadline;
        }
        // Clamp so `run_to_completion` reports CycleLimitExceeded at the
        // same cycle count as single-stepping would.
        let target = target.min(self.cfg.max_cycles.saturating_add(1));
        let jump = target.saturating_sub(self.cycle);
        self.prof_set_wake(
            if wedge {
                WakeSource::WatchdogDeadline
            } else if jump >= 1 {
                WakeSource::FastForwardJump
            } else {
                WakeSource::ComponentTick
            },
            jump,
        );
        if target > self.cycle {
            let skipped = target - self.cycle;
            self.fast_forwarded_cycles += skipped;
            // No stall bookkeeping needed: SMX accounting is deferred,
            // so skipped cycles are charged to each SMX's (unchanged)
            // wait cause on its next active step or stats read.
            self.emit(self.cycle, TraceEvent::FastForward { from: self.cycle, to: target });
            self.cycle = target;
            // A jump lands exactly on the machine's next event, which is
            // progress by construction; push the watchdog deadline past
            // it so a long (legitimate) idle stretch cannot trip it. A
            // wedge jump deliberately leaves the deadline alone.
            if !wedge {
                if let Some(window) = self.cfg.watchdog_window {
                    self.watchdog_deadline =
                        self.watchdog_deadline.max(target.saturating_add(window));
                }
            }
        }
    }

    /// The counter snapshot the watchdog compares across a window.
    fn progress_signature(&self) -> ProgressSignature {
        (
            self.dispatch_seq,
            self.finished_tbs_total,
            self.batches.len() as u64,
            self.smxs.iter().map(|s| s.warp_instructions).sum(),
            self.launch_submitted_total,
            self.delivered_total,
        )
    }

    /// Builds the watchdog report: resident TBs first (with their SMX
    /// and its current wait cause), then batches still awaiting dispatch.
    fn no_forward_progress(&self, now: Cycle) -> SimError {
        let mut suspects = Vec::new();
        'resident: for smx in &self.smxs {
            for tb in smx.resident_refs() {
                if suspects.len() >= MAX_WATCHDOG_SUSPECTS {
                    break 'resident;
                }
                suspects.push(StuckTb {
                    tb,
                    smx: Some(smx.id()),
                    level: self.batches[tb.batch.index()].priority.0,
                    cause: Some(smx.wait_cause()),
                });
            }
        }
        for b in &self.batches {
            if suspects.len() >= MAX_WATCHDOG_SUSPECTS {
                break;
            }
            if b.state != BatchState::Complete && b.has_undispatched_tbs() {
                suspects.push(StuckTb {
                    tb: TbRef { batch: b.id, index: b.next_tb },
                    smx: None,
                    level: b.priority.0,
                    cause: None,
                });
            }
        }
        SimError::NoForwardProgress {
            window: self.cfg.watchdog_window.unwrap_or(0),
            cycle: now,
            suspects,
        }
    }

    /// When a KMU-rejected delivery retries: next cycle under
    /// `StallParent` (the message waits at the queue head), after the
    /// virtual-queue round trip under `SpillVirtual`.
    fn backlog_retry_at(&self, now: Cycle) -> Cycle {
        match self.cfg.launch_limits.policy {
            OverflowPolicy::StallParent => now + 1,
            OverflowPolicy::SpillVirtual { extra_latency } => now + 1 + u64::from(extra_latency),
        }
    }

    /// `true` while the pending-launch buffer can take another launch.
    fn launch_buffer_has_space(&self) -> bool {
        self.cfg
            .launch_limits
            .pending_launch_capacity
            .is_none_or(|cap| self.launch_model.in_flight() < cap)
    }

    /// Routes a launch that already passed fault disposition into the
    /// launch model, spilling to the virtual queue when the pending
    /// buffer is full under `SpillVirtual`. (Under `StallParent` the
    /// credit gate in `step` prevents over-submission instead.)
    fn admit_to_launch_model(&mut self, req: LaunchRequest, now: Cycle) {
        if let OverflowPolicy::SpillVirtual { extra_latency } = self.cfg.launch_limits.policy {
            if !self.launch_buffer_has_space() {
                self.spill_events += 1;
                self.spill_queue.push_back((now + u64::from(extra_latency), req));
                self.spill_hwm = self.spill_hwm.max(self.spill_queue.len() as u64);
                return;
            }
        }
        self.launch_model.submit(req);
    }

    /// Accepts a launch issued by an SMX this cycle: counts it, applies
    /// fault disposition (drop / delay), then admits it.
    fn submit_launch(&mut self, req: LaunchRequest, now: Cycle) {
        self.launch_submitted_total += 1;
        let nth = self.launch_submitted_total;
        if let Some(plan) = &mut self.fault {
            match plan.launch_disposition(nth) {
                LaunchDisposition::Pass => {}
                LaunchDisposition::Drop => return,
                LaunchDisposition::Delay(extra) => {
                    self.delayed_launches.push((now.saturating_add(extra), req));
                    return;
                }
            }
        }
        self.admit_to_launch_model(req, now);
    }

    /// Runs until [`is_done`](Self::is_done) or the cycle limit, on the
    /// engine selected by [`GpuConfig::engine_mode`]. Both engines
    /// produce bit-identical statistics, trace streams (modulo
    /// `FastForward` markers), and errors (asserted by
    /// `tests/engine_equivalence.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimitExceeded`] past `cfg.max_cycles`, or
    /// any error from [`step`](Self::step).
    pub fn run_to_completion(&mut self) -> Result<SimStats, SimError> {
        match self.cfg.engine_mode {
            EngineMode::Event => self.run_event(),
            EngineMode::CycleStepped => {
                while !self.is_done() {
                    self.step()?;
                    if self.cycle > self.cfg.max_cycles {
                        return Err(SimError::CycleLimitExceeded { limit: self.cfg.max_cycles });
                    }
                }
                Ok(self.stats())
            }
        }
    }

    /// A snapshot of the statistics so far.
    pub fn stats(&self) -> SimStats {
        SimStats {
            cycles: self.cycle,
            warp_instructions: self.smxs.iter().map(|s| s.warp_instructions).sum(),
            instruction_mix: {
                let mut mix = crate::stats::InstructionMix::default();
                for s in &self.smxs {
                    mix.merge(&s.instruction_mix);
                }
                mix
            },
            thread_instructions: self.smxs.iter().map(|s| s.thread_instructions).sum(),
            l1: self.mem.l1_stats_total(),
            l2: *self.mem.l2_stats(),
            dram_accesses: self.mem.dram_accesses(),
            dram_mean_queueing: self.mem.dram_mean_queueing(),
            dram_row_hit_rate: self.mem.dram_row_hit_rate(),
            mshr_merges: self.mem.mshr_merges(),
            l2_writebacks: self.mem.l2_writebacks(),
            smx_busy_cycles: self.smxs.iter().map(|s| s.busy_cycles).collect(),
            smx_stalls: self.smxs.iter().map(|s| s.stalls(self.cycle)).collect(),
            smx_tbs: self.smxs.iter().map(|s| s.tbs_executed).collect(),
            tb_records: self.tb_records.clone(),
            scheduler_counters: self.scheduler.counters(),
            launch_counters: {
                // Engine-level overflow counters only appear when the
                // launch path can actually overflow, keeping default-run
                // reports (and goldens) unchanged; model counters (e.g.
                // DTBL table overflows) are always surfaced.
                let mut counters = Vec::new();
                if !self.cfg.launch_limits.is_unbounded() {
                    counters.push(("kmu_overflows", self.kmu_overflows));
                    counters.push(("launch_backlog_hwm", self.backlog_hwm));
                    counters.push(("spill_events", self.spill_events));
                    counters.push(("spill_occupancy_hwm", self.spill_hwm));
                }
                if let Some(plan) = &self.fault {
                    counters.push(("fault_dropped_launches", plan.dropped));
                    counters.push(("fault_delayed_launches", plan.delayed));
                }
                counters.extend(self.launch_model.counters());
                counters
            },
            scheduler: self.scheduler.name().to_string(),
            launch_model: self.launch_model.name().to_string(),
            locality: self.cfg.profile_locality.then(|| {
                let mut bind = crate::stats::BindReuse::default();
                for s in &self.smxs {
                    bind.merge(&s.bind_reuse);
                }
                LocalityStats {
                    l1_reuse_dist: self.mem.l1_reuse_dist_total(),
                    l2_reuse_dist: self.mem.l2_reuse_dist(),
                    bind,
                }
            }),
            engine: self.engine_prof.as_ref().map(|p| p.stats.clone()),
            latency: self.latency.as_ref().map(|l| self.build_latency_stats(l)),
        }
    }

    /// Aggregates the per-TB lifecycle stamps into [`LatencyStats`].
    /// Only retired TBs contribute (the `first_issue_at` sentinel marks
    /// unfinished ones); on a completed run that is every dispatched TB,
    /// which the `lat-partition-exact` shape assertion relies on.
    fn build_latency_stats(&self, l: &LatencyState) -> LatencyStats {
        use std::collections::BTreeMap;
        let mut s = LatencyStats { kmu_depth_hwm: self.kmu.depth_hwm(), ..LatencyStats::default() };
        let mut depth: BTreeMap<u8, Pow2Hist> = BTreeMap::new();
        let mut kind: BTreeMap<u16, Pow2Hist> = BTreeMap::new();
        for (r, t) in self.tb_records.iter().zip(&l.tb) {
            if t.first_issue_at == Cycle::MAX {
                continue; // still resident at stats() time
            }
            let ordered = r.created_at <= t.matured_at
                && t.matured_at <= t.schedulable_at
                && t.schedulable_at <= r.dispatched_at
                && r.dispatched_at <= t.first_issue_at
                && t.first_issue_at <= r.finished_at;
            if !ordered {
                // Out-of-order stamps would make the components lie;
                // count the TB instead of recording a garbage partition.
                s.partition_violations += 1;
                continue;
            }
            s.tbs += 1;
            let queue_wait = r.dispatched_at - t.schedulable_at;
            s.launch_path.record(t.schedulable_at - r.created_at);
            s.kmu_wait.record(t.schedulable_at - t.matured_at);
            s.queue_wait.record(queue_wait);
            s.dispatch_gap.record(t.first_issue_at - r.dispatched_at);
            s.exec.record(r.finished_at - t.first_issue_at);
            s.lifetime.record(r.finished_at - r.created_at);
            if r.is_dynamic {
                s.child_queue_wait.record(queue_wait);
                if r.parent.is_some_and(|(_, _, parent_smx)| parent_smx == r.smx) {
                    s.bound_queue_wait.record(queue_wait);
                } else {
                    s.stolen_queue_wait.record(queue_wait);
                }
            }
            depth.entry(r.priority.0).or_default().record(queue_wait);
            kind.entry(r.kind.0).or_default().record(r.finished_at - r.created_at);
        }
        s.depth_queue_wait = depth.into_iter().collect();
        s.kind_lifetime = kind.into_iter().collect();
        s.critical_path = self.build_critical_path(l);
        s
    }

    /// Extracts the run's critical path: starting from the TB that
    /// retired last (earliest dispatch index on ties, deterministic),
    /// walk the `TbRecord::parent` lineage root-ward. Each chain TB
    /// contributes `first_issue - created` to queueing and the span from
    /// its first issue to its chain-child's launch issue (retirement,
    /// for the final TB) to execution, so the two sums telescope to
    /// exactly `finished(final) - created(top)` — a child's launch is
    /// issued at or after its parent's first instruction. The walk stops
    /// early at a still-resident ancestor (a parent can outlive its
    /// children); the attribution stays exact for the truncated chain.
    fn build_critical_path(&self, l: &LatencyState) -> CriticalPath {
        let mut last: Option<usize> = None;
        for (i, (r, t)) in self.tb_records.iter().zip(&l.tb).enumerate() {
            if t.first_issue_at == Cycle::MAX {
                continue;
            }
            if last.is_none_or(|j| r.finished_at > self.tb_records[j].finished_at) {
                last = Some(i);
            }
        }
        let Some(last) = last else { return CriticalPath::default() };
        let final_finished = self.tb_records[last].finished_at;
        let mut cp = CriticalPath::default();
        let mut i = last;
        // `created_at` of the previously visited (chain-child) TB; the
        // final TB's execution span instead ends at its retirement.
        let mut child_created: Option<Cycle> = None;
        let mut top_created;
        loop {
            let r = &self.tb_records[i];
            let first_issue = l.tb[i].first_issue_at;
            cp.chain.push(r.tb);
            cp.queue_cycles += first_issue.saturating_sub(r.created_at);
            cp.exec_cycles += child_created.unwrap_or(r.finished_at).saturating_sub(first_issue);
            child_created = Some(r.created_at);
            top_created = r.created_at;
            let Some((parent_batch, parent_tb, _)) = r.parent else { break };
            let parent = TbRef { batch: parent_batch, index: parent_tb };
            match self.record_index.get(&parent) {
                Some(&pi) if l.tb[pi].first_issue_at != Cycle::MAX => i = pi,
                _ => break,
            }
        }
        cp.len = cp.chain.len() as u32;
        cp.cycles = final_finished - top_created;
        cp.chain.reverse();
        cp
    }

    /// Admits a matured launch into the scheduling hardware.
    ///
    /// Returns `Ok(Some(delivery))` — handing the delivery back — when it
    /// needs a KMU slot and the KMU is at its configured capacity; the
    /// caller queues it in the launch backlog. The batch is only created
    /// on admission, so batch IDs stay dense and in admission order.
    fn deliver_launch(
        &mut self,
        delivery: Delivery,
        now: Cycle,
    ) -> Result<Option<Delivery>, SimError> {
        let kmu_has_space =
            self.cfg.launch_limits.kmu_capacity.is_none_or(|cap| self.kmu.len() < cap);
        match delivery {
            Delivery::DeviceKernel(req) => {
                if !kmu_has_space {
                    return Ok(Some(Delivery::DeviceKernel(req)));
                }
                let id = self.create_batch(
                    BatchKind::DeviceKernel,
                    req.kind,
                    req.param,
                    req.num_tbs,
                    req.req,
                    Some(req.origin),
                )?;
                self.batches[id.index()].created_at = req.issued_at;
                self.delivered_total += 1;
                self.kmu.push(id);
                self.lat_mature(id, now);
                self.emit(now, TraceEvent::KernelQueued { batch: id });
            }
            Delivery::TbGroup(req) => {
                let parent_entry = self.batches[req.origin.parent_batch.index()]
                    .kdu_entry
                    .filter(|&e| self.kdu.entry(e).is_some());
                // A group whose parent entry is gone falls back to the
                // KMU and therefore needs a slot there.
                if parent_entry.is_none() && !kmu_has_space {
                    return Ok(Some(Delivery::TbGroup(req)));
                }
                let id = self.create_batch(
                    BatchKind::TbGroup,
                    req.kind,
                    req.param,
                    req.num_tbs,
                    req.req,
                    Some(req.origin),
                )?;
                self.batches[id.index()].created_at = req.issued_at;
                self.delivered_total += 1;
                self.lat_mature(id, now);
                match parent_entry {
                    Some(entry) => {
                        if !self.kdu.attach_group(entry, id) {
                            return Err(SimError::EngineInvariant {
                                cycle: now,
                                what: format!("KDU entry {entry} refused group {id}"),
                            });
                        }
                        self.emit(now, TraceEvent::GroupCoalesced { batch: id, entry });
                        self.make_schedulable(id, entry, now)?;
                    }
                    None => {
                        // The parent kernel's entry is gone; fall back to a
                        // device-kernel launch through the KMU.
                        self.batches[id.index()].batch_kind = BatchKind::DeviceKernel;
                        self.kmu.push(id);
                        self.emit(now, TraceEvent::KernelQueued { batch: id });
                    }
                }
            }
        }
        Ok(None)
    }

    fn make_schedulable(&mut self, id: BatchId, entry: usize, now: Cycle) -> Result<(), SimError> {
        let Some(seq) = self.kdu.entry(entry).map(|e| e.seq) else {
            return Err(SimError::EngineInvariant {
                cycle: now,
                what: format!("KDU entry {entry} vacant while admitting {id}"),
            });
        };
        {
            let b = &mut self.batches[id.index()];
            b.state = BatchState::Schedulable;
            b.schedulable_at = Some(now);
            b.kdu_entry = Some(entry);
            self.undispatched += u64::from(b.num_tbs);
        }
        // Insert in KDU-FCFS order: after the last batch whose entry seq
        // is <= this one (groups go behind their base kernel and earlier
        // siblings).
        let mut pos = self.sched_seq.len();
        while pos > 0 && self.sched_seq[pos - 1] > seq {
            pos -= 1;
        }
        let pos = pos.max(self.sched_head);
        self.sched_list.insert(pos, id);
        self.sched_seq.insert(pos, seq);
        self.scheduler.on_batch_schedulable(&self.batches[id.index()], now);
        self.drain_sched_trace(now);
        Ok(())
    }

    fn prune_sched_list(&mut self) {
        while self.sched_head < self.sched_list.len() {
            let b = &self.batches[self.sched_list[self.sched_head].index()];
            if b.has_undispatched_tbs() {
                break;
            }
            self.sched_head += 1;
        }
        if self.sched_head > SCHED_PRUNE_THRESHOLD {
            self.sched_list.drain(..self.sched_head);
            self.sched_seq.drain(..self.sched_head);
            self.sched_head = 0;
        }
    }

    fn place(&mut self, d: DispatchDecision, now: Cycle) -> Result<(), SimError> {
        let Some(batch) = self.batches.get(d.batch.index()) else {
            return Err(SimError::BadDispatch {
                batch: d.batch,
                smx: d.smx,
                reason: "unknown batch".into(),
            });
        };
        if batch.state != BatchState::Schedulable || !batch.has_undispatched_tbs() {
            return Err(SimError::BadDispatch {
                batch: d.batch,
                smx: d.smx,
                reason: "batch not schedulable or exhausted".into(),
            });
        }
        if d.smx.index() >= self.smxs.len() || !self.smxs[d.smx.index()].fits(&batch.req) {
            return Err(SimError::BadDispatch {
                batch: d.batch,
                smx: d.smx,
                reason: "insufficient SMX resources".into(),
            });
        }

        let (tb_index, kind, param, req, origin, priority, created_at, schedulable_at) = {
            let b = &mut self.batches[d.batch.index()];
            let tb_index = b.next_tb;
            b.next_tb += 1;
            (tb_index, b.kind, b.param, b.req, b.origin, b.priority, b.created_at, b.schedulable_at)
        };
        self.undispatched -= 1;

        let tb = TbRef { batch: d.batch, index: tb_index };
        let program = self.source.tb_program(kind, param, tb_index);
        let class = if origin.is_some() { AccessClass::Child } else { AccessClass::Parent };
        self.dispatch_seq += 1;
        if self.cfg.profile_locality {
            let lineage = self.lineage_of(tb, d.smx, origin);
            self.smxs[d.smx.index()].place_traced(
                tb,
                class,
                program,
                req,
                self.dispatch_seq,
                now,
                self.cfg.warp_size,
                lineage,
            );
        } else {
            self.smxs[d.smx.index()].place(
                tb,
                class,
                program,
                req,
                self.dispatch_seq,
                now,
                self.cfg.warp_size,
            );
        }

        if self.event_live {
            // The placed TB is runnable this very cycle; stage 4 of the
            // event engine must see the SMX in its due set.
            let at = self.smx_wake_for(d.smx.index(), now);
            self.set_smx_wake(d.smx.index(), at);
        }
        self.emit(now, TraceEvent::TbDispatched { tb, smx: d.smx });
        self.record_index.insert(tb, self.tb_records.len());
        self.tb_records.push(TbRecord {
            tb,
            kind,
            smx: d.smx,
            priority,
            is_dynamic: origin.is_some(),
            parent: origin.map(|o| (o.parent_batch, o.parent_tb, o.parent_smx)),
            created_at,
            dispatched_at: now,
            finished_at: 0,
        });
        if let Some(lat) = &mut self.latency {
            // A batch is always schedulable before its TBs dispatch; the
            // `Cycle::MAX` fallback would only fire on an engine bug and
            // then surfaces as a partition violation, not a panic.
            lat.tb.push(TbLat {
                matured_at: lat.batch_matured.get(d.batch.index()).copied().unwrap_or(Cycle::MAX),
                schedulable_at: schedulable_at.unwrap_or(Cycle::MAX),
                first_issue_at: Cycle::MAX,
            });
        }
        Ok(())
    }

    /// Resolves the full ancestry of `tb` (dispatched to `smx` with the
    /// given launch `origin`) by walking the batch table's origin chain.
    /// Only called when `cfg.profile_locality` is on, so plain runs never
    /// pay for the walk.
    fn lineage_of(&self, tb: TbRef, smx: SmxId, origin: Option<Origin>) -> Lineage {
        let mut lineage = Lineage::new(tb, smx);
        lineage.parent_smx = origin.as_ref().map(|o| o.parent_smx);
        let mut cur = origin;
        while let Some(o) = cur {
            lineage.push_ancestor(TbRef { batch: o.parent_batch, index: o.parent_tb });
            cur = self.batches[o.parent_batch.index()].origin;
        }
        lineage
    }

    fn finish_tb(&mut self, c: TbCompletion, now: Cycle) -> Result<(), SimError> {
        self.emit(now, TraceEvent::TbCompleted { tb: c.tb, smx: c.smx });
        self.finished_tbs_total += 1;
        if let Some(&i) = self.record_index.get(&c.tb) {
            self.tb_records[i].finished_at = c.finished_at;
            if let Some(lat) = &mut self.latency {
                // A TB that retired without issuing (empty program)
                // keeps the SMX sentinel; charge its whole residency to
                // exec by treating retirement as the first issue.
                lat.tb[i].first_issue_at =
                    if c.first_issue_at == Cycle::MAX { c.finished_at } else { c.first_issue_at };
            }
        }
        let (complete, entry) = {
            let b = &mut self.batches[c.tb.batch.index()];
            b.finished_tbs += 1;
            let complete = b.is_complete();
            if complete {
                b.state = BatchState::Complete;
            }
            (complete, b.kdu_entry)
        };
        self.scheduler.on_tb_finished(c.tb, c.smx, now);

        if complete {
            if let Some(e) = entry {
                let all_done = self.kdu.entry(e).is_some_and(|entry| {
                    let done = |id: BatchId| self.batches[id.index()].state == BatchState::Complete;
                    done(entry.base) && entry.groups.iter().all(|&g| done(g))
                });
                if all_done {
                    let Some(removed) = self.kdu.remove(e) else {
                        return Err(SimError::EngineInvariant {
                            cycle: now,
                            what: format!("KDU entry {e} vanished during completion sweep"),
                        });
                    };
                    self.batches[removed.base.index()].kdu_entry = None;
                    for g in removed.groups {
                        self.batches[g.index()].kdu_entry = None;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::program::{AddrPattern, LaunchSpec, MemOp, TbOp, TbProgram};

    /// Each parent TB does some compute; TB index `launcher` launches
    /// `children` child TBs that load the same lines the parent touched.
    struct NestedSource {
        launcher: u32,
        children: u32,
    }

    impl ProgramSource for NestedSource {
        fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
            match kind.0 {
                0 => {
                    let mut ops = vec![
                        TbOp::Mem(MemOp::load(AddrPattern::Strided {
                            base: u64::from(tb_index) * 4096,
                            stride: 4,
                        })),
                        TbOp::Compute(8),
                    ];
                    if tb_index == self.launcher {
                        ops.push(TbOp::Launch(LaunchSpec {
                            kind: KernelKindId(1),
                            param: u64::from(tb_index),
                            num_tbs: self.children,
                            req: ResourceReq::new(32, 8, 0),
                        }));
                    }
                    TbProgram::new(ops)
                }
                _ => TbProgram::new(vec![
                    TbOp::Mem(MemOp::load(AddrPattern::Strided { base: param * 4096, stride: 4 })),
                    TbOp::Compute(4),
                ]),
            }
        }
    }

    fn simple_sim() -> Simulator {
        Simulator::new(GpuConfig::small_test(), Box::new(NestedSource { launcher: 1, children: 3 }))
    }

    #[test]
    fn host_kernel_runs_to_completion() {
        let mut sim = simple_sim();
        sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        assert!(sim.is_done());
        // 6 parents + 3 children.
        assert_eq!(stats.tb_records.len(), 9);
        assert_eq!(stats.dynamic_tbs(), 3);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn every_tb_retires() {
        let mut sim = simple_sim();
        sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        for r in &stats.tb_records {
            assert!(r.finished_at >= r.dispatched_at, "TB {} never retired", r.tb);
        }
    }

    #[test]
    fn child_records_carry_parent_info() {
        let mut sim = simple_sim();
        sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        let children: Vec<_> = stats.tb_records.iter().filter(|r| r.is_dynamic).collect();
        assert_eq!(children.len(), 3);
        for c in children {
            let (pb, ptb, _psmx) = c.parent.unwrap();
            assert_eq!(pb, BatchId(0));
            assert_eq!(ptb, 1);
            assert_eq!(c.priority, Priority(1));
        }
    }

    #[test]
    fn zero_tb_host_kernel_rejected() {
        let mut sim = simple_sim();
        let err =
            sim.launch_host_kernel(KernelKindId(0), 0, 0, ResourceReq::new(64, 8, 0)).unwrap_err();
        assert!(matches!(err, SimError::KernelTooLarge { .. }));
    }

    #[test]
    fn oversized_kernel_rejected() {
        let mut sim = simple_sim();
        let cfg_threads = sim.config().max_threads_per_smx;
        let err = sim
            .launch_host_kernel(KernelKindId(0), 0, 1, ResourceReq::new(cfg_threads + 1, 8, 0))
            .unwrap_err();
        assert!(matches!(err, SimError::KernelTooLarge { .. }));
    }

    #[test]
    fn empty_machine_is_done() {
        let sim = simple_sim();
        assert!(sim.is_done());
    }

    #[test]
    fn round_robin_spreads_parent_tbs() {
        let mut sim = simple_sim();
        sim.launch_host_kernel(KernelKindId(0), 0, 4, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        let parents: Vec<_> =
            stats.tb_records.iter().filter(|r| !r.is_dynamic).map(|r| r.smx.0).collect();
        // 4 parents on a 4-SMX machine, dispatched round-robin.
        assert_eq!(parents, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_host_kernels_fcfs() {
        let mut sim = Simulator::new(
            GpuConfig::small_test(),
            Box::new(NestedSource { launcher: u32::MAX, children: 0 }),
        );
        sim.launch_host_kernel(KernelKindId(0), 0, 2, ResourceReq::new(64, 8, 0)).unwrap();
        sim.launch_host_kernel(KernelKindId(0), 1, 2, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        assert_eq!(stats.tb_records.len(), 4);
        // First kernel's TBs dispatch before the second kernel's.
        let order: Vec<u32> = stats.tb_records.iter().map(|r| r.tb.batch.0).collect();
        assert_eq!(order, vec![0, 0, 1, 1]);
    }

    #[test]
    fn engine_profile_partitions_loop_iterations() {
        // Both engines: the wake-source counts must sum exactly to the
        // total number of loop iterations, and iterations must be live.
        for mode in [EngineMode::Event, EngineMode::CycleStepped] {
            let mut cfg = GpuConfig::small_test();
            cfg.engine_mode = mode;
            cfg.profile_engine = true;
            cfg.engine_host_sampling = 4;
            let mut sim = Simulator::new(cfg, Box::new(NestedSource { launcher: 1, children: 3 }));
            sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
            let stats = sim.run_to_completion().unwrap();
            let eng = stats.engine.as_ref().expect("profiling on");
            assert!(eng.loop_iterations > 0, "{mode:?}: no iterations recorded");
            assert_eq!(
                eng.wake_total(),
                eng.loop_iterations,
                "{mode:?}: wake sources must partition loop iterations exactly"
            );
            assert!(eng.host_samples > 0, "{mode:?}: sampling stride never fired");
        }
    }

    #[test]
    fn engine_profile_off_leaves_stats_unchanged() {
        // Profiling is observational: SimStats (minus the engine field)
        // must be bit-identical with it on and off.
        let run = |profile: bool| {
            let mut cfg = GpuConfig::small_test();
            cfg.profile_engine = profile;
            let mut sim = Simulator::new(cfg, Box::new(NestedSource { launcher: 1, children: 3 }));
            sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
            sim.run_to_completion().unwrap()
        };
        let off = run(false);
        let mut on = run(true);
        assert!(off.engine.is_none());
        assert!(on.engine.is_some());
        on.engine = None;
        assert_eq!(off, on);
    }

    #[test]
    fn latency_profile_off_leaves_stats_unchanged() {
        // Latency profiling is observational: SimStats (minus the
        // latency field) must be bit-identical with it on and off.
        let run = |profile: bool| {
            let mut cfg = GpuConfig::small_test();
            cfg.profile_latency = profile;
            let mut sim = Simulator::new(cfg, Box::new(NestedSource { launcher: 1, children: 3 }));
            sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
            sim.run_to_completion().unwrap()
        };
        let off = run(false);
        let mut on = run(true);
        assert!(off.latency.is_none());
        assert!(on.latency.is_some());
        on.latency = None;
        assert_eq!(off, on);
    }

    #[test]
    fn latency_partition_is_exact_in_both_engine_modes() {
        for mode in [EngineMode::Event, EngineMode::CycleStepped] {
            for fast_forward in [false, true] {
                let mut cfg = GpuConfig::small_test();
                cfg.engine_mode = mode;
                cfg.fast_forward = fast_forward;
                cfg.profile_latency = true;
                let mut sim =
                    Simulator::new(cfg, Box::new(NestedSource { launcher: 1, children: 3 }));
                sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
                let stats = sim.run_to_completion().unwrap();
                let lat = stats.latency.as_ref().expect("profiling on");
                let ctx = format!("{mode:?} ff={fast_forward}");
                assert_eq!(lat.partition_violations, 0, "{ctx}: out-of-order stamps");
                assert_eq!(
                    lat.tbs,
                    stats.tb_records.len() as u64,
                    "{ctx}: every dispatched TB must be in the histograms"
                );
                for h in [&lat.launch_path, &lat.queue_wait, &lat.dispatch_gap, &lat.exec] {
                    assert_eq!(h.count, lat.tbs, "{ctx}: component count mismatch");
                }
                // The four components partition the lifetime exactly, in
                // aggregate and therefore per TB (each is per-TB exact by
                // telescoping; sums catch any miss).
                assert_eq!(
                    lat.launch_path.sum + lat.queue_wait.sum + lat.dispatch_gap.sum + lat.exec.sum,
                    lat.lifetime.sum,
                    "{ctx}: components must sum to lifetime"
                );
                // Child splits partition the child histogram.
                assert_eq!(
                    lat.bound_queue_wait.count + lat.stolen_queue_wait.count,
                    lat.child_queue_wait.count,
                    "{ctx}: bound/stolen must partition children"
                );
                assert_eq!(lat.child_queue_wait.count, 3, "{ctx}: 3 children expected");
                // Depth rollup covers every TB.
                let depth_total: u64 = lat.depth_queue_wait.iter().map(|(_, h)| h.count).sum();
                assert_eq!(depth_total, lat.tbs, "{ctx}: depth rollup incomplete");
                let kind_total: u64 = lat.kind_lifetime.iter().map(|(_, h)| h.count).sum();
                assert_eq!(kind_total, lat.tbs, "{ctx}: kind rollup incomplete");
                // Critical path: non-trivial on a nested run, internally
                // exact, and bounded by the makespan.
                let cp = &lat.critical_path;
                assert_eq!(cp.len as usize, cp.chain.len(), "{ctx}: chain length mismatch");
                assert!(cp.len >= 1, "{ctx}: empty critical path");
                assert_eq!(
                    cp.queue_cycles + cp.exec_cycles,
                    cp.cycles,
                    "{ctx}: critical-path attribution must partition its weight"
                );
                assert!(cp.cycles <= stats.cycles, "{ctx}: path longer than the run");
                // Chain is stored root-first: parents dispatch before
                // their children.
                for pair in cp.chain.windows(2) {
                    let d = |tb: &TbRef| {
                        stats.tb_records.iter().find(|r| r.tb == *tb).unwrap().dispatched_at
                    };
                    assert!(d(&pair[0]) <= d(&pair[1]), "{ctx}: chain not root-first");
                }
            }
        }
    }

    #[test]
    fn latency_stats_bit_identical_across_engine_modes_and_fast_forward() {
        let run = |mode: EngineMode, fast_forward: bool| {
            let mut cfg = GpuConfig::small_test();
            cfg.engine_mode = mode;
            cfg.fast_forward = fast_forward;
            cfg.profile_latency = true;
            let mut sim = Simulator::new(cfg, Box::new(NestedSource { launcher: 1, children: 3 }));
            sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
            sim.run_to_completion().unwrap().latency.expect("profiling on")
        };
        let base = run(EngineMode::Event, true);
        assert_eq!(base, run(EngineMode::Event, false));
        assert_eq!(base, run(EngineMode::CycleStepped, true));
        assert_eq!(base, run(EngineMode::CycleStepped, false));
    }

    #[test]
    fn stats_cache_totals_consistent() {
        let mut sim = simple_sim();
        sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        assert_eq!(stats.l1.accesses(), stats.l1.hits + stats.l1.misses);
        // Every L2 access stems from an L1 miss or store.
        assert!(stats.l2.accesses() <= stats.l1.accesses());
        assert!(stats.dram_accesses <= stats.l2.accesses());
    }

    #[test]
    fn sched_list_compacts_after_many_exhausted_batches() {
        // Thousands of single-TB kernels leave behind thousands of
        // exhausted sched-list entries; the prune must compact them
        // instead of letting the cursor (and the backing Vecs) grow
        // without bound.
        let mut cfg = GpuConfig::small_test();
        cfg.max_cycles = 10_000_000;
        let mut sim =
            Simulator::new(cfg, Box::new(NestedSource { launcher: u32::MAX, children: 0 }));
        let total = SCHED_PRUNE_THRESHOLD as u32 + 128;
        for i in 0..total {
            sim.launch_host_kernel(KernelKindId(0), u64::from(i), 1, ResourceReq::new(32, 8, 0))
                .unwrap();
        }
        let stats = sim.run_to_completion().unwrap();
        assert_eq!(stats.tb_records.len(), total as usize);
        assert!(
            sim.sched_head <= SCHED_PRUNE_THRESHOLD,
            "cursor never compacted: sched_head = {}",
            sim.sched_head
        );
        assert!(
            sim.sched_list.len() < total as usize,
            "sched_list still holds all {} exhausted entries",
            sim.sched_list.len()
        );
        assert_eq!(sim.sched_list.len(), sim.sched_seq.len());
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut cfg = GpuConfig::small_test();
        cfg.max_cycles = 10;
        let mut sim = Simulator::new(cfg, Box::new(NestedSource { launcher: 0, children: 8 }));
        sim.launch_host_kernel(KernelKindId(0), 0, 64, ResourceReq::new(64, 8, 0)).unwrap();
        let err = sim.run_to_completion().unwrap_err();
        assert_eq!(err, SimError::CycleLimitExceeded { limit: 10 });
    }

    // ---- finite launch-path resources, faults, and the watchdog ----

    use crate::config::{LaunchLimits, OverflowPolicy};
    use crate::fault::{Fault, FaultPlan};

    /// Every kind-0 TB immediately launches `children` kind-1 TBs from a
    /// single warp — maximal pressure on the launch path.
    struct LaunchStorm {
        children: u32,
    }

    impl ProgramSource for LaunchStorm {
        fn tb_program(&self, kind: KernelKindId, _param: u64, tb_index: u32) -> TbProgram {
            match kind.0 {
                0 => TbProgram::new(vec![
                    TbOp::Launch(LaunchSpec {
                        kind: KernelKindId(1),
                        param: u64::from(tb_index),
                        num_tbs: self.children,
                        req: ResourceReq::new(32, 8, 0),
                    }),
                    TbOp::Compute(2),
                ]),
                _ => TbProgram::new(vec![TbOp::Compute(4)]),
            }
        }
    }

    /// A CDP-style launch model with a fixed maturation delay, so the
    /// pending-launch buffer stays occupied long enough to contend over.
    struct SlowLaunchModel {
        delay: u64,
        pending: Vec<(Cycle, LaunchRequest)>,
    }

    impl DynamicLaunchModel for SlowLaunchModel {
        fn submit(&mut self, req: LaunchRequest) {
            self.pending.push((req.issued_at + self.delay, req));
        }

        fn drain_ready(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
            let mut i = 0;
            while i < self.pending.len() {
                if self.pending[i].0 <= now {
                    out.push(Delivery::DeviceKernel(self.pending.remove(i).1));
                } else {
                    i += 1;
                }
            }
        }

        fn in_flight(&self) -> usize {
            self.pending.len()
        }

        fn name(&self) -> &'static str {
            "slow-test"
        }
    }

    fn counter(stats: &SimStats, name: &str) -> u64 {
        stats
            .launch_counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    }

    #[test]
    fn stall_parent_backpressure_completes_with_launch_path_stalls() {
        let mut cfg = GpuConfig::small_test();
        cfg.launch_limits.pending_launch_capacity = Some(1);
        cfg.launch_limits.policy = OverflowPolicy::StallParent;
        let mut sim = Simulator::new(cfg, Box::new(LaunchStorm { children: 1 }))
            .with_launch_model(Box::new(SlowLaunchModel { delay: 50, pending: Vec::new() }));
        sim.launch_host_kernel(KernelKindId(0), 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        // Every parent and every child still retires.
        assert_eq!(stats.tb_records.len(), 16);
        // With one buffer slot held for 50 cycles, the other launchers
        // must have blocked on the launch path at some point.
        assert!(stats.total_stalls().launch_path > 0);
        // StallParent never spills.
        assert_eq!(counter(&stats, "spill_events"), 0);
    }

    #[test]
    fn spill_virtual_spills_and_completes() {
        let mut cfg = GpuConfig::small_test();
        cfg.launch_limits.pending_launch_capacity = Some(1);
        cfg.launch_limits.policy = OverflowPolicy::SpillVirtual { extra_latency: 25 };
        let mut sim = Simulator::new(cfg, Box::new(LaunchStorm { children: 1 }))
            .with_launch_model(Box::new(SlowLaunchModel { delay: 50, pending: Vec::new() }));
        sim.launch_host_kernel(KernelKindId(0), 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        assert_eq!(stats.tb_records.len(), 16);
        // Parents never block under SpillVirtual; the overflow goes to
        // the memory-backed virtual queue instead.
        assert!(counter(&stats, "spill_events") > 0);
        assert!(counter(&stats, "spill_occupancy_hwm") >= 1);
        assert_eq!(stats.total_stalls().launch_path, 0);
    }

    #[test]
    fn kmu_capacity_overflow_backlogs_and_drains() {
        let mut cfg = GpuConfig::small_test();
        // One concurrent kernel: the host kernel pins the only KDU entry
        // while child kernels pile into a one-slot KMU.
        cfg.max_concurrent_kernels = 1;
        cfg.launch_limits.kmu_capacity = Some(1);
        let mut sim = Simulator::new(cfg, Box::new(LaunchStorm { children: 2 }));
        sim.launch_host_kernel(KernelKindId(0), 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        assert_eq!(stats.tb_records.len(), 24);
        assert!(counter(&stats, "kmu_overflows") > 0);
        assert!(counter(&stats, "launch_backlog_hwm") >= 1);
    }

    #[test]
    fn large_finite_limits_match_unbounded_bit_for_bit() {
        let run = |limits: LaunchLimits| {
            let mut cfg = GpuConfig::small_test();
            cfg.launch_limits = limits;
            let mut sim = Simulator::new(cfg, Box::new(LaunchStorm { children: 2 }));
            sim.launch_host_kernel(KernelKindId(0), 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
            let mut stats = sim.run_to_completion().unwrap();
            // The counter lists differ by construction (finite limits
            // surface extra zero counters); everything else must match.
            stats.launch_counters.clear();
            stats
        };
        let generous = LaunchLimits {
            kmu_capacity: Some(10_000),
            pending_launch_capacity: Some(10_000),
            smx_queue_capacity: Some(10_000),
            policy: OverflowPolicy::StallParent,
        };
        assert_eq!(run(LaunchLimits::unbounded()), run(generous));
    }

    #[test]
    fn watchdog_names_stuck_tbs_when_all_smxs_die() {
        let mut cfg = GpuConfig::small_test();
        cfg.watchdog_window = Some(1_000);
        let faults =
            (0..4).map(|i| Fault::KillSmx { smx: SmxId(i), from: 0, until: u64::MAX }).collect();
        let mut sim =
            Simulator::new(cfg, Box::new(NestedSource { launcher: u32::MAX, children: 0 }))
                .with_fault_plan(FaultPlan::new(faults));
        sim.launch_host_kernel(KernelKindId(0), 0, 4, ResourceReq::new(64, 8, 0)).unwrap();
        let err = sim.run_to_completion().unwrap_err();
        match err {
            SimError::NoForwardProgress { window, suspects, .. } => {
                assert_eq!(window, 1_000);
                assert!(!suspects.is_empty());
                assert!(suspects.iter().any(|s| s.smx.is_some()));
            }
            other => panic!("expected NoForwardProgress, got {other}"),
        }
    }

    #[test]
    fn fault_drop_prunes_children_and_counts() {
        let mut sim =
            simple_sim().with_fault_plan(FaultPlan::new(vec![Fault::DropLaunch { nth: 1 }]));
        sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        // The single child launch was dropped: only the 6 parents ran.
        assert_eq!(stats.tb_records.len(), 6);
        assert_eq!(counter(&stats, "fault_dropped_launches"), 1);
        assert_eq!(sim.fault_plan().map(|p| p.dropped), Some(1));
    }

    #[test]
    fn fault_delay_preserves_the_outcome() {
        let baseline = {
            let mut sim = simple_sim();
            sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
            sim.run_to_completion().unwrap()
        };
        let mut sim = simple_sim()
            .with_fault_plan(FaultPlan::new(vec![Fault::DelayLaunch { nth: 1, extra: 500 }]));
        sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        // Same work happens, just later.
        assert_eq!(stats.tb_records.len(), baseline.tb_records.len());
        assert!(stats.cycles >= baseline.cycles);
        assert_eq!(counter(&stats, "fault_delayed_launches"), 1);
    }

    #[test]
    fn queue_full_window_holds_dispatch_down() {
        let mut sim = simple_sim()
            .with_fault_plan(FaultPlan::new(vec![Fault::QueueFull { from: 0, until: 200 }]));
        sim.launch_host_kernel(KernelKindId(0), 0, 6, ResourceReq::new(64, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        // Nothing can reach the KDU before cycle 200.
        assert!(stats.cycles >= 200);
        assert_eq!(stats.tb_records.len(), 9);
    }
}
