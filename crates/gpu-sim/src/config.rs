//! GPU hardware configuration.
//!
//! The default configuration reproduces Table I of the LaPerm paper: an
//! NVIDIA Kepler K20c (GK110) as modeled in GPGPU-Sim.

/// Which warp scheduling policy the SMXs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WarpSchedPolicy {
    /// Greedy-Then-Oldest (the paper's Table I baseline).
    #[default]
    Gto,
    /// Loose round-robin.
    Lrr,
}

impl WarpSchedPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WarpSchedPolicy::Gto => "gto",
            WarpSchedPolicy::Lrr => "lrr",
        }
    }
}

impl std::fmt::Display for WarpSchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the engine advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Discrete-event execution: components publish their next wake-up
    /// cycle and the engine jumps between wake-ups via a min-heap,
    /// touching only the components that are due. Statistics are
    /// bit-identical to [`EngineMode::CycleStepped`]; the
    /// `engine-equivalence` gate asserts this on the ci-scale matrix.
    #[default]
    Event,
    /// Reference mode: step every cycle, iterating all components each
    /// time (with the idle-cycle fast-forward optimization layered on
    /// top when [`GpuConfig::fast_forward`] is set). Kept as the
    /// oracle the event engine is diffed against.
    CycleStepped,
}

impl EngineMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Event => "event",
            EngineMode::CycleStepped => "cycle-stepped",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when a finite launch-path resource is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowPolicy {
    /// Backpressure: the launching warp (or the upstream queue stage)
    /// blocks until space frees. Stall cycles are attributed to
    /// [`StallCause::LaunchPath`](crate::stats::StallCause::LaunchPath).
    #[default]
    StallParent,
    /// Spill to a memory-backed virtual queue (CDP's software queue,
    /// DTBL's global-memory overflow buffer): the launch proceeds but is
    /// charged `extra_latency` additional cycles.
    SpillVirtual {
        /// Extra cycles charged to each spilled launch.
        extra_latency: u32,
    },
}

impl OverflowPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OverflowPolicy::StallParent => "stall-parent",
            OverflowPolicy::SpillVirtual { .. } => "spill-virtual",
        }
    }
}

/// Finite capacities along the device-launch path, with one shared
/// [`OverflowPolicy`].
///
/// Every capacity defaults to `None` (unbounded), which reproduces the
/// idealized machine bit-for-bit: no gate is evaluated, no launch is
/// deferred, and no counter moves. Finite values model the real
/// hardware's 32 HWQs, fixed pending-launch buffer, and bounded per-SMX
/// scheduler queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LaunchLimits {
    /// Maximum kernels the KMU pending queue holds. Matured launches that
    /// find it full are deferred (StallParent) or spilled (SpillVirtual).
    pub kmu_capacity: Option<usize>,
    /// Maximum device launches the launch model may hold in flight; the
    /// CDP pending-launch buffer. Past it, launching warps block
    /// (StallParent) or the launch sits in a memory-virtualized queue for
    /// `extra_latency` cycles before entering the buffer (SpillVirtual).
    pub pending_launch_capacity: Option<usize>,
    /// Hard cap on total entries across one scheduler's per-SMX priority
    /// queues (LaPerm's on-chip SRAM plus bounded overflow). At the cap,
    /// the scheduler declines to accept new kernels from the KMU.
    pub smx_queue_capacity: Option<usize>,
    /// What to do at each exhausted capacity.
    pub policy: OverflowPolicy,
}

impl LaunchLimits {
    /// Unbounded limits: today's idealized behavior.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// `true` when every capacity is `None` (no gate is ever evaluated).
    pub fn is_unbounded(&self) -> bool {
        self.kmu_capacity.is_none()
            && self.pending_launch_capacity.is_none()
            && self.smx_queue_capacity.is_none()
    }
}

/// Complete hardware configuration for a simulated GPU.
///
/// Construct with [`GpuConfig::kepler_k20c`] (the paper's Table I
/// configuration) or [`GpuConfig::small_test`] (a tiny configuration for
/// fast unit tests), then adjust fields as needed.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of stream multiprocessors.
    pub num_smxs: u16,
    /// Maximum resident threads per SMX.
    pub max_threads_per_smx: u32,
    /// Maximum resident thread blocks per SMX.
    pub max_tbs_per_smx: u32,
    /// Register file size per SMX (number of 32-bit registers).
    pub max_regs_per_smx: u32,
    /// Shared memory per SMX in bytes.
    pub max_smem_per_smx: u32,
    /// Warp width (threads per warp).
    pub warp_size: u32,
    /// Warp instructions issued per SMX per cycle.
    pub issue_width: u32,
    /// Warp scheduling policy.
    pub warp_scheduler: WarpSchedPolicy,

    /// L1 data cache size per SMX in bytes.
    pub l1_bytes: u32,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// Shared L2 cache size in bytes.
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// Cache line size in bytes (power of two).
    pub line_bytes: u32,

    /// L1 hit latency in cycles.
    pub l1_hit_latency: u32,
    /// Additional latency for an L2 hit (beyond L1 probe).
    pub l2_hit_latency: u32,
    /// DRAM access latency in cycles.
    pub dram_latency: u32,
    /// Cycles a DRAM channel is busy serving one 128-byte transaction
    /// (bandwidth model).
    pub dram_service_cycles: u32,
    /// Number of independent DRAM channels.
    pub dram_channels: u32,
    /// Latency of a shared-memory access in cycles.
    pub smem_latency: u32,
    /// Extra cycles of serialization per additional coalesced transaction
    /// in one warp memory instruction.
    pub transaction_issue_cycles: u32,

    /// Maximum concurrently resident kernels (KDU entries).
    pub max_concurrent_kernels: u32,
    /// Kernels the KMU may move into the KDU per cycle.
    pub kmu_dispatch_per_cycle: u32,
    /// Pipeline latency of a compute instruction in cycles.
    pub alu_latency: u32,
    /// Cycles charged to the launching warp for issuing a device-side
    /// launch (driver-side setup is modeled by the launch model instead).
    pub launch_issue_cycles: u32,

    /// Safety valve: abort [`run_to_completion`] after this many cycles.
    ///
    /// [`run_to_completion`]: crate::engine::Simulator::run_to_completion
    pub max_cycles: u64,

    /// How [`run_to_completion`] advances time. [`EngineMode::Event`]
    /// (the default) drives the machine from a min-heap of component
    /// wake-ups; [`EngineMode::CycleStepped`] iterates every component
    /// every cycle and is kept as the equivalence oracle. Both produce
    /// bit-identical statistics and trace streams.
    ///
    /// [`run_to_completion`]: crate::engine::Simulator::run_to_completion
    pub engine_mode: EngineMode,

    /// Skip idle stretches: when no launch is in flight, the KMU is
    /// empty, and no TB awaits dispatch, the engine advances the cycle
    /// counter directly to the next SMX/launch event instead of stepping
    /// through cycles in which nothing can happen. Statistics are
    /// bit-identical either way (see `docs/ARCHITECTURE.md`,
    /// "Performance"); disable only to cross-check that invariant.
    pub fast_forward: bool,

    /// Locality provenance profiling: tag every cache line with the TB
    /// that installed it and classify each hit by its relation to the
    /// accessor (self / parent-child / sibling / ancestor / unrelated).
    /// Off by default; when off the simulator allocates no tag storage
    /// and the memory path takes no extra work. Profiling is purely
    /// observational — cycles and every other statistic are identical
    /// with it on or off.
    pub profile_locality: bool,

    /// Engine introspection profiling: tag every engine-loop iteration
    /// with its [`WakeSource`](crate::stats::WakeSource), histogram
    /// event-heap depth / due events per cycle / fast-forward jump
    /// lengths, and sample host-time spans around each engine stage.
    /// Off by default; when off the simulator allocates no profiling
    /// state and the hot loop takes one `Option` branch per stage.
    /// Profiling is purely observational — cycles and every other
    /// statistic are identical with it on or off — but the resulting
    /// [`EngineStats`](crate::stats::EngineStats) deliberately differs
    /// between engine modes (it observes the engine, not the machine).
    pub profile_engine: bool,

    /// Host-time sampling stride for engine profiling: one in this many
    /// loop iterations is timed with `Instant` spans, bounding the
    /// profiling overhead. Must be nonzero; ignored unless
    /// `profile_engine` is set.
    pub engine_host_sampling: u64,

    /// Per-TB lifecycle latency attribution: stamp every TB's lifecycle
    /// edges (launch issued → KMU-matured → scheduler-enqueued →
    /// dispatched → first issue → retired), decompose each lifetime into
    /// the exactly-partitioning sum `launch_path + queue_wait +
    /// dispatch_gap + exec`, and extract the parent→child critical path
    /// of the run. Off by default; when off the simulator allocates no
    /// lifecycle state and the dispatch/retire paths take one `Option`
    /// branch each. Profiling is purely observational — cycles and every
    /// other statistic are identical with it on or off, and the
    /// resulting [`LatencyStats`](crate::stats::LatencyStats) observes
    /// the simulated machine, so it is bit-identical across engine
    /// modes and fast-forward settings.
    pub profile_latency: bool,

    /// Finite launch-path capacities and the overflow policy applied at
    /// each. Defaults to unbounded, which is bit-identical to the
    /// pre-limit engine.
    pub launch_limits: LaunchLimits,

    /// Forward-progress watchdog: every `Some(n)` cycles the engine
    /// snapshots its progress counters (dispatches, retirements, created
    /// batches, executed warp instructions) and returns
    /// [`SimError::NoForwardProgress`](crate::error::SimError::NoForwardProgress)
    /// if none moved across a full window — naming the stuck TBs instead
    /// of spinning to `max_cycles`. The default window is far longer than
    /// any legitimate quiet stretch (launch latencies are thousands of
    /// cycles; memory latencies hundreds), so it cannot fire on healthy
    /// runs. `None` disables the check.
    pub watchdog_window: Option<u64>,
}

impl GpuConfig {
    /// The paper's Table I configuration (Kepler K20c, GK110).
    ///
    /// 13 SMXs; per SMX: 2048 threads, 16 TBs, 65536 registers, 32 KB
    /// shared memory, 32 KB L1; shared 1536 KB L2; 128-byte lines; at most
    /// 32 concurrent kernels; GTO warp scheduler (see
    /// [`warp_sched`](crate::warp_sched)).
    pub fn kepler_k20c() -> Self {
        GpuConfig {
            num_smxs: 13,
            max_threads_per_smx: 2048,
            max_tbs_per_smx: 16,
            max_regs_per_smx: 65_536,
            max_smem_per_smx: 32 * 1024,
            warp_size: 32,
            issue_width: 4,
            warp_scheduler: WarpSchedPolicy::Gto,
            l1_bytes: 32 * 1024,
            l1_assoc: 4,
            l2_bytes: 1536 * 1024,
            l2_assoc: 16,
            line_bytes: 128,
            l1_hit_latency: 28,
            l2_hit_latency: 120,
            dram_latency: 220,
            dram_service_cycles: 4,
            dram_channels: 8,
            smem_latency: 24,
            transaction_issue_cycles: 2,
            max_concurrent_kernels: 32,
            kmu_dispatch_per_cycle: 1,
            alu_latency: 6,
            launch_issue_cycles: 8,
            max_cycles: 500_000_000,
            engine_mode: EngineMode::Event,
            fast_forward: true,
            profile_locality: false,
            profile_engine: false,
            engine_host_sampling: 64,
            profile_latency: false,
            launch_limits: LaunchLimits::unbounded(),
            watchdog_window: Some(2_000_000),
        }
    }

    /// A small configuration for fast, deterministic unit tests: 4 SMXs,
    /// tiny caches, one TB per SMX by default resource pressure.
    pub fn small_test() -> Self {
        GpuConfig {
            num_smxs: 4,
            max_threads_per_smx: 256,
            max_tbs_per_smx: 4,
            max_regs_per_smx: 16_384,
            max_smem_per_smx: 16 * 1024,
            warp_size: 32,
            issue_width: 2,
            warp_scheduler: WarpSchedPolicy::Gto,
            l1_bytes: 4 * 1024,
            l1_assoc: 4,
            l2_bytes: 64 * 1024,
            l2_assoc: 8,
            line_bytes: 128,
            l1_hit_latency: 4,
            l2_hit_latency: 20,
            dram_latency: 60,
            dram_service_cycles: 4,
            dram_channels: 2,
            smem_latency: 4,
            transaction_issue_cycles: 1,
            max_concurrent_kernels: 8,
            kmu_dispatch_per_cycle: 1,
            alu_latency: 4,
            launch_issue_cycles: 2,
            max_cycles: 50_000_000,
            engine_mode: EngineMode::Event,
            fast_forward: true,
            profile_locality: false,
            profile_engine: false,
            engine_host_sampling: 64,
            profile_latency: false,
            launch_limits: LaunchLimits::unbounded(),
            watchdog_window: Some(500_000),
        }
    }

    /// A Maxwell-generation-like configuration: more, narrower SMs with a
    /// larger shared L2. The paper claims its ideas "apply to other
    /// general purpose GPU architectures"; this config backs the
    /// generality experiment.
    pub fn maxwell_like() -> Self {
        let mut cfg = Self::kepler_k20c();
        cfg.num_smxs = 16;
        cfg.max_tbs_per_smx = 32;
        cfg.issue_width = 2;
        cfg.l1_bytes = 24 * 1024;
        cfg.l1_assoc = 6;
        cfg.l2_bytes = 2048 * 1024;
        cfg.l2_hit_latency = 130;
        cfg
    }

    /// The 4-SMX, one-TB-per-SMX toy machine used for the paper's Figure 4
    /// walk-through example.
    pub fn figure4_toy() -> Self {
        let mut cfg = Self::small_test();
        cfg.num_smxs = 4;
        cfg.max_tbs_per_smx = 1;
        cfg.max_threads_per_smx = 64;
        cfg
    }

    /// Number of warps in a TB of `threads` threads (rounded up).
    pub fn warps_per_tb(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }

    /// log2 of the line size, for address-to-line conversion.
    pub fn line_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Tightens the forward-progress watchdog to at most `deadline`
    /// cycles, keeping an already-stricter window. This is how a
    /// per-cell deadline reuses the watchdog machinery: the sweep
    /// harness never weakens a configured window, it only caps it.
    /// `deadline == 0` (which [`GpuConfig::validate`] would reject as a
    /// window) is ignored.
    pub fn tighten_watchdog(&mut self, deadline: u64) {
        if deadline == 0 {
            return;
        }
        self.watchdog_window = Some(match self.watchdog_window {
            Some(current) => current.min(deadline),
            None => deadline,
        });
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (zero sizes, non-power-of-two line size, associativity
    /// not dividing the cache, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_smxs == 0 {
            return Err("num_smxs must be nonzero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!("line_bytes {} must be a power of two", self.line_bytes));
        }
        if self.warp_size == 0 || self.issue_width == 0 {
            return Err("warp_size and issue_width must be nonzero".into());
        }
        for (name, bytes, assoc) in
            [("L1", self.l1_bytes, self.l1_assoc), ("L2", self.l2_bytes, self.l2_assoc)]
        {
            let lines = bytes / self.line_bytes;
            if lines == 0 || assoc == 0 || !lines.is_multiple_of(assoc) {
                return Err(format!(
                    "{name} geometry invalid: {bytes} bytes, {assoc}-way, {} lines",
                    lines
                ));
            }
        }
        if self.dram_channels == 0 {
            return Err("dram_channels must be nonzero".into());
        }
        if self.max_concurrent_kernels == 0 {
            return Err("max_concurrent_kernels must be nonzero".into());
        }
        for (name, cap) in [
            ("launch_limits.kmu_capacity", self.launch_limits.kmu_capacity),
            ("launch_limits.pending_launch_capacity", self.launch_limits.pending_launch_capacity),
            ("launch_limits.smx_queue_capacity", self.launch_limits.smx_queue_capacity),
        ] {
            if cap == Some(0) {
                return Err(format!("{name} must be nonzero when finite"));
            }
        }
        if self.watchdog_window == Some(0) {
            return Err("watchdog_window must be nonzero when enabled".into());
        }
        if self.engine_host_sampling == 0 {
            return Err("engine_host_sampling must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::kepler_k20c()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn kepler_config_is_valid() {
        GpuConfig::kepler_k20c().validate().unwrap();
    }

    #[test]
    fn small_test_config_is_valid() {
        GpuConfig::small_test().validate().unwrap();
    }

    #[test]
    fn maxwell_like_is_valid_and_differs() {
        let m = GpuConfig::maxwell_like();
        m.validate().unwrap();
        assert_eq!(m.num_smxs, 16);
        assert!(m.l2_bytes > GpuConfig::kepler_k20c().l2_bytes);
    }

    #[test]
    fn figure4_toy_holds_one_tb_per_smx() {
        let cfg = GpuConfig::figure4_toy();
        cfg.validate().unwrap();
        assert_eq!(cfg.num_smxs, 4);
        assert_eq!(cfg.max_tbs_per_smx, 1);
    }

    #[test]
    fn kepler_matches_table1() {
        let cfg = GpuConfig::kepler_k20c();
        assert_eq!(cfg.num_smxs, 13);
        assert_eq!(cfg.max_threads_per_smx, 2048);
        assert_eq!(cfg.max_tbs_per_smx, 16);
        assert_eq!(cfg.max_regs_per_smx, 65_536);
        assert_eq!(cfg.l1_bytes, 32 * 1024);
        assert_eq!(cfg.l2_bytes, 1536 * 1024);
        assert_eq!(cfg.line_bytes, 128);
        assert_eq!(cfg.max_concurrent_kernels, 32);
    }

    #[test]
    fn warps_per_tb_rounds_up() {
        let cfg = GpuConfig::kepler_k20c();
        assert_eq!(cfg.warps_per_tb(32), 1);
        assert_eq!(cfg.warps_per_tb(33), 2);
        assert_eq!(cfg.warps_per_tb(256), 8);
        assert_eq!(cfg.warps_per_tb(1), 1);
    }

    #[test]
    fn line_bits_matches_line_size() {
        let cfg = GpuConfig::kepler_k20c();
        assert_eq!(cfg.line_bits(), 7);
    }

    #[test]
    fn tighten_watchdog_only_ever_tightens() {
        let mut cfg = GpuConfig::small_test();
        cfg.watchdog_window = Some(100_000);
        cfg.tighten_watchdog(500_000);
        assert_eq!(cfg.watchdog_window, Some(100_000), "looser deadline must not widen");
        cfg.tighten_watchdog(20_000);
        assert_eq!(cfg.watchdog_window, Some(20_000));
        cfg.tighten_watchdog(0);
        assert_eq!(cfg.watchdog_window, Some(20_000), "zero deadline is ignored");
        cfg.watchdog_window = None;
        cfg.tighten_watchdog(30_000);
        assert_eq!(cfg.watchdog_window, Some(30_000), "deadline enables a disabled watchdog");
        cfg.validate().unwrap();
    }

    #[test]
    fn invalid_line_size_rejected() {
        let mut cfg = GpuConfig::small_test();
        cfg.line_bytes = 100;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn invalid_cache_geometry_rejected() {
        let mut cfg = GpuConfig::small_test();
        cfg.l1_assoc = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_smxs_rejected() {
        let mut cfg = GpuConfig::small_test();
        cfg.num_smxs = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_kepler() {
        assert_eq!(GpuConfig::default(), GpuConfig::kepler_k20c());
    }

    #[test]
    fn default_limits_are_unbounded() {
        let cfg = GpuConfig::kepler_k20c();
        assert!(cfg.launch_limits.is_unbounded());
        assert_eq!(cfg.launch_limits.policy, OverflowPolicy::StallParent);
    }

    #[test]
    fn zero_finite_capacity_rejected() {
        let mut cfg = GpuConfig::small_test();
        cfg.launch_limits.kmu_capacity = Some(0);
        assert!(cfg.validate().is_err());
        cfg.launch_limits.kmu_capacity = Some(1);
        cfg.validate().unwrap();
    }

    #[test]
    fn zero_watchdog_window_rejected() {
        let mut cfg = GpuConfig::small_test();
        cfg.watchdog_window = Some(0);
        assert!(cfg.validate().is_err());
        cfg.watchdog_window = None;
        cfg.validate().unwrap();
    }

    #[test]
    fn engine_mode_defaults_to_event() {
        assert_eq!(GpuConfig::kepler_k20c().engine_mode, EngineMode::Event);
        assert_eq!(GpuConfig::small_test().engine_mode, EngineMode::Event);
        assert_eq!(EngineMode::default(), EngineMode::Event);
        assert_eq!(EngineMode::Event.name(), "event");
        assert_eq!(EngineMode::CycleStepped.name(), "cycle-stepped");
    }

    #[test]
    fn overflow_policy_names() {
        assert_eq!(OverflowPolicy::StallParent.name(), "stall-parent");
        assert_eq!(OverflowPolicy::SpillVirtual { extra_latency: 500 }.name(), "spill-virtual");
    }
}
