//! The memory hierarchy: per-SMX L1 caches, shared L2, MSHRs, and DRAM.
//!
//! Write policy follows GPU convention: L1 is write-through
//! no-write-allocate (stores update the line if present but never fill),
//! L2 is write-back write-allocate (dirty evictions send write-back
//! traffic to DRAM). L2 misses allocate an MSHR entry; a second miss to a
//! line whose fill is already in flight *merges* with it instead of
//! issuing another DRAM transaction — exactly the mechanism that makes
//! temporally-close sharers (LaPerm's prioritized children) cheaper than
//! far-apart ones.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::cache::{AccessClass, Cache, CacheStats, Lineage, ProbeResult};
use crate::config::GpuConfig;
use crate::dram::Dram;
use crate::types::{Cycle, LineAddr, SmxId};

/// Maximum in-flight L2 misses tracked by the MSHR file.
const MSHR_ENTRIES: usize = 1024;

/// Multiply-mix hasher for `u64` line addresses. The MSHR map is probed
/// on every transaction that reaches L2, where SipHash shows up in
/// profiles; a fixed-key mix is plenty for cache-line keys and, unlike
/// `RandomState`, is deterministic across processes.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type LineMap = HashMap<LineAddr, Cycle, BuildHasherDefault<LineHasher>>;

/// The full memory system below the SMX load/store units.
#[derive(Debug)]
pub struct MemorySystem {
    l1s: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    /// In-flight L2 fills: line → cycle the data arrives.
    outstanding: LineMap,
    l1_hit_latency: u32,
    l2_hit_latency: u32,
    transaction_issue_cycles: u32,
    mshr_merges: u64,
    mshr_full_events: u64,
    l2_writebacks: u64,
}

impl MemorySystem {
    /// Builds the memory system for a configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        MemorySystem {
            l1s: (0..cfg.num_smxs)
                .map(|_| Cache::new(cfg.l1_bytes, cfg.l1_assoc, cfg.line_bytes))
                .collect(),
            l2: Cache::new(cfg.l2_bytes, cfg.l2_assoc, cfg.line_bytes),
            dram: Dram::new(cfg.dram_channels, cfg.dram_latency, cfg.dram_service_cycles),
            outstanding: LineMap::default(),
            l1_hit_latency: cfg.l1_hit_latency,
            l2_hit_latency: cfg.l2_hit_latency,
            transaction_issue_cycles: cfg.transaction_issue_cycles,
            mshr_merges: 0,
            mshr_full_events: 0,
            l2_writebacks: 0,
        }
    }

    /// Enables locality provenance profiling on every cache: installer
    /// tags plus per-class reuse-distance histograms. Call before the
    /// first access so all fills are tagged; accesses classify only when
    /// they carry a lineage (see
    /// [`warp_access_traced`](Self::warp_access_traced)).
    pub fn enable_provenance(&mut self) {
        for l1 in &mut self.l1s {
            l1.enable_provenance();
        }
        self.l2.enable_provenance();
    }

    /// Services one warp memory instruction made of the given coalesced
    /// line transactions, issued from `smx` at cycle `now`.
    ///
    /// Returns the cycles until the warp's data is ready: the maximum
    /// transaction latency, plus per-extra-transaction serialization.
    pub fn warp_access(
        &mut self,
        smx: SmxId,
        lines: &[LineAddr],
        is_store: bool,
        class: AccessClass,
        now: Cycle,
    ) -> u64 {
        self.warp_access_traced(smx, lines, is_store, class, now, None)
    }

    /// Like [`warp_access`](Self::warp_access), additionally carrying
    /// the accessing TB's [`Lineage`] so hits are attributed to a
    /// [`ReuseClass`](crate::cache::ReuseClass) when provenance
    /// profiling is enabled. Timing is identical either way.
    pub fn warp_access_traced(
        &mut self,
        smx: SmxId,
        lines: &[LineAddr],
        is_store: bool,
        class: AccessClass,
        now: Cycle,
        lineage: Option<&Lineage>,
    ) -> u64 {
        if lines.is_empty() {
            return 0;
        }
        let mut worst = 0u64;
        for (i, &line) in lines.iter().enumerate() {
            let serialization = u64::from(self.transaction_issue_cycles) * i as u64;
            let lat = serialization + self.line_access(smx, line, is_store, class, now, lineage);
            worst = worst.max(lat);
        }
        worst
    }

    fn line_access(
        &mut self,
        smx: SmxId,
        line: LineAddr,
        is_store: bool,
        class: AccessClass,
        now: Cycle,
        lineage: Option<&Lineage>,
    ) -> u64 {
        let prov = lineage.map(|l| (l, now));
        let l1 = &mut self.l1s[smx.index()];
        // L1: loads allocate, stores are write-through no-allocate.
        let (l1_result, _) = l1.access_tagged(line, !is_store, class, false, prov);
        if l1_result == ProbeResult::Hit && !is_store {
            return u64::from(self.l1_hit_latency);
        }

        // Stores always propagate to L2 (write-through L1); load misses
        // fetch from L2. L2 is write-back: stores dirty the line and
        // dirty victims cost DRAM write-back bandwidth.
        let (l2_result, evicted) = self.l2.access_tagged(line, true, class, is_store, prov);
        let base = u64::from(self.l1_hit_latency) + u64::from(self.l2_hit_latency);
        if let Some(victim) = evicted {
            if victim.dirty {
                self.l2_writebacks += 1;
                // Bandwidth charge only: the requester does not wait for
                // the write-back to finish.
                let _ = self.dram.access(victim.line, now + base);
            }
        }
        // The tag store fills atomically at miss time, so a "hit" may be
        // on a line whose data is still in flight: both hits and misses
        // consult the MSHR file and wait for (merge with) a pending fill.
        if let Some(&fill_at) = self.outstanding.get(&line) {
            if fill_at > now + base {
                self.mshr_merges += 1;
                return fill_at - now;
            }
            self.outstanding.remove(&line);
        }
        if l2_result == ProbeResult::Hit {
            return base;
        }

        let dram_latency = self.dram.access(line, now + base);
        let fill_at = now + base + dram_latency;
        if self.outstanding.len() >= MSHR_ENTRIES {
            self.outstanding.retain(|_, &mut t| t > now);
            if self.outstanding.len() >= MSHR_ENTRIES {
                self.mshr_full_events += 1;
            } else {
                self.outstanding.insert(line, fill_at);
            }
        } else {
            self.outstanding.insert(line, fill_at);
        }
        base + dram_latency
    }

    /// Statistics of one SMX's L1 cache.
    pub fn l1_stats(&self, smx: SmxId) -> &CacheStats {
        self.l1s[smx.index()].stats()
    }

    /// Aggregated statistics over all L1 caches.
    pub fn l1_stats_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.l1s {
            total.merge(c.stats());
        }
        total
    }

    /// Statistics of the shared L2 cache.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Per-class L1 reuse-distance histograms merged over all SMXs
    /// (all-empty when profiling is off).
    pub fn l1_reuse_dist_total(&self) -> [crate::stats::Pow2Hist; crate::cache::NUM_REUSE_CLASSES] {
        let mut total: [crate::stats::Pow2Hist; crate::cache::NUM_REUSE_CLASSES] =
            Default::default();
        for c in &self.l1s {
            if let Some(hists) = c.reuse_dist() {
                for (t, h) in total.iter_mut().zip(hists.iter()) {
                    t.merge(h);
                }
            }
        }
        total
    }

    /// Per-class L2 reuse-distance histograms (all-empty when profiling
    /// is off).
    pub fn l2_reuse_dist(&self) -> [crate::stats::Pow2Hist; crate::cache::NUM_REUSE_CLASSES] {
        match self.l2.reuse_dist() {
            Some(hists) => *hists,
            None => Default::default(),
        }
    }

    /// DRAM transaction count (fills plus write-backs).
    pub fn dram_accesses(&self) -> u64 {
        self.dram.accesses()
    }

    /// Mean DRAM queueing delay (cycles per transaction).
    pub fn dram_mean_queueing(&self) -> f64 {
        self.dram.mean_queueing()
    }

    /// DRAM row-buffer hit rate.
    pub fn dram_row_hit_rate(&self) -> f64 {
        self.dram.row_hit_rate()
    }

    /// L2 misses that merged with an in-flight fill.
    pub fn mshr_merges(&self) -> u64 {
        self.mshr_merges
    }

    /// Misses that found the MSHR file full (modeled without stall).
    pub fn mshr_full_events(&self) -> u64 {
        self.mshr_full_events
    }

    /// Dirty L2 evictions written back to DRAM.
    pub fn l2_writebacks(&self) -> u64 {
        self.l2_writebacks
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn system() -> MemorySystem {
        MemorySystem::new(&GpuConfig::small_test())
    }

    fn cold_latency(cfg: &GpuConfig) -> u64 {
        // First touch: L1 miss + L2 miss + DRAM row miss.
        u64::from(cfg.l1_hit_latency + cfg.l2_hit_latency + cfg.dram_latency) + 12
    }

    #[test]
    fn cold_load_costs_full_path() {
        let mut m = system();
        let cfg = GpuConfig::small_test();
        let lat = m.warp_access(SmxId(0), &[1000], false, AccessClass::Parent, 0);
        assert_eq!(lat, cold_latency(&cfg));
    }

    #[test]
    fn warm_load_hits_l1() {
        let mut m = system();
        let cfg = GpuConfig::small_test();
        m.warp_access(SmxId(0), &[1000], false, AccessClass::Parent, 0);
        let lat = m.warp_access(SmxId(0), &[1000], false, AccessClass::Parent, 10_000);
        assert_eq!(lat, u64::from(cfg.l1_hit_latency));
    }

    #[test]
    fn other_smx_misses_l1_hits_l2() {
        let mut m = system();
        let cfg = GpuConfig::small_test();
        m.warp_access(SmxId(0), &[1000], false, AccessClass::Parent, 0);
        let lat = m.warp_access(SmxId(1), &[1000], false, AccessClass::Child, 10_000);
        assert_eq!(lat, u64::from(cfg.l1_hit_latency + cfg.l2_hit_latency));
        assert_eq!(m.l1_stats(SmxId(1)).child_misses, 1);
        assert_eq!(m.l2_stats().child_hits, 1);
    }

    #[test]
    fn stores_do_not_allocate_l1() {
        let mut m = system();
        m.warp_access(SmxId(0), &[2000], true, AccessClass::Parent, 0);
        let cfg = GpuConfig::small_test();
        // Load after store: line is in L2 (write-allocate) but not L1.
        let lat = m.warp_access(SmxId(0), &[2000], false, AccessClass::Parent, 10_000);
        assert_eq!(lat, u64::from(cfg.l1_hit_latency + cfg.l2_hit_latency));
    }

    #[test]
    fn concurrent_misses_to_same_line_merge_in_mshr() {
        let mut m = system();
        let cfg = GpuConfig::small_test();
        let first = m.warp_access(SmxId(0), &[5000], false, AccessClass::Parent, 0);
        // A second SMX misses the same line 10 cycles later, while the
        // fill is still in flight: it waits for the same fill instead of
        // paying a full DRAM trip.
        let second = m.warp_access(SmxId(1), &[5000], false, AccessClass::Child, 10);
        assert_eq!(m.mshr_merges(), 1);
        assert_eq!(second, first - 10);
        // Only one DRAM transaction happened.
        assert_eq!(m.dram_accesses(), 1);
        let _ = cfg;
    }

    #[test]
    fn expired_mshr_entry_is_not_merged() {
        let mut m = system();
        m.warp_access(SmxId(0), &[5000], false, AccessClass::Parent, 0);
        // Far in the future the line was evicted from L2? No — it was
        // filled; touch enough lines to evict it, then miss again.
        let cfg = GpuConfig::small_test();
        let lines_to_evict: Vec<u64> =
            (0..(cfg.l2_bytes / cfg.line_bytes) as u64 + 64).map(|i| 5000 + (i + 1) * 8).collect();
        for chunk in lines_to_evict.chunks(16) {
            m.warp_access(SmxId(0), chunk, false, AccessClass::Parent, 100_000);
        }
        let lat = m.warp_access(SmxId(0), &[5000], false, AccessClass::Parent, 1_000_000);
        assert!(lat > u64::from(cfg.l1_hit_latency + cfg.l2_hit_latency));
        assert_eq!(m.mshr_merges(), 0);
    }

    #[test]
    fn dirty_eviction_generates_writeback_traffic() {
        let mut m = system();
        let cfg = GpuConfig::small_test();
        let l2_lines = u64::from(cfg.l2_bytes / cfg.line_bytes);
        // Dirty one line, then stream enough lines through L2 to evict it.
        m.warp_access(SmxId(0), &[0], true, AccessClass::Parent, 0);
        for i in 0..l2_lines + cfg.l2_assoc as u64 {
            m.warp_access(SmxId(0), &[i + 1], false, AccessClass::Parent, 1000 + i);
        }
        assert!(m.l2_writebacks() >= 1, "dirty line should be written back");
        assert!(m.dram_accesses() > l2_lines, "write-back adds DRAM traffic");
    }

    #[test]
    fn multiple_transactions_serialize() {
        let mut m = system();
        let cfg = GpuConfig::small_test();
        m.warp_access(SmxId(0), &[10], false, AccessClass::Parent, 0);
        m.warp_access(SmxId(0), &[11], false, AccessClass::Parent, 0);
        let lat = m.warp_access(SmxId(0), &[10, 11], false, AccessClass::Parent, 10_000);
        assert_eq!(lat, u64::from(cfg.l1_hit_latency) + u64::from(cfg.transaction_issue_cycles));
    }

    #[test]
    fn empty_access_is_free() {
        let mut m = system();
        assert_eq!(m.warp_access(SmxId(0), &[], false, AccessClass::Parent, 0), 0);
    }

    #[test]
    fn l1_total_aggregates_across_smxs() {
        let mut m = system();
        m.warp_access(SmxId(0), &[1], false, AccessClass::Parent, 0);
        m.warp_access(SmxId(1), &[2], false, AccessClass::Parent, 0);
        assert_eq!(m.l1_stats_total().accesses(), 2);
    }

    #[test]
    fn dram_accessed_only_on_l2_miss() {
        let mut m = system();
        m.warp_access(SmxId(0), &[5], false, AccessClass::Parent, 0);
        assert_eq!(m.dram_accesses(), 1);
        m.warp_access(SmxId(1), &[5], false, AccessClass::Parent, 10_000);
        assert_eq!(m.dram_accesses(), 1);
    }

    #[test]
    fn row_hit_rate_reflects_spatial_locality() {
        let mut m = system();
        // Sequential lines on one channel share rows.
        let cfg = GpuConfig::small_test();
        let seq: Vec<u64> = (0..64u64).map(|i| i * u64::from(cfg.dram_channels)).collect();
        for (i, &l) in seq.iter().enumerate() {
            m.warp_access(SmxId(0), &[l], false, AccessClass::Parent, 10_000 * i as u64);
        }
        assert!(m.dram_row_hit_rate() > 0.5);
    }
}
