//! Warp execution state.

use crate::types::Cycle;

/// Execution state of one warp within a resident thread block.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp index within its TB (warp 0 holds thread 0).
    pub index: u32,
    /// Program counter: index into the TB program's op list.
    pub pc: usize,
    /// Cycle at which the warp may issue its next op.
    pub ready_at: Cycle,
    /// The warp has arrived at a `Sync` op and waits for its TB.
    pub at_barrier: bool,
    /// The warp has executed every op of the program.
    pub done: bool,
}

impl Warp {
    /// Creates a warp ready to issue at `start`.
    pub fn new(index: u32, start: Cycle) -> Self {
        Warp { index, pc: 0, ready_at: start, at_barrier: false, done: false }
    }

    /// `true` if the warp can issue an op at `now`.
    pub fn is_ready(&self, now: Cycle) -> bool {
        !self.done && !self.at_barrier && self.ready_at <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_warp_is_ready_at_start() {
        let w = Warp::new(0, 5);
        assert!(!w.is_ready(4));
        assert!(w.is_ready(5));
        assert!(w.is_ready(6));
    }

    #[test]
    fn barrier_blocks_readiness() {
        let mut w = Warp::new(0, 0);
        w.at_barrier = true;
        assert!(!w.is_ready(100));
    }

    #[test]
    fn done_warp_never_ready() {
        let mut w = Warp::new(0, 0);
        w.done = true;
        assert!(!w.is_ready(u64::MAX));
    }
}
