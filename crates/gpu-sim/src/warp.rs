//! Warp execution state.

use crate::stats::StallCause;
use crate::types::Cycle;

/// Execution state of one warp within a resident thread block.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp index within its TB (warp 0 holds thread 0).
    pub index: u32,
    /// Program counter: index into the TB program's op list.
    pub pc: usize,
    /// Packed readiness: the cycle at which the warp may issue its next
    /// op, shifted left three bits, with the [`StallCause`] code of the
    /// latency it is waiting on in the low bits. One word — ordered by
    /// cycle first, cause code second — keeps the per-warp scans in
    /// `Smx::step` single compares on the hot path.
    ready: u64,
    /// The warp has arrived at a `Sync` op and waits for its TB.
    pub at_barrier: bool,
    /// The warp has executed every op of the program.
    pub done: bool,
}

impl Warp {
    /// Creates a warp ready to issue at `start`.
    pub fn new(index: u32, start: Cycle) -> Self {
        Warp { index, pc: 0, ready: start << 3, at_barrier: false, done: false }
    }

    /// Cycle at which the warp may issue its next op.
    pub fn ready_at(&self) -> Cycle {
        self.ready >> 3
    }

    /// What the wait until [`ready_at`](Self::ready_at) is attributable
    /// to (set by the op that produced the latency; feeds stall-cause
    /// accounting).
    pub fn wait(&self) -> StallCause {
        StallCause::from_code(self.ready & 7)
    }

    /// Sets the next issue cycle and the cause its wait is charged to
    /// (cycle counts stay far below 2^61, so the shift is safe).
    pub fn set_ready(&mut self, at: Cycle, wait: StallCause) {
        self.ready = (at << 3) | wait.code();
    }

    /// The packed `(ready_at, wait)` word, ordered by cycle first; lets
    /// `Smx` track the earliest-ready warp *and* its cause with a plain
    /// integer `min`.
    pub(crate) fn ready_packed(&self) -> u64 {
        self.ready
    }

    /// `true` if the warp can issue an op at `now`.
    pub fn is_ready(&self, now: Cycle) -> bool {
        !self.done && !self.at_barrier && self.ready_at() <= now
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn fresh_warp_is_ready_at_start() {
        let w = Warp::new(0, 5);
        assert!(!w.is_ready(4));
        assert!(w.is_ready(5));
        assert!(w.is_ready(6));
    }

    #[test]
    fn barrier_blocks_readiness() {
        let mut w = Warp::new(0, 0);
        w.at_barrier = true;
        assert!(!w.is_ready(100));
    }

    #[test]
    fn done_warp_never_ready() {
        let mut w = Warp::new(0, 0);
        w.done = true;
        assert!(!w.is_ready(u64::MAX));
    }

    #[test]
    fn packed_ready_roundtrips_cycle_and_cause() {
        let mut w = Warp::new(0, 0);
        w.set_ready(1234, StallCause::MemoryPending);
        assert_eq!(w.ready_at(), 1234);
        assert_eq!(w.wait(), StallCause::MemoryPending);
        assert!(!w.is_ready(1233));
        assert!(w.is_ready(1234));
    }
}
