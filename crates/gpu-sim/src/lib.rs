//! A cycle-level GPU timing simulator.
//!
//! This crate is the substrate for the LaPerm reproduction: it models the
//! parts of a Kepler-class GPU that matter for thread-block (TB)
//! scheduling studies — stream multiprocessors (SMXs) with warp
//! schedulers, per-SMX L1 caches, a shared L2, a DRAM latency/bandwidth
//! model, the kernel management unit (KMU), the kernel distributor unit
//! (KDU), and a pluggable SMX-level TB scheduler.
//!
//! Kernels are described by *TB programs* — per-warp instruction streams
//! of compute, memory, barrier, and device-launch operations with concrete
//! addresses — supplied by a [`program::ProgramSource`]. Device-side
//! launches (CUDA Dynamic Parallelism or Dynamic Thread Block Launch) are
//! routed through a pluggable [`launch::DynamicLaunchModel`].
//!
//! # Example
//!
//! ```
//! use gpu_sim::config::GpuConfig;
//! use gpu_sim::engine::Simulator;
//! use gpu_sim::program::{ProgramSource, TbProgram, TbOp, KernelKindId};
//! use gpu_sim::kernel::ResourceReq;
//!
//! struct Trivial;
//! impl ProgramSource for Trivial {
//!     fn tb_program(&self, _kind: KernelKindId, _param: u64, _tb: u32) -> TbProgram {
//!         TbProgram::new(vec![TbOp::Compute(8)])
//!     }
//! }
//!
//! let mut sim = Simulator::new(GpuConfig::small_test(), Box::new(Trivial));
//! sim.launch_host_kernel(KernelKindId(0), 0, 4, ResourceReq::new(64, 16, 0));
//! let stats = sim.run_to_completion().unwrap();
//! assert!(stats.cycles > 0);
//! ```

// The engine must degrade gracefully, not panic: every fallible lookup
// returns an Option/Result that the engine converts into a structured
// `SimError`. Tests opt back in locally.
#![deny(clippy::unwrap_used)]

pub mod cache;
pub mod coalesce;
pub mod component;
pub mod config;
pub mod dram;
pub mod engine;
pub mod error;
pub mod fault;
pub mod kdu;
pub mod kernel;
pub mod kmu;
pub mod launch;
pub mod mem;
pub mod program;
pub mod smem;
pub mod smx;
pub mod stats;
pub mod tb_sched;
pub mod trace;
pub mod types;
pub mod warp;
pub mod warp_sched;

pub use config::GpuConfig;
pub use engine::Simulator;
pub use error::SimError;
pub use stats::SimStats;
