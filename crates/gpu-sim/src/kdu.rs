//! Kernel Distributor Unit (KDU).
//!
//! The KDU holds the kernels currently visible to the SMX scheduler — at
//! most `max_concurrent_kernels` (32 on Kepler). Host and CDP device
//! kernels each occupy one entry; DTBL TB groups are *coalesced* onto the
//! entry of the kernel whose TB launched them and never consume an entry
//! of their own (Section IV-C of the paper).

use crate::types::BatchId;

/// One occupied KDU entry: a base kernel plus any TB groups coalesced
/// onto it.
#[derive(Debug, Clone)]
pub struct KduEntry {
    /// The kernel that owns the entry.
    pub base: BatchId,
    /// DTBL TB groups attached to this entry, in arrival order.
    pub groups: Vec<BatchId>,
    /// Monotone insertion sequence, for FCFS ordering.
    pub seq: u64,
}

/// The kernel distributor.
#[derive(Debug)]
pub struct Kdu {
    entries: Vec<Option<KduEntry>>,
    occupied: usize,
    next_seq: u64,
}

impl Kdu {
    /// Creates a KDU with `capacity` entries.
    pub fn new(capacity: u32) -> Self {
        Kdu { entries: (0..capacity).map(|_| None).collect(), occupied: 0, next_seq: 0 }
    }

    /// `true` if a new kernel can be inserted.
    pub fn has_free_entry(&self) -> bool {
        self.occupied < self.entries.len()
    }

    /// Number of occupied entries.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Inserts a kernel, returning its entry index, or `None` when full.
    pub fn insert(&mut self, base: BatchId) -> Option<usize> {
        let slot = self.entries.iter().position(|e| e.is_none())?;
        self.entries[slot] = Some(KduEntry { base, groups: Vec::new(), seq: self.next_seq });
        self.next_seq += 1;
        self.occupied += 1;
        Some(slot)
    }

    /// Attaches a TB group to an existing entry. Returns `false` (and
    /// attaches nothing) when the entry is vacant or out of range; the
    /// engine converts that into a structured error instead of a panic.
    #[must_use]
    pub fn attach_group(&mut self, entry: usize, group: BatchId) -> bool {
        match self.entries.get_mut(entry).and_then(|e| e.as_mut()) {
            Some(e) => {
                e.groups.push(group);
                true
            }
            None => false,
        }
    }

    /// Frees an entry, returning it, or `None` when the entry is already
    /// vacant or out of range.
    pub fn remove(&mut self, entry: usize) -> Option<KduEntry> {
        let e = self.entries.get_mut(entry)?.take()?;
        self.occupied -= 1;
        Some(e)
    }

    /// The entry at `index`, if occupied.
    pub fn entry(&self, index: usize) -> Option<&KduEntry> {
        self.entries.get(index).and_then(|e| e.as_ref())
    }

    /// All batches visible to the SMX scheduler, in FCFS order: entries by
    /// insertion sequence; within an entry, the base kernel then its
    /// groups in arrival order (dynamic TBs are appended to the end of the
    /// kernel's TB pool, per Section II-C).
    pub fn schedulable_batches(&self) -> Vec<BatchId> {
        let mut entries: Vec<&KduEntry> = self.entries.iter().flatten().collect();
        entries.sort_by_key(|e| e.seq);
        let mut out = Vec::new();
        for e in entries {
            out.push(e.base);
            out.extend(e.groups.iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn insert_until_full() {
        let mut kdu = Kdu::new(2);
        assert!(kdu.has_free_entry());
        assert!(kdu.insert(BatchId(0)).is_some());
        assert!(kdu.insert(BatchId(1)).is_some());
        assert!(!kdu.has_free_entry());
        assert!(kdu.insert(BatchId(2)).is_none());
        assert_eq!(kdu.occupied(), 2);
        assert_eq!(kdu.capacity(), 2);
    }

    #[test]
    fn remove_frees_entry() {
        let mut kdu = Kdu::new(1);
        let e = kdu.insert(BatchId(7)).unwrap();
        let removed = kdu.remove(e).unwrap();
        assert_eq!(removed.base, BatchId(7));
        assert!(kdu.has_free_entry());
        assert!(kdu.entry(e).is_none());
        assert!(kdu.remove(e).is_none());
    }

    #[test]
    fn schedulable_order_is_fcfs_with_groups_after_base() {
        let mut kdu = Kdu::new(4);
        let a = kdu.insert(BatchId(0)).unwrap();
        let b = kdu.insert(BatchId(1)).unwrap();
        assert!(kdu.attach_group(a, BatchId(2)));
        assert!(kdu.attach_group(b, BatchId(3)));
        assert!(kdu.attach_group(a, BatchId(4)));
        assert_eq!(
            kdu.schedulable_batches(),
            vec![BatchId(0), BatchId(2), BatchId(4), BatchId(1), BatchId(3)]
        );
    }

    #[test]
    fn reused_slot_keeps_fcfs_order() {
        let mut kdu = Kdu::new(2);
        let a = kdu.insert(BatchId(0)).unwrap();
        kdu.insert(BatchId(1)).unwrap();
        kdu.remove(a).unwrap();
        kdu.insert(BatchId(2)).unwrap();
        // BatchId(2) reuses slot 0 but must sort after BatchId(1).
        assert_eq!(kdu.schedulable_batches(), vec![BatchId(1), BatchId(2)]);
    }

    #[test]
    fn attach_to_vacant_is_rejected() {
        let mut kdu = Kdu::new(1);
        assert!(!kdu.attach_group(0, BatchId(0)));
        assert!(!kdu.attach_group(99, BatchId(0)));
        assert_eq!(kdu.occupied(), 0);
    }
}
