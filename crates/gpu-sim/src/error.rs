//! Simulator error types.

use std::error::Error;
use std::fmt;

use crate::types::{BatchId, SmxId};

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The hardware configuration failed validation.
    InvalidConfig(String),
    /// A kernel's per-TB resource requirement can never fit on an SMX.
    KernelTooLarge {
        /// The offending batch.
        batch: BatchId,
        /// Description of the violated limit.
        reason: String,
    },
    /// A scheduler returned a dispatch decision that does not fit.
    BadDispatch {
        /// The batch the scheduler tried to dispatch from.
        batch: BatchId,
        /// The SMX it targeted.
        smx: SmxId,
        /// Why the decision was rejected.
        reason: String,
    },
    /// The simulation exceeded the configured cycle budget.
    CycleLimitExceeded {
        /// The cycle budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::KernelTooLarge { batch, reason } => {
                write!(f, "kernel {batch} can never be placed: {reason}")
            }
            SimError::BadDispatch { batch, smx, reason } => {
                write!(f, "bad dispatch of {batch} to {smx}: {reason}")
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded cycle limit of {limit}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            SimError::InvalidConfig("bad".into()),
            SimError::KernelTooLarge { batch: BatchId(1), reason: "too many threads".into() },
            SimError::BadDispatch {
                batch: BatchId(2),
                smx: SmxId(0),
                reason: "no resources".into(),
            },
            SimError::CycleLimitExceeded { limit: 100 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
