//! Simulator error types.

use std::error::Error;
use std::fmt;

use crate::stats::StallCause;
use crate::types::{BatchId, Cycle, SmxId, TbRef};

/// One thread block named as a suspect by the forward-progress watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckTb {
    /// The stuck thread block. For a batch still awaiting dispatch this
    /// is its next undispatched TB.
    pub tb: TbRef,
    /// The SMX the TB is resident on, or `None` if it was never
    /// dispatched.
    pub smx: Option<SmxId>,
    /// The scheduling priority level (queue level) of the TB's batch.
    pub level: u8,
    /// What the owning SMX was last waiting on (resident TBs only).
    pub cause: Option<StallCause>,
}

impl std::fmt::Display for StuckTb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} level {}", self.tb, self.level)?;
        match self.smx {
            Some(smx) => write!(f, " on {smx}")?,
            None => write!(f, " undispatched")?,
        }
        if let Some(cause) = self.cause {
            write!(f, " waiting on {}", cause.name())?;
        }
        Ok(())
    }
}

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The hardware configuration failed validation.
    InvalidConfig(String),
    /// A kernel's per-TB resource requirement can never fit on an SMX.
    KernelTooLarge {
        /// The offending batch.
        batch: BatchId,
        /// Description of the violated limit.
        reason: String,
    },
    /// A scheduler returned a dispatch decision that does not fit.
    BadDispatch {
        /// The batch the scheduler tried to dispatch from.
        batch: BatchId,
        /// The SMX it targeted.
        smx: SmxId,
        /// Why the decision was rejected.
        reason: String,
    },
    /// The simulation exceeded the configured cycle budget.
    CycleLimitExceeded {
        /// The cycle budget that was exceeded.
        limit: u64,
    },
    /// The forward-progress watchdog saw a full window elapse with no
    /// dispatch, retirement, launch delivery, or retired instruction.
    NoForwardProgress {
        /// The watchdog window that elapsed without progress.
        window: u64,
        /// The cycle at which the watchdog fired.
        cycle: Cycle,
        /// Work items that appear stuck (truncated to the first few).
        suspects: Vec<StuckTb>,
    },
    /// An internal engine invariant was violated (a bug in the engine or
    /// a hardware-model component, not in the workload).
    EngineInvariant {
        /// The cycle at which the violation was detected.
        cycle: Cycle,
        /// Description of the violated invariant.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::KernelTooLarge { batch, reason } => {
                write!(f, "kernel {batch} can never be placed: {reason}")
            }
            SimError::BadDispatch { batch, smx, reason } => {
                write!(f, "bad dispatch of {batch} to {smx}: {reason}")
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded cycle limit of {limit}")
            }
            SimError::NoForwardProgress { window, cycle, suspects } => {
                write!(f, "no forward progress for {window} cycles (at cycle {cycle})")?;
                if !suspects.is_empty() {
                    write!(f, "; suspects:")?;
                    for s in suspects {
                        write!(f, " [{s}]")?;
                    }
                }
                Ok(())
            }
            SimError::EngineInvariant { cycle, what } => {
                write!(f, "engine invariant violated at cycle {cycle}: {what}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            SimError::InvalidConfig("bad".into()),
            SimError::KernelTooLarge { batch: BatchId(1), reason: "too many threads".into() },
            SimError::BadDispatch {
                batch: BatchId(2),
                smx: SmxId(0),
                reason: "no resources".into(),
            },
            SimError::CycleLimitExceeded { limit: 100 },
            SimError::NoForwardProgress {
                window: 1000,
                cycle: 5000,
                suspects: vec![StuckTb {
                    tb: TbRef { batch: BatchId(3), index: 7 },
                    smx: Some(SmxId(1)),
                    level: 2,
                    cause: Some(StallCause::MemoryPending),
                }],
            },
            SimError::EngineInvariant { cycle: 9, what: "KDU entry vanished".into() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
