//! The device-side launch path.
//!
//! When a warp executes a [`TbOp::Launch`](crate::program::TbOp::Launch),
//! the engine hands a [`LaunchRequest`] to the simulation's
//! [`DynamicLaunchModel`]. The model decides *when* the launch matures
//! (launch latency) and *how* it is delivered: as a CDP device kernel
//! (through the KMU, consuming a KDU entry) or as a DTBL TB group
//! (coalesced onto the parent kernel's KDU entry). Concrete models live
//! in the `dynpar` crate; [`ImmediateLaunchModel`] here is a zero-latency
//! CDP-style model for tests.

use std::collections::VecDeque;

use crate::kernel::{Origin, ResourceReq};
use crate::program::KernelKindId;
use crate::types::Cycle;

/// A device-side launch in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchRequest {
    /// Kernel kind of the child.
    pub kind: KernelKindId,
    /// Opaque workload parameter.
    pub param: u64,
    /// Number of child TBs.
    pub num_tbs: u32,
    /// Per-TB resource requirement of the child.
    pub req: ResourceReq,
    /// Who launched it.
    pub origin: Origin,
    /// Cycle the launching warp issued the request.
    pub issued_at: Cycle,
}

/// How a matured launch enters the scheduling hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// A CDP device kernel: enqueued at the KMU, occupies a KDU entry once
    /// dispatched, counted against the concurrent-kernel limit.
    DeviceKernel(LaunchRequest),
    /// A DTBL TB group: coalesced onto the parent kernel's KDU entry,
    /// immediately visible to the SMX scheduler.
    TbGroup(LaunchRequest),
}

impl Delivery {
    /// The underlying request.
    pub fn request(&self) -> &LaunchRequest {
        match self {
            Delivery::DeviceKernel(r) | Delivery::TbGroup(r) => r,
        }
    }
}

/// Models the latency and routing of device-side launches.
pub trait DynamicLaunchModel: Send {
    /// Accepts a launch issued by a running TB.
    fn submit(&mut self, req: LaunchRequest);

    /// Appends every launch that has matured by cycle `now` to `out`.
    ///
    /// The engine passes a reused scratch buffer (cleared by the caller)
    /// so the per-cycle hot path allocates nothing.
    fn drain_ready(&mut self, now: Cycle, out: &mut Vec<Delivery>);

    /// Number of launches still in flight.
    fn in_flight(&self) -> usize;

    /// The earliest cycle at which an in-flight launch matures, or
    /// `None` when nothing is in flight.
    ///
    /// Used by the engine's idle-cycle fast-forward; the conservative
    /// default (`Some(0)` whenever anything is in flight) merely
    /// disables fast-forwarding while launches are pending.
    fn next_ready(&self) -> Option<Cycle> {
        if self.in_flight() == 0 {
            None
        } else {
            Some(0)
        }
    }

    /// Model-specific counters for reports (e.g. DTBL aggregation-table
    /// overflows). Merged into [`SimStats::launch_counters`].
    ///
    /// [`SimStats::launch_counters`]: crate::stats::SimStats::launch_counters
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Model name for reports.
    fn name(&self) -> &'static str;
}

impl std::fmt::Debug for Box<dyn DynamicLaunchModel> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DynamicLaunchModel({})", self.name())
    }
}

/// A zero-latency CDP-style launch model, mainly for tests: every launch
/// matures on the next [`drain_ready`](DynamicLaunchModel::drain_ready)
/// call as a device kernel.
#[derive(Debug, Default)]
pub struct ImmediateLaunchModel {
    queue: VecDeque<LaunchRequest>,
}

impl ImmediateLaunchModel {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DynamicLaunchModel for ImmediateLaunchModel {
    fn submit(&mut self, req: LaunchRequest) {
        self.queue.push_back(req);
    }

    fn drain_ready(&mut self, _now: Cycle, out: &mut Vec<Delivery>) {
        out.extend(self.queue.drain(..).map(Delivery::DeviceKernel));
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "immediate"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::types::{BatchId, Priority, SmxId};

    fn request(param: u64) -> LaunchRequest {
        LaunchRequest {
            kind: KernelKindId(1),
            param,
            num_tbs: 2,
            req: ResourceReq::new(32, 8, 0),
            origin: Origin {
                parent_batch: BatchId(0),
                parent_tb: 0,
                parent_smx: SmxId(0),
                parent_priority: Priority::HOST,
            },
            issued_at: 10,
        }
    }

    #[test]
    fn immediate_model_delivers_all() {
        let mut m = ImmediateLaunchModel::new();
        m.submit(request(1));
        m.submit(request(2));
        assert_eq!(m.in_flight(), 2);
        assert_eq!(m.next_ready(), Some(0));
        let mut out = Vec::new();
        m.drain_ready(10, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.next_ready(), None);
        assert!(matches!(out[0], Delivery::DeviceKernel(_)));
        assert_eq!(out[1].request().param, 2);
    }

    #[test]
    fn drain_appends_to_existing_buffer() {
        let mut m = ImmediateLaunchModel::new();
        m.submit(request(1));
        let mut out = vec![Delivery::TbGroup(request(0))];
        m.drain_ready(0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].request().param, 1);
    }

    #[test]
    fn delivery_request_accessor() {
        let d = Delivery::TbGroup(request(9));
        assert_eq!(d.request().param, 9);
    }
}
