//! Memory access coalescing.
//!
//! A warp memory instruction supplies up to 32 per-thread byte addresses;
//! the coalescer groups them into the minimal set of distinct cache-line
//! transactions, exactly as GPU load/store units do for 128-byte
//! segments.

use crate::types::{Addr, LineAddr};

/// Groups per-thread byte addresses into distinct line transactions.
///
/// Returns the line addresses in first-appearance order (deterministic),
/// deduplicated.
pub fn coalesce(addrs: &[Addr], line_bits: u32) -> Vec<LineAddr> {
    let mut lines: Vec<LineAddr> = Vec::with_capacity(4);
    coalesce_into(addrs, line_bits, &mut lines);
    lines
}

/// [`coalesce`] into a caller-owned buffer (cleared first), so hot paths
/// can reuse one allocation across warp accesses.
pub fn coalesce_into(addrs: &[Addr], line_bits: u32, out: &mut Vec<LineAddr>) {
    out.clear();
    for &a in addrs {
        let line = a >> line_bits;
        if !out.contains(&line) {
            out.push(line);
        }
    }
}

/// Number of transactions a warp access would generate, without
/// materializing them.
pub fn transaction_count(addrs: &[Addr], line_bits: u32) -> usize {
    coalesce(addrs, line_bits).len()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    const LINE_BITS: u32 = 7; // 128-byte lines

    #[test]
    fn fully_coalesced_single_transaction() {
        // 32 consecutive 4-byte words starting at a line boundary fit in
        // one 128-byte line.
        let addrs: Vec<Addr> = (0..32).map(|t| 4096 + t * 4).collect();
        assert_eq!(coalesce(&addrs, LINE_BITS), vec![4096 >> 7]);
    }

    #[test]
    fn misaligned_coalesced_two_transactions() {
        let addrs: Vec<Addr> = (0..32).map(|t| 4096 + 64 + t * 4).collect();
        assert_eq!(coalesce(&addrs, LINE_BITS).len(), 2);
    }

    #[test]
    fn fully_scattered_32_transactions() {
        let addrs: Vec<Addr> = (0..32).map(|t| t * 128 * 17).collect();
        assert_eq!(transaction_count(&addrs, LINE_BITS), 32);
    }

    #[test]
    fn broadcast_one_transaction() {
        let addrs = vec![12345u64; 32];
        assert_eq!(transaction_count(&addrs, LINE_BITS), 1);
    }

    #[test]
    fn empty_access_no_transactions() {
        assert!(coalesce(&[], LINE_BITS).is_empty());
    }

    #[test]
    fn order_is_first_appearance() {
        let addrs = vec![1000, 0, 1001, 5];
        let lines = coalesce(&addrs, LINE_BITS);
        assert_eq!(lines, vec![1000 >> 7, 0]);
    }

    #[test]
    fn count_never_exceeds_thread_count() {
        let addrs: Vec<Addr> = (0..32).map(|t| t * 999).collect();
        assert!(transaction_count(&addrs, LINE_BITS) <= 32);
    }
}
