//! Set-associative cache model with LRU replacement.
//!
//! Used for both the per-SMX L1 data caches and the shared L2. The model
//! is a *tag store only*: probes hit or miss and fills happen atomically
//! at probe time. That simplification preserves what the LaPerm study
//! needs — reuse distances and eviction behavior — while keeping the
//! simulator fast and deterministic.

use crate::stats::Pow2Hist;
use crate::types::{Cycle, LineAddr, SmxId, TbRef};

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The line was present.
    Hit,
    /// The line was absent (and allocated, if the probe allocates).
    Miss,
}

/// How a hitting access relates to the TB that installed the line
/// (paper Section III-A: the reuse the LaPerm schedulers create).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseClass {
    /// The accessor installed the line itself.
    SelfReuse,
    /// Installer and accessor are direct parent and child (either way).
    ParentChild,
    /// Same launching parent TB (or TBs of the same kernel launch).
    Sibling,
    /// One is an ancestor of the other at nesting distance >= 2.
    Ancestor,
    /// No lineage relation.
    Unrelated,
}

/// Number of [`ReuseClass`] variants (array sizing).
pub const NUM_REUSE_CLASSES: usize = 5;

impl ReuseClass {
    /// All classes, indexable by [`ReuseClass::index`].
    pub const ALL: [ReuseClass; NUM_REUSE_CLASSES] = [
        ReuseClass::SelfReuse,
        ReuseClass::ParentChild,
        ReuseClass::Sibling,
        ReuseClass::Ancestor,
        ReuseClass::Unrelated,
    ];

    /// Stable array index of this class.
    pub fn index(self) -> usize {
        match self {
            ReuseClass::SelfReuse => 0,
            ReuseClass::ParentChild => 1,
            ReuseClass::Sibling => 2,
            ReuseClass::Ancestor => 3,
            ReuseClass::Unrelated => 4,
        }
    }

    /// Short metric-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            ReuseClass::SelfReuse => "self",
            ReuseClass::ParentChild => "parent_child",
            ReuseClass::Sibling => "sibling",
            ReuseClass::Ancestor => "ancestor",
            ReuseClass::Unrelated => "unrelated",
        }
    }
}

/// Maximum ancestor-chain length carried per TB. Deeper nesting is
/// clamped (the LaPerm nesting clamp `L` never exceeds 8 in this repo).
pub const MAX_ANCESTORS: usize = 8;

/// The identity and ancestry of one resident TB, computed once at
/// dispatch time and carried by every memory access the TB issues.
/// `Copy` and fixed-size so the hot loop never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lineage {
    /// The TB itself.
    pub tb: TbRef,
    /// The SMX the TB was dispatched to.
    pub smx: SmxId,
    /// Nesting depth (0 = host kernel TB).
    pub depth: u32,
    /// `ancestors[0]` is the direct parent, `ancestors[1]` the
    /// grandparent, …; only the first `num_ancestors` entries are valid.
    pub ancestors: [TbRef; MAX_ANCESTORS],
    /// Valid prefix length of `ancestors`.
    pub num_ancestors: u8,
    /// The SMX the direct parent ran on (`None` for host TBs). Used to
    /// attribute child reuse to bound vs stolen placements.
    pub parent_smx: Option<SmxId>,
}

impl Lineage {
    /// A lineage with no ancestry, for `tb` dispatched to `smx`.
    pub fn new(tb: TbRef, smx: SmxId) -> Self {
        Lineage {
            tb,
            smx,
            depth: 0,
            ancestors: [TbRef { batch: crate::types::BatchId(0), index: 0 }; MAX_ANCESTORS],
            num_ancestors: 0,
            parent_smx: None,
        }
    }

    /// Appends the next ancestor (direct parent first). Silently clamps
    /// beyond [`MAX_ANCESTORS`]; `depth` keeps counting regardless.
    pub fn push_ancestor(&mut self, tb: TbRef) {
        if (self.num_ancestors as usize) < MAX_ANCESTORS {
            self.ancestors[self.num_ancestors as usize] = tb;
            self.num_ancestors += 1;
        }
        self.depth += 1;
    }

    /// The direct parent TB, if any.
    pub fn parent(&self) -> Option<TbRef> {
        (self.num_ancestors > 0).then_some(self.ancestors[0])
    }

    /// The valid ancestor chain.
    pub fn ancestors(&self) -> &[TbRef] {
        &self.ancestors[..self.num_ancestors as usize]
    }

    /// Classifies a hit by `self` (the accessor) on a line installed by
    /// `installer`. The relation is symmetric except for `SelfReuse`.
    pub fn classify(&self, installer: &Lineage) -> ReuseClass {
        if installer.tb == self.tb {
            return ReuseClass::SelfReuse;
        }
        if self.parent() == Some(installer.tb) || installer.parent() == Some(self.tb) {
            return ReuseClass::ParentChild;
        }
        // TBs of the same launch, or launched by the same parent TB.
        if installer.tb.batch == self.tb.batch {
            return ReuseClass::Sibling;
        }
        if let (Some(pa), Some(pi)) = (self.parent(), installer.parent()) {
            if pa == pi {
                return ReuseClass::Sibling;
            }
        }
        if self.ancestors().iter().skip(1).any(|&a| a == installer.tb)
            || installer.ancestors().iter().skip(1).any(|&a| a == self.tb)
        {
            return ReuseClass::Ancestor;
        }
        ReuseClass::Unrelated
    }
}

/// Which class of thread block issued an access (for split statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// A TB of a host-launched (parent) kernel.
    Parent,
    /// A TB of a device-launched kernel or TB group.
    Child,
}

/// Per-[`ReuseClass`] hit counters, plus the same-vs-cross-SMX split.
/// Populated only while provenance profiling is enabled; all-zero
/// otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvCounters {
    /// Hits by reuse class, indexed by [`ReuseClass::index`].
    pub by_class: [u64; NUM_REUSE_CLASSES],
    /// Hits where the accessor runs on the installing SMX.
    pub same_smx: u64,
    /// Hits where the accessor runs on a different SMX (L2 only in
    /// practice: an L1 is private to its SMX).
    pub cross_smx: u64,
}

impl ProvCounters {
    /// Total classified hits (equals the cache's `hits` when every
    /// access carried a lineage).
    pub fn total(&self) -> u64 {
        self.by_class.iter().sum()
    }

    /// Hits of one class.
    pub fn class(&self, class: ReuseClass) -> u64 {
        self.by_class[class.index()]
    }

    /// Share of classified hits in `class`; zero when nothing was
    /// classified.
    pub fn share(&self, class: ReuseClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.class(class) as f64 / total as f64
        }
    }

    /// Accumulates another counter block into this one.
    pub fn merge(&mut self, other: &ProvCounters) {
        for (a, b) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            *a += b;
        }
        self.same_smx += other.same_smx;
        self.cross_smx += other.cross_smx;
    }
}

/// Hit/miss counters, overall and split by [`AccessClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Hits by parent-kernel TBs.
    pub parent_hits: u64,
    /// Misses by parent-kernel TBs.
    pub parent_misses: u64,
    /// Hits by child (dynamic) TBs.
    pub child_hits: u64,
    /// Misses by child (dynamic) TBs.
    pub child_misses: u64,
    /// Provenance split of the hits (zero unless profiling is enabled).
    pub prov: ProvCounters,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Hit rate of child-TB accesses only.
    pub fn child_hit_rate(&self) -> f64 {
        let total = self.child_hits + self.child_misses;
        if total == 0 {
            0.0
        } else {
            self.child_hits as f64 / total as f64
        }
    }

    /// Accumulates another stats block into this one, provenance
    /// counters included.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.parent_hits += other.parent_hits;
        self.parent_misses += other.parent_misses;
        self.child_hits += other.child_hits;
        self.child_misses += other.child_misses;
        self.prov.merge(&other.prov);
    }

    fn record(&mut self, class: AccessClass, hit: bool) {
        if hit {
            self.hits += 1;
            match class {
                AccessClass::Parent => self.parent_hits += 1,
                AccessClass::Child => self.child_hits += 1,
            }
        } else {
            self.misses += 1;
            match class {
                AccessClass::Parent => self.parent_misses += 1,
                AccessClass::Child => self.child_misses += 1,
            }
        }
    }
}

/// A line evicted by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line address.
    pub line: LineAddr,
    /// `true` if the line had been written (needs write-back under a
    /// write-back policy).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    last_use: u64,
    valid: bool,
    dirty: bool,
}

/// The installer record of one cache line.
#[derive(Debug, Clone, Copy)]
struct LineTag {
    lineage: Lineage,
    installed_at: Cycle,
    valid: bool,
}

/// Provenance profiling state: one installer tag per way plus the
/// per-class reuse-distance histograms. Allocated only by
/// [`Cache::enable_provenance`]; absent, the cache does no extra work.
#[derive(Debug, Clone)]
struct ProvState {
    tags: Vec<LineTag>,
    reuse_dist: [Pow2Hist; NUM_REUSE_CLASSES],
}

/// A set-associative, LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>,
    num_sets: usize,
    assoc: usize,
    tick: u64,
    stats: CacheStats,
    prov: Option<Box<ProvState>>,
}

impl Cache {
    /// Builds a cache of `bytes` capacity with `assoc` ways and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (zero sizes or associativity not
    /// dividing the line count). Validate configurations with
    /// [`GpuConfig::validate`] first.
    ///
    /// [`GpuConfig::validate`]: crate::config::GpuConfig::validate
    pub fn new(bytes: u32, assoc: u32, line_bytes: u32) -> Self {
        let lines = (bytes / line_bytes) as usize;
        let assoc = assoc as usize;
        assert!(lines > 0 && assoc > 0 && lines.is_multiple_of(assoc), "invalid cache geometry");
        let num_sets = lines / assoc;
        Cache {
            ways: vec![Way { tag: 0, last_use: 0, valid: false, dirty: false }; lines],
            num_sets,
            assoc,
            tick: 0,
            stats: CacheStats::default(),
            prov: None,
        }
    }

    /// Allocates the provenance tag store and reuse-distance histograms.
    /// Every subsequent access that carries a lineage (see
    /// [`access_tagged`](Self::access_tagged)) classifies its hits; call
    /// before the first access so all fills are tagged.
    pub fn enable_provenance(&mut self) {
        let untagged = LineTag {
            lineage: Lineage::new(TbRef { batch: crate::types::BatchId(0), index: 0 }, SmxId(0)),
            installed_at: 0,
            valid: false,
        };
        self.prov = Some(Box::new(ProvState {
            tags: vec![untagged; self.ways.len()],
            reuse_dist: Default::default(),
        }));
    }

    /// `true` once [`enable_provenance`](Self::enable_provenance) ran.
    pub fn provenance_enabled(&self) -> bool {
        self.prov.is_some()
    }

    /// Per-class reuse-distance histograms (cycles between a line's
    /// install and each hit on it), or `None` when profiling is off.
    pub fn reuse_dist(&self) -> Option<&[Pow2Hist; NUM_REUSE_CLASSES]> {
        self.prov.as_ref().map(|p| &p.reuse_dist)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Probes the cache for `line`. On a miss, allocates the line (LRU
    /// victim) when `allocate` is true. Statistics are recorded under
    /// `class`.
    pub fn access(&mut self, line: LineAddr, allocate: bool, class: AccessClass) -> ProbeResult {
        self.access_full(line, allocate, class, false).0
    }

    /// Like [`access`](Self::access), additionally marking the line dirty
    /// (for stores under a write-back policy) and reporting any valid
    /// line the allocation evicted.
    pub fn access_full(
        &mut self,
        line: LineAddr,
        allocate: bool,
        class: AccessClass,
        mark_dirty: bool,
    ) -> (ProbeResult, Option<EvictedLine>) {
        let (res, evicted, _) = self.access_indexed(line, allocate, class, mark_dirty);
        (res, evicted)
    }

    /// Like [`access_full`](Self::access_full), additionally classifying
    /// the access against the installer tags when `prov` carries the
    /// accessor's lineage and the current cycle and profiling is
    /// enabled: hits are recorded per [`ReuseClass`] (with reuse
    /// distance `now - installed_at`), fills stamp the new tag. With
    /// `prov == None` or profiling off this is exactly `access_full`.
    pub fn access_tagged(
        &mut self,
        line: LineAddr,
        allocate: bool,
        class: AccessClass,
        mark_dirty: bool,
        prov: Option<(&Lineage, Cycle)>,
    ) -> (ProbeResult, Option<EvictedLine>) {
        let (res, evicted, way) = self.access_indexed(line, allocate, class, mark_dirty);
        if let (Some((lineage, now)), Some(state)) = (prov, self.prov.as_mut()) {
            if let Some(wi) = way {
                match res {
                    ProbeResult::Hit => {
                        let tag = &state.tags[wi];
                        if tag.valid {
                            let reuse = lineage.classify(&tag.lineage);
                            self.stats.prov.by_class[reuse.index()] += 1;
                            if tag.lineage.smx == lineage.smx {
                                self.stats.prov.same_smx += 1;
                            } else {
                                self.stats.prov.cross_smx += 1;
                            }
                            state.reuse_dist[reuse.index()]
                                .record(now.saturating_sub(tag.installed_at));
                        }
                    }
                    ProbeResult::Miss => {
                        state.tags[wi] =
                            LineTag { lineage: *lineage, installed_at: now, valid: true };
                    }
                }
            }
        }
        (res, evicted)
    }

    /// The probe/fill core shared by the plain and provenance-tagged
    /// paths. The third return is the global way index that was hit or
    /// (on an allocating miss) filled.
    fn access_indexed(
        &mut self,
        line: LineAddr,
        allocate: bool,
        class: AccessClass,
        mark_dirty: bool,
    ) -> (ProbeResult, Option<EvictedLine>, Option<usize>) {
        self.tick += 1;
        let set = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        let num_sets = self.num_sets as u64;
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];

        for (i, way) in ways.iter_mut().enumerate() {
            if way.valid && way.tag == tag {
                way.last_use = self.tick;
                way.dirty |= mark_dirty;
                self.stats.record(class, true);
                return (ProbeResult::Hit, None, Some(base + i));
            }
        }
        self.stats.record(class, false);
        let mut evicted = None;
        let mut filled = None;
        if allocate {
            let (vi, victim) = ways
                .iter_mut()
                .enumerate()
                .min_by_key(|(_, w)| if w.valid { w.last_use } else { 0 })
                .expect("assoc > 0");
            if victim.valid {
                evicted = Some(EvictedLine {
                    line: victim.tag * num_sets + set as u64,
                    dirty: victim.dirty,
                });
            }
            victim.tag = tag;
            victim.valid = true;
            victim.dirty = mark_dirty;
            victim.last_use = self.tick;
            filled = Some(base + vi);
        }
        (ProbeResult::Miss, evicted, filled)
    }

    /// `true` if `line` is currently resident (no statistics recorded,
    /// no LRU update).
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        let base = set * self.assoc;
        self.ways[base..base + self.assoc].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Invalidates all lines and clears statistics (and, when profiling
    /// is enabled, the installer tags and reuse histograms).
    pub fn reset(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
        }
        self.tick = 0;
        self.stats = CacheStats::default();
        if let Some(state) = self.prov.as_mut() {
            for t in &mut state.tags {
                t.valid = false;
            }
            state.reuse_dist = Default::default();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 128B lines = 1 KiB.
        Cache::new(1024, 2, 128)
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.assoc(), 2);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(42, true, AccessClass::Parent), ProbeResult::Miss);
        assert_eq!(c.access(42, true, AccessClass::Parent), ProbeResult::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn no_allocate_probe_does_not_fill() {
        let mut c = tiny();
        assert_eq!(c.access(7, false, AccessClass::Child), ProbeResult::Miss);
        assert_eq!(c.access(7, false, AccessClass::Child), ProbeResult::Miss);
        assert!(!c.contains(7));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.access(0, true, AccessClass::Parent);
        c.access(4, true, AccessClass::Parent);
        c.access(0, true, AccessClass::Parent); // 0 is now MRU
        c.access(8, true, AccessClass::Parent); // evicts 4
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn class_split_stats() {
        let mut c = tiny();
        c.access(1, true, AccessClass::Parent);
        c.access(1, true, AccessClass::Child);
        assert_eq!(c.stats().parent_misses, 1);
        assert_eq!(c.stats().child_hits, 1);
        assert!((c.stats().child_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_rate(), 0.0);
        for i in 0..100 {
            c.access(i % 3, true, AccessClass::Parent);
        }
        let r = c.stats().hit_rate();
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(5, true, AccessClass::Parent);
        c.reset();
        assert!(!c.contains(5));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats { hits: 1, misses: 2, ..Default::default() };
        let b = CacheStats { hits: 3, misses: 4, child_hits: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 6);
        assert_eq!(a.child_hits, 1);
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_panics() {
        let _ = Cache::new(1024, 3, 128);
    }

    #[test]
    fn eviction_reports_victim_line() {
        let mut c = tiny();
        // Set 0 ways: fill with lines 0 and 4; line 8 evicts line 0.
        c.access(0, true, AccessClass::Parent);
        c.access(4, true, AccessClass::Parent);
        let (res, evicted) = c.access_full(8, true, AccessClass::Parent, false);
        assert_eq!(res, ProbeResult::Miss);
        assert_eq!(evicted, Some(EvictedLine { line: 0, dirty: false }));
    }

    #[test]
    fn dirty_bit_tracks_stores() {
        let mut c = tiny();
        c.access_full(0, true, AccessClass::Parent, true); // dirty fill
        c.access(4, true, AccessClass::Parent);
        let (_, evicted) = c.access_full(8, true, AccessClass::Parent, false);
        assert_eq!(evicted, Some(EvictedLine { line: 0, dirty: true }));
    }

    #[test]
    fn hit_can_set_dirty_later() {
        let mut c = tiny();
        c.access(0, true, AccessClass::Parent); // clean fill
        c.access_full(0, true, AccessClass::Parent, true); // store hit
        c.access(4, true, AccessClass::Parent);
        c.access(4, true, AccessClass::Parent); // make 4 MRU
        let (_, evicted) = c.access_full(8, true, AccessClass::Parent, false);
        assert_eq!(evicted, Some(EvictedLine { line: 0, dirty: true }));
    }

    #[test]
    fn no_eviction_reported_for_invalid_victim() {
        let mut c = tiny();
        let (_, evicted) = c.access_full(0, true, AccessClass::Parent, false);
        assert_eq!(evicted, None);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for line in 0..4 {
            c.access(line, true, AccessClass::Parent);
        }
        for line in 0..4 {
            assert!(c.contains(line), "line {line} should still be resident");
        }
    }

    use crate::types::BatchId;

    fn tbr(batch: u32, index: u32) -> TbRef {
        TbRef { batch: BatchId(batch), index }
    }

    /// A depth-1 lineage: `tb` launched by `parent`, running on `smx`.
    fn child_lineage(tb: TbRef, parent: TbRef, smx: u16) -> Lineage {
        let mut l = Lineage::new(tb, SmxId(smx));
        l.push_ancestor(parent);
        l.parent_smx = Some(SmxId(0));
        l
    }

    #[test]
    fn zero_access_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.child_hit_rate(), 0.0);
        assert_eq!(s.prov.share(ReuseClass::ParentChild), 0.0);
        assert_eq!(s.prov.total(), 0);
    }

    #[test]
    fn child_hit_rate_ignores_parent_traffic() {
        let mut s = CacheStats::default();
        s.record(AccessClass::Parent, true);
        s.record(AccessClass::Parent, false);
        assert_eq!(s.child_hit_rate(), 0.0, "no child accesses yet");
        s.record(AccessClass::Child, true);
        assert!((s.child_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_provenance_counters() {
        let mut a = CacheStats { hits: 2, ..Default::default() };
        a.prov.by_class[ReuseClass::SelfReuse.index()] = 1;
        a.prov.same_smx = 1;
        let mut b = CacheStats { hits: 3, ..Default::default() };
        b.prov.by_class[ReuseClass::ParentChild.index()] = 2;
        b.prov.cross_smx = 2;
        a.merge(&b);
        assert_eq!(a.prov.class(ReuseClass::SelfReuse), 1);
        assert_eq!(a.prov.class(ReuseClass::ParentChild), 2);
        assert_eq!(a.prov.same_smx, 1);
        assert_eq!(a.prov.cross_smx, 2);
        assert_eq!(a.prov.total(), 3);
    }

    #[test]
    fn classify_covers_all_relations() {
        let parent = Lineage::new(tbr(0, 1), SmxId(0));
        let child_a = child_lineage(tbr(1, 0), tbr(0, 1), 0);
        let child_b = child_lineage(tbr(1, 1), tbr(0, 1), 1);
        let cousin = child_lineage(tbr(2, 0), tbr(0, 2), 1);
        let mut grandchild = Lineage::new(tbr(3, 0), SmxId(2));
        grandchild.push_ancestor(tbr(1, 0)); // direct parent: child_a
        grandchild.push_ancestor(tbr(0, 1)); // grandparent: parent

        assert_eq!(parent.classify(&parent), ReuseClass::SelfReuse);
        assert_eq!(child_a.classify(&parent), ReuseClass::ParentChild);
        assert_eq!(parent.classify(&child_a), ReuseClass::ParentChild);
        assert_eq!(child_a.classify(&child_b), ReuseClass::Sibling);
        assert_eq!(child_a.classify(&cousin), ReuseClass::Unrelated);
        assert_eq!(grandchild.classify(&parent), ReuseClass::Ancestor);
        assert_eq!(parent.classify(&grandchild), ReuseClass::Ancestor);
        assert_eq!(grandchild.classify(&child_a), ReuseClass::ParentChild);
    }

    #[test]
    fn same_batch_without_common_parent_is_sibling() {
        let a = Lineage::new(tbr(0, 0), SmxId(0));
        let b = Lineage::new(tbr(0, 5), SmxId(1));
        assert_eq!(a.classify(&b), ReuseClass::Sibling);
    }

    #[test]
    fn ancestor_chain_clamps_but_depth_counts() {
        let mut l = Lineage::new(tbr(99, 0), SmxId(0));
        for i in 0..(MAX_ANCESTORS as u32 + 3) {
            l.push_ancestor(tbr(i, 0));
        }
        assert_eq!(l.num_ancestors as usize, MAX_ANCESTORS);
        assert_eq!(l.depth, MAX_ANCESTORS as u32 + 3);
        assert_eq!(l.parent(), Some(tbr(0, 0)));
    }

    #[test]
    fn tagged_hits_classified_and_partition_holds() {
        let mut c = tiny();
        c.enable_provenance();
        let parent = Lineage::new(tbr(0, 1), SmxId(0));
        let child = child_lineage(tbr(1, 0), tbr(0, 1), 1);
        // Parent installs at cycle 10, child hits at cycle 42, parent
        // re-hits at cycle 50.
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&parent, 10)));
        c.access_tagged(0, true, AccessClass::Child, false, Some((&child, 42)));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&parent, 50)));
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.prov.class(ReuseClass::ParentChild), 1);
        assert_eq!(s.prov.class(ReuseClass::SelfReuse), 1);
        assert_eq!(s.prov.total(), s.hits, "every hit classified");
        assert_eq!(s.prov.same_smx, 1);
        assert_eq!(s.prov.cross_smx, 1);
        let dist = c.reuse_dist().unwrap();
        let pc = &dist[ReuseClass::ParentChild.index()];
        assert_eq!(pc.count, 1);
        assert_eq!(pc.sum, 32); // 42 - 10
    }

    #[test]
    fn hit_rehit_measures_distance_from_install_not_last_hit() {
        let mut c = tiny();
        c.enable_provenance();
        let l = Lineage::new(tbr(0, 0), SmxId(0));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 0)));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 100)));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 300)));
        let dist = c.reuse_dist().unwrap();
        let sr = &dist[ReuseClass::SelfReuse.index()];
        assert_eq!(sr.count, 2);
        assert_eq!(sr.sum, 400); // 100 + 300, both from install at 0
    }

    #[test]
    fn refill_retags_the_line() {
        let mut c = tiny();
        c.enable_provenance();
        let a = Lineage::new(tbr(0, 0), SmxId(0));
        let b = Lineage::new(tbr(5, 0), SmxId(1));
        // a installs 0; 4 and 8 (same set) evict it; b reinstalls 0;
        // a's hit on it must classify against b, not the stale tag.
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&a, 0)));
        c.access_tagged(4, true, AccessClass::Parent, false, Some((&a, 1)));
        c.access_tagged(8, true, AccessClass::Parent, false, Some((&a, 2)));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&b, 3)));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&a, 4)));
        assert_eq!(c.stats().prov.class(ReuseClass::Unrelated), 1);
        assert_eq!(c.stats().prov.class(ReuseClass::SelfReuse), 0);
    }

    #[test]
    fn untagged_access_neither_classifies_nor_stamps() {
        let mut c = tiny();
        c.enable_provenance();
        let l = Lineage::new(tbr(0, 0), SmxId(0));
        c.access_tagged(0, true, AccessClass::Parent, false, None); // untagged fill
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 5)));
        // Hit on an untagged line: counted as a hit, not classified.
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().prov.total(), 0);
    }

    #[test]
    fn disabled_provenance_is_plain_access() {
        let mut c = tiny();
        let l = Lineage::new(tbr(0, 0), SmxId(0));
        assert!(!c.provenance_enabled());
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 0)));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 1)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().prov.total(), 0);
        assert!(c.reuse_dist().is_none());
    }

    #[test]
    fn reset_clears_provenance_state() {
        let mut c = tiny();
        c.enable_provenance();
        let l = Lineage::new(tbr(0, 0), SmxId(0));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 0)));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 9)));
        c.reset();
        assert_eq!(c.stats().prov.total(), 0);
        assert_eq!(c.reuse_dist().unwrap()[ReuseClass::SelfReuse.index()].count, 0);
        // A post-reset hit on a refilled line classifies fresh.
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 20)));
        c.access_tagged(0, true, AccessClass::Parent, false, Some((&l, 21)));
        assert_eq!(c.stats().prov.class(ReuseClass::SelfReuse), 1);
    }
}
