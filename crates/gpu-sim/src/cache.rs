//! Set-associative cache model with LRU replacement.
//!
//! Used for both the per-SMX L1 data caches and the shared L2. The model
//! is a *tag store only*: probes hit or miss and fills happen atomically
//! at probe time. That simplification preserves what the LaPerm study
//! needs — reuse distances and eviction behavior — while keeping the
//! simulator fast and deterministic.

use crate::types::LineAddr;

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The line was present.
    Hit,
    /// The line was absent (and allocated, if the probe allocates).
    Miss,
}

/// Which class of thread block issued an access (for split statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// A TB of a host-launched (parent) kernel.
    Parent,
    /// A TB of a device-launched kernel or TB group.
    Child,
}

/// Hit/miss counters, overall and split by [`AccessClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Hits by parent-kernel TBs.
    pub parent_hits: u64,
    /// Misses by parent-kernel TBs.
    pub parent_misses: u64,
    /// Hits by child (dynamic) TBs.
    pub child_hits: u64,
    /// Misses by child (dynamic) TBs.
    pub child_misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Hit rate of child-TB accesses only.
    pub fn child_hit_rate(&self) -> f64 {
        let total = self.child_hits + self.child_misses;
        if total == 0 {
            0.0
        } else {
            self.child_hits as f64 / total as f64
        }
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.parent_hits += other.parent_hits;
        self.parent_misses += other.parent_misses;
        self.child_hits += other.child_hits;
        self.child_misses += other.child_misses;
    }

    fn record(&mut self, class: AccessClass, hit: bool) {
        if hit {
            self.hits += 1;
            match class {
                AccessClass::Parent => self.parent_hits += 1,
                AccessClass::Child => self.child_hits += 1,
            }
        } else {
            self.misses += 1;
            match class {
                AccessClass::Parent => self.parent_misses += 1,
                AccessClass::Child => self.child_misses += 1,
            }
        }
    }
}

/// A line evicted by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line address.
    pub line: LineAddr,
    /// `true` if the line had been written (needs write-back under a
    /// write-back policy).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    last_use: u64,
    valid: bool,
    dirty: bool,
}

/// A set-associative, LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>,
    num_sets: usize,
    assoc: usize,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache of `bytes` capacity with `assoc` ways and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (zero sizes or associativity not
    /// dividing the line count). Validate configurations with
    /// [`GpuConfig::validate`] first.
    ///
    /// [`GpuConfig::validate`]: crate::config::GpuConfig::validate
    pub fn new(bytes: u32, assoc: u32, line_bytes: u32) -> Self {
        let lines = (bytes / line_bytes) as usize;
        let assoc = assoc as usize;
        assert!(lines > 0 && assoc > 0 && lines.is_multiple_of(assoc), "invalid cache geometry");
        let num_sets = lines / assoc;
        Cache {
            ways: vec![Way { tag: 0, last_use: 0, valid: false, dirty: false }; lines],
            num_sets,
            assoc,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Probes the cache for `line`. On a miss, allocates the line (LRU
    /// victim) when `allocate` is true. Statistics are recorded under
    /// `class`.
    pub fn access(&mut self, line: LineAddr, allocate: bool, class: AccessClass) -> ProbeResult {
        self.access_full(line, allocate, class, false).0
    }

    /// Like [`access`](Self::access), additionally marking the line dirty
    /// (for stores under a write-back policy) and reporting any valid
    /// line the allocation evicted.
    pub fn access_full(
        &mut self,
        line: LineAddr,
        allocate: bool,
        class: AccessClass,
        mark_dirty: bool,
    ) -> (ProbeResult, Option<EvictedLine>) {
        self.tick += 1;
        let set = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        let num_sets = self.num_sets as u64;
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];

        for way in ways.iter_mut() {
            if way.valid && way.tag == tag {
                way.last_use = self.tick;
                way.dirty |= mark_dirty;
                self.stats.record(class, true);
                return (ProbeResult::Hit, None);
            }
        }
        self.stats.record(class, false);
        let mut evicted = None;
        if allocate {
            let victim = ways
                .iter_mut()
                .min_by_key(|w| if w.valid { w.last_use } else { 0 })
                .expect("assoc > 0");
            if victim.valid {
                evicted = Some(EvictedLine {
                    line: victim.tag * num_sets + set as u64,
                    dirty: victim.dirty,
                });
            }
            victim.tag = tag;
            victim.valid = true;
            victim.dirty = mark_dirty;
            victim.last_use = self.tick;
        }
        (ProbeResult::Miss, evicted)
    }

    /// `true` if `line` is currently resident (no statistics recorded,
    /// no LRU update).
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        let base = set * self.assoc;
        self.ways[base..base + self.assoc].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
        }
        self.tick = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 128B lines = 1 KiB.
        Cache::new(1024, 2, 128)
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.assoc(), 2);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(42, true, AccessClass::Parent), ProbeResult::Miss);
        assert_eq!(c.access(42, true, AccessClass::Parent), ProbeResult::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn no_allocate_probe_does_not_fill() {
        let mut c = tiny();
        assert_eq!(c.access(7, false, AccessClass::Child), ProbeResult::Miss);
        assert_eq!(c.access(7, false, AccessClass::Child), ProbeResult::Miss);
        assert!(!c.contains(7));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.access(0, true, AccessClass::Parent);
        c.access(4, true, AccessClass::Parent);
        c.access(0, true, AccessClass::Parent); // 0 is now MRU
        c.access(8, true, AccessClass::Parent); // evicts 4
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn class_split_stats() {
        let mut c = tiny();
        c.access(1, true, AccessClass::Parent);
        c.access(1, true, AccessClass::Child);
        assert_eq!(c.stats().parent_misses, 1);
        assert_eq!(c.stats().child_hits, 1);
        assert!((c.stats().child_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_rate(), 0.0);
        for i in 0..100 {
            c.access(i % 3, true, AccessClass::Parent);
        }
        let r = c.stats().hit_rate();
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(5, true, AccessClass::Parent);
        c.reset();
        assert!(!c.contains(5));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats { hits: 1, misses: 2, ..Default::default() };
        let b = CacheStats { hits: 3, misses: 4, child_hits: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 6);
        assert_eq!(a.child_hits, 1);
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_panics() {
        let _ = Cache::new(1024, 3, 128);
    }

    #[test]
    fn eviction_reports_victim_line() {
        let mut c = tiny();
        // Set 0 ways: fill with lines 0 and 4; line 8 evicts line 0.
        c.access(0, true, AccessClass::Parent);
        c.access(4, true, AccessClass::Parent);
        let (res, evicted) = c.access_full(8, true, AccessClass::Parent, false);
        assert_eq!(res, ProbeResult::Miss);
        assert_eq!(evicted, Some(EvictedLine { line: 0, dirty: false }));
    }

    #[test]
    fn dirty_bit_tracks_stores() {
        let mut c = tiny();
        c.access_full(0, true, AccessClass::Parent, true); // dirty fill
        c.access(4, true, AccessClass::Parent);
        let (_, evicted) = c.access_full(8, true, AccessClass::Parent, false);
        assert_eq!(evicted, Some(EvictedLine { line: 0, dirty: true }));
    }

    #[test]
    fn hit_can_set_dirty_later() {
        let mut c = tiny();
        c.access(0, true, AccessClass::Parent); // clean fill
        c.access_full(0, true, AccessClass::Parent, true); // store hit
        c.access(4, true, AccessClass::Parent);
        c.access(4, true, AccessClass::Parent); // make 4 MRU
        let (_, evicted) = c.access_full(8, true, AccessClass::Parent, false);
        assert_eq!(evicted, Some(EvictedLine { line: 0, dirty: true }));
    }

    #[test]
    fn no_eviction_reported_for_invalid_victim() {
        let mut c = tiny();
        let (_, evicted) = c.access_full(0, true, AccessClass::Parent, false);
        assert_eq!(evicted, None);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for line in 0..4 {
            c.access(line, true, AccessClass::Parent);
        }
        for line in 0..4 {
            assert!(c.contains(line), "line {line} should still be resident");
        }
    }
}
