//! Stream multiprocessor (SMX) model.
//!
//! An SMX holds resident thread blocks subject to resource limits
//! (threads, registers, shared memory, TB slots), and each cycle issues up
//! to `issue_width` warp instructions chosen by its warp scheduler.
//! Memory instructions are coalesced and sent to the memory system; the
//! issuing warp blocks until the data returns.

use crate::cache::{AccessClass, Lineage, ReuseClass};
use crate::coalesce::coalesce_into;
use crate::config::GpuConfig;
use crate::kernel::ResourceReq;
use crate::mem::MemorySystem;
use crate::program::{MemSpace, TbOp, TbProgram};
use crate::smem::conflict_passes;
use crate::stats::{BindReuse, StallBreakdown, StallCause};
use crate::types::{Addr, Cycle, LineAddr, SmxId, TbRef};
use crate::warp::Warp;
use crate::warp_sched::{WarpCandidate, WarpScheduler};

/// Free resource pool of one SMX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmxResources {
    /// Free thread contexts.
    pub threads: u32,
    /// Free registers.
    pub regs: u32,
    /// Free shared memory in bytes.
    pub smem: u32,
    /// Free TB slots.
    pub tb_slots: u32,
}

impl SmxResources {
    /// The full pool for a configuration.
    pub fn full(cfg: &GpuConfig) -> Self {
        SmxResources {
            threads: cfg.max_threads_per_smx,
            regs: cfg.max_regs_per_smx,
            smem: cfg.max_smem_per_smx,
            tb_slots: cfg.max_tbs_per_smx,
        }
    }

    /// `true` if one TB with requirement `req` fits in the free pool.
    pub fn fits(&self, req: &ResourceReq) -> bool {
        self.tb_slots >= 1
            && self.threads >= req.threads
            && self.regs >= req.regs_per_tb()
            && self.smem >= req.smem_bytes
    }

    fn take(&mut self, req: &ResourceReq) {
        debug_assert!(self.fits(req));
        self.threads -= req.threads;
        self.regs -= req.regs_per_tb();
        self.smem -= req.smem_bytes;
        self.tb_slots -= 1;
    }

    fn release(&mut self, req: &ResourceReq) {
        self.threads += req.threads;
        self.regs += req.regs_per_tb();
        self.smem += req.smem_bytes;
        self.tb_slots += 1;
    }
}

/// A thread block resident on an SMX.
#[derive(Debug)]
pub struct ResidentTb {
    /// Identity of the TB.
    pub tb: TbRef,
    /// Statistics class (parent vs child).
    pub class: AccessClass,
    /// The TB's program.
    pub program: TbProgram,
    /// Warp execution contexts.
    pub warps: Vec<Warp>,
    /// Threads in the TB.
    pub threads: u32,
    /// Resources held.
    pub req: ResourceReq,
    /// Monotone dispatch sequence number (for warp-scheduler age).
    pub dispatch_seq: u64,
    /// Cycle the TB started executing.
    pub started_at: Cycle,
    /// Identity and ancestry carried by every memory access this TB
    /// issues (meaningful only when locality profiling is on; a default
    /// ancestry-free lineage otherwise).
    pub lineage: Lineage,
    /// Cycle the TB's first instruction issued; `Cycle::MAX` until then.
    /// Only stamped when `GpuConfig::profile_latency` is on — the
    /// sentinel flows through [`TbCompletion`] and the engine falls back
    /// to `finished_at` for TBs that retire without issuing (empty
    /// programs).
    pub first_issue_at: Cycle,
    /// Earliest cycle any of this TB's warps can act (issue, finalize,
    /// or leave a barrier), packed as in [`Warp::set_ready`]: cycle in
    /// the high bits, the [`StallCause`] the wait is attributable to in
    /// the low three. Recomputed by the post-issue pass and reset
    /// whenever one of the TB's warps issues; lets both scan loops skip
    /// TBs that are provably asleep with a single compare, and keeps the
    /// cause across cycles the TB is skipped.
    next_packed: u64,
}

impl ResidentTb {
    /// Earliest cycle any of this TB's warps can act.
    fn next_ready(&self) -> Cycle {
        self.next_packed >> 3
    }
}

/// A retired thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbCompletion {
    /// Identity of the TB.
    pub tb: TbRef,
    /// SMX it ran on.
    pub smx: SmxId,
    /// Cycle it started.
    pub started_at: Cycle,
    /// Cycle its first instruction issued (`Cycle::MAX` when latency
    /// profiling was off or the TB never issued).
    pub first_issue_at: Cycle,
    /// Cycle it retired.
    pub finished_at: Cycle,
}

/// A device-side launch issued by a running TB.
#[derive(Debug, Clone)]
pub struct IssuedLaunch {
    /// The launch parameters from the program.
    pub spec: crate::program::LaunchSpec,
    /// The launching (direct parent) TB.
    pub by: TbRef,
    /// The SMX the parent is running on.
    pub smx: SmxId,
}

/// Events produced by one SMX cycle.
#[derive(Debug, Default)]
pub struct SmxEvents {
    /// TBs that retired this cycle.
    pub completions: Vec<TbCompletion>,
    /// Launches issued this cycle.
    pub launches: Vec<IssuedLaunch>,
}

/// One stream multiprocessor.
#[derive(Debug)]
pub struct Smx {
    id: SmxId,
    free: SmxResources,
    resident: Vec<ResidentTb>,
    warp_sched: Box<dyn WarpScheduler>,
    next_event: Cycle,
    // Scratch buffers reused across cycles so the issue loop and the
    // memory path allocate nothing in steady state.
    cand_scratch: Vec<WarpCandidate>,
    loc_scratch: Vec<(usize, usize)>,
    addr_scratch: Vec<Addr>,
    line_scratch: Vec<LineAddr>,
    /// Cycles in which at least one warp instruction issued.
    pub busy_cycles: u64,
    /// Stall cycles by cause; `busy_cycles + stall.total()` equals the
    /// cycles this SMX was stepped (or fast-forward-credited) over.
    stall: StallBreakdown,
    /// Cause charged for cycles `step` skips before `next_event`
    /// (recomputed by every full post-issue pass).
    wait_cause: StallCause,
    /// First cycle not yet accounted in `stall`/`busy_cycles`: skip
    /// paths do no per-cycle work, and `[stall_anchor, now)` is charged
    /// to `wait_cause` in bulk on the next active step (or read).
    stall_anchor: Cycle,
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Thread instructions issued (warp instructions × active threads).
    pub thread_instructions: u64,
    /// Issued warp instructions by kind.
    pub instruction_mix: crate::stats::InstructionMix,
    /// TBs dispatched to this SMX over the whole run.
    pub tbs_executed: u64,
    /// Child-TB L1 reuse split by bound vs stolen placement (only
    /// accumulated while locality profiling is on).
    pub bind_reuse: BindReuse,
}

impl std::fmt::Debug for Box<dyn WarpScheduler> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WarpScheduler({})", self.name())
    }
}

impl Smx {
    /// Creates an idle SMX.
    pub fn new(id: SmxId, cfg: &GpuConfig, warp_sched: Box<dyn WarpScheduler>) -> Self {
        Smx {
            id,
            free: SmxResources::full(cfg),
            resident: Vec::new(),
            warp_sched,
            next_event: 0,
            cand_scratch: Vec::new(),
            loc_scratch: Vec::new(),
            addr_scratch: Vec::new(),
            line_scratch: Vec::new(),
            busy_cycles: 0,
            stall: StallBreakdown::default(),
            wait_cause: StallCause::NoTb,
            stall_anchor: 0,
            warp_instructions: 0,
            thread_instructions: 0,
            instruction_mix: crate::stats::InstructionMix::default(),
            tbs_executed: 0,
            bind_reuse: BindReuse::default(),
        }
    }

    /// This SMX's id.
    pub fn id(&self) -> SmxId {
        self.id
    }

    /// Current free resources.
    pub fn free(&self) -> SmxResources {
        self.free
    }

    /// Number of resident TBs.
    pub fn resident_tbs(&self) -> usize {
        self.resident.len()
    }

    /// The earliest cycle at which this SMX can next make progress.
    ///
    /// [`step`](Self::step) is a no-op for any `now` strictly before this
    /// (and for an empty SMX), which is what lets the engine fast-forward
    /// over idle stretches without changing any statistics.
    pub fn next_event(&self) -> Cycle {
        self.next_event
    }

    /// `true` if a TB with requirement `req` can be placed now.
    pub fn fits(&self, req: &ResourceReq) -> bool {
        self.free.fits(req)
    }

    /// Identities of the TBs currently resident on this SMX, in placement
    /// order. Used by the forward-progress watchdog to name suspects.
    pub fn resident_refs(&self) -> impl Iterator<Item = TbRef> + '_ {
        self.resident.iter().map(|t| t.tb)
    }

    /// What this SMX is currently waiting on (the cause skipped cycles
    /// are charged to).
    pub fn wait_cause(&self) -> StallCause {
        self.wait_cause
    }

    /// Stall-cycle breakdown accumulated up to cycle `now` (exclusive).
    ///
    /// Accounting is deferred: the skip paths of [`step`](Self::step) do
    /// no bookkeeping, and the span since the last active step — during
    /// which nothing mutated, so the cause cannot have changed — is
    /// charged in bulk here and at the start of the next active step.
    /// This also makes idle-cycle fast-forward accounting-free.
    pub fn stalls(&self, now: Cycle) -> StallBreakdown {
        let mut stalls = self.stall;
        stalls.add(self.wait_cause, now.saturating_sub(self.stall_anchor));
        stalls
    }

    /// Places a TB onto this SMX.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the TB does not fit; the engine
    /// validates dispatch decisions before placing.
    #[allow(clippy::too_many_arguments)]
    pub fn place(
        &mut self,
        tb: TbRef,
        class: AccessClass,
        program: TbProgram,
        req: ResourceReq,
        dispatch_seq: u64,
        now: Cycle,
        warp_size: u32,
    ) {
        let lineage = Lineage::new(tb, self.id);
        self.place_traced(tb, class, program, req, dispatch_seq, now, warp_size, lineage);
    }

    /// [`place`](Self::place) with an explicit ancestry, for runs with
    /// locality profiling on (the engine computes the lineage from its
    /// batch table at dispatch time).
    #[allow(clippy::too_many_arguments)]
    pub fn place_traced(
        &mut self,
        tb: TbRef,
        class: AccessClass,
        program: TbProgram,
        req: ResourceReq,
        dispatch_seq: u64,
        now: Cycle,
        warp_size: u32,
        lineage: Lineage,
    ) {
        self.free.take(&req);
        let num_warps = req.threads.div_ceil(warp_size).max(1);
        let mut warps: Vec<Warp> = (0..num_warps).map(|w| Warp::new(w, now)).collect();
        if program.is_empty() {
            // Nothing to issue: mark all warps done so the TB retires on
            // the next step.
            for w in &mut warps {
                w.done = true;
            }
        }
        self.resident.push(ResidentTb {
            tb,
            class,
            program,
            warps,
            threads: req.threads,
            req,
            dispatch_seq,
            started_at: now,
            lineage,
            first_issue_at: Cycle::MAX,
            next_packed: (now << 3) | StallCause::Scoreboard.code(),
        });
        self.tbs_executed += 1;
        self.next_event = self.next_event.min(now);
    }

    /// Advances the SMX by one cycle with an unbounded launch path.
    pub fn step(&mut self, now: Cycle, mem: &mut MemorySystem, cfg: &GpuConfig) -> SmxEvents {
        let mut credits = u64::MAX;
        self.step_gated(now, mem, cfg, &mut credits)
    }

    /// Advances the SMX by one cycle, drawing device launches from
    /// `launch_credits` — the remaining pending-launch-buffer slots this
    /// cycle, shared across SMXs by the engine. Each issued launch
    /// consumes one credit; at zero credits a launching warp blocks and
    /// retries next cycle, with the blocked cycles attributed to
    /// [`StallCause::LaunchPath`]. Pass `u64::MAX` (what
    /// [`step`](Self::step) does) for the unbounded machine — the gate is
    /// then never taken and behavior is bit-identical to the ungated
    /// path.
    pub fn step_gated(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        cfg: &GpuConfig,
        launch_credits: &mut u64,
    ) -> SmxEvents {
        let mut events = SmxEvents::default();
        if self.resident.is_empty() || now < self.next_event {
            // Skipped cycles are charged in bulk by the next active step
            // (or by `stalls`): `wait_cause` cannot change while the SMX
            // is skipping, and it is `NoTb` whenever nothing is resident.
            return events;
        }
        // Charge the cycles skipped since the last active step, then
        // account this cycle below (busy, or `entry_cause` if the full
        // pass issues nothing — the cycle went to finalization or a
        // barrier release).
        let entry_cause = self.wait_cause;
        if now > self.stall_anchor {
            self.stall.add(entry_cause, now - self.stall_anchor);
        }
        self.stall_anchor = now + 1;

        // The ready set is computed once per cycle: nothing issued within
        // a cycle can wake another warp (every op costs >= 1 cycle, a
        // `Sync` parks the issuer, and barriers release only after the
        // issue loop), so each slot's fresh rescan would yield exactly
        // the previous set minus the issued warp. `Vec::remove` keeps the
        // scan order, so the warp scheduler sees identical candidates.
        let mut issued_any = false;
        let mut candidates = std::mem::take(&mut self.cand_scratch);
        let mut locations = std::mem::take(&mut self.loc_scratch);
        candidates.clear();
        locations.clear();
        for (ti, tb) in self.resident.iter().enumerate() {
            if tb.next_ready() > now {
                // No warp of this TB can be ready before `next_ready`;
                // skipping it leaves the candidate order unchanged.
                continue;
            }
            for (wi, warp) in tb.warps.iter().enumerate() {
                if warp.is_ready(now) && warp.pc < tb.program.len() {
                    candidates.push(WarpCandidate {
                        tb: tb.tb,
                        warp: warp.index,
                        tb_dispatch_seq: tb.dispatch_seq,
                    });
                    locations.push((ti, wi));
                }
            }
        }
        for _slot in 0..cfg.issue_width {
            if candidates.is_empty() {
                break;
            }
            let Some(choice) = self.warp_sched.select(&candidates) else {
                break;
            };
            let (ti, wi) = locations[choice];
            candidates.remove(choice);
            locations.remove(choice);
            issued_any |= self.execute_warp_op(ti, wi, now, mem, cfg, launch_credits, &mut events);
        }
        self.cand_scratch = candidates;
        self.loc_scratch = locations;

        self.finalize_retire_recompute(now, &mut events);

        if issued_any {
            self.busy_cycles += 1;
        } else {
            self.stall.bump(entry_cause);
        }
        events
    }

    /// Executes one warp op. Returns `true` if an instruction issued
    /// (`false` only when a launching warp blocked on an exhausted
    /// launch-path credit).
    #[allow(clippy::too_many_arguments)]
    fn execute_warp_op(
        &mut self,
        ti: usize,
        wi: usize,
        now: Cycle,
        mem: &mut MemorySystem,
        cfg: &GpuConfig,
        launch_credits: &mut u64,
        events: &mut SmxEvents,
    ) -> bool {
        let mut addrs = std::mem::take(&mut self.addr_scratch);
        let mut lines = std::mem::take(&mut self.line_scratch);
        let smx_id = self.id;
        // (bound-to-parent-SMX, L1 hits, parent-child L1 hits) from a
        // profiled child access; applied to `bind_reuse` after the TB
        // borrow ends.
        let mut bind_delta: Option<(bool, u64, u64)> = None;
        let tb = &mut self.resident[ti];
        // Issuing changes this TB's warp state; force the post-issue pass
        // to rescan it and recompute its `next_packed`.
        tb.next_packed = now << 3;
        // Borrow the op in place (cloning a `Gather` would copy nothing,
        // but the enum move still showed up in profiles); only a rare
        // `Launch` clones its spec below.
        let op = &tb.program.ops()[tb.warps[wi].pc];
        let warp_index = tb.warps[wi].index;
        let active_threads =
            cfg.warp_size.min(tb.threads.saturating_sub(warp_index * cfg.warp_size));

        let mut counted_threads = active_threads;
        match op {
            TbOp::Compute(c) => {
                self.instruction_mix.compute += 1;
                let cost = u64::from((*c).max(1)) + u64::from(cfg.alu_latency);
                tb.warps[wi].set_ready(now + cost, StallCause::Scoreboard);
                tb.warps[wi].pc += 1;
            }
            TbOp::ComputeMasked { cycles, active } => {
                self.instruction_mix.compute += 1;
                counted_threads = (*active).min(active_threads);
                let cost = u64::from((*cycles).max(1)) + u64::from(cfg.alu_latency);
                tb.warps[wi].set_ready(now + cost, StallCause::Scoreboard);
                tb.warps[wi].pc += 1;
            }
            TbOp::Mem(m) => {
                match m.space {
                    MemSpace::Shared => self.instruction_mix.shared += 1,
                    MemSpace::Global if m.is_store => self.instruction_mix.stores += 1,
                    MemSpace::Global => self.instruction_mix.loads += 1,
                }
                let (latency, wait) = match m.space {
                    MemSpace::Shared => {
                        m.pattern.warp_addrs_into(
                            warp_index,
                            cfg.warp_size,
                            tb.threads,
                            &mut addrs,
                        );
                        let passes = u64::from(conflict_passes(&addrs));
                        (u64::from(cfg.smem_latency) * passes, StallCause::Scoreboard)
                    }
                    MemSpace::Global => {
                        m.pattern.warp_addrs_into(
                            warp_index,
                            cfg.warp_size,
                            tb.threads,
                            &mut addrs,
                        );
                        if addrs.is_empty() {
                            (1, StallCause::Scoreboard)
                        } else {
                            coalesce_into(&addrs, cfg.line_bits(), &mut lines);
                            let mshr_full_before = mem.mshr_full_events();
                            let lat = if cfg.profile_locality {
                                let before = *mem.l1_stats(smx_id);
                                let lat = mem
                                    .warp_access_traced(
                                        smx_id,
                                        &lines,
                                        m.is_store,
                                        tb.class,
                                        now,
                                        Some(&tb.lineage),
                                    )
                                    .max(1);
                                if tb.class == AccessClass::Child {
                                    let after = mem.l1_stats(smx_id);
                                    let pc_idx = ReuseClass::ParentChild.index();
                                    bind_delta = Some((
                                        tb.lineage.parent_smx == Some(smx_id),
                                        after.hits - before.hits,
                                        after.prov.by_class[pc_idx] - before.prov.by_class[pc_idx],
                                    ));
                                }
                                lat
                            } else {
                                mem.warp_access(smx_id, &lines, m.is_store, tb.class, now).max(1)
                            };
                            let wait = if mem.mshr_full_events() > mshr_full_before {
                                StallCause::MshrFull
                            } else {
                                StallCause::MemoryPending
                            };
                            (lat, wait)
                        }
                    }
                };
                tb.warps[wi].set_ready(now + latency, wait);
                tb.warps[wi].pc += 1;
            }
            TbOp::Launch(spec) => {
                if warp_index == 0 {
                    if *launch_credits == 0 {
                        // Pending-launch buffer exhausted under the
                        // StallParent policy: the warp holds its pc and
                        // retries next cycle. No instruction issues; the
                        // blocked cycle is charged to LaunchPath.
                        tb.warps[wi].set_ready(now + 1, StallCause::LaunchPath);
                        self.addr_scratch = addrs;
                        self.line_scratch = lines;
                        return false;
                    }
                    *launch_credits -= 1;
                    self.instruction_mix.launches += 1;
                    events.launches.push(IssuedLaunch {
                        spec: spec.clone(),
                        by: tb.tb,
                        smx: smx_id,
                    });
                    tb.warps[wi].set_ready(
                        now + u64::from(cfg.launch_issue_cycles),
                        StallCause::Scoreboard,
                    );
                } else {
                    self.instruction_mix.launches += 1;
                    tb.warps[wi].set_ready(now + 1, StallCause::Scoreboard);
                }
                tb.warps[wi].pc += 1;
            }
            TbOp::Sync => {
                self.instruction_mix.barriers += 1;
                tb.warps[wi].at_barrier = true;
                // pc advances when the barrier releases.
            }
        }

        // Every path that reaches here issued an instruction (the
        // credit-blocked launch returned above), so this is the TB's
        // first issue iff the sentinel is still set.
        if cfg.profile_latency && tb.first_issue_at == Cycle::MAX {
            tb.first_issue_at = now;
        }

        self.warp_instructions += 1;
        self.thread_instructions += u64::from(counted_threads);
        if let Some((bound, hits, parent_child)) = bind_delta {
            if bound {
                self.bind_reuse.bound_hits += hits;
                self.bind_reuse.bound_parent_child += parent_child;
            } else {
                self.bind_reuse.stolen_hits += hits;
                self.bind_reuse.stolen_parent_child += parent_child;
            }
        }
        self.addr_scratch = addrs;
        self.line_scratch = lines;
        true
    }

    /// The single post-issue pass over the resident TBs: marks warps
    /// *done* (every op executed and the final op's latency elapsed),
    /// releases barriers where every live warp has arrived, retires TBs
    /// whose warps are all done, and recomputes `next_event` — each step
    /// is per-TB-local, so one interleaved pass is equivalent to running
    /// them as four separate sweeps.
    fn finalize_retire_recompute(&mut self, now: Cycle, events: &mut SmxEvents) {
        let mut next_packed = u64::MAX;
        let mut i = 0;
        while i < self.resident.len() {
            let tb = &mut self.resident[i];
            if tb.next_ready() > now {
                // Asleep: no warp issued this cycle and none can finalize
                // or leave a barrier before `next_ready`, so the TB's
                // state is exactly as the pass that computed it left it.
                next_packed = next_packed.min(tb.next_packed);
                i += 1;
                continue;
            }
            let len = tb.program.len();
            let mut all_arrived = !tb.warps.is_empty();
            let mut any_waiting = false;
            let mut all_done = true;
            // Critical-path tracking stays branchless: the warps' packed
            // `(ready_at, wait)` words keep the inner loop a plain `min`,
            // exactly as hot as tracking the cycle alone. Ties on the
            // cycle resolve to the smallest cause code — deterministic.
            let mut tb_packed = u64::MAX;
            for w in &mut tb.warps {
                if !w.done && !w.at_barrier && w.pc >= len && w.ready_at() <= now {
                    w.done = true;
                }
                any_waiting |= w.at_barrier;
                all_arrived &= w.at_barrier || w.done;
                all_done &= w.done;
                if !w.done && !w.at_barrier {
                    tb_packed = tb_packed.min(w.ready_packed());
                }
            }
            if all_arrived && any_waiting {
                for w in &mut tb.warps {
                    if w.at_barrier {
                        w.at_barrier = false;
                        w.pc += 1;
                        w.set_ready(now + 1, StallCause::Barrier);
                    }
                }
                // Released warps become ready at `now + 1`, which is
                // already the floor `next_event` is clamped to.
                all_done = false;
                tb_packed = ((now + 1) << 3) | StallCause::Barrier.code();
            }
            if all_done || tb.program.is_empty() {
                let tb = self.resident.remove(i);
                self.free.release(&tb.req);
                events.completions.push(TbCompletion {
                    tb: tb.tb,
                    smx: self.id,
                    started_at: tb.started_at,
                    first_issue_at: tb.first_issue_at,
                    finished_at: now,
                });
            } else {
                // A surviving awake TB has a live warp (else it retired
                // or released a barrier above), so `tb_packed` is real.
                self.resident[i].next_packed = tb_packed;
                next_packed = next_packed.min(tb_packed);
                i += 1;
            }
        }
        // A TB whose warps are all at a barrier is released within the same
        // step, so `next_packed` only stays MAX when nothing is resident.
        if next_packed == u64::MAX {
            self.next_event = now + 1;
            self.wait_cause = StallCause::NoTb;
        } else {
            self.next_event = (next_packed >> 3).max(now + 1);
            self.wait_cause = StallCause::from_code(next_packed & 7);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::program::{AddrPattern, MemOp};
    use crate::types::BatchId;
    use crate::warp_sched::GreedyThenOldest;

    fn smx(cfg: &GpuConfig) -> Smx {
        Smx::new(SmxId(0), cfg, Box::new(GreedyThenOldest::new()))
    }

    fn tb_ref(i: u32) -> TbRef {
        TbRef { batch: BatchId(0), index: i }
    }

    fn run_until_empty(s: &mut Smx, mem: &mut MemorySystem, cfg: &GpuConfig) -> Vec<TbCompletion> {
        let mut completions = Vec::new();
        for now in 0..100_000 {
            let ev = s.step(now, mem, cfg);
            completions.extend(ev.completions);
            if s.resident_tbs() == 0 {
                break;
            }
        }
        completions
    }

    #[test]
    fn resources_take_and_release_roundtrip() {
        let cfg = GpuConfig::small_test();
        let mut r = SmxResources::full(&cfg);
        let req = ResourceReq::new(64, 16, 512);
        assert!(r.fits(&req));
        r.take(&req);
        assert_eq!(r.threads, cfg.max_threads_per_smx - 64);
        r.release(&req);
        assert_eq!(r, SmxResources::full(&cfg));
    }

    #[test]
    fn fits_rejects_oversized() {
        let cfg = GpuConfig::small_test();
        let r = SmxResources::full(&cfg);
        assert!(!r.fits(&ResourceReq::new(cfg.max_threads_per_smx + 1, 1, 0)));
        assert!(!r.fits(&ResourceReq::new(1, cfg.max_regs_per_smx + 1, 0)));
        assert!(!r.fits(&ResourceReq::new(1, 1, cfg.max_smem_per_smx + 1)));
    }

    #[test]
    fn compute_only_tb_retires() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        let prog = TbProgram::new(vec![TbOp::Compute(3), TbOp::Compute(3)]);
        s.place(tb_ref(0), AccessClass::Parent, prog, ResourceReq::new(32, 8, 0), 0, 0, 32);
        let completions = run_until_empty(&mut s, &mut mem, &cfg);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].tb, tb_ref(0));
        assert!(completions[0].finished_at > 0);
        assert_eq!(s.free(), SmxResources::full(&cfg));
    }

    #[test]
    fn memory_op_blocks_warp_for_latency() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        let prog = TbProgram::new(vec![TbOp::Mem(MemOp::load(AddrPattern::Broadcast(0)))]);
        s.place(tb_ref(0), AccessClass::Parent, prog, ResourceReq::new(32, 8, 0), 0, 0, 32);
        let completions = run_until_empty(&mut s, &mut mem, &cfg);
        let total = u64::from(cfg.l1_hit_latency + cfg.l2_hit_latency + cfg.dram_latency);
        assert!(completions[0].finished_at >= total);
    }

    #[test]
    fn barrier_waits_for_all_warps() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        // Two warps; barrier between two compute phases.
        let prog = TbProgram::new(vec![TbOp::Compute(2), TbOp::Sync, TbOp::Compute(2)]);
        s.place(tb_ref(0), AccessClass::Parent, prog, ResourceReq::new(64, 8, 0), 0, 0, 32);
        let completions = run_until_empty(&mut s, &mut mem, &cfg);
        assert_eq!(completions.len(), 1);
    }

    #[test]
    fn launch_emitted_once_by_warp_zero() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        let spec = crate::program::LaunchSpec {
            kind: crate::program::KernelKindId(1),
            param: 7,
            num_tbs: 2,
            req: ResourceReq::new(32, 8, 0),
        };
        // Two warps but only warp 0 should emit the launch.
        let prog = TbProgram::new(vec![TbOp::Launch(spec.clone())]);
        s.place(tb_ref(0), AccessClass::Parent, prog, ResourceReq::new(64, 8, 0), 0, 0, 32);
        let mut launches = Vec::new();
        for now in 0..1000 {
            let ev = s.step(now, &mut mem, &cfg);
            launches.extend(ev.launches);
            if s.resident_tbs() == 0 {
                break;
            }
        }
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].spec, spec);
        assert_eq!(launches[0].by, tb_ref(0));
    }

    #[test]
    fn launch_blocks_at_zero_credits_and_retries() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        let spec = crate::program::LaunchSpec {
            kind: crate::program::KernelKindId(1),
            param: 0,
            num_tbs: 1,
            req: ResourceReq::new(32, 8, 0),
        };
        s.place(
            tb_ref(0),
            AccessClass::Parent,
            TbProgram::new(vec![TbOp::Launch(spec)]),
            ResourceReq::new(32, 8, 0),
            0,
            0,
            32,
        );
        // No credits: the warp blocks, nothing issues, cause is LaunchPath.
        let mut credits = 0u64;
        for now in 0..3 {
            let ev = s.step_gated(now, &mut mem, &cfg, &mut credits);
            assert!(ev.launches.is_empty());
        }
        assert_eq!(s.warp_instructions, 0);
        assert_eq!(s.instruction_mix.launches, 0);
        assert_eq!(s.wait_cause(), StallCause::LaunchPath);
        assert!(s.stalls(3).launch_path >= 2);
        // A credit frees the warp; the launch issues and consumes it.
        let mut credits = 1u64;
        let ev = s.step_gated(3, &mut mem, &cfg, &mut credits);
        assert_eq!(ev.launches.len(), 1);
        assert_eq!(credits, 0);
        assert_eq!(s.instruction_mix.launches, 1);
    }

    #[test]
    fn empty_program_retires_immediately() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        s.place(
            tb_ref(0),
            AccessClass::Parent,
            TbProgram::default(),
            ResourceReq::new(32, 8, 0),
            0,
            0,
            32,
        );
        let completions = run_until_empty(&mut s, &mut mem, &cfg);
        assert_eq!(completions.len(), 1);
    }

    #[test]
    fn two_tbs_share_smx_and_both_finish() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        for i in 0..2 {
            s.place(
                tb_ref(i),
                AccessClass::Parent,
                TbProgram::new(vec![TbOp::Compute(4)]),
                ResourceReq::new(32, 8, 0),
                u64::from(i),
                0,
                32,
            );
        }
        let completions = run_until_empty(&mut s, &mut mem, &cfg);
        assert_eq!(completions.len(), 2);
    }

    #[test]
    fn masked_compute_counts_only_active_lanes() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        s.place(
            tb_ref(0),
            AccessClass::Parent,
            TbProgram::new(vec![TbOp::Compute(1), TbOp::ComputeMasked { cycles: 1, active: 5 }]),
            ResourceReq::new(32, 8, 0),
            0,
            0,
            32,
        );
        run_until_empty(&mut s, &mut mem, &cfg);
        assert_eq!(s.warp_instructions, 2);
        assert_eq!(s.thread_instructions, 32 + 5);
        assert_eq!(s.instruction_mix.compute, 2);
    }

    #[test]
    fn instruction_counters_advance() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg);
        let mut s = smx(&cfg);
        s.place(
            tb_ref(0),
            AccessClass::Parent,
            TbProgram::new(vec![TbOp::Compute(1), TbOp::Compute(1)]),
            ResourceReq::new(32, 8, 0),
            0,
            0,
            32,
        );
        run_until_empty(&mut s, &mut mem, &cfg);
        assert_eq!(s.warp_instructions, 2);
        assert_eq!(s.thread_instructions, 64);
        assert!(s.busy_cycles >= 2);
        assert_eq!(s.tbs_executed, 1);
    }
}
