//! Deterministic fault injection for the launch path and SMXs.
//!
//! A [`FaultPlan`] is attached to a simulator with
//! [`Simulator::with_fault_plan`](crate::engine::Simulator::with_fault_plan)
//! and exercises the engine's degradation paths: dropping or delaying
//! child-launch messages, transiently reporting the kernel-dispatch
//! queue full, and killing an SMX for a cycle window. Plans are either
//! hand-built ([`FaultPlan::new`]) or derived deterministically from a
//! seed ([`FaultPlan::from_seed`]), so every fault scenario replays
//! bit-identically — the liveness suite asserts each seed terminates
//! with completed stats or a structured `SimError`, never a panic and
//! never a silent spin to `max_cycles`.
//!
//! Fault windows are defined in absolute cycles, and they compose with
//! idle-cycle skipping in both engine modes: window edges are treated as
//! wake-up sources, so a skip is clamped to (or scheduled at) the next
//! cycle where a window could change the machine's behavior. Skipping a
//! stretch in which a window's gate would never have been evaluated is
//! bit-identical to stepping through it — the gates only run on active
//! pipeline stages.

use crate::types::{Cycle, SmxId};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Silently drop the `nth` device launch submitted to the launch
    /// model (1-based, in submission order). The child never runs; its
    /// parent proceeds normally.
    DropLaunch {
        /// Which submission to drop (1 = first).
        nth: u64,
    },
    /// Hold the `nth` device launch (1-based) back for `extra` cycles
    /// before handing it to the launch model.
    DelayLaunch {
        /// Which submission to delay (1 = first).
        nth: u64,
        /// Extra cycles the launch message is held.
        extra: u64,
    },
    /// The KMU→KDU dispatch path reports the KDU full during
    /// `[from, until)`: no pending kernel enters the KDU in the window.
    QueueFull {
        /// First cycle of the window.
        from: Cycle,
        /// First cycle after the window.
        until: Cycle,
    },
    /// The SMX issues nothing during `[from, until)`: resident TBs
    /// freeze, memory responses wait. With `until == u64::MAX` the SMX
    /// never recovers — the forward-progress watchdog names its TBs.
    KillSmx {
        /// The SMX to freeze.
        smx: SmxId,
        /// First cycle of the window.
        from: Cycle,
        /// First cycle after the window.
        until: Cycle,
    },
}

/// A deterministic set of faults plus counters of what actually fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
    /// Launches dropped so far.
    pub dropped: u64,
    /// Launches delayed so far.
    pub delayed: u64,
}

impl FaultPlan {
    /// A plan with an explicit fault list.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { seed: 0, faults, dropped: 0, delayed: 0 }
    }

    /// Derives a small fault mix deterministically from `seed` (an
    /// xorshift64* stream): one to four faults drawn from all four
    /// kinds, with windows early enough to bite test-scale workloads.
    pub fn from_seed(seed: u64, num_smxs: u16) -> Self {
        let mut state = seed | 1;
        let mut next = move || -> u64 {
            let mut x = state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let count = 1 + (next() % 4) as usize;
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let fault = match next() % 4 {
                0 => Fault::DropLaunch { nth: 1 + next() % 8 },
                1 => Fault::DelayLaunch { nth: 1 + next() % 8, extra: 100 + next() % 5000 },
                2 => {
                    let from = next() % 2000;
                    Fault::QueueFull { from, until: from + 500 + next() % 4000 }
                }
                _ => {
                    let from = next() % 2000;
                    Fault::KillSmx {
                        smx: SmxId((next() % u64::from(num_smxs.max(1))) as u16),
                        from,
                        until: from + 500 + next() % 4000,
                    }
                }
            };
            faults.push(fault);
        }
        FaultPlan { seed, faults, dropped: 0, delayed: 0 }
    }

    /// The seed the plan was derived from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injected faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Disposition of the `nth` launch submission: drop, delay by
    /// `extra`, or pass through. Drop wins over delay when both match.
    pub(crate) fn launch_disposition(&mut self, nth: u64) -> LaunchDisposition {
        let mut delay = None;
        for f in &self.faults {
            match *f {
                Fault::DropLaunch { nth: n } if n == nth => {
                    self.dropped += 1;
                    return LaunchDisposition::Drop;
                }
                Fault::DelayLaunch { nth: n, extra } if n == nth => delay = Some(extra),
                _ => {}
            }
        }
        match delay {
            Some(extra) => {
                self.delayed += 1;
                LaunchDisposition::Delay(extra)
            }
            None => LaunchDisposition::Pass,
        }
    }

    /// `true` when a `QueueFull` window covers `now`.
    pub(crate) fn queue_full_at(&self, now: Cycle) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(*f, Fault::QueueFull { from, until } if from <= now && now < until))
    }

    /// `true` when a `KillSmx` window covers `now` for `smx`.
    pub(crate) fn smx_killed_at(&self, smx: SmxId, now: Cycle) -> bool {
        self.faults.iter().any(|f| {
            matches!(*f, Fault::KillSmx { smx: s, from, until }
                if s == smx && from <= now && now < until)
        })
    }

    /// First cycle at or after `from` in which `smx` is *not* covered by
    /// any `KillSmx` window, or `None` if the windows cover everything
    /// from `from` onward (an `until == u64::MAX` window never releases
    /// the SMX). Overlapping and abutting windows are handled by
    /// iterating to a fixpoint: each pass jumps `from` past every window
    /// that covers it.
    pub(crate) fn first_alive(&self, smx: SmxId, from: Cycle) -> Option<Cycle> {
        let mut at = from;
        loop {
            let mut moved = false;
            for f in &self.faults {
                if let Fault::KillSmx { smx: s, from: f0, until } = *f {
                    if s == smx && f0 <= at && at < until {
                        if until == Cycle::MAX {
                            return None;
                        }
                        at = until;
                        moved = true;
                    }
                }
            }
            if !moved {
                return Some(at);
            }
        }
    }

    /// First cycle at or after `from` in which no `QueueFull` window is
    /// active, or `None` if a window holds the dispatch path closed
    /// forever. Same fixpoint structure as [`FaultPlan::first_alive`].
    pub(crate) fn first_queue_open(&self, from: Cycle) -> Option<Cycle> {
        let mut at = from;
        loop {
            let mut moved = false;
            for f in &self.faults {
                if let Fault::QueueFull { from: f0, until } = *f {
                    if f0 <= at && at < until {
                        if until == Cycle::MAX {
                            return None;
                        }
                        at = until;
                        moved = true;
                    }
                }
            }
            if !moved {
                return Some(at);
            }
        }
    }
}

/// What to do with one launch submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaunchDisposition {
    /// Hand it to the launch model normally.
    Pass,
    /// Drop it: the child never runs.
    Drop,
    /// Hold it for the given extra cycles first.
    Delay(u64),
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(42, 4);
        let b = FaultPlan::from_seed(42, 4);
        assert_eq!(a, b);
        assert!(!a.faults().is_empty() && a.faults().len() <= 4);
        let c = FaultPlan::from_seed(43, 4);
        // Different seeds virtually always give different plans.
        assert!(a != c || a.seed() != c.seed());
    }

    #[test]
    fn drop_wins_over_delay_and_counts() {
        let mut plan = FaultPlan::new(vec![
            Fault::DelayLaunch { nth: 1, extra: 50 },
            Fault::DropLaunch { nth: 1 },
            Fault::DelayLaunch { nth: 2, extra: 70 },
        ]);
        assert_eq!(plan.launch_disposition(1), LaunchDisposition::Drop);
        assert_eq!(plan.launch_disposition(2), LaunchDisposition::Delay(70));
        assert_eq!(plan.launch_disposition(3), LaunchDisposition::Pass);
        assert_eq!(plan.dropped, 1);
        assert_eq!(plan.delayed, 1);
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new(vec![
            Fault::QueueFull { from: 10, until: 20 },
            Fault::KillSmx { smx: SmxId(1), from: 5, until: 8 },
        ]);
        assert!(!plan.queue_full_at(9));
        assert!(plan.queue_full_at(10));
        assert!(plan.queue_full_at(19));
        assert!(!plan.queue_full_at(20));
        assert!(plan.smx_killed_at(SmxId(1), 5));
        assert!(!plan.smx_killed_at(SmxId(1), 8));
        assert!(!plan.smx_killed_at(SmxId(0), 6));
    }

    #[test]
    fn first_alive_steps_past_overlapping_windows() {
        let plan = FaultPlan::new(vec![
            Fault::KillSmx { smx: SmxId(0), from: 10, until: 20 },
            Fault::KillSmx { smx: SmxId(0), from: 15, until: 30 },
            Fault::KillSmx { smx: SmxId(1), from: 0, until: u64::MAX },
        ]);
        assert_eq!(plan.first_alive(SmxId(0), 5), Some(5));
        assert_eq!(plan.first_alive(SmxId(0), 10), Some(30));
        assert_eq!(plan.first_alive(SmxId(0), 25), Some(30));
        assert_eq!(plan.first_alive(SmxId(0), 30), Some(30));
        assert_eq!(plan.first_alive(SmxId(1), 0), None);
        assert_eq!(plan.first_alive(SmxId(2), 7), Some(7));
    }

    #[test]
    fn first_queue_open_steps_past_abutting_windows() {
        let plan = FaultPlan::new(vec![
            Fault::QueueFull { from: 100, until: 200 },
            Fault::QueueFull { from: 200, until: 300 },
        ]);
        assert_eq!(plan.first_queue_open(50), Some(50));
        assert_eq!(plan.first_queue_open(100), Some(300));
        assert_eq!(plan.first_queue_open(250), Some(300));
        let forever = FaultPlan::new(vec![Fault::QueueFull { from: 0, until: u64::MAX }]);
        assert_eq!(forever.first_queue_open(0), None);
    }

    #[test]
    fn seeded_smx_targets_stay_in_range() {
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(seed, 4);
            for f in plan.faults() {
                if let Fault::KillSmx { smx, from, until } = *f {
                    assert!(smx.index() < 4);
                    assert!(from < until);
                }
            }
        }
    }
}
