//! Thread-block programs: the instruction streams executed by warps.
//!
//! A kernel's behavior is described per thread block by a [`TbProgram`] —
//! a sequence of [`TbOp`]s that every warp of the TB executes in order
//! (memory operations carry concrete per-thread addresses). Programs are
//! produced on demand by a [`ProgramSource`], typically a workload
//! generator, so that the simulator never needs the application's real
//! code — only its compute/memory/launch shape.

use std::sync::Arc;

use crate::kernel::ResourceReq;
use crate::types::Addr;

/// Identifies a kernel *kind* — one of the distinct kernel functions a
/// workload defines (e.g. "BFS parent sweep" vs "BFS child expand").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KernelKindId(pub u16);

/// The memory space targeted by a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Off-chip global memory, cached in L1/L2.
    Global,
    /// On-chip per-TB shared memory (scratchpad): fixed latency, no cache
    /// traffic.
    Shared,
}

/// How a warp memory instruction generates its 32 per-thread addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrPattern {
    /// Thread `t` of the TB accesses `base + t * stride` bytes.
    ///
    /// With `stride` equal to the element size this is a fully coalesced
    /// access; larger strides fan out over more lines.
    Strided {
        /// Byte address accessed by thread 0.
        base: Addr,
        /// Byte distance between consecutive threads' addresses.
        stride: u32,
    },
    /// Every thread accesses one explicit address; entry `t` is the
    /// address for thread `t` of the TB. If shorter than the TB, the
    /// remaining threads are inactive for this instruction.
    Gather(Arc<[Addr]>),
    /// All threads read the same address (e.g. a shared pointer or size).
    Broadcast(Addr),
}

impl AddrPattern {
    /// Returns the addresses touched by warp `warp` (threads
    /// `warp*warp_size ..` up to `threads` total), in thread order.
    pub fn warp_addrs(&self, warp: u32, warp_size: u32, threads: u32) -> Vec<Addr> {
        let mut out = Vec::new();
        self.warp_addrs_into(warp, warp_size, threads, &mut out);
        out
    }

    /// [`warp_addrs`](Self::warp_addrs) into a caller-owned buffer
    /// (cleared first), so hot paths can reuse one allocation per warp
    /// instruction instead of building a fresh `Vec`.
    pub fn warp_addrs_into(&self, warp: u32, warp_size: u32, threads: u32, out: &mut Vec<Addr>) {
        out.clear();
        let first = warp * warp_size;
        if first >= threads {
            return;
        }
        let count = warp_size.min(threads - first);
        match self {
            AddrPattern::Strided { base, stride } => {
                out.extend((0..count).map(|l| base + u64::from(first + l) * u64::from(*stride)));
            }
            AddrPattern::Gather(addrs) => {
                let lo = first as usize;
                let hi = (first + count) as usize;
                if lo < addrs.len() {
                    out.extend_from_slice(&addrs[lo..hi.min(addrs.len())]);
                }
            }
            AddrPattern::Broadcast(a) => {
                out.extend(std::iter::repeat_n(*a, count as usize));
            }
        }
    }

    /// Iterates over every address the whole TB touches (all threads).
    pub fn tb_addrs(&self, threads: u32) -> Vec<Addr> {
        match self {
            AddrPattern::Strided { base, stride } => {
                (0..threads).map(|t| base + u64::from(t) * u64::from(*stride)).collect()
            }
            AddrPattern::Gather(addrs) => addrs.iter().copied().take(threads as usize).collect(),
            AddrPattern::Broadcast(a) => vec![*a; threads.min(1) as usize],
        }
    }
}

/// A warp-level memory instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemOp {
    /// Target memory space.
    pub space: MemSpace,
    /// Per-thread address generator.
    pub pattern: AddrPattern,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

impl MemOp {
    /// A global-memory load.
    pub fn load(pattern: AddrPattern) -> Self {
        MemOp { space: MemSpace::Global, pattern, is_store: false }
    }

    /// A global-memory store.
    pub fn store(pattern: AddrPattern) -> Self {
        MemOp { space: MemSpace::Global, pattern, is_store: true }
    }

    /// A shared-memory access (load/store are timed identically).
    pub fn shared(pattern: AddrPattern) -> Self {
        MemOp { space: MemSpace::Shared, pattern, is_store: false }
    }
}

/// A device-side launch issued by a TB (CDP kernel or DTBL TB group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSpec {
    /// Kernel kind of the child.
    pub kind: KernelKindId,
    /// Opaque workload parameter forwarded to [`ProgramSource::tb_program`]
    /// for the child's TBs (e.g. an encoded vertex id).
    pub param: u64,
    /// Number of child TBs to launch.
    pub num_tbs: u32,
    /// Per-TB resource requirement of the child.
    pub req: ResourceReq,
}

/// One operation in a TB program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TbOp {
    /// Every warp is busy for the given number of cycles (ALU work).
    Compute(u32),
    /// Divergent ALU work: the warp issues and is busy for `cycles`, but
    /// only `active` threads per warp do useful work (a branchy region
    /// where most lanes are masked off). Costs the same issue slots and
    /// latency as [`Compute`](Self::Compute) while contributing fewer
    /// thread instructions — the IPC cost of control divergence.
    ComputeMasked {
        /// Busy cycles, as for `Compute`.
        cycles: u32,
        /// Active threads per warp (clamped to the warp width).
        active: u32,
    },
    /// Every warp issues this memory instruction (with its own lanes).
    Mem(MemOp),
    /// Warp 0 issues a device-side launch; other warps skip the op.
    Launch(LaunchSpec),
    /// TB-wide barrier: warps wait until all warps of the TB arrive.
    Sync,
}

/// The complete instruction stream of one thread block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TbProgram {
    ops: Vec<TbOp>,
}

impl TbProgram {
    /// Creates a program from an operation list.
    pub fn new(ops: Vec<TbOp>) -> Self {
        TbProgram { ops }
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[TbOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All launches the program will issue, in order.
    pub fn launches(&self) -> impl Iterator<Item = &LaunchSpec> {
        self.ops.iter().filter_map(|op| match op {
            TbOp::Launch(spec) => Some(spec),
            _ => None,
        })
    }

    /// All global-memory operations in the program.
    pub fn global_mem_ops(&self) -> impl Iterator<Item = &MemOp> {
        self.ops.iter().filter_map(|op| match op {
            TbOp::Mem(m) if m.space == MemSpace::Global => Some(m),
            _ => None,
        })
    }

    /// A canonical, self-delimiting byte encoding of the program.
    ///
    /// Two programs encode to the same bytes if and only if they are
    /// equal — every field of every op is serialized (little-endian,
    /// length-prefixed where variable). This is the comparison key for
    /// the workload-DSL equivalence gates: "byte-identical program
    /// streams" means equal `canonical_bytes`, checked across program
    /// *sources* (DSL-compiled vs legacy generator) and across runs.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.ops.len() * 16);
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            match op {
                TbOp::Compute(cycles) => {
                    out.push(0);
                    out.extend_from_slice(&cycles.to_le_bytes());
                }
                TbOp::ComputeMasked { cycles, active } => {
                    out.push(1);
                    out.extend_from_slice(&cycles.to_le_bytes());
                    out.extend_from_slice(&active.to_le_bytes());
                }
                TbOp::Mem(m) => {
                    out.push(2);
                    out.push(match m.space {
                        MemSpace::Global => 0,
                        MemSpace::Shared => 1,
                    });
                    out.push(u8::from(m.is_store));
                    match &m.pattern {
                        AddrPattern::Strided { base, stride } => {
                            out.push(0);
                            out.extend_from_slice(&base.to_le_bytes());
                            out.extend_from_slice(&stride.to_le_bytes());
                        }
                        AddrPattern::Gather(addrs) => {
                            out.push(1);
                            out.extend_from_slice(&(addrs.len() as u64).to_le_bytes());
                            for a in addrs.iter() {
                                out.extend_from_slice(&a.to_le_bytes());
                            }
                        }
                        AddrPattern::Broadcast(a) => {
                            out.push(2);
                            out.extend_from_slice(&a.to_le_bytes());
                        }
                    }
                }
                TbOp::Launch(spec) => {
                    out.push(3);
                    out.extend_from_slice(&spec.kind.0.to_le_bytes());
                    out.extend_from_slice(&spec.param.to_le_bytes());
                    out.extend_from_slice(&spec.num_tbs.to_le_bytes());
                    out.extend_from_slice(&spec.req.threads.to_le_bytes());
                    out.extend_from_slice(&spec.req.regs_per_thread.to_le_bytes());
                    out.extend_from_slice(&spec.req.smem_bytes.to_le_bytes());
                }
                TbOp::Sync => out.push(4),
            }
        }
        out
    }
}

/// Produces TB programs on demand.
///
/// Implemented by workload generators. The simulator calls
/// [`tb_program`](Self::tb_program) once per dispatched TB; the result is
/// a pure function of `(kind, param, tb_index)` so footprint analysis and
/// timing simulation see identical address streams.
pub trait ProgramSource: Send + Sync {
    /// Returns the program for TB `tb_index` of a batch with the given
    /// kind and parameter.
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram;

    /// Human-readable name of a kernel kind (for traces and reports).
    fn kind_name(&self, _kind: KernelKindId) -> String {
        "kernel".to_string()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn strided_warp_addrs_are_consecutive() {
        let p = AddrPattern::Strided { base: 1000, stride: 4 };
        let addrs = p.warp_addrs(1, 32, 128);
        assert_eq!(addrs.len(), 32);
        assert_eq!(addrs[0], 1000 + 32 * 4);
        assert_eq!(addrs[31], 1000 + 63 * 4);
    }

    #[test]
    fn strided_partial_last_warp() {
        let p = AddrPattern::Strided { base: 0, stride: 4 };
        let addrs = p.warp_addrs(1, 32, 40);
        assert_eq!(addrs.len(), 8);
    }

    #[test]
    fn warp_beyond_tb_is_empty() {
        let p = AddrPattern::Strided { base: 0, stride: 4 };
        assert!(p.warp_addrs(2, 32, 64).is_empty());
    }

    #[test]
    fn gather_respects_length() {
        let p = AddrPattern::Gather(vec![10, 20, 30].into());
        let addrs = p.warp_addrs(0, 32, 64);
        assert_eq!(addrs, vec![10, 20, 30]);
        assert!(p.warp_addrs(1, 32, 64).is_empty());
    }

    #[test]
    fn broadcast_replicates_for_active_lanes() {
        let p = AddrPattern::Broadcast(99);
        assert_eq!(p.warp_addrs(0, 32, 16), vec![99; 16]);
    }

    #[test]
    fn tb_addrs_covers_all_threads() {
        let p = AddrPattern::Strided { base: 0, stride: 8 };
        let addrs = p.tb_addrs(100);
        assert_eq!(addrs.len(), 100);
        assert_eq!(addrs[99], 99 * 8);
    }

    #[test]
    fn program_launch_iterator_finds_launches() {
        let spec = LaunchSpec {
            kind: KernelKindId(1),
            param: 42,
            num_tbs: 2,
            req: ResourceReq::new(32, 16, 0),
        };
        let prog = TbProgram::new(vec![TbOp::Compute(4), TbOp::Launch(spec.clone()), TbOp::Sync]);
        let launches: Vec<_> = prog.launches().collect();
        assert_eq!(launches, vec![&spec]);
        assert_eq!(prog.len(), 3);
        assert!(!prog.is_empty());
    }

    #[test]
    fn global_mem_ops_excludes_shared() {
        let prog = TbProgram::new(vec![
            TbOp::Mem(MemOp::load(AddrPattern::Broadcast(0))),
            TbOp::Mem(MemOp::shared(AddrPattern::Broadcast(0))),
        ]);
        assert_eq!(prog.global_mem_ops().count(), 1);
    }

    #[test]
    fn empty_program_is_well_behaved() {
        let prog = TbProgram::default();
        assert!(prog.is_empty());
        assert_eq!(prog.len(), 0);
        assert_eq!(prog.ops(), &[]);
        assert_eq!(prog.launches().count(), 0);
        assert_eq!(prog.global_mem_ops().count(), 0);
        // The encoding of an empty program is just its length prefix.
        assert_eq!(prog.canonical_bytes(), 0u64.to_le_bytes());
        assert_eq!(prog, TbProgram::new(Vec::new()));
    }

    #[test]
    fn zero_thread_tb_yields_no_addresses() {
        for p in [
            AddrPattern::Strided { base: 64, stride: 4 },
            AddrPattern::Gather(vec![1, 2, 3].into()),
            AddrPattern::Broadcast(7),
        ] {
            assert!(p.warp_addrs(0, 32, 0).is_empty(), "{p:?}");
            assert!(p.tb_addrs(0).is_empty(), "{p:?}");
        }
    }

    #[test]
    fn boundary_addresses_do_not_overflow_warp_iteration() {
        // A strided access whose last lane lands exactly on u64::MAX.
        let base = u64::MAX - 31 * 4;
        let p = AddrPattern::Strided { base, stride: 4 };
        let addrs = p.warp_addrs(0, 32, 32);
        assert_eq!(addrs.len(), 32);
        assert_eq!(addrs[0], base);
        assert_eq!(addrs[31], u64::MAX);
        // Gather and broadcast pass extreme addresses through verbatim.
        let g = AddrPattern::Gather(vec![0, u64::MAX].into());
        assert_eq!(g.warp_addrs(0, 32, 32), vec![0, u64::MAX]);
        let b = AddrPattern::Broadcast(u64::MAX);
        assert_eq!(b.tb_addrs(64), vec![u64::MAX]);
    }

    #[test]
    fn launches_iterate_in_program_order() {
        let spec = |param: u64| LaunchSpec {
            kind: KernelKindId(1),
            param,
            num_tbs: 1,
            req: ResourceReq::new(32, 16, 0),
        };
        let prog = TbProgram::new(vec![
            TbOp::Launch(spec(3)),
            TbOp::Compute(1),
            TbOp::Launch(spec(1)),
            TbOp::Sync,
            TbOp::Launch(spec(2)),
        ]);
        let order: Vec<u64> = prog.launches().map(|s| s.param).collect();
        assert_eq!(order, vec![3, 1, 2], "launches must keep program order, not sort");
    }

    #[test]
    fn canonical_bytes_distinguishes_unequal_programs() {
        let base = TbProgram::new(vec![
            TbOp::Compute(4),
            TbOp::Mem(MemOp::load(AddrPattern::Strided { base: 128, stride: 4 })),
            TbOp::Mem(MemOp::store(AddrPattern::Gather(vec![8, 16].into()))),
            TbOp::ComputeMasked { cycles: 6, active: 7 },
            TbOp::Sync,
        ]);
        assert_eq!(base.canonical_bytes(), base.clone().canonical_bytes());
        let variants = [
            TbProgram::new(vec![TbOp::Compute(5)]),
            TbProgram::new(vec![TbOp::ComputeMasked { cycles: 4, active: 32 }]),
            TbProgram::new(vec![TbOp::Mem(MemOp::store(AddrPattern::Strided {
                base: 128,
                stride: 4,
            }))]),
            TbProgram::new(vec![TbOp::Mem(MemOp::shared(AddrPattern::Broadcast(8)))]),
            TbProgram::new(vec![TbOp::Mem(MemOp::load(AddrPattern::Gather(vec![8, 16].into())))]),
        ];
        let mut blobs: Vec<Vec<u8>> = variants.iter().map(TbProgram::canonical_bytes).collect();
        blobs.push(base.canonical_bytes());
        let unique: std::collections::HashSet<&[u8]> = blobs.iter().map(Vec::as_slice).collect();
        assert_eq!(unique.len(), blobs.len(), "distinct programs must encode distinctly");
    }

    #[test]
    fn canonical_bytes_is_self_delimiting_across_concatenation() {
        // [Compute(1), Compute(2)] vs [Compute(1)] ++ [Compute(2)]:
        // the length prefix keeps stream concatenations unambiguous.
        let joined = TbProgram::new(vec![TbOp::Compute(1), TbOp::Compute(2)]);
        let mut glued = TbProgram::new(vec![TbOp::Compute(1)]).canonical_bytes();
        glued.extend(TbProgram::new(vec![TbOp::Compute(2)]).canonical_bytes());
        assert_ne!(joined.canonical_bytes(), glued);
    }
}
