//! DRAM latency, bandwidth, and row-buffer model.
//!
//! Each 128-byte transaction that misses in L2 is serviced by one of
//! `channels` DRAM channels (selected by line address). A channel serves
//! one transaction every `service_cycles` — requests that arrive while
//! the channel is busy queue behind it — and keeps one *row* open:
//! consecutive accesses to the same 2 KB row are row-buffer hits, while a
//! row switch adds a precharge/activate penalty. The returned latency is
//! `queueing + row penalty + dram_latency`, giving both a bandwidth
//! constraint and the row-locality sensitivity that coalesced,
//! spatially-local access streams exploit.

use crate::types::{Cycle, LineAddr};

/// Lines per DRAM row (2 KB rows of 128-byte lines).
const LINES_PER_ROW: u64 = 16;

/// Extra service cycles for a row-buffer miss (precharge + activate).
const ROW_MISS_PENALTY: u32 = 12;

#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    free_at: Cycle,
    open_row: Option<u64>,
}

/// The DRAM model.
#[derive(Debug, Clone)]
pub struct Dram {
    channels: Vec<Channel>,
    latency: u32,
    service_cycles: u32,
    accesses: u64,
    total_queueing: u64,
    row_hits: u64,
    row_misses: u64,
}

impl Dram {
    /// Creates a DRAM model with the given channel count, access latency,
    /// and per-transaction service time.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: u32, latency: u32, service_cycles: u32) -> Self {
        assert!(channels > 0, "DRAM needs at least one channel");
        Dram {
            channels: vec![Channel::default(); channels as usize],
            latency,
            service_cycles,
            accesses: 0,
            total_queueing: 0,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Services one line transaction issued at `now`; returns its total
    /// latency in cycles (queueing and row penalty included).
    pub fn access(&mut self, line: LineAddr, now: Cycle) -> u64 {
        let chan_index = (line % self.channels.len() as u64) as usize;
        let row = line / LINES_PER_ROW;
        let chan = &mut self.channels[chan_index];

        let row_penalty = if chan.open_row == Some(row) {
            self.row_hits += 1;
            0
        } else {
            self.row_misses += 1;
            chan.open_row = Some(row);
            u64::from(ROW_MISS_PENALTY)
        };

        let start = chan.free_at.max(now);
        chan.free_at = start + u64::from(self.service_cycles) + row_penalty;
        let queueing = start - now;
        self.accesses += 1;
        self.total_queueing += queueing;
        queueing + row_penalty + u64::from(self.latency)
    }

    /// Total transactions serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Mean queueing delay per transaction (cycles).
    pub fn mean_queueing(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_queueing as f64 / self.accesses as f64
        }
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn idle_channel_first_access_pays_row_miss() {
        let mut d = Dram::new(2, 100, 4);
        assert_eq!(d.access(0, 50), 100 + u64::from(ROW_MISS_PENALTY));
    }

    #[test]
    fn same_row_access_is_cheaper() {
        let mut d = Dram::new(1, 100, 4);
        let first = d.access(0, 0);
        let second = d.access(1, 1000); // same 16-line row, channel idle
        assert_eq!(second, 100);
        assert!(second < first);
        assert!((d.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn row_switch_pays_penalty_again() {
        let mut d = Dram::new(1, 100, 4);
        d.access(0, 0);
        let other_row = d.access(LINES_PER_ROW, 1000);
        assert_eq!(other_row, 100 + u64::from(ROW_MISS_PENALTY));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = Dram::new(1, 100, 4);
        d.access(0, 0); // row miss: busy until 4 + 12 = 16
        let lat = d.access(1, 0); // row hit but queued behind the first
        assert_eq!(lat, 16 + 100);
    }

    #[test]
    fn different_channels_do_not_queue() {
        let mut d = Dram::new(2, 100, 4);
        let a = d.access(0, 0);
        let b = d.access(1, 0); // odd line → channel 1
        assert_eq!(a, b);
    }

    #[test]
    fn channel_frees_over_time() {
        let mut d = Dram::new(1, 100, 4);
        d.access(0, 0);
        assert_eq!(d.access(2, 10_000), 100); // row still open
    }

    #[test]
    fn stats_track_accesses_and_queueing() {
        let mut d = Dram::new(1, 100, 10);
        d.access(0, 0);
        d.access(0, 0);
        assert_eq!(d.accesses(), 2);
        assert!(d.mean_queueing() > 0.0);
    }

    #[test]
    fn each_channel_has_its_own_open_row() {
        let mut d = Dram::new(2, 100, 4);
        d.access(0, 0); // channel 0, row 0
        d.access(1, 0); // channel 1, row 0
                        // Both channels re-hit their rows.
        assert_eq!(d.access(2, 1000), 100);
        assert_eq!(d.access(3, 1000), 100);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = Dram::new(0, 100, 4);
    }
}
