//! Warp scheduling policies.
//!
//! These choose which ready warp an SMX issues next. The paper's baseline
//! (Table I) uses Greedy-Then-Oldest ([`GreedyThenOldest`]); a loose
//! round-robin ([`LooseRoundRobin`]) is provided for comparison. LaPerm
//! is deliberately orthogonal to the warp scheduler (Section IV-F), which
//! these abstractions make explicit.

use crate::types::TbRef;

/// One issuable warp, as presented to a [`WarpScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpCandidate {
    /// Identity of the warp's thread block.
    pub tb: TbRef,
    /// Warp index within the TB.
    pub warp: u32,
    /// Monotone sequence number of the TB's dispatch (smaller = older).
    pub tb_dispatch_seq: u64,
}

/// A policy for picking the next warp to issue from the ready set.
pub trait WarpScheduler: Send {
    /// Returns the index (into `candidates`) of the warp to issue, or
    /// `None` to stall. `candidates` is non-empty.
    fn select(&mut self, candidates: &[WarpCandidate]) -> Option<usize>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Greedy-Then-Oldest: keep issuing from the last warp while it is ready;
/// otherwise fall back to the oldest warp (oldest TB, then lowest warp
/// index).
#[derive(Debug, Default)]
pub struct GreedyThenOldest {
    last: Option<(TbRef, u32)>,
}

impl GreedyThenOldest {
    /// Creates a GTO scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn oldest(candidates: &[WarpCandidate]) -> usize {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            let b = &candidates[best];
            if (c.tb_dispatch_seq, c.warp) < (b.tb_dispatch_seq, b.warp) {
                best = i;
            }
        }
        best
    }
}

impl WarpScheduler for GreedyThenOldest {
    fn select(&mut self, candidates: &[WarpCandidate]) -> Option<usize> {
        if let Some(last) = self.last {
            if let Some(i) = candidates.iter().position(|c| (c.tb, c.warp) == last) {
                return Some(i);
            }
        }
        let i = Self::oldest(candidates);
        self.last = Some((candidates[i].tb, candidates[i].warp));
        Some(i)
    }

    fn name(&self) -> &'static str {
        "gto"
    }
}

/// Loose round-robin: rotates over the ready set.
#[derive(Debug, Default)]
pub struct LooseRoundRobin {
    counter: usize,
}

impl LooseRoundRobin {
    /// Creates a loose round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WarpScheduler for LooseRoundRobin {
    fn select(&mut self, candidates: &[WarpCandidate]) -> Option<usize> {
        let i = self.counter % candidates.len();
        self.counter = self.counter.wrapping_add(1);
        Some(i)
    }

    fn name(&self) -> &'static str {
        "lrr"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::types::BatchId;

    fn cand(batch: u32, index: u32, warp: u32, seq: u64) -> WarpCandidate {
        WarpCandidate { tb: TbRef { batch: BatchId(batch), index }, warp, tb_dispatch_seq: seq }
    }

    #[test]
    fn gto_prefers_oldest_tb_first() {
        let mut gto = GreedyThenOldest::new();
        let cands = [cand(0, 1, 0, 5), cand(0, 0, 0, 2), cand(0, 2, 1, 9)];
        assert_eq!(gto.select(&cands), Some(1));
    }

    #[test]
    fn gto_is_greedy_on_same_warp() {
        let mut gto = GreedyThenOldest::new();
        let cands = [cand(0, 0, 0, 1), cand(0, 1, 0, 2)];
        assert_eq!(gto.select(&cands), Some(0));
        // Re-order the list: the same warp should still be chosen.
        let cands2 = [cand(0, 1, 0, 2), cand(0, 0, 0, 1)];
        assert_eq!(gto.select(&cands2), Some(1));
    }

    #[test]
    fn gto_falls_back_when_greedy_warp_absent() {
        let mut gto = GreedyThenOldest::new();
        let cands = [cand(0, 0, 0, 1)];
        assert_eq!(gto.select(&cands), Some(0));
        let cands2 = [cand(0, 1, 3, 7), cand(0, 1, 1, 7)];
        // Greedy warp gone: oldest is TB seq 7, warp 1.
        assert_eq!(gto.select(&cands2), Some(1));
    }

    #[test]
    fn gto_breaks_ties_by_warp_index() {
        let mut gto = GreedyThenOldest::new();
        let cands = [cand(0, 0, 2, 1), cand(0, 0, 1, 1)];
        assert_eq!(gto.select(&cands), Some(1));
    }

    #[test]
    fn lrr_rotates() {
        let mut lrr = LooseRoundRobin::new();
        let cands = [cand(0, 0, 0, 0), cand(0, 1, 0, 1), cand(0, 2, 0, 2)];
        assert_eq!(lrr.select(&cands), Some(0));
        assert_eq!(lrr.select(&cands), Some(1));
        assert_eq!(lrr.select(&cands), Some(2));
        assert_eq!(lrr.select(&cands), Some(0));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(GreedyThenOldest::new().name(), "gto");
        assert_eq!(LooseRoundRobin::new().name(), "lrr");
    }
}
