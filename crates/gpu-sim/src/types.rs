//! Fundamental identifier and unit types shared across the simulator.

use std::fmt;

/// A simulation cycle count in the SMX clock domain.
pub type Cycle = u64;

/// Identifies a stream multiprocessor (SMX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SmxId(pub u16);

impl SmxId {
    /// Returns the SMX index as a `usize` for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SmxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SMX{}", self.0)
    }
}

/// Identifies a schedulable batch of thread blocks.
///
/// A batch is either a kernel (host-launched or CDP device-launched) or a
/// DTBL thread-block group coalesced onto an existing kernel. Batches are
/// numbered in creation order, globally across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchId(pub u32);

impl BatchId {
    /// Returns the batch index as a `usize` for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Globally identifies a thread block: a batch plus the TB's index within
/// that batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TbRef {
    /// The batch the TB belongs to.
    pub batch: BatchId,
    /// Index of the TB within the batch, in dispatch order.
    pub index: u32,
}

impl fmt::Display for TbRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/TB{}", self.batch, self.index)
    }
}

/// A scheduling priority level.
///
/// Host-launched kernels have priority 0; each nested device launch adds
/// one (schedulers clamp to their maximum level `L`). Higher values are
/// scheduled first under LaPerm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u8);

impl Priority {
    /// The priority of host-launched (top-level) kernels.
    pub const HOST: Priority = Priority(0);

    /// Returns the priority one level higher, saturating.
    pub fn child(self) -> Priority {
        Priority(self.0.saturating_add(1))
    }

    /// Clamps the priority to a maximum nesting level.
    pub fn clamp_to(self, max_level: u8) -> Priority {
        Priority(self.0.min(max_level))
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A byte address in the simulated global memory space.
pub type Addr = u64;

/// A 128-byte cache line address (byte address >> line bits).
pub type LineAddr = u64;

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn priority_child_increments() {
        assert_eq!(Priority::HOST.child(), Priority(1));
        assert_eq!(Priority(3).child(), Priority(4));
    }

    #[test]
    fn priority_child_saturates() {
        assert_eq!(Priority(u8::MAX).child(), Priority(u8::MAX));
    }

    #[test]
    fn priority_clamps_to_max_level() {
        assert_eq!(Priority(5).clamp_to(2), Priority(2));
        assert_eq!(Priority(1).clamp_to(2), Priority(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SmxId(3).to_string(), "SMX3");
        assert_eq!(BatchId(7).to_string(), "B7");
        assert_eq!(TbRef { batch: BatchId(2), index: 9 }.to_string(), "B2/TB9");
        assert_eq!(Priority(1).to_string(), "P1");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(BatchId(1) < BatchId(2));
        assert!(SmxId(0) < SmxId(12));
        assert!(Priority(0) < Priority(1));
    }
}
