//! Simulation statistics.

use crate::cache::{CacheStats, ReuseClass, NUM_REUSE_CLASSES};
use crate::program::KernelKindId;
use crate::types::{BatchId, Cycle, Priority, SmxId, TbRef};

/// A power-of-two-bucket histogram of `u64` values: bucket 0 holds the
/// value 0, bucket `i` holds values in `[2^(i-1), 2^i)`. Fixed-size and
/// allocation-free so it can live inside the simulator's hot state; the
/// metrics registry converts it into its own `Histogram` for export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pow2Hist {
    /// Bucket counts (see type docs for the bucket boundaries).
    pub buckets: [u64; 65],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for Pow2Hist {
    fn default() -> Self {
        Pow2Hist { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl Pow2Hist {
    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let bucket = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of the bucket holding value 0 (`i == 0`) or
    /// the range `[2^(i-1), 2^i)`.
    fn bucket_hi(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Upper bound of the `q`-quantile (`0.0..=1.0`): the smallest
    /// bucket boundary with at least `ceil(q * count)` recorded values
    /// at or below it, clamped to the observed maximum. Returns 0 for an
    /// empty histogram. With power-of-two buckets the bound is exact for
    /// single-valued buckets and at most 2x the true quantile otherwise
    /// — stable enough to compare policies against each other.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &Pow2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Child-TB L1 reuse split by placement: *bound* children ran on their
/// direct parent's SMX, *stolen* (or otherwise redirected) children did
/// not. The contrast backs the Adaptive-Bind stolen-TB claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BindReuse {
    /// L1 hits by children resident on their parent's SMX.
    pub bound_hits: u64,
    /// …of which classified parent-child reuse.
    pub bound_parent_child: u64,
    /// L1 hits by children resident away from their parent's SMX.
    pub stolen_hits: u64,
    /// …of which classified parent-child reuse.
    pub stolen_parent_child: u64,
}

impl BindReuse {
    /// Parent-child share of bound-child L1 hits.
    pub fn bound_share(&self) -> f64 {
        if self.bound_hits == 0 {
            0.0
        } else {
            self.bound_parent_child as f64 / self.bound_hits as f64
        }
    }

    /// Parent-child share of stolen-child L1 hits.
    pub fn stolen_share(&self) -> f64 {
        if self.stolen_hits == 0 {
            0.0
        } else {
            self.stolen_parent_child as f64 / self.stolen_hits as f64
        }
    }

    /// Accumulates another split into this one.
    pub fn merge(&mut self, other: &BindReuse) {
        self.bound_hits += other.bound_hits;
        self.bound_parent_child += other.bound_parent_child;
        self.stolen_hits += other.stolen_hits;
        self.stolen_parent_child += other.stolen_parent_child;
    }
}

/// Locality-provenance profile of one run: per-class reuse-distance
/// histograms for both cache levels plus the bound/stolen child split.
/// The per-class *hit counts* live in the caches' own stats
/// (`SimStats::l1.prov` / `SimStats::l2.prov`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalityStats {
    /// L1 reuse distance (cycles between install and hit) per class,
    /// merged over all SMXs, indexed by [`ReuseClass::index`].
    pub l1_reuse_dist: [Pow2Hist; NUM_REUSE_CLASSES],
    /// L2 reuse distance per class.
    pub l2_reuse_dist: [Pow2Hist; NUM_REUSE_CLASSES],
    /// Bound vs stolen child L1 reuse split.
    pub bind: BindReuse,
}

/// Why the engine ran a loop iteration at the cycle it did.
///
/// Every iteration of either engine loop is tagged with exactly one
/// source — the arm of the wake-up computation that put the clock on
/// this cycle — so the per-source counts partition
/// [`EngineStats::loop_iterations`] exactly (asserted by
/// `tests/engine_introspection.rs` and the `engine-wake-partition`
/// shape assertion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSource {
    /// A component published this cycle: an SMX wake-up from the event
    /// heap, a ready KMU with a free KDU entry, a maturing launch in
    /// the launch model, or the TB-dispatch stage (which must tick
    /// every cycle while TBs await dispatch). Consecutive-cycle steps
    /// land here.
    ComponentTick,
    /// A fault window's edge was the earliest event: a `QueueFull`
    /// window opening the KMU dispatch path, or a fault-delayed launch
    /// reaching maturity.
    FaultEdge,
    /// A finite-launch-path release was the earliest event: the spill
    /// queue's round trip completing or a KMU-backlog retry coming due.
    BackpressureRelease,
    /// Quiescent-wedge jump: nothing can ever act again, so the engine
    /// jumped straight to the watchdog deadline to diagnose the wedge.
    WatchdogDeadline,
    /// The engine fast-forwarded more than one cycle to reach this
    /// iteration; the jump length is recorded in
    /// [`EngineStats::jump_len`]. (The landing cycle's underlying cause
    /// is one of the sources above; the jump tag records that the
    /// iteration was *reached by skipping*, which is what the host-cost
    /// decomposition cares about.)
    FastForwardJump,
}

/// Number of [`WakeSource`] variants.
pub const NUM_WAKE_SOURCES: usize = 5;

impl WakeSource {
    /// All sources, in [`index`](Self::index) order.
    pub const ALL: [WakeSource; NUM_WAKE_SOURCES] = [
        WakeSource::ComponentTick,
        WakeSource::FaultEdge,
        WakeSource::BackpressureRelease,
        WakeSource::WatchdogDeadline,
        WakeSource::FastForwardJump,
    ];

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            WakeSource::ComponentTick => 0,
            WakeSource::FaultEdge => 1,
            WakeSource::BackpressureRelease => 2,
            WakeSource::WatchdogDeadline => 3,
            WakeSource::FastForwardJump => 4,
        }
    }

    /// Stable snake_case name for reports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            WakeSource::ComponentTick => "component_tick",
            WakeSource::FaultEdge => "fault_edge",
            WakeSource::BackpressureRelease => "backpressure_release",
            WakeSource::WatchdogDeadline => "watchdog_deadline",
            WakeSource::FastForwardJump => "fast_forward_jump",
        }
    }
}

/// Engine pipeline stages whose host time is sampled, in
/// [`EngineStats::host_ns`] index order. "Components" here are the
/// engine's units of host work: the three front-end stages, the SMX
/// stepping loop (which includes the memory system — caches and DRAM
/// answer inside SMX steps), and the wake-up/advance computation.
pub const ENGINE_HOST_COMPONENTS: [&str; 5] =
    ["launch_maturation", "kmu_dispatch", "tb_dispatch", "smx", "advance"];

/// Engine introspection for one run: why the loop woke, how deep the
/// event heap ran, how far fast-forward jumped, and where host
/// nanoseconds went. `Some` in [`SimStats::engine`] only when the run
/// had [`GpuConfig::profile_engine`](crate::config::GpuConfig) set.
///
/// Everything except the `host_*` fields is a deterministic function of
/// the simulated machine (bit-identical across hosts and `--jobs`
/// counts, but *not* across engine modes — the introspection observes
/// the engine, not the simulation). The `host_*` fields are wall-clock
/// measurements and are never serialized into `repro.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Total engine loop iterations (cycles actually stepped).
    pub loop_iterations: u64,
    /// Iterations per wake source, indexed by [`WakeSource::index`].
    /// Sums exactly to `loop_iterations`.
    pub wake_counts: [u64; NUM_WAKE_SOURCES],
    /// Event-heap depth sampled at every event-loop iteration (empty in
    /// cycle-stepped mode, which has no heap).
    pub heap_depth: Pow2Hist,
    /// Due SMX wake-ups processed per event-loop iteration (empty in
    /// cycle-stepped mode).
    pub events_per_cycle: Pow2Hist,
    /// Lengths of multi-cycle jumps (fast-forward and wedge jumps).
    pub jump_len: Pow2Hist,
    /// Host-time sampling stride: one in `host_sampling` iterations is
    /// timed with `Instant` spans.
    pub host_sampling: u64,
    /// Iterations that were host-timed.
    pub host_samples: u64,
    /// Sampled host nanoseconds per engine stage, indexed like
    /// [`ENGINE_HOST_COMPONENTS`]. Nondeterministic; excluded from
    /// `repro.json`.
    pub host_ns: [u64; 5],
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats {
            loop_iterations: 0,
            wake_counts: [0; NUM_WAKE_SOURCES],
            heap_depth: Pow2Hist::default(),
            events_per_cycle: Pow2Hist::default(),
            jump_len: Pow2Hist::default(),
            host_sampling: 1,
            host_samples: 0,
            host_ns: [0; 5],
        }
    }
}

impl EngineStats {
    /// Sum of the wake-source counts; always equals `loop_iterations`.
    pub fn wake_total(&self) -> u64 {
        self.wake_counts.iter().sum()
    }

    /// Iterations tagged with `source`.
    pub fn wake_count(&self, source: WakeSource) -> u64 {
        self.wake_counts[source.index()]
    }

    /// Total sampled host nanoseconds across all engine stages.
    pub fn host_total_ns(&self) -> u64 {
        self.host_ns.iter().sum()
    }

    /// The engine stage with the largest sampled host time, or `None`
    /// when no span was sampled. Ties break toward the earlier stage.
    pub fn dominant_component(&self) -> Option<&'static str> {
        if self.host_total_ns() == 0 {
            return None;
        }
        let mut best = 0;
        for (i, &ns) in self.host_ns.iter().enumerate() {
            if ns > self.host_ns[best] {
                best = i;
            }
        }
        Some(ENGINE_HOST_COMPONENTS[best])
    }
}

/// Why an SMX failed to issue on a given cycle.
///
/// Exactly one cause is charged per SMX per non-issuing cycle, so per
/// SMX `busy_cycles + StallBreakdown::total() == cycles` (asserted by
/// `tests/stall_attribution.rs`). A stalled cycle is attributed to the
/// wait of the *earliest-ready* warp of the earliest-ready resident TB
/// — the critical path out of the stall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StallCause {
    /// Waiting on an ALU / shared-memory / launch-issue latency.
    #[default]
    Scoreboard,
    /// Waiting on an in-flight global-memory access.
    MemoryPending,
    /// Waiting on a global-memory access that found the MSHR file full.
    MshrFull,
    /// Waiting for the TB's warps to arrive at a barrier.
    Barrier,
    /// No resident TB at all (starved by the TB scheduler or done).
    NoTb,
    /// Blocked on an exhausted launch-path resource under the
    /// `StallParent` overflow policy (pending-launch buffer full).
    LaunchPath,
}

impl StallCause {
    /// Compact code (declaration order) for packing a cause next to a
    /// cycle count in one word; inverse of [`from_code`](Self::from_code).
    pub(crate) fn code(self) -> u64 {
        self as u64
    }

    /// Decodes [`code`](Self::code); values above the range map to
    /// [`NoTb`](Self::NoTb).
    pub(crate) fn from_code(code: u64) -> Self {
        match code {
            0 => StallCause::Scoreboard,
            1 => StallCause::MemoryPending,
            2 => StallCause::MshrFull,
            3 => StallCause::Barrier,
            5 => StallCause::LaunchPath,
            _ => StallCause::NoTb,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Scoreboard => "scoreboard",
            StallCause::MemoryPending => "memory-pending",
            StallCause::MshrFull => "mshr-full",
            StallCause::Barrier => "barrier",
            StallCause::NoTb => "no-tb",
            StallCause::LaunchPath => "launch-path",
        }
    }
}

/// Per-SMX stall-cycle histogram, one bucket per [`StallCause`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles stalled on scoreboard (ALU/shared/launch) latencies.
    pub scoreboard: u64,
    /// Cycles stalled on in-flight global-memory accesses.
    pub memory_pending: u64,
    /// Cycles stalled behind an MSHR-full global access.
    pub mshr_full: u64,
    /// Cycles stalled at barriers.
    pub barrier: u64,
    /// Cycles with no resident TB.
    pub no_tb: u64,
    /// Cycles blocked on an exhausted launch-path resource.
    pub launch_path: u64,
}

impl StallBreakdown {
    /// Charges `n` cycles to `cause`.
    #[inline]
    pub fn add(&mut self, cause: StallCause, n: u64) {
        match cause {
            StallCause::Scoreboard => self.scoreboard += n,
            StallCause::MemoryPending => self.memory_pending += n,
            StallCause::MshrFull => self.mshr_full += n,
            StallCause::Barrier => self.barrier += n,
            StallCause::NoTb => self.no_tb += n,
            StallCause::LaunchPath => self.launch_path += n,
        }
    }

    /// Charges one cycle to `cause`.
    #[inline]
    pub fn bump(&mut self, cause: StallCause) {
        self.add(cause, 1);
    }

    /// Total stalled cycles across all causes.
    pub fn total(&self) -> u64 {
        self.scoreboard
            + self.memory_pending
            + self.mshr_full
            + self.barrier
            + self.no_tb
            + self.launch_path
    }

    /// Accumulates another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.scoreboard += other.scoreboard;
        self.memory_pending += other.memory_pending;
        self.mshr_full += other.mshr_full;
        self.barrier += other.barrier;
        self.no_tb += other.no_tb;
        self.launch_path += other.launch_path;
    }
}

/// Per-thread-block execution record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbRecord {
    /// TB identity.
    pub tb: TbRef,
    /// Kernel kind of the TB's batch (workload-defined function id).
    pub kind: KernelKindId,
    /// SMX it ran on.
    pub smx: SmxId,
    /// Batch nesting priority (0 = host kernel).
    pub priority: Priority,
    /// `true` for device-launched TBs.
    pub is_dynamic: bool,
    /// Direct parent (batch, TB index, SMX), for dynamic TBs.
    pub parent: Option<(BatchId, u32, SmxId)>,
    /// Cycle the batch's launch was issued.
    pub created_at: Cycle,
    /// Cycle the TB was dispatched to its SMX.
    pub dispatched_at: Cycle,
    /// Cycle the TB retired (0 until completion).
    pub finished_at: Cycle,
}

/// A cheap point-in-time sample of the machine's cumulative counters,
/// for windowed time-series analysis (unlike
/// [`SimStats`], taking one does not clone per-TB records).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineSample {
    /// Cycle the sample was taken.
    pub cycle: Cycle,
    /// Cumulative thread instructions.
    pub thread_instructions: u64,
    /// Cumulative L1 hits (all SMXs).
    pub l1_hits: u64,
    /// Cumulative L1 misses.
    pub l1_misses: u64,
    /// Cumulative L2 hits.
    pub l2_hits: u64,
    /// Cumulative L2 misses.
    pub l2_misses: u64,
    /// TBs resident across the SMXs right now.
    pub resident_tbs: usize,
    /// TBs visible but not yet dispatched right now.
    pub undispatched_tbs: u64,
    /// Cumulative L1 hits classified parent-child (zero unless locality
    /// profiling is enabled).
    pub l1_parent_child_hits: u64,
    /// Cumulative L2 hits classified parent-child.
    pub l2_parent_child_hits: u64,
}

impl MachineSample {
    /// Windowed IPC between `earlier` and `self`.
    pub fn ipc_since(&self, earlier: &MachineSample) -> f64 {
        let cycles = self.cycle.saturating_sub(earlier.cycle);
        if cycles == 0 {
            0.0
        } else {
            (self.thread_instructions - earlier.thread_instructions) as f64 / cycles as f64
        }
    }

    /// Windowed L1 hit rate between `earlier` and `self`.
    pub fn l1_rate_since(&self, earlier: &MachineSample) -> f64 {
        let hits = self.l1_hits - earlier.l1_hits;
        let misses = self.l1_misses - earlier.l1_misses;
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Windowed L2 hit rate between `earlier` and `self`.
    pub fn l2_rate_since(&self, earlier: &MachineSample) -> f64 {
        let hits = self.l2_hits - earlier.l2_hits;
        let misses = self.l2_misses - earlier.l2_misses;
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// Issued warp-instruction counts by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstructionMix {
    /// ALU/compute warp instructions.
    pub compute: u64,
    /// Global-memory loads.
    pub loads: u64,
    /// Global-memory stores.
    pub stores: u64,
    /// Shared-memory accesses.
    pub shared: u64,
    /// Device-launch issues (once per warp reaching the op).
    pub launches: u64,
    /// Barrier arrivals.
    pub barriers: u64,
}

impl InstructionMix {
    /// Total warp instructions.
    pub fn total(&self) -> u64 {
        self.compute + self.loads + self.stores + self.shared + self.launches + self.barriers
    }

    /// Fraction of instructions touching global memory.
    pub fn memory_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / total as f64
        }
    }

    /// Accumulates another mix into this one.
    pub fn merge(&mut self, other: &InstructionMix) {
        self.compute += other.compute;
        self.loads += other.loads;
        self.stores += other.stores;
        self.shared += other.shared;
        self.launches += other.launches;
        self.barriers += other.barriers;
    }
}

/// The critical path through a run's launch DAG: the chain of TBs,
/// root-first, whose back-to-back latencies bound the makespan. Each
/// link's weight splits into *queueing* (launch issue to first
/// instruction issue of the chain TB) and *execution* (first issue
/// until the next chain TB's launch was issued, or retirement for the
/// final TB), so `queue_cycles + exec_cycles == cycles` exactly and two
/// policies can be compared by scheduling-induced critical-path
/// inflation rather than IPC alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Number of TBs on the path (0 for a run with no TBs).
    pub len: u32,
    /// Total path weight: the final TB's retirement cycle minus the
    /// root TB's launch-issue cycle.
    pub cycles: u64,
    /// Path cycles attributable to queueing (launch path + scheduler
    /// queue + dispatch gap) summed over the chain.
    pub queue_cycles: u64,
    /// Path cycles attributable to execution, summed over the chain.
    pub exec_cycles: u64,
    /// The chain itself, root-first (parent before child).
    pub chain: Vec<TbRef>,
}

/// Per-TB lifecycle latency attribution; `Some` on [`SimStats`] only
/// when the run had [`GpuConfig::profile_latency`] set.
///
/// Every dispatched TB's lifetime (launch issue to retirement) is
/// decomposed into an exactly-partitioning sum of four components, each
/// aggregated into a [`Pow2Hist`]:
///
/// ```text
/// launch_path  launch issued  -> scheduler-enqueued (KMU + maturation)
/// queue_wait   enqueued       -> dispatched to an SMX
/// dispatch_gap dispatched     -> first instruction issue
/// exec         first issue    -> retired
/// ```
///
/// `kmu_wait` (KMU maturation to enqueue) is a strict sub-interval of
/// `launch_path`, recorded separately for diagnosis but excluded from
/// the partition. TBs whose stamps are not monotonically ordered are
/// counted in `partition_violations` and left out of every histogram;
/// the `lat-partition-exact` shape assertion requires that count to be
/// zero.
///
/// [`GpuConfig::profile_latency`]: crate::config::GpuConfig::profile_latency
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// TBs recorded into the histograms (== dispatched TBs minus
    /// `partition_violations`).
    pub tbs: u64,
    /// TBs with out-of-order lifecycle stamps, excluded from the
    /// histograms. Always 0 unless a stamping bug is introduced.
    pub partition_violations: u64,
    /// High-water mark of the KMU pending-kernel queue depth.
    pub kmu_depth_hwm: u64,
    /// Launch issue to scheduler enqueue, all TBs.
    pub launch_path: Pow2Hist,
    /// KMU maturation to scheduler enqueue (sub-interval of
    /// `launch_path`, informational).
    pub kmu_wait: Pow2Hist,
    /// Scheduler enqueue to SMX dispatch, all TBs.
    pub queue_wait: Pow2Hist,
    /// SMX dispatch to first instruction issue, all TBs.
    pub dispatch_gap: Pow2Hist,
    /// First instruction issue to retirement, all TBs.
    pub exec: Pow2Hist,
    /// Full lifetime (launch issue to retirement), all TBs.
    pub lifetime: Pow2Hist,
    /// `queue_wait` restricted to dynamic (device-launched) TBs — the
    /// latency LaPerm's reordering policies act on.
    pub child_queue_wait: Pow2Hist,
    /// `child_queue_wait` for children dispatched to their direct
    /// parent's SMX.
    pub bound_queue_wait: Pow2Hist,
    /// `child_queue_wait` for children dispatched elsewhere.
    pub stolen_queue_wait: Pow2Hist,
    /// `queue_wait` split by batch nesting depth (priority 0 = host
    /// kernels), sorted by depth, empty entries elided.
    pub depth_queue_wait: Vec<(u8, Pow2Hist)>,
    /// `lifetime` rolled up per kernel kind, sorted by kind id.
    pub kind_lifetime: Vec<(u16, Pow2Hist)>,
    /// Critical path through the launch DAG.
    pub critical_path: CriticalPath,
}

impl LatencyStats {
    /// `p50 / p95 / p99 (mean)` rendering of one histogram, shared by
    /// the CLI summary tables.
    pub fn quantile_line(h: &Pow2Hist) -> String {
        format!(
            "p50 {} / p95 {} / p99 {} (mean {:.0}, n={})",
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.mean(),
            h.count
        )
    }
}

/// Aggregate results of one simulation run.
///
/// `PartialEq` compares every counter and per-TB record, which is what
/// the determinism tests lean on: two runs are "the same" only if every
/// observable statistic is bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Issued warp instructions by kind.
    pub instruction_mix: InstructionMix,
    /// Thread instructions issued.
    pub thread_instructions: u64,
    /// Aggregated L1 statistics (all SMXs).
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// DRAM transactions.
    pub dram_accesses: u64,
    /// Mean DRAM queueing delay per transaction.
    pub dram_mean_queueing: f64,
    /// DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
    /// L2 misses merged with in-flight fills (MSHR merges).
    pub mshr_merges: u64,
    /// Dirty L2 evictions written back to DRAM.
    pub l2_writebacks: u64,
    /// Busy cycles per SMX.
    pub smx_busy_cycles: Vec<u64>,
    /// Stall-cause breakdown per SMX. Per SMX,
    /// `smx_busy_cycles[i] + smx_stalls[i].total() == cycles`.
    pub smx_stalls: Vec<StallBreakdown>,
    /// TBs executed per SMX.
    pub smx_tbs: Vec<u64>,
    /// Per-TB records, in dispatch order.
    pub tb_records: Vec<TbRecord>,
    /// Scheduler-specific counters.
    pub scheduler_counters: Vec<(&'static str, u64)>,
    /// Launch-path counters: engine-side overflow/spill/backlog counts
    /// plus model-specific counters (e.g. DTBL aggregation-table
    /// overflows). Empty entries are elided, so unbounded default runs
    /// carry only model counters.
    pub launch_counters: Vec<(&'static str, u64)>,
    /// TB scheduler name.
    pub scheduler: String,
    /// Launch model name.
    pub launch_model: String,
    /// Locality provenance profile; `Some` only when the run had
    /// `GpuConfig::profile_locality` set.
    pub locality: Option<LocalityStats>,
    /// Engine introspection; `Some` only when the run had
    /// `GpuConfig::profile_engine` set. Unlike every other field, this
    /// one observes the *engine*, not the machine: it legitimately
    /// differs between [`EngineMode`](crate::config::EngineMode)s.
    pub engine: Option<EngineStats>,
    /// Per-TB lifecycle latency attribution; `Some` only when the run
    /// had `GpuConfig::profile_latency` set. Machine-observing, so it
    /// is bit-identical across engine modes and fast-forward settings.
    pub latency: Option<LatencyStats>,
}

impl SimStats {
    /// Instructions per cycle (thread instructions).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / self.cycles as f64
        }
    }

    /// Mean SMX utilization: busy cycles / total cycles, averaged over
    /// SMXs.
    pub fn smx_utilization(&self) -> f64 {
        if self.cycles == 0 || self.smx_busy_cycles.is_empty() {
            return 0.0;
        }
        let total: u64 = self.smx_busy_cycles.iter().sum();
        total as f64 / (self.cycles as f64 * self.smx_busy_cycles.len() as f64)
    }

    /// Load imbalance across SMXs: max busy cycles / mean busy cycles
    /// (1.0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        if self.smx_busy_cycles.is_empty() {
            return 1.0;
        }
        let max = self.smx_busy_cycles.iter().max().copied().unwrap_or(0) as f64;
        let mean =
            self.smx_busy_cycles.iter().sum::<u64>() as f64 / self.smx_busy_cycles.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Stall cycles summed over all SMXs, by cause.
    pub fn total_stalls(&self) -> StallBreakdown {
        let mut total = StallBreakdown::default();
        for s in &self.smx_stalls {
            total.merge(s);
        }
        total
    }

    /// Dynamic (child) TB count.
    pub fn dynamic_tbs(&self) -> usize {
        self.tb_records.iter().filter(|r| r.is_dynamic).count()
    }

    /// Mean cycles a dynamic TB waited between its launch being issued
    /// and its dispatch to an SMX.
    pub fn mean_child_wait(&self) -> f64 {
        let waits: Vec<u64> = self
            .tb_records
            .iter()
            .filter(|r| r.is_dynamic)
            .map(|r| r.dispatched_at.saturating_sub(r.created_at))
            .collect();
        if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        }
    }

    /// Per-kernel-kind execution summary: TB count and mean resident
    /// time (dispatch to retire), sorted by kind id. Useful to see how
    /// much of a run is spent in parent sweeps vs child expansions.
    pub fn per_kind_summary(&self) -> Vec<(KernelKindId, usize, f64)> {
        let mut acc: std::collections::BTreeMap<u16, (usize, u64)> =
            std::collections::BTreeMap::new();
        for r in &self.tb_records {
            let e = acc.entry(r.kind.0).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.finished_at.saturating_sub(r.dispatched_at);
        }
        acc.into_iter()
            .map(|(kind, (count, total))| {
                (KernelKindId(kind), count, total as f64 / count.max(1) as f64)
            })
            .collect()
    }

    /// A multi-line human-readable summary of the run (one metric per
    /// line, aligned), for CLIs and examples.
    pub fn summary(&self) -> String {
        let mix = self.instruction_mix;
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<20}{v}\n"));
        };
        line("scheduler", self.scheduler.clone());
        line("launch model", self.launch_model.clone());
        line("cycles", self.cycles.to_string());
        line("IPC", format!("{:.2}", self.ipc()));
        line("L1 hit rate", format!("{:.1}%", self.l1.hit_rate() * 100.0));
        line("L2 hit rate", format!("{:.1}%", self.l2.hit_rate() * 100.0));
        line("DRAM accesses", self.dram_accesses.to_string());
        line("DRAM row hits", format!("{:.1}%", self.dram_row_hit_rate * 100.0));
        line("MSHR merges", self.mshr_merges.to_string());
        line("L2 write-backs", self.l2_writebacks.to_string());
        line("TBs (total/child)", format!("{}/{}", self.tb_records.len(), self.dynamic_tbs()));
        line("mean child wait", format!("{:.0} cycles", self.mean_child_wait()));
        line("parent-SMX affinity", format!("{:.1}%", self.parent_smx_affinity() * 100.0));
        line("SMX utilization", format!("{:.1}%", self.smx_utilization() * 100.0));
        line("load imbalance", format!("{:.2}", self.load_imbalance()));
        line(
            "instruction mix",
            format!(
                "{} compute / {} load / {} store / {} shared / {} launch / {} barrier",
                mix.compute, mix.loads, mix.stores, mix.shared, mix.launches, mix.barriers
            ),
        );
        let stalls = self.total_stalls();
        line(
            "stall cycles",
            format!(
                "{} scoreboard / {} mem / {} mshr-full / {} barrier / {} no-TB / {} launch-path",
                stalls.scoreboard,
                stalls.memory_pending,
                stalls.mshr_full,
                stalls.barrier,
                stalls.no_tb,
                stalls.launch_path
            ),
        );
        if let Some(loc) = &self.locality {
            let share = |c: ReuseClass| format!("{:.1}%", self.l1.prov.share(c) * 100.0);
            line(
                "L1 reuse classes",
                format!(
                    "{} self / {} parent-child / {} sibling / {} ancestor / {} unrelated",
                    share(ReuseClass::SelfReuse),
                    share(ReuseClass::ParentChild),
                    share(ReuseClass::Sibling),
                    share(ReuseClass::Ancestor),
                    share(ReuseClass::Unrelated),
                ),
            );
            line(
                "L2 parent-child",
                format!(
                    "{:.1}% ({} same-SMX / {} cross-SMX hits)",
                    self.l2.prov.share(ReuseClass::ParentChild) * 100.0,
                    self.l2.prov.same_smx,
                    self.l2.prov.cross_smx
                ),
            );
            line(
                "bound/stolen reuse",
                format!(
                    "{:.1}% / {:.1}% parent-child of child L1 hits",
                    loc.bind.bound_share() * 100.0,
                    loc.bind.stolen_share() * 100.0
                ),
            );
        }
        if let Some(eng) = &self.engine {
            line(
                "engine iterations",
                format!(
                    "{} over {} cycles ({:.3} per cycle)",
                    eng.loop_iterations,
                    self.cycles,
                    if self.cycles == 0 {
                        0.0
                    } else {
                        eng.loop_iterations as f64 / self.cycles as f64
                    }
                ),
            );
            line(
                "wake sources",
                WakeSource::ALL
                    .iter()
                    .map(|s| format!("{} {}", eng.wake_count(*s), s.name()))
                    .collect::<Vec<_>>()
                    .join(" / "),
            );
        }
        if let Some(lat) = &self.latency {
            line("TB lifetime", LatencyStats::quantile_line(&lat.lifetime));
            line("launch path", LatencyStats::quantile_line(&lat.launch_path));
            line("queue wait", LatencyStats::quantile_line(&lat.queue_wait));
            line("child queue wait", LatencyStats::quantile_line(&lat.child_queue_wait));
            let cp = &lat.critical_path;
            line(
                "critical path",
                format!(
                    "{} TBs, {} cycles ({} queue / {} exec)",
                    cp.len, cp.cycles, cp.queue_cycles, cp.exec_cycles
                ),
            );
        }
        for (name, v) in &self.scheduler_counters {
            line(name, v.to_string());
        }
        for (name, v) in &self.launch_counters {
            line(name, v.to_string());
        }
        out
    }

    /// Fraction of dynamic TBs that ran on the same SMX as their direct
    /// parent TB.
    pub fn parent_smx_affinity(&self) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for r in &self.tb_records {
            if let Some((_, _, parent_smx)) = r.parent {
                total += 1;
                if parent_smx == r.smx {
                    same += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn record(dynamic: bool, smx: u16, parent_smx: Option<u16>) -> TbRecord {
        TbRecord {
            tb: TbRef { batch: BatchId(0), index: 0 },
            kind: KernelKindId(u16::from(dynamic)),
            smx: SmxId(smx),
            priority: Priority(u8::from(dynamic)),
            is_dynamic: dynamic,
            parent: parent_smx.map(|s| (BatchId(0), 0, SmxId(s))),
            created_at: 10,
            dispatched_at: 30,
            finished_at: 100,
        }
    }

    #[test]
    fn ipc_divides_instructions_by_cycles() {
        let stats = SimStats { cycles: 100, thread_instructions: 250, ..Default::default() };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ipc_zero_cycles_is_zero() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn utilization_and_imbalance() {
        let stats =
            SimStats { cycles: 100, smx_busy_cycles: vec![100, 50, 50], ..Default::default() };
        assert!((stats.smx_utilization() - (200.0 / 300.0)).abs() < 1e-12);
        assert!((stats.load_imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_idle_machine_is_one() {
        let stats = SimStats { smx_busy_cycles: vec![0, 0], ..Default::default() };
        assert_eq!(stats.load_imbalance(), 1.0);
    }

    #[test]
    fn child_wait_counts_dynamic_only() {
        let stats = SimStats {
            tb_records: vec![record(true, 0, Some(1)), record(false, 1, None)],
            ..Default::default()
        };
        assert!((stats.mean_child_wait() - 20.0).abs() < 1e-12);
        assert_eq!(stats.dynamic_tbs(), 1);
    }

    #[test]
    fn instruction_mix_totals_and_fractions() {
        let mut mix =
            InstructionMix { compute: 4, loads: 3, stores: 1, shared: 1, launches: 1, barriers: 2 };
        assert_eq!(mix.total(), 12);
        assert!((mix.memory_fraction() - 4.0 / 12.0).abs() < 1e-12);
        mix.merge(&InstructionMix { compute: 1, ..Default::default() });
        assert_eq!(mix.total(), 13);
        assert_eq!(InstructionMix::default().memory_fraction(), 0.0);
    }

    #[test]
    fn stall_breakdown_totals_and_merges() {
        let mut b = StallBreakdown::default();
        b.bump(StallCause::Scoreboard);
        b.add(StallCause::MemoryPending, 3);
        b.add(StallCause::MshrFull, 2);
        b.bump(StallCause::Barrier);
        b.add(StallCause::NoTb, 5);
        assert_eq!(b.total(), 12);
        b.add(StallCause::LaunchPath, 0);
        let mut other = StallBreakdown::default();
        other.merge(&b);
        other.merge(&b);
        assert_eq!(other.total(), 24);
        assert_eq!(other.memory_pending, 6);
        let stats = SimStats { smx_stalls: vec![b, b, b], ..Default::default() };
        assert_eq!(stats.total_stalls().total(), 36);
    }

    #[test]
    fn stall_cause_codes_round_trip() {
        for cause in [
            StallCause::Scoreboard,
            StallCause::MemoryPending,
            StallCause::MshrFull,
            StallCause::Barrier,
            StallCause::NoTb,
            StallCause::LaunchPath,
        ] {
            assert_eq!(StallCause::from_code(cause.code()), cause);
            assert!(!cause.name().is_empty());
        }
    }

    #[test]
    fn launch_path_stalls_counted_in_total() {
        let mut b = StallBreakdown::default();
        b.add(StallCause::LaunchPath, 4);
        assert_eq!(b.total(), 4);
        let mut other = StallBreakdown::default();
        other.merge(&b);
        assert_eq!(other.launch_path, 4);
    }

    #[test]
    fn summary_mentions_every_headline_metric() {
        let stats = SimStats {
            cycles: 100,
            thread_instructions: 250,
            scheduler: "rr".to_string(),
            launch_model: "dtbl".to_string(),
            scheduler_counters: vec![("stage3_steals", 7)],
            launch_counters: vec![("dtbl_table_overflows", 3)],
            ..Default::default()
        };
        let s = stats.summary();
        for needle in
            ["cycles", "IPC", "L1 hit rate", "stage3_steals", "dtbl_table_overflows", "2.50", "rr"]
        {
            assert!(s.contains(needle), "summary missing {needle}:\n{s}");
        }
    }

    #[test]
    fn per_kind_summary_groups_and_averages() {
        let mut a = record(false, 0, None);
        a.finished_at = 130; // 100 resident
        let mut b = record(false, 1, None);
        b.finished_at = 50; // 20 resident
        let c = record(true, 2, Some(0)); // kind 1, 70 resident
        let stats = SimStats { tb_records: vec![a, b, c], ..Default::default() };
        let summary = stats.per_kind_summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].0, KernelKindId(0));
        assert_eq!(summary[0].1, 2);
        assert!((summary[0].2 - 60.0).abs() < 1e-12);
        assert_eq!(summary[1].1, 1);
        assert!((summary[1].2 - 70.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Pow2Hist::default();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0);
        }
    }

    #[test]
    fn percentile_with_all_mass_in_one_bucket() {
        let mut h = Pow2Hist::default();
        for _ in 0..1000 {
            h.record(10); // bucket [8, 16), hi = 15
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 10, "q={q} must clamp to observed max");
        }
        // A single zero: bucket 0's upper bound is exactly 0.
        let mut z = Pow2Hist::default();
        z.record(0);
        assert_eq!(z.percentile(0.99), 0);
    }

    #[test]
    fn percentile_with_saturated_top_bucket() {
        let mut h = Pow2Hist::default();
        h.record(1);
        h.record(2);
        h.record((1u64 << 63) + 9); // top bucket (nominal hi = u64::MAX)
        assert_eq!(h.percentile(0.01), 1);
        // The p99 lands in the top bucket, whose nominal upper bound is
        // u64::MAX; the observed max clamps it to a finite answer.
        assert_eq!(h.percentile(0.99), (1u64 << 63) + 9);
        assert_eq!(h.percentile(1.0), (1u64 << 63) + 9);
    }

    #[test]
    fn percentile_walks_buckets_in_order() {
        let mut h = Pow2Hist::default();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.10), 1);
        // 5th of 10 values is 16, in bucket [16, 32) with hi 31.
        assert_eq!(h.percentile(0.50), 31);
        assert_eq!(h.percentile(1.0), 512);
        // Out-of-range q clamps.
        assert_eq!(h.percentile(-1.0), 1);
        assert_eq!(h.percentile(2.0), 512);
    }

    #[test]
    fn quantile_line_mentions_all_quantiles() {
        let mut h = Pow2Hist::default();
        h.record(100);
        let s = LatencyStats::quantile_line(&h);
        for needle in ["p50 100", "p95 100", "p99 100", "mean 100", "n=1"] {
            assert!(s.contains(needle), "quantile line missing {needle}: {s}");
        }
    }

    #[test]
    fn summary_includes_latency_section_only_when_profiled() {
        let mut stats = SimStats { cycles: 100, ..Default::default() };
        assert!(!stats.summary().contains("critical path"));
        let mut lifetime = Pow2Hist::default();
        lifetime.record(64);
        stats.latency = Some(LatencyStats {
            lifetime,
            critical_path: CriticalPath {
                len: 2,
                cycles: 90,
                queue_cycles: 30,
                exec_cycles: 60,
                chain: vec![],
            },
            ..Default::default()
        });
        let s = stats.summary();
        for needle in ["TB lifetime", "child queue wait", "2 TBs, 90 cycles (30 queue / 60 exec)"] {
            assert!(s.contains(needle), "summary missing {needle}:\n{s}");
        }
    }

    #[test]
    fn affinity_fraction() {
        let stats = SimStats {
            tb_records: vec![
                record(true, 0, Some(0)),
                record(true, 1, Some(0)),
                record(false, 2, None),
            ],
            ..Default::default()
        };
        assert!((stats.parent_smx_affinity() - 0.5).abs() < 1e-12);
    }
}
