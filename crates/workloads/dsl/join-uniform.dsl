workload "join" input "uniform";
# 512 R tuples over 16 partitions
data pparts = [
    0, 1, 2, 3, 4, 6, 7, 8, 9, 10, 11, 13, 14, 15, 0, 2,
    3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 3, 7,
    8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7,
    8, 11, 12, 13, 14, 15, 0, 1, 2, 5, 6, 7, 8, 9, 10, 11,
    12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7, 9, 11, 12, 13,
    15, 0, 1, 2, 3, 4, 5, 6, 7, 9, 11, 12, 13, 14, 15, 1,
    2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1,
    2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14, 15, 0, 1, 2,
    3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 4,
    5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4,
    6, 7, 8, 9, 10, 11, 12, 14, 15, 0, 1, 2, 3, 4, 5, 6,
    8, 9, 10, 12, 13, 14, 15, 0, 1, 2, 3, 5, 6, 7, 8, 9,
    10, 11, 12, 13, 14, 1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
    0, 1, 2, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14,
];
data pcounts = [
    2, 2, 4, 2, 2, 1, 4, 2, 2, 2, 2, 4, 2, 1, 3, 4,
    2, 1, 2, 2, 3, 1, 3, 3, 1, 4, 2, 1, 1, 4, 5, 1,
    6, 1, 1, 1, 3, 2, 2, 5, 2, 2, 2, 2, 6, 1, 2, 1,
    3, 2, 2, 2, 3, 2, 5, 2, 3, 2, 3, 3, 3, 2, 1, 1,
    3, 1, 2, 1, 1, 5, 1, 3, 4, 3, 2, 2, 4, 1, 2, 2,
    2, 1, 2, 4, 2, 1, 6, 2, 3, 3, 2, 2, 2, 1, 1, 4,
    1, 3, 2, 4, 2, 1, 4, 1, 1, 1, 3, 2, 1, 2, 5, 2,
    1, 2, 1, 1, 1, 2, 3, 2, 2, 1, 2, 4, 3, 3, 2, 2,
    1, 1, 1, 4, 4, 4, 2, 4, 1, 1, 1, 1, 5, 4, 1, 1,
    3, 1, 1, 1, 3, 1, 5, 2, 1, 2, 1, 1, 3, 1, 2, 1,
    2, 2, 1, 2, 2, 4, 5, 5, 1, 2, 6, 2, 2, 1, 1, 1,
    2, 1, 2, 1, 3, 5, 3, 3, 1, 2, 1, 3, 4, 2, 4, 1,
    1, 4, 1, 1, 4, 5, 3, 2, 1, 3, 3, 2, 2, 5, 1, 5,
    2, 1, 3, 4, 3, 1, 2, 3, 3, 2, 2, 1, 5,
];
data poffsets = [
    0, 14, 28, 40, 54, 68, 81, 95, 110, 125, 140, 155, 169, 183, 197, 208,
    221,
];
data sbounds = [
    0, 256, 496, 768, 1040, 1296, 1552, 1824, 2096, 2368, 2640, 2896, 3168, 3424, 3680, 3936,
    4224,
];
region r_keys[512, 8];
region s_tuples[4224, 8];
region buckets[8192, 4];
region output[512, 8];
host kind = 0 param = 0 tbs = 16 threads = 32 regs = 24 smem = 512;
kernel 0 "join-build" threads = 32 {
    let a = tb * 32;
    let cnt = min(32, 512 - a);
    if cnt == 0 {
        compute 1;
        return;
    }
    load_slice r_keys, a, cnt;
    compute 8;
    shared;
    for i in poffsets[tb] .. poffsets[tb + 1] {
        store_slice buckets, (tb * 16 + pparts[i]) * 32, 32;
    }
    compute 4;
    for i in poffsets[tb] .. poffsets[tb + 1] {
        launch 1, tb * 65536 + pparts[i], max(div_ceil(pcounts[i] * 32, 128), 1), 32, 24, 256;
    }
    load_slice r_keys, a, cnt;
    compute 10;
    store_slice output, a, cnt;
}
kernel 1 "join-probe" threads = 32 {
    let ptb = param / 65536;
    let p = param % 65536;
    let ps = sbounds[p];
    let pl = sbounds[p + 1] - ps;
    if pl == 0 {
        compute 1;
        return;
    }
    let window = min(128, pl);
    let pstart = (ptb * 131 + tb * window) % pl;
    let plen = min(window, pl - pstart);
    load_slice buckets, (ptb * 16 + p) * 32, 32;
    let offset = 0;
    while offset < plen {
        let step = min(32, plen - offset);
        load_slice s_tuples, ps + pstart + offset, step;
        compute 6;
        offset = offset + step;
    }
    let a = ptb * 32;
    let ccnt = min(32, 512 - a);
    store_slice output, a, min(ccnt, 32);
}
