workload "join" input "gaussian";
# 512 R tuples over 16 partitions
data pparts = [
    3, 4, 5, 6, 7, 8, 9, 4, 5, 6, 7, 8, 9, 10, 11, 12,
    2, 3, 5, 6, 7, 8, 9, 10, 4, 5, 6, 7, 8, 9, 10, 11,
    4, 5, 6, 7, 8, 9, 10, 11, 3, 4, 5, 6, 7, 8, 9, 10,
    11, 4, 5, 6, 7, 8, 9, 10, 5, 6, 7, 8, 9, 10, 11, 4,
    5, 6, 7, 8, 9, 11, 4, 5, 6, 7, 8, 9, 10, 11, 4, 6,
    7, 8, 9, 10, 5, 6, 7, 8, 9, 10, 5, 6, 7, 8, 9, 10,
    5, 6, 7, 8, 9, 10, 11, 5, 6, 7, 8, 9, 10, 5, 6, 7,
    8, 9, 10,
];
data pcounts = [
    1, 1, 4, 6, 6, 10, 4, 1, 2, 9, 4, 9, 3, 2, 1, 1,
    1, 1, 2, 3, 9, 11, 1, 4, 2, 3, 6, 3, 8, 6, 2, 2,
    2, 5, 6, 6, 5, 5, 1, 2, 2, 1, 2, 6, 7, 6, 3, 2,
    3, 3, 3, 3, 4, 5, 8, 6, 3, 3, 8, 9, 6, 2, 1, 2,
    3, 7, 5, 5, 8, 2, 1, 2, 6, 10, 8, 2, 2, 1, 2, 3,
    10, 7, 9, 1, 2, 6, 6, 11, 4, 3, 3, 5, 8, 9, 6, 1,
    3, 4, 8, 8, 5, 3, 1, 2, 8, 7, 8, 4, 3, 2, 3, 10,
    5, 8, 4,
];
data poffsets = [
    0, 7, 16, 24, 32, 40, 49, 56, 63, 70, 78, 84, 90, 96, 103, 109,
    115,
];
data sbounds = [
    0, 16, 32, 48, 80, 208, 480, 1104, 2112, 3104, 3760, 4080, 4192, 4208, 4224, 4240,
    4256,
];
region r_keys[512, 8];
region s_tuples[4256, 8];
region buckets[8192, 4];
region output[512, 8];
host kind = 0 param = 0 tbs = 16 threads = 32 regs = 24 smem = 512;
kernel 0 "join-build" threads = 32 {
    let a = tb * 32;
    let cnt = min(32, 512 - a);
    if cnt == 0 {
        compute 1;
        return;
    }
    load_slice r_keys, a, cnt;
    compute 8;
    shared;
    for i in poffsets[tb] .. poffsets[tb + 1] {
        store_slice buckets, (tb * 16 + pparts[i]) * 32, 32;
    }
    compute 4;
    for i in poffsets[tb] .. poffsets[tb + 1] {
        launch 1, tb * 65536 + pparts[i], max(div_ceil(pcounts[i] * 32, 128), 1), 32, 24, 256;
    }
    load_slice r_keys, a, cnt;
    compute 10;
    store_slice output, a, cnt;
}
kernel 1 "join-probe" threads = 32 {
    let ptb = param / 65536;
    let p = param % 65536;
    let ps = sbounds[p];
    let pl = sbounds[p + 1] - ps;
    if pl == 0 {
        compute 1;
        return;
    }
    let window = min(128, pl);
    let pstart = (ptb * 131 + tb * window) % pl;
    let plen = min(window, pl - pstart);
    load_slice buckets, (ptb * 16 + p) * 32, 32;
    let offset = 0;
    while offset < plen {
        let step = min(32, plen - offset);
        load_slice s_tuples, ps + pstart + offset, step;
        compute 6;
        offset = offset + step;
    }
    let a = ptb * 32;
    let ccnt = min(32, 512 - a);
    store_slice output, a, min(ccnt, 32);
}
