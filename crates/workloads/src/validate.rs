//! Validation for [`Workload`] implementations.
//!
//! Run [`validate_workload`] on a new workload before simulating it: it
//! expands the complete TB tree (host kernels and every nested launch)
//! and checks the structural invariants the engine and the analysis
//! tooling rely on. The suite's own workloads are validated in tests.

use std::collections::HashSet;

use gpu_sim::program::KernelKindId;

use crate::Workload;

/// Hard cap on recursive launch depth during validation.
const MAX_DEPTH: u32 = 16;

/// Hard cap on distinct TBs expanded (guards against runaway recursion).
const MAX_TBS: usize = 2_000_000;

/// A violation found by [`validate_workload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Which check failed.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValidationError {}

fn err(message: impl Into<String>) -> ValidationError {
    ValidationError { message: message.into() }
}

/// Checks a workload's structural invariants.
///
/// Verified properties:
///
/// * at least one host kernel, each with a non-empty grid and non-zero
///   per-TB threads;
/// * program generation is deterministic (same TB twice → same program);
/// * every launch names a non-empty grid with non-zero threads;
/// * the launch tree terminates within a sane depth and size;
/// * at least one TB performs global-memory work (a workload with no
///   memory traffic cannot exercise a locality scheduler);
/// * at least one TB launches children (otherwise there is no dynamic
///   parallelism to study).
///
/// # Errors
///
/// Returns the first violated invariant, described for a human.
pub fn validate_workload(workload: &dyn Workload) -> Result<(), ValidationError> {
    let kernels = workload.host_kernels();
    if kernels.is_empty() {
        return Err(err(format!("{}: no host kernels", workload.full_name())));
    }

    let mut stack: Vec<(KernelKindId, u64, u32, u32)> = Vec::new();
    for hk in &kernels {
        if hk.num_tbs == 0 {
            return Err(err(format!("{}: host kernel with empty grid", workload.full_name())));
        }
        if hk.req.threads == 0 {
            return Err(err(format!("{}: host kernel with zero threads", workload.full_name())));
        }
        for tb in 0..hk.num_tbs {
            stack.push((hk.kind, hk.param, tb, 0));
        }
    }

    let mut visited: HashSet<(u16, u64, u32)> = HashSet::new();
    let mut any_memory = false;
    let mut any_launch = false;
    while let Some((kind, param, tb, depth)) = stack.pop() {
        if depth > MAX_DEPTH {
            return Err(err(format!(
                "{}: launch recursion deeper than {MAX_DEPTH}",
                workload.full_name()
            )));
        }
        if !visited.insert((kind.0, param, tb)) {
            continue;
        }
        if visited.len() > MAX_TBS {
            return Err(err(format!(
                "{}: more than {MAX_TBS} distinct TBs; runaway launch tree?",
                workload.full_name()
            )));
        }
        let program = workload.tb_program(kind, param, tb);
        if program != workload.tb_program(kind, param, tb) {
            return Err(err(format!(
                "{}: tb_program({kind:?}, {param}, {tb}) is not deterministic",
                workload.full_name()
            )));
        }
        if program.global_mem_ops().next().is_some() {
            any_memory = true;
        }
        for launch in program.launches() {
            any_launch = true;
            if launch.num_tbs == 0 {
                return Err(err(format!(
                    "{}: launch with empty grid from ({kind:?}, {param}, {tb})",
                    workload.full_name()
                )));
            }
            if launch.req.threads == 0 {
                return Err(err(format!(
                    "{}: launch with zero threads from ({kind:?}, {param}, {tb})",
                    workload.full_name()
                )));
            }
            for child in 0..launch.num_tbs {
                stack.push((launch.kind, launch.param, child, depth + 1));
            }
        }
    }

    if !any_memory {
        return Err(err(format!("{}: no TB touches global memory", workload.full_name())));
    }
    if !any_launch {
        return Err(err(format!("{}: no TB launches children", workload.full_name())));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{suite, HostKernel, Scale};
    use gpu_sim::kernel::ResourceReq;
    use gpu_sim::program::{LaunchSpec, ProgramSource, TbOp, TbProgram};

    #[test]
    fn the_whole_suite_validates() {
        for w in suite(Scale::Tiny) {
            validate_workload(w.as_ref())
                .unwrap_or_else(|e| panic!("{} failed validation: {e}", w.full_name()));
        }
    }

    struct Broken {
        kind: u8,
    }

    impl ProgramSource for Broken {
        fn tb_program(&self, kind: KernelKindId, p: u64, _tb: u32) -> TbProgram {
            match (self.kind, kind.0) {
                // Infinite recursion: every TB launches a fresh child.
                (0, _) => TbProgram::new(vec![TbOp::Launch(LaunchSpec {
                    kind: KernelKindId(1),
                    param: p + 1,
                    num_tbs: 1,
                    req: ResourceReq::new(32, 8, 0),
                })]),
                // Empty child grid.
                (1, 0) => TbProgram::new(vec![TbOp::Launch(LaunchSpec {
                    kind: KernelKindId(1),
                    param: 0,
                    num_tbs: 0,
                    req: ResourceReq::new(32, 8, 0),
                })]),
                // No memory, no launches.
                (2, _) => TbProgram::new(vec![TbOp::Compute(4)]),
                _ => TbProgram::new(vec![TbOp::Compute(4)]),
            }
        }
    }

    impl crate::Workload for Broken {
        fn name(&self) -> &str {
            "broken"
        }

        fn input(&self) -> String {
            String::new()
        }

        fn host_kernels(&self) -> Vec<HostKernel> {
            vec![HostKernel {
                kind: KernelKindId(0),
                param: 0,
                num_tbs: 1,
                req: ResourceReq::new(32, 8, 0),
            }]
        }
    }

    #[test]
    fn runaway_recursion_is_caught() {
        let e = validate_workload(&Broken { kind: 0 }).unwrap_err();
        assert!(e.message.contains("recursion") || e.message.contains("runaway"), "{e}");
    }

    #[test]
    fn empty_child_grid_is_caught() {
        let e = validate_workload(&Broken { kind: 1 }).unwrap_err();
        assert!(e.message.contains("empty grid"), "{e}");
    }

    #[test]
    fn launchless_workload_is_caught() {
        let e = validate_workload(&Broken { kind: 2 }).unwrap_err();
        assert!(e.message.contains("memory") || e.message.contains("launches"), "{e}");
    }
}
