//! Adaptive Mesh Refinement (AMR), combustion-simulation-like.
//!
//! A coarse mesh is swept by the parent kernel; cells whose error
//! estimate exceeds a threshold are *refined*: a child TB group computes
//! on the cell's fine sub-mesh, and may recursively refine again (the
//! nested launches that exercise LaPerm's priority-level clamp `L`).
//!
//! Each child works on its own private refined region, so sibling TBs
//! share almost nothing — the paper's Figure 2 shows AMR with the lowest
//! child-sibling footprint ratio, and this program structure reproduces
//! that.

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};

use crate::apps::common::{chunk_range, num_chunks, OpBuilder, CHILD, CHILD2, PARENT};
use crate::dsl_emit::DslWriter;
use crate::layout::{Layout, Region};
use crate::rng::SplitMix64;
use crate::{HostKernel, Scale, Workload};

const SEED: u64 = 0xA3_0001;

/// Adaptive mesh refinement benchmark.
#[derive(Debug)]
pub struct Amr {
    num_cells: u32,
    chunk: u32,
    refine: Vec<bool>,
    deep_refine: Vec<bool>,
    /// One 128-byte record per coarse cell (a full line, so sibling
    /// children touch disjoint lines).
    coarse: Region,
    /// Per-cell refined sub-mesh: `REFINE_ELEMS` elements each.
    refined: Region,
    /// Second-level refinement storage.
    refined2: Region,
}

impl Amr {
    /// Cells per parent TB (= parent thread count).
    pub const CHUNK: u32 = 32;
    /// Threads per refinement child TB.
    pub const CHILD_THREADS: u32 = 64;
    /// Fine elements per refined cell.
    pub const REFINE_ELEMS: u64 = 128;
    /// Fraction of cells refined (first level).
    pub const REFINE_RATE: f64 = 0.22;
    /// Fraction of refined cells refined again.
    pub const DEEP_RATE: f64 = 0.25;

    /// Builds the AMR benchmark at a scale, with the default input seed.
    pub fn new(scale: Scale) -> Self {
        Self::new_seeded(scale, 0)
    }

    /// Builds with an explicit input seed (for multi-sample experiments).
    pub fn new_seeded(scale: Scale, seed: u64) -> Self {
        let seed = SEED ^ seed;
        let num_cells = scale.items() * 4;
        let mut layout = Layout::new();
        let coarse = layout.alloc(u64::from(num_cells), 128);
        let refined = layout.alloc(u64::from(num_cells) * Self::REFINE_ELEMS, 4);
        let refined2 = layout.alloc(u64::from(num_cells) * Self::REFINE_ELEMS, 4);
        let refine: Vec<bool> = (0..num_cells)
            .map(|c| SplitMix64::stream(seed, u64::from(c)).unit_f64() < Self::REFINE_RATE)
            .collect();
        let deep_refine: Vec<bool> = (0..num_cells)
            .map(|c| {
                refine[c as usize]
                    && SplitMix64::stream(seed ^ 0xDEEF, u64::from(c)).unit_f64() < Self::DEEP_RATE
            })
            .collect();
        Amr { num_cells, chunk: Self::CHUNK, refine, deep_refine, coarse, refined, refined2 }
    }

    /// Number of coarse cells.
    pub fn num_cells(&self) -> u32 {
        self.num_cells
    }

    /// Cells flagged for refinement.
    pub fn refined_cells(&self) -> usize {
        self.refine.iter().filter(|&&r| r).count()
    }

    fn child_req() -> ResourceReq {
        ResourceReq::new(Self::CHILD_THREADS, 24, 512)
    }

    fn parent_program(&self, tb_index: u32) -> TbProgram {
        let (a, cnt) = chunk_range(self.num_cells, self.chunk, tb_index);
        let mut b = OpBuilder::new(self.chunk);
        if cnt == 0 {
            return b.compute(1).build();
        }
        // Load the chunk's coarse cell records (one line per cell — the
        // strided access fans out over `cnt` lines, modeling AoS cells).
        b.load_slice(self.coarse, u64::from(a), u64::from(cnt));
        b.compute(10); // error estimation stencil
        b.store_slice(self.coarse, u64::from(a), u64::from(cnt));
        // Refine flagged cells now, then keep integrating the coarse
        // cells while the children build the fine meshes.
        for c in a..a + cnt {
            if self.refine[c as usize] {
                b.launch(CHILD, u64::from(c), 1, Self::child_req());
            }
        }
        b.shared();
        b.load_slice(self.coarse, u64::from(a), u64::from(cnt));
        b.compute(12); // coarse time-step update
        b.store_slice(self.coarse, u64::from(a), u64::from(cnt));
        b.build()
    }

    fn refine_program(&self, cell: u64, level2: bool) -> TbProgram {
        let mut b = OpBuilder::new(Self::CHILD_THREADS);
        let region = if level2 { self.refined2 } else { self.refined };
        let base = cell * Self::REFINE_ELEMS;

        // Re-read the parent's cell record: the parent-child shared data.
        b.load_bcast(self.coarse, cell);
        // Two stencil rounds over this cell's private fine mesh.
        b.load_slice(region, base, Self::REFINE_ELEMS);
        b.compute(12);
        b.store_slice(region, base, Self::REFINE_ELEMS);
        b.sync();
        b.load_slice(region, base, Self::REFINE_ELEMS);
        b.compute(12);
        b.store_slice(region, base, Self::REFINE_ELEMS);

        if !level2 && self.deep_refine[cell as usize] {
            b.launch(CHILD2, cell, 1, Self::child_req());
        }
        b.build()
    }

    /// The workload-DSL port: refinement decisions become 0/1 `data`
    /// arrays; both refinement levels share one kernel body shape.
    fn dsl_source(&self) -> String {
        let cells = self.num_cells;
        let mut w = DslWriter::new("amr", "");
        w.comment(&format!("{cells} coarse cells; refine/deep flags precomputed"));
        w.data("refine", self.refine.iter().map(|&r| u64::from(r)));
        w.data("deep", self.deep_refine.iter().map(|&r| u64::from(r)));
        w.region("coarse", u64::from(cells), 128);
        w.region("refined", u64::from(cells) * Self::REFINE_ELEMS, 4);
        w.region("refined2", u64::from(cells) * Self::REFINE_ELEMS, 4);
        w.host(0, 0, num_chunks(cells, self.chunk), self.chunk, 28, 1024);
        w.kernel(
            0,
            "amr-sweep",
            self.chunk,
            &format!(
                "    let a = tb * 32;
    let cnt = min(32, {cells} - a);
    if cnt == 0 {{
        compute 1;
        return;
    }}
    load_slice coarse, a, cnt;
    compute 10;
    store_slice coarse, a, cnt;
    for c in a .. a + cnt {{
        if refine[c] {{
            launch 1, c, 1, 64, 24, 512;
        }}
    }}
    shared;
    load_slice coarse, a, cnt;
    compute 12;
    store_slice coarse, a, cnt;
"
            ),
        );
        for (kind, name, region, tail) in [
            (
                1,
                "amr-refine",
                "refined",
                "    if deep[param] {\n        launch 2, param, 1, 64, 24, 512;\n    }\n",
            ),
            (2, "amr-refine2", "refined2", ""),
        ] {
            w.kernel(
                kind,
                name,
                Self::CHILD_THREADS,
                &format!(
                    "    let base = param * 128;
    load_bcast coarse, param;
    load_slice {region}, base, 128;
    compute 12;
    store_slice {region}, base, 128;
    sync;
    load_slice {region}, base, 128;
    compute 12;
    store_slice {region}, base, 128;
{tail}"
                ),
            );
        }
        w.finish()
    }
}

impl ProgramSource for Amr {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => self.parent_program(tb_index),
            CHILD2 => self.refine_program(param, true),
            _ => self.refine_program(param, false),
        }
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        match kind {
            PARENT => "amr-sweep".to_string(),
            CHILD2 => "amr-refine2".to_string(),
            _ => "amr-refine".to_string(),
        }
    }
}

impl Workload for Amr {
    fn name(&self) -> &str {
        "amr"
    }

    fn input(&self) -> String {
        String::new()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        vec![HostKernel {
            kind: PARENT,
            param: 0,
            num_tbs: num_chunks(self.num_cells, self.chunk),
            req: ResourceReq::new(self.chunk, 28, 1024),
        }]
    }

    fn dsl_text(&self) -> Option<String> {
        Some(self.dsl_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_rate_is_plausible() {
        let a = Amr::new(Scale::Small);
        let rate = a.refined_cells() as f64 / f64::from(a.num_cells());
        assert!((0.15..0.30).contains(&rate), "refine rate {rate}");
    }

    #[test]
    fn parent_launches_one_child_per_refined_cell() {
        let a = Amr::new(Scale::Tiny);
        let mut launched = 0usize;
        for tb in 0..a.host_kernels()[0].num_tbs {
            launched += a.tb_program(PARENT, 0, tb).launches().count();
        }
        assert_eq!(launched, a.refined_cells());
    }

    #[test]
    fn some_cells_refine_twice() {
        let a = Amr::new(Scale::Small);
        let deep = (0..a.num_cells())
            .filter(|&c| a.tb_program(CHILD, u64::from(c), 0).launches().count() > 0)
            .count();
        assert!(deep > 0, "no second-level refinement");
        assert!(deep < a.refined_cells());
    }

    #[test]
    fn level2_children_do_not_recurse() {
        let a = Amr::new(Scale::Tiny);
        for c in 0..a.num_cells() {
            assert_eq!(a.tb_program(CHILD2, u64::from(c), 0).launches().count(), 0);
        }
    }

    #[test]
    fn sibling_children_touch_disjoint_fine_regions() {
        let a = Amr::new(Scale::Tiny);
        let cells: Vec<u32> = (0..a.num_cells()).filter(|&c| a.refine[c as usize]).collect();
        let lines = |c: u32| -> std::collections::HashSet<u64> {
            a.tb_program(CHILD, u64::from(c), 0)
                .global_mem_ops()
                .flat_map(|m| m.pattern.tb_addrs(Amr::CHILD_THREADS))
                .map(|addr| addr >> 7)
                .collect()
        };
        let l0 = lines(cells[0]);
        let l1 = lines(cells[1]);
        assert!(l0.is_disjoint(&l1), "AMR siblings must not share lines");
    }

    #[test]
    fn full_name_has_no_input_suffix() {
        assert_eq!(Amr::new(Scale::Tiny).full_name(), "amr");
    }
}
