//! Single-Source Shortest Path (SSSP) with dynamic parallelism.
//!
//! Same sweep/expand structure as BFS but each edge visit also loads the
//! edge weight and performs a heavier relaxation, roughly doubling the
//! per-child memory footprint.

use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};

use crate::apps::graph_common::{GraphApp, GraphFlavor};
use crate::graph::GraphKind;
use crate::{HostKernel, Scale, Workload};

/// SSSP on one of the three Table II graph inputs.
#[derive(Debug)]
pub struct Sssp {
    app: GraphApp,
}

impl Sssp {
    /// Builds SSSP over the given input at the given scale.
    pub fn new(kind: GraphKind, scale: Scale) -> Self {
        Sssp { app: GraphApp::new(GraphFlavor::Sssp, kind, scale) }
    }

    /// Builds with an explicit input seed (for multi-sample experiments).
    pub fn new_seeded(kind: GraphKind, scale: Scale, seed: u64) -> Self {
        Sssp { app: GraphApp::new_seeded(GraphFlavor::Sssp, kind, scale, seed) }
    }

    /// The underlying graph skeleton (for analysis).
    pub fn app(&self) -> &GraphApp {
        &self.app
    }
}

impl ProgramSource for Sssp {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        self.app.tb_program(kind, param, tb_index)
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        self.app.kind_name(kind)
    }
}

impl Workload for Sssp {
    fn name(&self) -> &str {
        "sssp"
    }

    fn input(&self) -> String {
        self.app.graph_kind().name().to_string()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        self.app.host_kernels()
    }

    fn dsl_text(&self) -> Option<String> {
        Some(self.app.dsl_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_include_input() {
        let s = Sssp::new(GraphKind::Cage15, Scale::Tiny);
        assert_eq!(s.full_name(), "sssp-cage15");
    }

    #[test]
    fn sssp_footprint_exceeds_bfs_footprint() {
        use crate::apps::bfs::Bfs;
        use crate::apps::common::PARENT;
        use gpu_sim::program::ProgramSource;
        // SSSP allocates a weights region alongside the CSR arrays, so
        // its TB tree touches strictly more address space.
        let sssp = Sssp::new(GraphKind::Citation, Scale::Tiny);
        let bfs = Bfs::new(GraphKind::Citation, Scale::Tiny);
        let max_addr = |w: &dyn ProgramSource, tbs: u32| -> u64 {
            (0..tbs)
                .flat_map(|tb| {
                    w.tb_program(PARENT, 0, tb)
                        .global_mem_ops()
                        .flat_map(|m| m.pattern.tb_addrs(32))
                        .collect::<Vec<_>>()
                })
                .max()
                .unwrap_or(0)
        };
        let n = sssp.host_kernels()[0].num_tbs;
        assert!(max_addr(&sssp, n) > max_addr(&bfs, n));
    }

    #[test]
    fn kind_names_are_flavored() {
        let s = Sssp::new(GraphKind::Citation, Scale::Tiny);
        assert_eq!(s.kind_name(crate::apps::common::PARENT), "sssp-sweep");
        assert_eq!(s.kind_name(crate::apps::common::CHILD), "sssp-expand");
    }
}
