//! Shared skeleton for the graph benchmarks (BFS, SSSP, CLR).
//!
//! All three follow the dynamic-parallelism idiom the paper describes: a
//! parent kernel sweeps the vertex worklist in chunks; light vertices are
//! expanded inline (irregular intra-thread accesses), while heavy
//! vertices spawn a child TB group whose threads expand the neighbor list
//! cooperatively (converting intra-thread to inter-thread locality). The
//! parent writes a per-chunk work buffer that its children re-read —
//! the parent-generated data of Section III-A's temporal-locality
//! pattern.

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, TbProgram};
use gpu_sim::types::Addr;

use crate::apps::common::{chunk_range, num_chunks, OpBuilder, CHILD, PARENT};
use crate::dsl_emit::DslWriter;
use crate::graph::{Csr, GraphKind};
use crate::layout::{Layout, Region};
use crate::{HostKernel, Scale};

/// Which graph algorithm runs on the skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFlavor {
    /// Breadth-first search: frontier expansion, distance updates.
    Bfs,
    /// Single-source shortest path: adds per-edge weight loads and a
    /// heavier relaxation step.
    Sssp,
    /// Greedy graph coloring: reads neighbor colors, writes own color.
    Clr,
}

impl GraphFlavor {
    fn name(self) -> &'static str {
        match self {
            GraphFlavor::Bfs => "bfs",
            GraphFlavor::Sssp => "sssp",
            GraphFlavor::Clr => "clr",
        }
    }

    fn parent_compute(self) -> u32 {
        match self {
            GraphFlavor::Bfs => 6,
            GraphFlavor::Sssp => 10,
            GraphFlavor::Clr => 8,
        }
    }

    fn child_compute(self) -> u32 {
        match self {
            GraphFlavor::Bfs => 6,
            GraphFlavor::Sssp => 12,
            GraphFlavor::Clr => 10,
        }
    }
}

/// A graph benchmark instance: input graph plus memory layout.
#[derive(Debug)]
pub struct GraphApp {
    flavor: GraphFlavor,
    kind: GraphKind,
    graph: Csr,
    chunk: u32,
    child_threads: u32,
    heavy_threshold: u32,
    row_offsets: Region,
    col_indices: Region,
    frontier: Region,
    values: Region,
    weights: Option<Region>,
    workbuf: Region,
}

impl GraphApp {
    /// Vertices handled per parent TB (= parent TB thread count).
    pub const CHUNK: u32 = 32;
    /// Threads per child TB.
    pub const CHILD_THREADS: u32 = 32;

    /// Builds the benchmark for a graph input at a scale, with the
    /// default input seed.
    pub fn new(flavor: GraphFlavor, kind: GraphKind, scale: Scale) -> Self {
        Self::new_seeded(flavor, kind, scale, 0)
    }

    /// Builds the benchmark with an explicit input seed (for
    /// multi-sample experiments).
    pub fn new_seeded(flavor: GraphFlavor, kind: GraphKind, scale: Scale, seed: u64) -> Self {
        let n = scale.items() * 8;
        let avg_degree = match scale {
            Scale::Tiny => 6,
            Scale::Ci => 8,
            Scale::Small => 8,
            Scale::Paper => 10,
        };
        let seed = seed ^ 0x1A9E_0000 ^ u64::from(n) ^ (kind.name().len() as u64) << 32;
        let graph = kind.generate(n, avg_degree, seed);
        let mut layout = Layout::new();
        let m = u64::from(graph.num_edges());
        let row_offsets = layout.alloc(u64::from(n) + 1, 4);
        let col_indices = layout.alloc(m.max(1), 4);
        let frontier = layout.alloc(u64::from(n), 4);
        let values = layout.alloc(u64::from(n), 4);
        let weights = matches!(flavor, GraphFlavor::Sssp).then(|| layout.alloc(m.max(1), 4));
        let workbuf = layout.alloc(u64::from(n), 4);
        GraphApp {
            flavor,
            kind,
            graph,
            chunk: Self::CHUNK,
            child_threads: Self::CHILD_THREADS,
            heavy_threshold: avg_degree * 2,
            row_offsets,
            col_indices,
            frontier,
            values,
            weights,
            workbuf,
        }
    }

    /// The input graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The flavor name ("bfs" / "sssp" / "clr").
    pub fn flavor_name(&self) -> &'static str {
        self.flavor.name()
    }

    /// The graph input kind.
    pub fn graph_kind(&self) -> GraphKind {
        self.kind
    }

    /// Degree at which a vertex is expanded by a child TB group.
    pub fn heavy_threshold(&self) -> u32 {
        self.heavy_threshold
    }

    fn child_req(&self) -> ResourceReq {
        ResourceReq::new(self.child_threads, 20, 0)
    }

    /// The host kernels that run the benchmark.
    pub fn host_kernels(&self) -> Vec<HostKernel> {
        vec![HostKernel {
            kind: PARENT,
            param: 0,
            num_tbs: num_chunks(self.graph.num_vertices(), self.chunk),
            req: ResourceReq::new(self.chunk, 24, 256),
        }]
    }

    fn parent_program(&self, tb_index: u32) -> TbProgram {
        let n = self.graph.num_vertices();
        let (a, cnt) = chunk_range(n, self.chunk, tb_index);
        if cnt == 0 {
            return OpBuilder::new(self.chunk).compute(1).build();
        }
        let vertices = a..a + cnt;
        let mut b = OpBuilder::new(self.chunk);

        // Read the frontier slice and row offsets for this chunk.
        b.load_slice(self.frontier, u64::from(a), u64::from(cnt));
        b.load_slice(self.row_offsets, u64::from(a), u64::from(cnt) + 1);
        b.compute(4);

        // Peek each vertex's first neighbor and its value: the irregular
        // intra-thread accesses that motivate spawning children.
        let mut firsts: Vec<Addr> = Vec::with_capacity(cnt as usize);
        firsts.extend(
            vertices
                .clone()
                .filter(|&v| self.graph.degree(v) > 0)
                .map(|v| self.col_indices.addr(u64::from(self.graph.row_start(v)))),
        );
        b.gather(firsts);
        let mut first_vals: Vec<Addr> = Vec::with_capacity(cnt as usize);
        first_vals.extend(
            vertices
                .clone()
                .filter(|&v| self.graph.degree(v) > 0)
                .map(|v| self.values.addr(u64::from(self.graph.neighbors(v)[0]))),
        );
        b.gather(first_vals);
        b.compute(self.flavor.parent_compute());

        // Publish the per-chunk work buffer the children will consume,
        // then spawn children *before* the inline tail work — the common
        // CDP idiom: generate data, launch, keep computing. The head
        // start is what gives the children a chance to run while their
        // parent's data is still hot.
        b.store_slice(self.workbuf, u64::from(a), u64::from(cnt));
        for v in vertices.clone() {
            let d = self.graph.degree(v);
            if d >= self.heavy_threshold {
                b.launch(CHILD, u64::from(v), d.div_ceil(self.child_threads), self.child_req());
            }
        }
        b.sync();

        // Light vertices are expanded inline: several neighbor rounds of
        // irregular intra-thread accesses.
        for round in 1..5usize {
            let mut addrs: Vec<Addr> = Vec::with_capacity(cnt as usize);
            addrs.extend(
                vertices
                    .clone()
                    .filter(|&v| self.graph.degree(v) < self.heavy_threshold)
                    .filter(|&v| self.graph.degree(v) as usize > round)
                    .map(|v| self.values.addr(u64::from(self.graph.neighbors(v)[round]))),
            );
            b.gather(addrs);
            b.compute(4);
        }
        b.store_slice(self.values, u64::from(a), u64::from(cnt));
        b.build()
    }

    fn child_program(&self, vertex: u64, tb_index: u32) -> TbProgram {
        let v = vertex as u32;
        let d = self.graph.degree(v);
        let start = tb_index * self.child_threads;
        let cnt = self.child_threads.min(d.saturating_sub(start));
        let mut b = OpBuilder::new(self.child_threads);
        if cnt == 0 {
            return b.compute(1).build();
        }
        let row_start = u64::from(self.graph.row_start(v)) + u64::from(start);

        // Re-read the vertex header and the parent's work buffer — the
        // parent-generated data that carries the temporal locality.
        b.load_bcast(self.row_offsets, u64::from(v));
        let parent_chunk = u64::from((v / self.chunk) * self.chunk);
        b.load_slice(self.workbuf, parent_chunk, u64::from(self.child_threads));

        // Expand this TB's slice of the neighbor list, coalesced.
        b.load_slice(self.col_indices, row_start, u64::from(cnt));
        b.compute(4);

        // Visit neighbor values: the sibling-locality-bearing accesses.
        let neighbors = &self.graph.neighbors(v)[start as usize..(start + cnt) as usize];
        // One allocation, shared by the load below and the store in the
        // relaxation flavors (an `Arc` clone is a refcount bump).
        let value_addrs: std::sync::Arc<[Addr]> =
            neighbors.iter().map(|&t| self.values.addr(u64::from(t))).collect();
        b.gather(value_addrs.clone());

        if let Some(weights) = self.weights {
            b.load_slice(weights, row_start, u64::from(cnt));
            b.compute(6);
        }
        if cnt < self.child_threads {
            // Tail TB: only `cnt` of the warp's lanes are live — the
            // divergence cost of expanding a ragged neighbor list.
            b.compute_masked(self.flavor.child_compute(), cnt);
        } else {
            b.compute(self.flavor.child_compute());
        }

        match self.flavor {
            GraphFlavor::Clr => {
                // Coloring: write this vertex's color once.
                b.store_bcast(self.values, u64::from(v));
            }
            GraphFlavor::Bfs | GraphFlavor::Sssp => {
                // Relaxation: update the visited neighbors.
                b.scatter(value_addrs);
            }
        }
        b.build()
    }

    /// Program generation shared by the flavor wrappers.
    pub fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => self.parent_program(tb_index),
            _ => self.child_program(param, tb_index),
        }
    }

    /// Kernel kind names for traces.
    pub fn kind_name(&self, kind: KernelKindId) -> String {
        match kind {
            PARENT => format!("{}-sweep", self.flavor.name()),
            _ => format!("{}-expand", self.flavor.name()),
        }
    }

    /// The workload-DSL port: the CSR structure becomes `data` arrays
    /// (`rowstart` is `row_offsets` including the terminating edge
    /// count), and the kernels recompute every degree test and neighbor
    /// address from them exactly as the generator above does.
    pub fn dsl_text(&self) -> String {
        let n = self.graph.num_vertices();
        let m = u64::from(self.graph.num_edges());
        let flavor = self.flavor.name();
        let mut w = DslWriter::new(flavor, self.kind.name());
        w.comment(&format!("{n} vertices, {m} edges, CSR dumped as data arrays"));
        w.data(
            "rowstart",
            (0..=n).map(|v| if v == n { m } else { u64::from(self.graph.row_start(v)) }),
        );
        w.data("cols", (0..n).flat_map(|v| self.graph.neighbors(v)).map(|&t| u64::from(t)));
        w.region("row_offsets", u64::from(n) + 1, 4);
        w.region("col_indices", m.max(1), 4);
        w.region("frontier", u64::from(n), 4);
        w.region("values", u64::from(n), 4);
        if self.weights.is_some() {
            w.region("weights", m.max(1), 4);
        }
        w.region("workbuf", u64::from(n), 4);
        w.host(0, 0, num_chunks(n, self.chunk), self.chunk, 24, 256);

        let heavy = self.heavy_threshold;
        let pc = self.flavor.parent_compute();
        w.kernel(
            0,
            &format!("{flavor}-sweep"),
            self.chunk,
            &format!(
                "    let a = tb * 32;
    let cnt = min(32, {n} - a);
    if cnt == 0 {{
        compute 1;
        return;
    }}
    load_slice frontier, a, cnt;
    load_slice row_offsets, a, cnt + 1;
    compute 4;
    gather {{
        for v in a .. a + cnt {{
            if rowstart[v + 1] - rowstart[v] > 0 {{
                yield addr(col_indices, rowstart[v]);
            }}
        }}
    }}
    gather {{
        for v in a .. a + cnt {{
            if rowstart[v + 1] - rowstart[v] > 0 {{
                yield addr(values, cols[rowstart[v]]);
            }}
        }}
    }}
    compute {pc};
    store_slice workbuf, a, cnt;
    for v in a .. a + cnt {{
        let d = rowstart[v + 1] - rowstart[v];
        if d >= {heavy} {{
            launch 1, v, div_ceil(d, 32), 32, 20, 0;
        }}
    }}
    sync;
    for round in 1 .. 5 {{
        gather {{
            for v in a .. a + cnt {{
                let d = rowstart[v + 1] - rowstart[v];
                if d < {heavy} && d > round {{
                    yield addr(values, cols[rowstart[v] + round]);
                }}
            }}
        }}
        compute 4;
    }}
    store_slice values, a, cnt;
"
            ),
        );

        let cc = self.flavor.child_compute();
        let weight_rounds = if self.weights.is_some() {
            "    load_slice weights, row, cnt;\n    compute 6;\n"
        } else {
            ""
        };
        let writeback = match self.flavor {
            GraphFlavor::Clr => "    store_bcast values, param;\n".to_string(),
            GraphFlavor::Bfs | GraphFlavor::Sssp => "    scatter {
        for i in 0 .. cnt {
            yield addr(values, cols[row + i]);
        }
    }
"
            .to_string(),
        };
        w.kernel(
            1,
            &format!("{flavor}-expand"),
            self.child_threads,
            &format!(
                "    let d = rowstart[param + 1] - rowstart[param];
    let start = tb * 32;
    let cnt = min(32, d - start);
    if cnt == 0 {{
        compute 1;
        return;
    }}
    let row = rowstart[param] + start;
    load_bcast row_offsets, param;
    load_slice workbuf, (param / 32) * 32, 32;
    load_slice col_indices, row, cnt;
    compute 4;
    gather {{
        for i in 0 .. cnt {{
            yield addr(values, cols[row + i]);
        }}
    }}
{weight_rounds}    if cnt < 32 {{
        compute_masked {cc}, cnt;
    }} else {{
        compute {cc};
    }}
{writeback}"
            ),
        );
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> GraphApp {
        GraphApp::new(GraphFlavor::Bfs, GraphKind::Citation, Scale::Tiny)
    }

    #[test]
    fn host_kernel_covers_all_vertices() {
        let a = app();
        let hk = a.host_kernels();
        assert_eq!(hk.len(), 1);
        assert!(hk[0].num_tbs * GraphApp::CHUNK >= a.graph().num_vertices());
    }

    #[test]
    fn heavy_vertices_launch_child_groups() {
        let a = app();
        let mut total_launches = 0usize;
        for tb in 0..a.host_kernels()[0].num_tbs {
            let prog = a.tb_program(PARENT, 0, tb);
            for l in prog.launches() {
                assert_eq!(l.kind, CHILD);
                let v = l.param as u32;
                assert!(a.graph().degree(v) >= a.heavy_threshold());
                assert_eq!(l.num_tbs, a.graph().degree(v).div_ceil(GraphApp::CHILD_THREADS));
                total_launches += 1;
            }
        }
        assert!(total_launches > 0);
    }

    #[test]
    fn child_program_is_deterministic() {
        let a = app();
        let heavy = (0..a.graph().num_vertices())
            .find(|&v| a.graph().degree(v) >= a.heavy_threshold())
            .unwrap();
        assert_eq!(
            a.tb_program(CHILD, u64::from(heavy), 0),
            a.tb_program(CHILD, u64::from(heavy), 0)
        );
    }

    #[test]
    fn child_shares_workbuf_lines_with_parent() {
        let a = app();
        let heavy = (0..a.graph().num_vertices())
            .find(|&v| a.graph().degree(v) >= a.heavy_threshold())
            .unwrap();
        let parent_tb = heavy / GraphApp::CHUNK;
        let lines = |prog: &TbProgram, threads: u32| -> std::collections::HashSet<u64> {
            prog.global_mem_ops()
                .flat_map(|m| m.pattern.tb_addrs(threads))
                .map(|addr| addr >> 7)
                .collect()
        };
        let parent_lines = lines(&a.tb_program(PARENT, 0, parent_tb), GraphApp::CHUNK);
        let child_lines = lines(&a.tb_program(CHILD, u64::from(heavy), 0), GraphApp::CHILD_THREADS);
        let shared = child_lines.intersection(&parent_lines).count();
        assert!(shared >= 2, "child shares only {shared} lines with its parent TB");
    }

    #[test]
    fn sssp_touches_weights() {
        let a = GraphApp::new(GraphFlavor::Sssp, GraphKind::Cage15, Scale::Tiny);
        let heavy = (0..a.graph().num_vertices())
            .find(|&v| a.graph().degree(v) >= a.heavy_threshold())
            .unwrap();
        let bfs = GraphApp::new(GraphFlavor::Bfs, GraphKind::Cage15, Scale::Tiny);
        let sssp_ops = a.tb_program(CHILD, u64::from(heavy), 0).len();
        let bfs_ops = bfs.tb_program(CHILD, u64::from(heavy), 0).len();
        assert!(sssp_ops > bfs_ops, "SSSP child must do extra weight work");
    }

    #[test]
    fn out_of_range_child_tb_is_trivial() {
        let a = app();
        let prog = a.tb_program(CHILD, 0, 1000);
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn clr_writes_own_color_not_neighbors() {
        let a = GraphApp::new(GraphFlavor::Clr, GraphKind::Citation, Scale::Tiny);
        let heavy = (0..a.graph().num_vertices())
            .find(|&v| a.graph().degree(v) >= a.heavy_threshold())
            .unwrap();
        let prog = a.tb_program(CHILD, u64::from(heavy), 0);
        let stores: Vec<_> = prog.global_mem_ops().filter(|m| m.is_store).collect();
        assert_eq!(stores.len(), 1);
        assert!(matches!(stores[0].pattern, gpu_sim::program::AddrPattern::Broadcast(_)));
    }
}
