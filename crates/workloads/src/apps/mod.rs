//! The benchmark applications.

pub mod amr;
pub mod bfs;
pub mod bht;
pub mod clr;
pub mod common;
pub mod graph_common;
pub mod join;
pub mod pre;
pub mod regx;
pub mod sssp;
