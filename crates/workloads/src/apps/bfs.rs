//! Breadth-First Search (BFS) with dynamic parallelism.
//!
//! The parent kernel sweeps the frontier; heavy vertices launch child TB
//! groups that expand the neighbor list cooperatively (the CSR structure
//! gives sibling TBs spatially close neighbor lists on clustered inputs —
//! the effect Figure 2 of the paper measures across the three graphs).

use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};

use crate::apps::graph_common::{GraphApp, GraphFlavor};
use crate::graph::GraphKind;
use crate::{HostKernel, Scale, Workload};

/// BFS on one of the three Table II graph inputs.
#[derive(Debug)]
pub struct Bfs {
    app: GraphApp,
}

impl Bfs {
    /// Builds BFS over the given input at the given scale.
    pub fn new(kind: GraphKind, scale: Scale) -> Self {
        Bfs { app: GraphApp::new(GraphFlavor::Bfs, kind, scale) }
    }

    /// Builds with an explicit input seed (for multi-sample experiments).
    pub fn new_seeded(kind: GraphKind, scale: Scale, seed: u64) -> Self {
        Bfs { app: GraphApp::new_seeded(GraphFlavor::Bfs, kind, scale, seed) }
    }

    /// The underlying graph skeleton (for analysis).
    pub fn app(&self) -> &GraphApp {
        &self.app
    }
}

impl ProgramSource for Bfs {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        self.app.tb_program(kind, param, tb_index)
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        self.app.kind_name(kind)
    }
}

impl Workload for Bfs {
    fn name(&self) -> &str {
        "bfs"
    }

    fn input(&self) -> String {
        self.app.graph_kind().name().to_string()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        self.app.host_kernels()
    }

    fn dsl_text(&self) -> Option<String> {
        Some(self.app.dsl_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_include_input() {
        let b = Bfs::new(GraphKind::Graph500, Scale::Tiny);
        assert_eq!(b.full_name(), "bfs-graph500");
        assert_eq!(b.name(), "bfs");
    }

    #[test]
    fn kind_names_are_descriptive() {
        let b = Bfs::new(GraphKind::Citation, Scale::Tiny);
        assert_eq!(b.kind_name(crate::apps::common::PARENT), "bfs-sweep");
        assert_eq!(b.kind_name(crate::apps::common::CHILD), "bfs-expand");
    }
}
