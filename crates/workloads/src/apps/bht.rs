//! Barnes-Hut Tree build (BHT) over random data points.
//!
//! The parent kernel inserts chunks of points through the top tree
//! levels (the root-path nodes are shared by *everything* — high
//! locality); chunks that concentrate many points in one quadrant launch
//! a child TB group to build that subtree. A child re-reads its parent's
//! point block (parent-child locality) and works on a quadrant-private
//! node region (moderate sibling locality through the shared root path).

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};
use gpu_sim::types::Addr;

use crate::apps::common::{chunk_range, num_chunks, OpBuilder, CHILD, PARENT};
use crate::dsl_emit::DslWriter;
use crate::layout::{Layout, Region};
use crate::rng::SplitMix64;
use crate::{HostKernel, Scale, Workload};

const SEED: u64 = 0xB47_0002;
/// Number of quadrants at the subdivision level children work on.
const QUADRANTS: u32 = 4;

/// Barnes-Hut tree-build benchmark.
#[derive(Debug)]
pub struct Bht {
    num_points: u32,
    chunk: u32,
    /// Quadrant of each point at the subdivision level.
    quadrant: Vec<u8>,
    /// Point coordinates (8 bytes each).
    points: Region,
    /// Top-level (root path) nodes, shared by all TBs.
    root_nodes: Region,
    /// Per-(chunk, quadrant) subtree node storage.
    subtrees: Region,
}

impl Bht {
    /// Points per parent TB.
    pub const CHUNK: u32 = 32;
    /// Threads per child TB.
    pub const CHILD_THREADS: u32 = 32;
    /// Points in one quadrant of a chunk above which a child is launched.
    pub const SPLIT_THRESHOLD: u32 = 10;
    /// Nodes per subtree region.
    const SUBTREE_NODES: u64 = 64;

    /// Builds the BHT benchmark at a scale, with the default input seed.
    pub fn new(scale: Scale) -> Self {
        Self::new_seeded(scale, 0)
    }

    /// Builds with an explicit input seed (for multi-sample experiments).
    pub fn new_seeded(scale: Scale, seed: u64) -> Self {
        let seed = SEED ^ seed;
        let num_points = scale.items() * 4;
        let mut layout = Layout::new();
        let points = layout.alloc(u64::from(num_points), 8);
        let root_nodes = layout.alloc(64, 16);
        let chunks = num_chunks(num_points, Self::CHUNK);
        let subtrees =
            layout.alloc(u64::from(chunks) * u64::from(QUADRANTS) * Self::SUBTREE_NODES, 16);
        // Skew the quadrant distribution so some quadrants of some chunks
        // are heavy: Gaussian clustering of the underlying points.
        let quadrant: Vec<u8> = (0..num_points)
            .map(|p| {
                let mut rng = SplitMix64::stream(seed, u64::from(p));
                let r = rng.unit_f64();
                if r < 0.45 {
                    0
                } else if r < 0.75 {
                    1
                } else if r < 0.92 {
                    2
                } else {
                    3
                }
            })
            .collect();
        Bht { num_points, chunk: Self::CHUNK, quadrant, points, root_nodes, subtrees }
    }

    /// Number of points.
    pub fn num_points(&self) -> u32 {
        self.num_points
    }

    fn child_req() -> ResourceReq {
        ResourceReq::new(Self::CHILD_THREADS, 24, 256)
    }

    /// Points of chunk `tb` that fall into `quadrant`.
    fn members(&self, tb: u32, quadrant: u32) -> Vec<u32> {
        let (a, cnt) = chunk_range(self.num_points, self.chunk, tb);
        (a..a + cnt).filter(|&p| u32::from(self.quadrant[p as usize]) == quadrant).collect()
    }

    fn parent_program(&self, tb: u32) -> TbProgram {
        let (a, cnt) = chunk_range(self.num_points, self.chunk, tb);
        let mut b = OpBuilder::new(self.chunk);
        if cnt == 0 {
            return b.compute(1).build();
        }
        // Load this chunk's points (coalesced, 8B elements).
        b.load_slice(self.points, u64::from(a), u64::from(cnt));
        // Walk the root path: every TB touches the same few node lines.
        for level in 0..3u64 {
            b.load_bcast(self.root_nodes, level * 8);
            b.compute(4);
        }
        b.shared();
        b.compute(8);
        // Update root-level counters and split heavy quadrants early;
        // the parent then finishes inserting its light quadrants' points
        // while the children build subtrees.
        b.store_bcast(self.root_nodes, 0);
        for q in 0..QUADRANTS {
            let members = self.members(tb, q);
            if members.len() as u32 >= Self::SPLIT_THRESHOLD {
                b.launch(CHILD, encode(tb, q), 1, Self::child_req());
            }
        }
        b.load_slice(self.points, u64::from(a), u64::from(cnt));
        b.compute(10);
        for level in 0..3u64 {
            b.load_bcast(self.root_nodes, level * 8 + 1);
            b.compute(4);
        }
        b.store_bcast(self.root_nodes, 1);
        b.build()
    }

    fn child_program(&self, param: u64) -> TbProgram {
        let (tb, q) = decode(param);
        let members = self.members(tb, q);
        let mut b = OpBuilder::new(Self::CHILD_THREADS);
        if members.is_empty() {
            return b.compute(1).build();
        }
        // Re-read the parent's points that fall in this quadrant.
        let addrs: Vec<Addr> = members.iter().map(|&p| self.points.addr(u64::from(p))).collect();
        b.gather(addrs);
        // Root path again (globally shared).
        b.load_bcast(self.root_nodes, 0);
        // Build the quadrant-private subtree: two insert rounds.
        let base = (u64::from(tb) * u64::from(QUADRANTS) + u64::from(q)) * Self::SUBTREE_NODES;
        b.load_slice(self.subtrees, base, Self::SUBTREE_NODES);
        b.compute(10);
        b.store_slice(self.subtrees, base, Self::SUBTREE_NODES);
        b.sync();
        b.load_slice(self.subtrees, base, Self::SUBTREE_NODES);
        b.compute(10);
        b.store_slice(self.subtrees, base, Self::SUBTREE_NODES);
        b.build()
    }

    /// The workload-DSL port: the quadrant of every point is a `data`
    /// array; both kernels recount quadrant membership from it, so the
    /// launch decisions and gather shapes match the generator's.
    fn dsl_source(&self) -> String {
        let npts = self.num_points;
        let chunks = num_chunks(npts, self.chunk);
        let mut w = DslWriter::new("bht", "");
        w.comment(&format!("{npts} points; per-point quadrant at the split level"));
        w.data("quadrant", self.quadrant.iter().map(|&q| u64::from(q)));
        w.region("points", u64::from(npts), 8);
        w.region("root_nodes", 64, 16);
        w.region("subtrees", u64::from(chunks) * u64::from(QUADRANTS) * Self::SUBTREE_NODES, 16);
        w.host(0, 0, chunks, self.chunk, 26, 512);
        w.kernel(
            0,
            "bht-insert",
            self.chunk,
            &format!(
                "    let a = tb * 32;
    let cnt = min(32, {npts} - a);
    if cnt == 0 {{
        compute 1;
        return;
    }}
    load_slice points, a, cnt;
    for level in 0 .. 3 {{
        load_bcast root_nodes, level * 8;
        compute 4;
    }}
    shared;
    compute 8;
    store_bcast root_nodes, 0;
    for q in 0 .. 4 {{
        let m = 0;
        for p in a .. a + cnt {{
            if quadrant[p] == q {{
                m = m + 1;
            }}
        }}
        if m >= 10 {{
            launch 1, tb * 256 + q, 1, 32, 24, 256;
        }}
    }}
    load_slice points, a, cnt;
    compute 10;
    for level in 0 .. 3 {{
        load_bcast root_nodes, level * 8 + 1;
        compute 4;
    }}
    store_bcast root_nodes, 1;
"
            ),
        );
        w.kernel(
            1,
            "bht-subtree",
            Self::CHILD_THREADS,
            &format!(
                "    let ptb = param / 256;
    let q = param % 256;
    let a = ptb * 32;
    let cnt = min(32, {npts} - a);
    let m = 0;
    for p in a .. a + cnt {{
        if quadrant[p] == q {{
            m = m + 1;
        }}
    }}
    if m == 0 {{
        compute 1;
        return;
    }}
    gather {{
        for p in a .. a + cnt {{
            if quadrant[p] == q {{
                yield addr(points, p);
            }}
        }}
    }}
    load_bcast root_nodes, 0;
    let base = (ptb * 4 + q) * 64;
    load_slice subtrees, base, 64;
    compute 10;
    store_slice subtrees, base, 64;
    sync;
    load_slice subtrees, base, 64;
    compute 10;
    store_slice subtrees, base, 64;
"
            ),
        );
        w.finish()
    }
}

fn encode(tb: u32, quadrant: u32) -> u64 {
    u64::from(tb) << 8 | u64::from(quadrant)
}

fn decode(param: u64) -> (u32, u32) {
    ((param >> 8) as u32, (param & 0xFF) as u32)
}

impl ProgramSource for Bht {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => self.parent_program(tb_index),
            _ => self.child_program(param),
        }
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        match kind {
            PARENT => "bht-insert".to_string(),
            _ => "bht-subtree".to_string(),
        }
    }
}

impl Workload for Bht {
    fn name(&self) -> &str {
        "bht"
    }

    fn input(&self) -> String {
        String::new()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        vec![HostKernel {
            kind: PARENT,
            param: 0,
            num_tbs: num_chunks(self.num_points, self.chunk),
            req: ResourceReq::new(self.chunk, 26, 512),
        }]
    }

    fn dsl_text(&self) -> Option<String> {
        Some(self.dsl_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        assert_eq!(decode(encode(123, 3)), (123, 3));
        assert_eq!(decode(encode(0, 0)), (0, 0));
    }

    #[test]
    fn heavy_quadrants_spawn_children() {
        let b = Bht::new(Scale::Tiny);
        let mut launches = 0usize;
        for tb in 0..b.host_kernels()[0].num_tbs {
            launches += b.tb_program(PARENT, 0, tb).launches().count();
        }
        // Quadrant 0 holds ~45% of 32 points per chunk ≈ 14 ≥ threshold,
        // so nearly every chunk launches at least one child.
        assert!(launches >= b.host_kernels()[0].num_tbs as usize / 2);
    }

    #[test]
    fn child_rereads_parent_points() {
        let b = Bht::new(Scale::Tiny);
        let tb = 0;
        let lines = |prog: &TbProgram, threads: u32| -> std::collections::HashSet<u64> {
            prog.global_mem_ops()
                .flat_map(|m| m.pattern.tb_addrs(threads))
                .map(|a| a >> 7)
                .collect()
        };
        let parent = b.tb_program(PARENT, 0, tb);
        let launch = parent.launches().next().expect("chunk 0 launches").clone();
        let child = b.tb_program(CHILD, launch.param, 0);
        let shared: Vec<u64> = lines(&child, Bht::CHILD_THREADS)
            .intersection(&lines(&parent, Bht::CHUNK))
            .copied()
            .collect();
        assert!(shared.len() >= 2, "child shares {} lines with parent", shared.len());
    }

    #[test]
    fn sibling_subtrees_are_private() {
        let b = Bht::new(Scale::Tiny);
        let parent = b.tb_program(PARENT, 0, 0);
        let launches: Vec<_> = parent.launches().cloned().collect();
        if launches.len() < 2 {
            return; // chunk 0 happened to have one heavy quadrant only
        }
        let subtree_lines = |param: u64| -> std::collections::HashSet<u64> {
            b.tb_program(CHILD, param, 0)
                .global_mem_ops()
                .flat_map(|m| m.pattern.tb_addrs(Bht::CHILD_THREADS))
                .filter(|&a| b.subtrees.contains(a))
                .map(|a| a >> 7)
                .collect()
        };
        let l0 = subtree_lines(launches[0].param);
        let l1 = subtree_lines(launches[1].param);
        assert!(l0.is_disjoint(&l1));
    }

    #[test]
    fn quadrant_distribution_is_skewed() {
        let b = Bht::new(Scale::Small);
        let counts = (0..4)
            .map(|q| b.quadrant.iter().filter(|&&x| u32::from(x) == q).count())
            .collect::<Vec<_>>();
        assert!(counts[0] > counts[3] * 2, "distribution {counts:?} not skewed");
    }
}
