//! Greedy graph coloring (CLR) with dynamic parallelism.
//!
//! Heavy vertices launch child TB groups that read all neighbor colors
//! cooperatively and then commit the vertex's own color.

use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};

use crate::apps::graph_common::{GraphApp, GraphFlavor};
use crate::graph::GraphKind;
use crate::{HostKernel, Scale, Workload};

/// Graph coloring on one of the three Table II graph inputs.
#[derive(Debug)]
pub struct Clr {
    app: GraphApp,
}

impl Clr {
    /// Builds coloring over the given input at the given scale.
    pub fn new(kind: GraphKind, scale: Scale) -> Self {
        Clr { app: GraphApp::new(GraphFlavor::Clr, kind, scale) }
    }

    /// Builds with an explicit input seed (for multi-sample experiments).
    pub fn new_seeded(kind: GraphKind, scale: Scale, seed: u64) -> Self {
        Clr { app: GraphApp::new_seeded(GraphFlavor::Clr, kind, scale, seed) }
    }

    /// The underlying graph skeleton (for analysis).
    pub fn app(&self) -> &GraphApp {
        &self.app
    }
}

impl ProgramSource for Clr {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        self.app.tb_program(kind, param, tb_index)
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        self.app.kind_name(kind)
    }
}

impl Workload for Clr {
    fn name(&self) -> &str {
        "clr"
    }

    fn input(&self) -> String {
        self.app.graph_kind().name().to_string()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        self.app.host_kernels()
    }

    fn dsl_text(&self) -> Option<String> {
        Some(self.app.dsl_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_include_input() {
        let c = Clr::new(GraphKind::Citation, Scale::Tiny);
        assert_eq!(c.full_name(), "clr-citation");
    }

    #[test]
    fn all_inputs_validate() {
        for kind in GraphKind::all() {
            let c = Clr::new(kind, Scale::Tiny);
            crate::validate_workload(&c).unwrap_or_else(|e| panic!("{}: {e}", c.full_name()));
        }
    }

    #[test]
    fn seeded_instances_share_structure_not_edges() {
        let a = Clr::new_seeded(GraphKind::Citation, Scale::Tiny, 1);
        let b = Clr::new_seeded(GraphKind::Citation, Scale::Tiny, 2);
        assert_eq!(a.app().graph().num_vertices(), b.app().graph().num_vertices());
        assert_ne!(a.app().graph(), b.app().graph());
    }
}
