//! Relational join (JOIN) with dynamic parallelism.
//!
//! The parent kernel scans a chunk of relation R, hashes its keys into a
//! per-chunk set of partition buckets, and launches one child TB group
//! per touched partition to probe the matching segment of relation S.
//! Every child works on its own bucket slice and its own S segment, so
//! sibling TBs share essentially nothing — the paper's Figure 2 shows
//! JOIN with near-zero child-sibling locality.
//!
//! The two inputs differ in key distribution: `uniform` keys give evenly
//! sized partitions; `gaussian` keys concentrate probes in a few hot
//! partitions, producing the skewed child-TB counts that stress
//! SMX-Bind's load balance.

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};

use crate::apps::common::{chunk_range, num_chunks, OpBuilder, CHILD, PARENT};
use crate::dsl_emit::DslWriter;
use crate::layout::{Layout, Region};
use crate::rng::SplitMix64;
use crate::{HostKernel, Scale, Workload};

const SEED: u64 = 0x701_0005;
/// Number of hash partitions of relation S.
const PARTITIONS: u32 = 16;

/// The two JOIN key distributions of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinInput {
    /// Uniformly distributed keys.
    Uniform,
    /// Gaussian-distributed keys (hot partitions).
    Gaussian,
}

impl JoinInput {
    /// Both inputs, in Table II order.
    pub fn all() -> [JoinInput; 2] {
        [JoinInput::Uniform, JoinInput::Gaussian]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinInput::Uniform => "uniform",
            JoinInput::Gaussian => "gaussian",
        }
    }
}

/// Relational-join benchmark.
#[derive(Debug)]
pub struct Join {
    input: JoinInput,
    r_size: u32,
    chunk: u32,
    /// Partition of each R tuple.
    partition_of: Vec<u16>,
    /// S partition boundaries (elements), length `PARTITIONS + 1`.
    s_bounds: Vec<u32>,
    r_keys: Region,
    s_tuples: Region,
    buckets: Region,
    output: Region,
}

impl Join {
    /// R tuples per parent TB.
    pub const CHUNK: u32 = 32;
    /// Threads per probe child TB.
    pub const CHILD_THREADS: u32 = 32;
    /// Bucket elements per (chunk, partition) pair.
    const BUCKET_ELEMS: u64 = 32;
    /// Probe elements one child TB covers.
    const PROBE_ELEMS: u32 = 128;
    /// S elements scanned per R tuple.
    const SCAN_PER_TUPLE: u32 = 32;

    /// Builds the JOIN benchmark for a key distribution at a scale, with
    /// the default input seed.
    pub fn new(input: JoinInput, scale: Scale) -> Self {
        Self::new_seeded(input, scale, 0)
    }

    /// Builds with an explicit input seed (for multi-sample experiments).
    pub fn new_seeded(input: JoinInput, scale: Scale, seed: u64) -> Self {
        let r_size = scale.items() * 2;
        let s_size = scale.items() * 16;
        let mut rng = SplitMix64::new(SEED ^ seed ^ input.name().len() as u64);
        let draw = |rng: &mut SplitMix64| -> u32 {
            match input {
                JoinInput::Uniform => rng.below(u64::from(PARTITIONS)) as u32,
                JoinInput::Gaussian => {
                    let x = rng.normal(f64::from(PARTITIONS) / 2.0, f64::from(PARTITIONS) / 10.0);
                    (x.clamp(0.0, f64::from(PARTITIONS - 1))) as u32
                }
            }
        };
        let partition_of: Vec<u16> = (0..r_size).map(|_| draw(&mut rng) as u16).collect();
        // Partition S with the same distribution.
        let mut s_counts = vec![0u32; PARTITIONS as usize];
        for _ in 0..s_size {
            s_counts[draw(&mut rng) as usize] += 1;
        }
        // Line-align partition boundaries (16 8-byte elements per 128-byte
        // line) so distinct partitions never share a cache line.
        let mut s_bounds = Vec::with_capacity(PARTITIONS as usize + 1);
        s_bounds.push(0u32);
        for c in &s_counts {
            let next = (s_bounds.last().unwrap() + (*c).max(1)).div_ceil(16) * 16;
            s_bounds.push(next);
        }

        let chunks = num_chunks(r_size, Self::CHUNK);
        let mut layout = Layout::new();
        let r_keys = layout.alloc(u64::from(r_size), 8);
        let s_tuples = layout.alloc(u64::from(*s_bounds.last().unwrap()).max(1), 8);
        let buckets =
            layout.alloc(u64::from(chunks) * u64::from(PARTITIONS) * Self::BUCKET_ELEMS, 4);
        let output = layout.alloc(u64::from(r_size), 8);
        Join {
            input,
            r_size,
            chunk: Self::CHUNK,
            partition_of,
            s_bounds,
            r_keys,
            s_tuples,
            buckets,
            output,
        }
    }

    /// Size of relation R.
    pub fn r_size(&self) -> u32 {
        self.r_size
    }

    /// Partitions this chunk's tuples hash into, with tuple counts,
    /// ascending by partition.
    fn chunk_partitions(&self, tb: u32) -> Vec<(u32, u32)> {
        let (a, cnt) = chunk_range(self.r_size, self.chunk, tb);
        let mut parts: Vec<u32> =
            (a..a + cnt).map(|t| u32::from(self.partition_of[t as usize])).collect();
        parts.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::new();
        for p in parts {
            match out.last_mut() {
                Some((last, count)) if *last == p => *count += 1,
                _ => out.push((p, 1)),
            }
        }
        out
    }

    fn partition_len(&self, p: u32) -> u32 {
        self.s_bounds[p as usize + 1] - self.s_bounds[p as usize]
    }

    fn child_req() -> ResourceReq {
        ResourceReq::new(Self::CHILD_THREADS, 24, 256)
    }

    fn bucket_base(&self, tb: u32, partition: u32) -> u64 {
        (u64::from(tb) * u64::from(PARTITIONS) + u64::from(partition)) * Self::BUCKET_ELEMS
    }

    fn parent_program(&self, tb: u32) -> TbProgram {
        let (a, cnt) = chunk_range(self.r_size, self.chunk, tb);
        let mut b = OpBuilder::new(self.chunk);
        if cnt == 0 {
            return b.compute(1).build();
        }
        b.load_slice(self.r_keys, u64::from(a), u64::from(cnt));
        b.compute(8); // hashing
        b.shared();
        // Write each touched partition's bucket for this chunk.
        let parts = self.chunk_partitions(tb);
        for &(p, _) in &parts {
            b.store_slice(self.buckets, self.bucket_base(tb, p), Self::BUCKET_ELEMS);
        }
        b.compute(4);
        // One probe child group per touched partition; each tuple scans
        // `SCAN_PER_TUPLE` S elements, so hot partitions (gaussian keys)
        // get proportionally larger child grids.
        for &(p, count) in &parts {
            let probes = (count * Self::SCAN_PER_TUPLE).div_ceil(Self::PROBE_ELEMS).max(1);
            b.launch(CHILD, encode(tb, p), probes, Self::child_req());
        }
        // The parent continues building the next radix pass while the
        // probes run.
        b.load_slice(self.r_keys, u64::from(a), u64::from(cnt));
        b.compute(10);
        b.store_slice(self.output, u64::from(a), u64::from(cnt));
        b.build()
    }

    fn child_program(&self, param: u64, tb_index: u32) -> TbProgram {
        let (parent_tb, p) = decode(param);
        let mut b = OpBuilder::new(Self::CHILD_THREADS);
        let part_start = u64::from(self.s_bounds[p as usize]);
        let part_len = u64::from(self.partition_len(p));
        if part_len == 0 {
            return b.compute(1).build();
        }
        // Each child TB probes its own window of the partition; the
        // parent's hash offsets the windows so different chunks probing
        // the same partition touch different (but partition-local) lines.
        let window = u64::from(Self::PROBE_ELEMS).min(part_len);
        let probe_start = (u64::from(parent_tb) * 131 + u64::from(tb_index) * window) % part_len;
        let probe_len = window.min(part_len - probe_start);

        // Re-read the parent's bucket for this partition.
        b.load_slice(self.buckets, self.bucket_base(parent_tb, p), Self::BUCKET_ELEMS);
        // Probe this TB's private slice of the S partition.
        let mut offset = 0;
        while offset < probe_len {
            let step = u64::from(Self::CHILD_THREADS).min(probe_len - offset);
            b.load_slice(self.s_tuples, part_start + probe_start + offset, step);
            b.compute(6);
            offset += step;
        }
        // Emit join results for the parent's tuples.
        let (a, cnt) = chunk_range(self.r_size, self.chunk, parent_tb);
        b.store_slice(self.output, u64::from(a), u64::from(cnt.min(Self::CHILD_THREADS)));
        b.build()
    }

    /// The workload-DSL port: each chunk's touched partitions (the
    /// sorted run-length encoding the parent derives from the tuple
    /// hashes) are flattened into `pparts`/`pcounts` indexed through
    /// `poffsets`, and the S partition boundaries become `sbounds`.
    fn dsl_source(&self) -> String {
        let r = self.r_size;
        let chunks = num_chunks(r, self.chunk);
        let per_chunk: Vec<Vec<(u32, u32)>> =
            (0..chunks).map(|tb| self.chunk_partitions(tb)).collect();
        let mut w = DslWriter::new("join", self.input.name());
        w.comment(&format!("{r} R tuples over {PARTITIONS} partitions"));
        w.data("pparts", per_chunk.iter().flatten().map(|&(p, _)| u64::from(p)));
        w.data("pcounts", per_chunk.iter().flatten().map(|&(_, c)| u64::from(c)));
        let offsets = per_chunk.iter().scan(0u64, |acc, parts| {
            let at = *acc;
            *acc += parts.len() as u64;
            Some(at)
        });
        let total: u64 = per_chunk.iter().map(|parts| parts.len() as u64).sum();
        w.data("poffsets", offsets.chain([total]));
        w.data("sbounds", self.s_bounds.iter().map(|&b| u64::from(b)));
        w.region("r_keys", u64::from(r), 8);
        w.region("s_tuples", u64::from(*self.s_bounds.last().unwrap_or(&0)).max(1), 8);
        w.region("buckets", u64::from(chunks) * u64::from(PARTITIONS) * Self::BUCKET_ELEMS, 4);
        w.region("output", u64::from(r), 8);
        w.host(0, 0, chunks, self.chunk, 24, 512);
        w.kernel(
            0,
            "join-build",
            self.chunk,
            &format!(
                "    let a = tb * 32;
    let cnt = min(32, {r} - a);
    if cnt == 0 {{
        compute 1;
        return;
    }}
    load_slice r_keys, a, cnt;
    compute 8;
    shared;
    for i in poffsets[tb] .. poffsets[tb + 1] {{
        store_slice buckets, (tb * 16 + pparts[i]) * 32, 32;
    }}
    compute 4;
    for i in poffsets[tb] .. poffsets[tb + 1] {{
        launch 1, tb * 65536 + pparts[i], max(div_ceil(pcounts[i] * 32, 128), 1), 32, 24, 256;
    }}
    load_slice r_keys, a, cnt;
    compute 10;
    store_slice output, a, cnt;
"
            ),
        );
        w.kernel(
            1,
            "join-probe",
            Self::CHILD_THREADS,
            &format!(
                "    let ptb = param / 65536;
    let p = param % 65536;
    let ps = sbounds[p];
    let pl = sbounds[p + 1] - ps;
    if pl == 0 {{
        compute 1;
        return;
    }}
    let window = min(128, pl);
    let pstart = (ptb * 131 + tb * window) % pl;
    let plen = min(window, pl - pstart);
    load_slice buckets, (ptb * 16 + p) * 32, 32;
    let offset = 0;
    while offset < plen {{
        let step = min(32, plen - offset);
        load_slice s_tuples, ps + pstart + offset, step;
        compute 6;
        offset = offset + step;
    }}
    let a = ptb * 32;
    let ccnt = min(32, {r} - a);
    store_slice output, a, min(ccnt, 32);
"
            ),
        );
        w.finish()
    }
}

fn encode(tb: u32, partition: u32) -> u64 {
    u64::from(tb) << 16 | u64::from(partition)
}

fn decode(param: u64) -> (u32, u32) {
    ((param >> 16) as u32, (param & 0xFFFF) as u32)
}

impl ProgramSource for Join {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => self.parent_program(tb_index),
            _ => self.child_program(param, tb_index),
        }
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        match kind {
            PARENT => "join-build".to_string(),
            _ => "join-probe".to_string(),
        }
    }
}

impl Workload for Join {
    fn name(&self) -> &str {
        "join"
    }

    fn input(&self) -> String {
        self.input.name().to_string()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        vec![HostKernel {
            kind: PARENT,
            param: 0,
            num_tbs: num_chunks(self.r_size, self.chunk),
            req: ResourceReq::new(self.chunk, 24, 512),
        }]
    }

    fn dsl_text(&self) -> Option<String> {
        Some(self.dsl_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        assert_eq!(decode(encode(500, 63)), (500, 63));
    }

    #[test]
    fn gaussian_partitions_are_skewed() {
        let g = Join::new(JoinInput::Gaussian, Scale::Small);
        let u = Join::new(JoinInput::Uniform, Scale::Small);
        let max_part = |j: &Join| (0..PARTITIONS).map(|p| j.partition_len(p)).max().unwrap();
        assert!(
            max_part(&g) > 2 * max_part(&u),
            "gaussian max partition {} should dwarf uniform {}",
            max_part(&g),
            max_part(&u)
        );
    }

    #[test]
    fn children_probe_disjoint_s_segments_across_partitions() {
        let j = Join::new(JoinInput::Uniform, Scale::Tiny);
        let parent = j.tb_program(PARENT, 0, 0);
        let launches: Vec<_> = parent.launches().cloned().collect();
        assert!(launches.len() >= 2);
        let s_lines = |param: u64| -> std::collections::HashSet<u64> {
            j.tb_program(CHILD, param, 0)
                .global_mem_ops()
                .filter(|m| !m.is_store)
                .flat_map(|m| m.pattern.tb_addrs(Join::CHILD_THREADS))
                .filter(|&a| j.s_tuples.contains(a))
                .map(|a| a >> 7)
                .collect()
        };
        let l0 = s_lines(launches[0].param);
        let l1 = s_lines(launches[1].param);
        assert!(l0.is_disjoint(&l1), "probe segments must not overlap");
    }

    #[test]
    fn child_rereads_parent_bucket() {
        let j = Join::new(JoinInput::Uniform, Scale::Tiny);
        let parent = j.tb_program(PARENT, 0, 0);
        let launch = parent.launches().next().unwrap().clone();
        let bucket_lines = |prog: &TbProgram, threads: u32| -> std::collections::HashSet<u64> {
            prog.global_mem_ops()
                .flat_map(|m| m.pattern.tb_addrs(threads))
                .filter(|&a| j.buckets.contains(a))
                .map(|a| a >> 7)
                .collect()
        };
        let shared = bucket_lines(&j.tb_program(CHILD, launch.param, 0), Join::CHILD_THREADS)
            .intersection(&bucket_lines(&parent, Join::CHUNK))
            .count();
        assert!(shared > 0);
    }

    #[test]
    fn probe_grid_scales_with_partition_size() {
        let j = Join::new(JoinInput::Gaussian, Scale::Tiny);
        let mut grids = Vec::new();
        for tb in 0..j.host_kernels()[0].num_tbs {
            for l in j.tb_program(PARENT, 0, tb).launches() {
                grids.push(l.num_tbs);
            }
        }
        let max = *grids.iter().max().unwrap();
        let min = *grids.iter().min().unwrap();
        assert!(max > min, "gaussian probes should have skewed grids");
    }
}
