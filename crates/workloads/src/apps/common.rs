//! Shared helpers for building TB programs.

use std::sync::Arc;

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{AddrPattern, KernelKindId, LaunchSpec, MemOp, TbOp, TbProgram};
use gpu_sim::types::Addr;

use crate::layout::Region;

/// Kernel kind of the host-launched parent sweep (workload-local).
pub const PARENT: KernelKindId = KernelKindId(0);
/// Kernel kind of first-level device-launched children.
pub const CHILD: KernelKindId = KernelKindId(1);
/// Kernel kind of nested (second-level) children.
pub const CHILD2: KernelKindId = KernelKindId(2);

/// Builds a [`TbProgram`] op by op for a TB of a known thread count,
/// taking care of partial (tail) accesses so generated addresses never
/// leave their region.
#[derive(Debug)]
pub struct OpBuilder {
    threads: u32,
    ops: Vec<TbOp>,
}

impl OpBuilder {
    /// Starts a program for a TB with `threads` threads.
    pub fn new(threads: u32) -> Self {
        OpBuilder { threads, ops: Vec::with_capacity(16) }
    }

    /// Finishes the program, leaving the builder empty for reuse.
    pub fn build(&mut self) -> TbProgram {
        TbProgram::new(std::mem::take(&mut self.ops))
    }

    /// ALU work for every warp.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.ops.push(TbOp::Compute(cycles));
        self
    }

    /// Divergent ALU work: only `active` lanes per warp are live (models
    /// the issue-slot cost of control divergence).
    pub fn compute_masked(&mut self, cycles: u32, active: u32) -> &mut Self {
        self.ops.push(TbOp::ComputeMasked { cycles, active });
        self
    }

    /// TB-wide barrier.
    pub fn sync(&mut self) -> &mut Self {
        self.ops.push(TbOp::Sync);
        self
    }

    fn slice_pattern(&self, region: Region, start: u64, count: u64) -> Option<AddrPattern> {
        let avail = region.len().saturating_sub(start);
        let n = count.min(avail);
        if n == 0 {
            return None;
        }
        if n >= u64::from(self.threads) {
            Some(AddrPattern::Strided { base: region.addr(start), stride: region.elem_bytes() })
        } else {
            // `Range` is `TrustedLen`, so this collects straight into the
            // `Arc` slice with a single allocation.
            Some(AddrPattern::Gather((0..n).map(|i| region.addr(start + i)).collect()))
        }
    }

    /// Coalesced load of elements `start..start+count` of `region`
    /// (clamped to the region; skipped when empty).
    pub fn load_slice(&mut self, region: Region, start: u64, count: u64) -> &mut Self {
        if let Some(p) = self.slice_pattern(region, start, count) {
            self.ops.push(TbOp::Mem(MemOp::load(p)));
        }
        self
    }

    /// Coalesced store of elements `start..start+count` of `region`.
    pub fn store_slice(&mut self, region: Region, start: u64, count: u64) -> &mut Self {
        if let Some(p) = self.slice_pattern(region, start, count) {
            self.ops.push(TbOp::Mem(MemOp::store(p)));
        }
        self
    }

    /// All threads read element `index` of `region`.
    pub fn load_bcast(&mut self, region: Region, index: u64) -> &mut Self {
        self.ops.push(TbOp::Mem(MemOp::load(AddrPattern::Broadcast(region.addr(index)))));
        self
    }

    /// All threads write element `index` of `region`.
    pub fn store_bcast(&mut self, region: Region, index: u64) -> &mut Self {
        self.ops.push(TbOp::Mem(MemOp::store(AddrPattern::Broadcast(region.addr(index)))));
        self
    }

    /// Irregular per-thread load of explicit addresses (skipped when
    /// empty). Accepts a `Vec` or a pre-built `Arc` slice — passing
    /// `Arc` clones lets one address list feed several ops for the cost
    /// of a refcount bump.
    pub fn gather(&mut self, addrs: impl Into<Arc<[Addr]>>) -> &mut Self {
        let addrs: Arc<[Addr]> = addrs.into();
        if !addrs.is_empty() {
            self.ops.push(TbOp::Mem(MemOp::load(AddrPattern::Gather(addrs))));
        }
        self
    }

    /// Irregular per-thread store of explicit addresses.
    pub fn scatter(&mut self, addrs: impl Into<Arc<[Addr]>>) -> &mut Self {
        let addrs: Arc<[Addr]> = addrs.into();
        if !addrs.is_empty() {
            self.ops.push(TbOp::Mem(MemOp::store(AddrPattern::Gather(addrs))));
        }
        self
    }

    /// Appends an already-built op verbatim — the escape hatch for
    /// callers that compute addresses themselves (e.g. the workload-DSL
    /// back ends, whose `addr()` builtin must stay total on arbitrary
    /// indices instead of asserting like [`Region::addr`]).
    pub fn push_raw(&mut self, op: TbOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Shared-memory staging access.
    pub fn shared(&mut self) -> &mut Self {
        self.ops.push(TbOp::Mem(MemOp::shared(AddrPattern::Broadcast(0))));
        self
    }

    /// Device-side launch (issued once, by warp 0).
    pub fn launch(
        &mut self,
        kind: KernelKindId,
        param: u64,
        num_tbs: u32,
        req: ResourceReq,
    ) -> &mut Self {
        self.ops.push(TbOp::Launch(LaunchSpec { kind, param, num_tbs, req }));
        self
    }
}

/// Splits `total` items into chunks of `chunk`, returning the number of
/// chunks (= TBs).
pub fn num_chunks(total: u32, chunk: u32) -> u32 {
    total.div_ceil(chunk).max(1)
}

/// The `(start, count)` item range of chunk `index`.
pub fn chunk_range(total: u32, chunk: u32, index: u32) -> (u32, u32) {
    let start = index * chunk;
    let count = chunk.min(total.saturating_sub(start));
    (start, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use gpu_sim::program::MemSpace;

    fn region(len: u64) -> Region {
        Layout::new().alloc(len, 4)
    }

    #[test]
    fn full_slice_uses_strided() {
        let r = region(100);
        let mut b = OpBuilder::new(32);
        b.load_slice(r, 0, 32);
        let prog = b.build();
        match prog.ops() {
            [TbOp::Mem(m)] => assert!(matches!(m.pattern, AddrPattern::Strided { .. })),
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn partial_slice_uses_gather() {
        let r = region(100);
        let mut b = OpBuilder::new(32);
        b.load_slice(r, 90, 32); // only 10 available
        let prog = b.build();
        match prog.ops() {
            [TbOp::Mem(m)] => match &m.pattern {
                AddrPattern::Gather(a) => assert_eq!(a.len(), 10),
                p => panic!("expected gather, got {p:?}"),
            },
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn empty_slice_is_skipped() {
        let r = region(10);
        let mut b = OpBuilder::new(32);
        b.load_slice(r, 10, 5).store_slice(r, 100, 5).gather(Vec::new());
        assert!(b.build().is_empty());
    }

    #[test]
    fn slice_addresses_stay_in_region() {
        let r = region(50);
        let mut b = OpBuilder::new(64);
        b.load_slice(r, 20, 64);
        let prog = b.build();
        let TbOp::Mem(m) = &prog.ops()[0] else { panic!() };
        for a in m.pattern.tb_addrs(64) {
            assert!(r.contains(a), "address {a} escapes region");
        }
    }

    #[test]
    fn builder_chains_all_op_kinds() {
        let r = region(64);
        let mut b = OpBuilder::new(32);
        b.compute(4)
            .load_slice(r, 0, 32)
            .store_slice(r, 0, 32)
            .load_bcast(r, 5)
            .store_bcast(r, 5)
            .gather(vec![r.addr(1)])
            .scatter(vec![r.addr(2)])
            .shared()
            .sync()
            .launch(CHILD, 7, 2, ResourceReq::new(32, 8, 0));
        let prog = b.build();
        assert_eq!(prog.len(), 10);
        assert_eq!(prog.launches().count(), 1);
        let shared_ops = prog
            .ops()
            .iter()
            .filter(|op| matches!(op, TbOp::Mem(m) if m.space == MemSpace::Shared))
            .count();
        assert_eq!(shared_ops, 1);
    }

    #[test]
    fn chunk_math() {
        assert_eq!(num_chunks(100, 32), 4);
        assert_eq!(num_chunks(0, 32), 1);
        assert_eq!(chunk_range(100, 32, 0), (0, 32));
        assert_eq!(chunk_range(100, 32, 3), (96, 4));
        assert_eq!(chunk_range(100, 32, 4), (128, 0));
    }
}
