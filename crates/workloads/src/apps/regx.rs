//! Regular-expression matching (REGX) over packet payloads.
//!
//! The parent kernel scans packet headers; packets whose header matches
//! the filter launch a child TB that runs the NFA over the payload. All
//! children consult the same transition table, so child-sibling locality
//! is high regardless of which packets matched — while payloads are
//! private. The two inputs differ in match rate and payload length,
//! mirroring the DARPA network packets vs random string collection of
//! Table II.

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};
use gpu_sim::types::Addr;

use crate::apps::common::{chunk_range, num_chunks, OpBuilder, CHILD, PARENT};
use crate::dsl_emit::DslWriter;
use crate::layout::{Layout, Region};
use crate::rng::SplitMix64;
use crate::{HostKernel, Scale, Workload};

const SEED: u64 = 0x8E68_0003;

/// The two REGX inputs of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegxInput {
    /// DARPA-like network packets: lower match rate, longer payloads,
    /// matches clustered in bursts (attack traces).
    Darpa,
    /// Random string collection: higher match rate, shorter strings,
    /// matches spread uniformly.
    Strings,
}

impl RegxInput {
    /// Both inputs, in Table II order.
    pub fn all() -> [RegxInput; 2] {
        [RegxInput::Darpa, RegxInput::Strings]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RegxInput::Darpa => "darpa",
            RegxInput::Strings => "strings",
        }
    }

    fn match_rate(self) -> f64 {
        match self {
            RegxInput::Darpa => 0.18,
            RegxInput::Strings => 0.30,
        }
    }

    fn payload_rounds(self) -> u32 {
        match self {
            RegxInput::Darpa => 4,
            RegxInput::Strings => 2,
        }
    }
}

/// Regular-expression matching benchmark.
#[derive(Debug)]
pub struct Regx {
    input: RegxInput,
    num_packets: u32,
    chunk: u32,
    /// Matched packet ids, grouped by parent TB (precomputed filter
    /// results).
    matches_by_tb: Vec<Vec<u32>>,
    headers: Region,
    payloads: Region,
    nfa_table: Region,
    results: Region,
}

impl Regx {
    /// Packets per parent TB.
    pub const CHUNK: u32 = 32;
    /// Threads per child TB (one TB matches one packet).
    pub const CHILD_THREADS: u32 = 32;
    /// Payload elements (4B) per packet.
    const PAYLOAD_ELEMS: u64 = 64;
    /// NFA transition-table entries.
    const TABLE_ENTRIES: u64 = 1024;

    /// Builds the REGX benchmark for an input at a scale, with the
    /// default input seed.
    pub fn new(input: RegxInput, scale: Scale) -> Self {
        Self::new_seeded(input, scale, 0)
    }

    /// Builds with an explicit input seed (for multi-sample experiments).
    pub fn new_seeded(input: RegxInput, scale: Scale, seed: u64) -> Self {
        let seed = SEED ^ seed;
        let num_packets = scale.items() * 4;
        let chunks = num_chunks(num_packets, Self::CHUNK);
        let mut layout = Layout::new();
        let headers = layout.alloc(u64::from(num_packets), 16);
        let payloads = layout.alloc(u64::from(num_packets) * Self::PAYLOAD_ELEMS, 4);
        let nfa_table = layout.alloc(Self::TABLE_ENTRIES, 8);
        let results = layout.alloc(u64::from(num_packets), 4);

        let mut matches_by_tb = vec![Vec::new(); chunks as usize];
        for p in 0..num_packets {
            let mut rng = SplitMix64::stream(seed ^ input.name().len() as u64, u64::from(p));
            let matched = match input {
                // Bursty: whole 16-packet windows match together.
                RegxInput::Darpa => {
                    let window = p / 16;
                    SplitMix64::stream(seed ^ 0xDA, u64::from(window)).unit_f64()
                        < input.match_rate()
                }
                RegxInput::Strings => rng.unit_f64() < input.match_rate(),
            };
            if matched {
                matches_by_tb[(p / Self::CHUNK) as usize].push(p);
            }
        }
        Regx {
            input,
            num_packets,
            chunk: Self::CHUNK,
            matches_by_tb,
            headers,
            payloads,
            nfa_table,
            results,
        }
    }

    /// Number of packets.
    pub fn num_packets(&self) -> u32 {
        self.num_packets
    }

    /// Total matched packets.
    pub fn total_matches(&self) -> usize {
        self.matches_by_tb.iter().map(Vec::len).sum()
    }

    fn child_req() -> ResourceReq {
        ResourceReq::new(Self::CHILD_THREADS, 22, 256)
    }

    fn parent_program(&self, tb: u32) -> TbProgram {
        let (a, cnt) = chunk_range(self.num_packets, self.chunk, tb);
        let mut b = OpBuilder::new(self.chunk);
        if cnt == 0 {
            return b.compute(1).build();
        }
        // Scan headers (16B records → strided over several lines).
        b.load_slice(self.headers, u64::from(a), u64::from(cnt));
        b.compute(8); // header filter
        b.store_slice(self.results, u64::from(a), u64::from(cnt));
        // One child TB group covers all of this chunk's matched packets;
        // the parent keeps prefiltering the unmatched payload heads.
        let matched = &self.matches_by_tb[tb as usize];
        if !matched.is_empty() {
            b.launch(CHILD, u64::from(tb), matched.len() as u32, Self::child_req());
        }
        let peek: Vec<gpu_sim::types::Addr> =
            (a..a + cnt).map(|p| self.payloads.addr(u64::from(p) * Self::PAYLOAD_ELEMS)).collect();
        b.gather(peek);
        b.compute(10);
        b.store_slice(self.results, u64::from(a), u64::from(cnt));
        b.build()
    }

    fn child_program(&self, parent_tb: u64, tb_index: u32) -> TbProgram {
        let matched = &self.matches_by_tb[parent_tb as usize];
        let mut b = OpBuilder::new(Self::CHILD_THREADS);
        let Some(&packet) = matched.get(tb_index as usize) else {
            return b.compute(1).build();
        };
        // Re-read the header the parent just touched.
        b.load_bcast(self.headers, u64::from(packet));
        // Run the NFA over the payload: per round, a payload slice plus
        // transition-table lookups (shared by every child in the run).
        let mut rng = SplitMix64::stream(SEED ^ 0x7AB1E, u64::from(packet));
        let payload_base = u64::from(packet) * Self::PAYLOAD_ELEMS;
        let rounds = self.input.payload_rounds();
        for round in 0..u64::from(rounds) {
            let slice = Self::PAYLOAD_ELEMS / u64::from(rounds);
            b.load_slice(self.payloads, payload_base + round * slice, slice);
            let table_addrs: Vec<Addr> = (0..Self::CHILD_THREADS)
                .map(|_| self.nfa_table.addr(rng.below(Self::TABLE_ENTRIES)))
                .collect();
            b.gather(table_addrs);
            // Lanes whose candidate match failed drop out round by round
            // — NFA matching is divergent by nature.
            let active = (Self::CHILD_THREADS >> round.min(4) as u32).max(4);
            b.compute_masked(6, active);
        }
        b.store_bcast(self.results, u64::from(packet));
        b.build()
    }

    /// The workload-DSL port. The filter results become per-chunk match
    /// counts/offsets plus a flattened match list, and the child's NFA
    /// transition-table lookups — drawn at program-generation time from
    /// a per-packet RNG stream — are replayed into the `tbl` array in
    /// global match order.
    fn dsl_source(&self) -> String {
        let npk = self.num_packets;
        let rounds = u64::from(self.input.payload_rounds());
        let slice = Self::PAYLOAD_ELEMS / rounds;
        let mut w = DslWriter::new("regx", self.input.name());
        w.comment(&format!(
            "{npk} packets, {} matched; {rounds} NFA rounds per match",
            self.total_matches()
        ));
        w.data("mcount", self.matches_by_tb.iter().map(|m| m.len() as u64));
        let offsets = self.matches_by_tb.iter().scan(0u64, |acc, m| {
            let at = *acc;
            *acc += m.len() as u64;
            Some(at)
        });
        w.data("moffsets", offsets.chain([self.total_matches() as u64]));
        w.data("matches", self.matches_by_tb.iter().flatten().map(|&p| u64::from(p)));
        w.data(
            "tbl",
            self.matches_by_tb.iter().flatten().flat_map(|&packet| {
                let mut rng = SplitMix64::stream(SEED ^ 0x7AB1E, u64::from(packet));
                (0..rounds * u64::from(Self::CHILD_THREADS))
                    .map(move |_| rng.below(Self::TABLE_ENTRIES))
            }),
        );
        w.region("headers", u64::from(npk), 16);
        w.region("payloads", u64::from(npk) * Self::PAYLOAD_ELEMS, 4);
        w.region("nfa_table", Self::TABLE_ENTRIES, 8);
        w.region("results", u64::from(npk), 4);
        w.host(0, 0, num_chunks(npk, self.chunk), self.chunk, 24, 256);
        w.kernel(
            0,
            "regx-filter",
            self.chunk,
            &format!(
                "    let a = tb * 32;
    let cnt = min(32, {npk} - a);
    if cnt == 0 {{
        compute 1;
        return;
    }}
    load_slice headers, a, cnt;
    compute 8;
    store_slice results, a, cnt;
    if mcount[tb] > 0 {{
        launch 1, tb, mcount[tb], 32, 22, 256;
    }}
    gather {{
        for p in a .. a + cnt {{
            yield addr(payloads, p * 64);
        }}
    }}
    compute 10;
    store_slice results, a, cnt;
"
            ),
        );
        w.kernel(
            1,
            "regx-nfa",
            Self::CHILD_THREADS,
            &format!(
                "    if tb >= mcount[param] {{
        compute 1;
        return;
    }}
    let mi = moffsets[param] + tb;
    let packet = matches[mi];
    load_bcast headers, packet;
    for round in 0 .. {rounds} {{
        load_slice payloads, packet * 64 + round * {slice}, {slice};
        gather {{
            for i in 0 .. 32 {{
                yield addr(nfa_table, tbl[(mi * {rounds} + round) * 32 + i]);
            }}
        }}
        compute_masked 6, max(32 >> round, 4);
    }}
    store_bcast results, packet;
"
            ),
        );
        w.finish()
    }
}

impl ProgramSource for Regx {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => self.parent_program(tb_index),
            _ => self.child_program(param, tb_index),
        }
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        match kind {
            PARENT => "regx-filter".to_string(),
            _ => "regx-nfa".to_string(),
        }
    }
}

impl Workload for Regx {
    fn name(&self) -> &str {
        "regx"
    }

    fn input(&self) -> String {
        self.input.name().to_string()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        vec![HostKernel {
            kind: PARENT,
            param: 0,
            num_tbs: num_chunks(self.num_packets, self.chunk),
            req: ResourceReq::new(self.chunk, 24, 256),
        }]
    }

    fn dsl_text(&self) -> Option<String> {
        Some(self.dsl_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_rates_differ_by_input() {
        let d = Regx::new(RegxInput::Darpa, Scale::Small);
        let s = Regx::new(RegxInput::Strings, Scale::Small);
        let dr = d.total_matches() as f64 / f64::from(d.num_packets());
        let sr = s.total_matches() as f64 / f64::from(s.num_packets());
        assert!(dr < sr, "darpa rate {dr} should be below strings rate {sr}");
        assert!(dr > 0.05 && sr < 0.5);
    }

    #[test]
    fn child_grid_matches_filter_results() {
        let r = Regx::new(RegxInput::Strings, Scale::Tiny);
        for tb in 0..r.host_kernels()[0].num_tbs {
            let prog = r.tb_program(PARENT, 0, tb);
            let expected = r.matches_by_tb[tb as usize].len() as u32;
            let first = prog.launches().next().cloned();
            match first {
                Some(l) => assert_eq!(l.num_tbs, expected),
                None => assert_eq!(expected, 0),
            }
        }
    }

    #[test]
    fn darpa_children_run_longer_nfa() {
        let d = Regx::new(RegxInput::Darpa, Scale::Tiny);
        let s = Regx::new(RegxInput::Strings, Scale::Tiny);
        let first_match = |r: &Regx| {
            (0..r.matches_by_tb.len()).find(|&tb| !r.matches_by_tb[tb].is_empty()).unwrap() as u64
        };
        let dp = d.tb_program(CHILD, first_match(&d), 0);
        let sp = s.tb_program(CHILD, first_match(&s), 0);
        assert!(dp.len() > sp.len());
    }

    #[test]
    fn siblings_share_the_nfa_table() {
        let r = Regx::new(RegxInput::Strings, Scale::Tiny);
        let tb = (0..r.matches_by_tb.len())
            .find(|&tb| r.matches_by_tb[tb].len() >= 2)
            .expect("a chunk with two matches") as u64;
        let table_lines = |child: u32| -> std::collections::HashSet<u64> {
            r.tb_program(CHILD, tb, child)
                .global_mem_ops()
                .flat_map(|m| m.pattern.tb_addrs(Regx::CHILD_THREADS))
                .filter(|&a| r.nfa_table.contains(a))
                .map(|a| a >> 7)
                .collect()
        };
        let shared = table_lines(0).intersection(&table_lines(1)).count();
        assert!(shared > 0, "siblings must share transition-table lines");
    }

    #[test]
    fn out_of_range_child_is_trivial() {
        let r = Regx::new(RegxInput::Darpa, Scale::Tiny);
        assert_eq!(r.tb_program(CHILD, 0, 10_000).len(), 1);
    }
}
