//! Product recommendation (PRE) over MovieLens-like ratings.
//!
//! The parent kernel sweeps users; active users (many ratings) launch a
//! child TB group that computes similarities against the rated items'
//! feature vectors. Item popularity follows a heavy-tailed (Zipf-like)
//! distribution, so sibling children keep hitting the same popular-item
//! feature lines — high child-sibling locality, as the paper observes
//! for PRE.

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};
use gpu_sim::types::Addr;

use crate::apps::common::{chunk_range, num_chunks, OpBuilder, CHILD, PARENT};
use crate::dsl_emit::DslWriter;
use crate::layout::{Layout, Region};
use crate::rng::SplitMix64;
use crate::{HostKernel, Scale, Workload};

const SEED: u64 = 0x93E_0004;

/// Product-recommendation benchmark.
#[derive(Debug)]
pub struct Pre {
    num_users: u32,
    num_items: u32,
    chunk: u32,
    /// Ratings per user: offsets into `rated_items`.
    offsets: Vec<u32>,
    rated: Vec<u32>,
    user_offsets: Region,
    rated_items: Region,
    /// Item feature vectors: 64 bytes each.
    features: Region,
    output: Region,
    workbuf: Region,
}

impl Pre {
    /// Users per parent TB.
    pub const CHUNK: u32 = 32;
    /// Threads per child TB.
    pub const CHILD_THREADS: u32 = 32;
    /// Ratings count above which a user gets a child group.
    pub const ACTIVE_THRESHOLD: u32 = 16;

    /// Builds the PRE benchmark at a scale, with the default input seed.
    pub fn new(scale: Scale) -> Self {
        Self::new_seeded(scale, 0)
    }

    /// Builds with an explicit input seed (for multi-sample experiments).
    pub fn new_seeded(scale: Scale, seed: u64) -> Self {
        let seed = SEED ^ seed;
        let num_users = scale.items() * 3;
        let num_items = scale.items();
        let mut offsets = Vec::with_capacity(num_users as usize + 1);
        let mut rated = Vec::new();
        offsets.push(0);
        for u in 0..num_users {
            let mut rng = SplitMix64::stream(seed, u64::from(u));
            // Heavy-tailed activity: most users rate a few items, some
            // rate dozens.
            let count = if rng.unit_f64() < 0.75 {
                2 + rng.below(8) as u32
            } else {
                Self::ACTIVE_THRESHOLD + rng.below(48) as u32
            };
            for _ in 0..count {
                // Zipf-ish popularity: quadratic skew toward low item ids.
                let x = rng.unit_f64();
                let item = ((x * x) * f64::from(num_items)) as u32;
                rated.push(item.min(num_items - 1));
            }
            offsets.push(rated.len() as u32);
        }
        let mut layout = Layout::new();
        let user_offsets = layout.alloc(u64::from(num_users) + 1, 4);
        let rated_items = layout.alloc(rated.len().max(1) as u64, 4);
        let features = layout.alloc(u64::from(num_items), 64);
        let output = layout.alloc(u64::from(num_users), 4);
        let workbuf = layout.alloc(u64::from(num_users), 4);
        Pre {
            num_users,
            num_items,
            chunk: Self::CHUNK,
            offsets,
            rated,
            user_offsets,
            rated_items,
            features,
            output,
            workbuf,
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of items.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    fn ratings_of(&self, user: u32) -> &[u32] {
        let lo = self.offsets[user as usize] as usize;
        let hi = self.offsets[user as usize + 1] as usize;
        &self.rated[lo..hi]
    }

    fn child_req() -> ResourceReq {
        ResourceReq::new(Self::CHILD_THREADS, 26, 512)
    }

    fn parent_program(&self, tb: u32) -> TbProgram {
        let (a, cnt) = chunk_range(self.num_users, self.chunk, tb);
        let mut b = OpBuilder::new(self.chunk);
        if cnt == 0 {
            return b.compute(1).build();
        }
        b.load_slice(self.user_offsets, u64::from(a), u64::from(cnt) + 1);
        // Peek each user's first rated item id and its feature line.
        let first_items: Vec<Addr> = (a..a + cnt)
            .filter(|&u| !self.ratings_of(u).is_empty())
            .map(|u| self.rated_items.addr(u64::from(self.offsets[u as usize])))
            .collect();
        b.gather(first_items);
        let first_features: Vec<Addr> = (a..a + cnt)
            .filter(|&u| !self.ratings_of(u).is_empty())
            .map(|u| self.features.addr(u64::from(self.ratings_of(u)[0])))
            .collect();
        b.gather(first_features);
        b.compute(10);
        b.store_slice(self.workbuf, u64::from(a), u64::from(cnt));
        // Launch the active users' similarity children, then handle the
        // casual users inline while the children run.
        for u in a..a + cnt {
            let count = self.ratings_of(u).len() as u32;
            if count >= Self::ACTIVE_THRESHOLD {
                b.launch(
                    CHILD,
                    u64::from(u),
                    count.div_ceil(Self::CHILD_THREADS),
                    Self::child_req(),
                );
            }
        }
        for round in 1..3usize {
            let addrs: Vec<Addr> = (a..a + cnt)
                .filter(|&u| {
                    let r = self.ratings_of(u);
                    (r.len() as u32) < Self::ACTIVE_THRESHOLD && r.len() > round
                })
                .map(|u| self.features.addr(u64::from(self.ratings_of(u)[round])))
                .collect();
            b.gather(addrs);
            b.compute(8);
        }
        b.store_slice(self.output, u64::from(a), u64::from(cnt));
        b.build()
    }

    fn child_program(&self, user: u64, tb_index: u32) -> TbProgram {
        let u = user as u32;
        let ratings = self.ratings_of(u);
        let start = (tb_index * Self::CHILD_THREADS) as usize;
        let mut b = OpBuilder::new(Self::CHILD_THREADS);
        if start >= ratings.len() {
            return b.compute(1).build();
        }
        let slice = &ratings[start..(start + Self::CHILD_THREADS as usize).min(ratings.len())];

        // Re-read the user header and the parent's work buffer.
        b.load_bcast(self.user_offsets, u64::from(u));
        let parent_chunk = u64::from((u / self.chunk) * self.chunk);
        b.load_slice(self.workbuf, parent_chunk, u64::from(Self::CHILD_THREADS));

        // Load this TB's slice of rated item ids (coalesced).
        b.load_slice(
            self.rated_items,
            u64::from(self.offsets[u as usize]) + start as u64,
            slice.len() as u64,
        );
        // Fetch the feature vectors: popular items repeat across
        // siblings. Two halves of the 64-byte vector.
        for half in 0..2u64 {
            let addrs: Vec<Addr> =
                slice.iter().map(|&item| self.features.addr(u64::from(item)) + half * 32).collect();
            b.gather(addrs);
            b.compute(8); // dot-product accumulation
        }
        b.shared();
        b.compute(10);
        b.store_bcast(self.output, u64::from(u));
        b.build()
    }

    /// The workload-DSL port: the ratings CSR (`offsets` + `rated`)
    /// becomes two `data` arrays and every activity test recomputes the
    /// per-user rating count from them.
    fn dsl_source(&self) -> String {
        let users = self.num_users;
        let mut w = DslWriter::new("pre", "");
        w.comment(&format!(
            "{users} users, {} items, {} ratings (CSR as data arrays)",
            self.num_items,
            self.rated.len()
        ));
        w.data("offsets", self.offsets.iter().map(|&o| u64::from(o)));
        w.data("rated", self.rated.iter().map(|&r| u64::from(r)));
        w.region("user_offsets", u64::from(users) + 1, 4);
        w.region("rated_items", self.rated.len().max(1) as u64, 4);
        w.region("features", u64::from(self.num_items), 64);
        w.region("output", u64::from(users), 4);
        w.region("workbuf", u64::from(users), 4);
        w.host(0, 0, num_chunks(users, self.chunk), self.chunk, 26, 512);
        w.kernel(
            0,
            "pre-sweep",
            self.chunk,
            &format!(
                "    let a = tb * 32;
    let cnt = min(32, {users} - a);
    if cnt == 0 {{
        compute 1;
        return;
    }}
    load_slice user_offsets, a, cnt + 1;
    gather {{
        for u in a .. a + cnt {{
            if offsets[u + 1] - offsets[u] > 0 {{
                yield addr(rated_items, offsets[u]);
            }}
        }}
    }}
    gather {{
        for u in a .. a + cnt {{
            if offsets[u + 1] - offsets[u] > 0 {{
                yield addr(features, rated[offsets[u]]);
            }}
        }}
    }}
    compute 10;
    store_slice workbuf, a, cnt;
    for u in a .. a + cnt {{
        let c = offsets[u + 1] - offsets[u];
        if c >= 16 {{
            launch 1, u, div_ceil(c, 32), 32, 26, 512;
        }}
    }}
    for round in 1 .. 3 {{
        gather {{
            for u in a .. a + cnt {{
                let c = offsets[u + 1] - offsets[u];
                if c < 16 && c > round {{
                    yield addr(features, rated[offsets[u] + round]);
                }}
            }}
        }}
        compute 8;
    }}
    store_slice output, a, cnt;
"
            ),
        );
        w.kernel(
            1,
            "pre-similarity",
            Self::CHILD_THREADS,
            "    let lo = offsets[param];
    let total = offsets[param + 1] - lo;
    let start = tb * 32;
    if start >= total {
        compute 1;
        return;
    }
    let cnt = min(32, total - start);
    load_bcast user_offsets, param;
    load_slice workbuf, (param / 32) * 32, 32;
    load_slice rated_items, lo + start, cnt;
    for half in 0 .. 2 {
        gather {
            for i in 0 .. cnt {
                yield addr(features, rated[lo + start + i]) + half * 32;
            }
        }
        compute 8;
    }
    shared;
    compute 10;
    store_bcast output, param;
",
        );
        w.finish()
    }
}

impl ProgramSource for Pre {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        match kind {
            PARENT => self.parent_program(tb_index),
            _ => self.child_program(param, tb_index),
        }
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        match kind {
            PARENT => "pre-sweep".to_string(),
            _ => "pre-similarity".to_string(),
        }
    }
}

impl Workload for Pre {
    fn name(&self) -> &str {
        "pre"
    }

    fn input(&self) -> String {
        String::new()
    }

    fn host_kernels(&self) -> Vec<HostKernel> {
        vec![HostKernel {
            kind: PARENT,
            param: 0,
            num_tbs: num_chunks(self.num_users, self.chunk),
            req: ResourceReq::new(self.chunk, 26, 512),
        }]
    }

    fn dsl_text(&self) -> Option<String> {
        Some(self.dsl_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_users_launch_children() {
        let p = Pre::new(Scale::Tiny);
        let mut launches = 0usize;
        for tb in 0..p.host_kernels()[0].num_tbs {
            for l in p.tb_program(PARENT, 0, tb).launches() {
                let u = l.param as u32;
                assert!(p.ratings_of(u).len() as u32 >= Pre::ACTIVE_THRESHOLD);
                launches += 1;
            }
        }
        assert!(launches > 0);
    }

    #[test]
    fn popularity_is_skewed_to_low_ids() {
        let p = Pre::new(Scale::Small);
        let below_quarter = p.rated.iter().filter(|&&i| i < p.num_items / 4).count();
        let rate = below_quarter as f64 / p.rated.len() as f64;
        assert!(rate > 0.4, "only {rate} of ratings hit the popular quarter");
    }

    #[test]
    fn sibling_children_share_feature_lines() {
        let p = Pre::new(Scale::Tiny);
        // Find a parent TB that launches two children.
        let mut params = Vec::new();
        for tb in 0..p.host_kernels()[0].num_tbs {
            let prog = p.tb_program(PARENT, 0, tb);
            let l: Vec<_> = prog.launches().cloned().collect();
            if l.len() >= 2 {
                params = vec![l[0].param, l[1].param];
                break;
            }
        }
        assert!(!params.is_empty(), "no chunk with two active users");
        let feature_lines = |param: u64| -> std::collections::HashSet<u64> {
            p.tb_program(CHILD, param, 0)
                .global_mem_ops()
                .flat_map(|m| m.pattern.tb_addrs(Pre::CHILD_THREADS))
                .filter(|&a| p.features.contains(a))
                .map(|a| a >> 7)
                .collect()
        };
        let shared = feature_lines(params[0]).intersection(&feature_lines(params[1])).count();
        assert!(shared > 0, "siblings share no feature lines");
    }

    #[test]
    fn child_grid_covers_all_ratings() {
        let p = Pre::new(Scale::Tiny);
        for tb in 0..p.host_kernels()[0].num_tbs {
            for l in p.tb_program(PARENT, 0, tb).launches() {
                let count = p.ratings_of(l.param as u32).len() as u32;
                assert_eq!(l.num_tbs, count.div_ceil(Pre::CHILD_THREADS));
            }
        }
    }
}
