//! Helpers for emitting workload-DSL source text.
//!
//! Each application's [`Workload::dsl_text`](crate::Workload::dsl_text)
//! builds its DSL port with a [`DslWriter`]: input-dependent values
//! (graph structure, match lists, partition tables) are dumped as `data`
//! arrays, so the program logic in the emitted kernels is pure
//! arithmetic over them. The `wdsl` crate compiles the result and must
//! reproduce the generator's TB programs byte for byte.

use std::fmt::Write as _;

/// Incremental writer for one `.dsl` file.
#[derive(Debug)]
pub struct DslWriter {
    out: String,
}

impl DslWriter {
    /// Starts a workload with the given `name` and `input` (the input
    /// clause is omitted when empty, matching
    /// [`Workload::input`](crate::Workload::input)).
    pub fn new(name: &str, input: &str) -> Self {
        let mut out = String::new();
        if input.is_empty() {
            let _ = writeln!(out, "workload \"{name}\";");
        } else {
            let _ = writeln!(out, "workload \"{name}\" input \"{input}\";");
        }
        DslWriter { out }
    }

    /// Emits a `#` comment line.
    pub fn comment(&mut self, text: &str) {
        let _ = writeln!(self.out, "# {text}");
    }

    /// Declares a region. Declaration order is allocation order, so
    /// calls must mirror the generator's `Layout::alloc` sequence.
    pub fn region(&mut self, name: &str, len: u64, elem_bytes: u32) {
        let _ = writeln!(self.out, "region {name}[{len}, {elem_bytes}];");
    }

    /// Declares a data array. An empty iterator emits a single `0`
    /// placeholder (the grammar has no empty arrays; programs guarded by
    /// other data never index it).
    pub fn data(&mut self, name: &str, values: impl IntoIterator<Item = u64>) {
        let _ = write!(self.out, "data {name} = [");
        let mut any = false;
        for (i, v) in values.into_iter().enumerate() {
            if i % 16 == 0 {
                let _ = write!(self.out, "\n    ");
            } else {
                let _ = write!(self.out, " ");
            }
            let _ = write!(self.out, "{v},");
            any = true;
        }
        if !any {
            let _ = write!(self.out, "0");
        }
        let _ = writeln!(self.out, "\n];");
    }

    /// Declares a host kernel launch.
    pub fn host(&mut self, kind: u16, param: u64, tbs: u32, threads: u32, regs: u32, smem: u32) {
        let _ = writeln!(
            self.out,
            "host kind = {kind} param = {param} tbs = {tbs} \
             threads = {threads} regs = {regs} smem = {smem};"
        );
    }

    /// Emits a kernel with a pre-indented body (one statement per line,
    /// four-space indent, trailing newline).
    pub fn kernel(&mut self, kind: u16, name: &str, threads: u32, body: &str) {
        let _ = writeln!(self.out, "kernel {kind} \"{name}\" threads = {threads} {{");
        self.out.push_str(body);
        let _ = writeln!(self.out, "}}");
    }

    /// The finished source text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_all_declaration_forms() {
        let mut w = DslWriter::new("t", "x");
        w.comment("hello");
        w.region("r", 64, 4);
        w.data("d", [1, 2, 3]);
        w.data("empty", []);
        w.host(0, 0, 8, 32, 24, 256);
        w.kernel(0, "t-k", 32, "    compute 1;\n");
        let src = w.finish();
        assert!(src.starts_with("workload \"t\" input \"x\";\n"));
        assert!(src.contains("# hello\n"));
        assert!(src.contains("region r[64, 4];\n"));
        assert!(src.contains("1, 2, 3,"));
        assert!(src.contains("data empty = [0\n];"));
        assert!(src.contains("host kind = 0 param = 0 tbs = 8 threads = 32 regs = 24 smem = 256;"));
        assert!(src.ends_with("kernel 0 \"t-k\" threads = 32 {\n    compute 1;\n}\n"));
    }

    #[test]
    fn input_clause_is_omitted_when_empty() {
        let src = DslWriter::new("solo", "").finish();
        assert_eq!(src, "workload \"solo\";\n");
    }

    #[test]
    fn long_data_arrays_wrap() {
        let mut w = DslWriter::new("t", "");
        w.data("d", 0..40);
        let src = w.finish();
        assert_eq!(src.matches("\n    0,").count() + src.matches("\n    16,").count(), 2);
        assert!(src.contains("\n    32,"));
    }
}
