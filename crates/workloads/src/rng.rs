//! A tiny deterministic PRNG for workload generation.
//!
//! The reproduction needs bit-identical inputs across runs, platforms and
//! dependency upgrades (the timing simulator and the footprint analyzer
//! must see the same address streams), so workloads use this SplitMix64
//! implementation instead of an external crate.

/// SplitMix64: fast, well-distributed, 64 bits of state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for the bounds
        // used here (≤ 2^32).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Approximately normal value with the given mean and standard
    /// deviation (sum of uniform variates — Irwin-Hall with 12 terms).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.unit_f64()).sum();
        mean + (sum - 6.0) * std_dev
    }

    /// Derives an independent stream for item `tag` (stable hashing), so
    /// per-item randomness does not depend on generation order.
    pub fn stream(seed: u64, tag: u64) -> Self {
        let mut mixer = SplitMix64::new(seed ^ tag.wrapping_mul(0xA24B_AED4_963E_E407));
        let s = mixer.next_u64();
        SplitMix64::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_is_roughly_centered() {
        let mut r = SplitMix64::new(11);
        let mean: f64 = (0..10_000).map(|_| r.normal(5.0, 2.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 5.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn streams_are_independent_of_order() {
        let a1 = SplitMix64::stream(99, 1).next_u64();
        let _ = SplitMix64::stream(99, 2).next_u64();
        let a2 = SplitMix64::stream(99, 1).next_u64();
        assert_eq!(a1, a2);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }
}
