//! Problem-size presets.

/// How large the workload inputs are.
///
/// The paper runs full-size inputs on GPGPU-Sim for hours; this
/// reproduction exposes four presets so unit tests stay fast while the
/// benchmark harness exercises realistic pressure on the caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal inputs for unit tests (hundreds of TBs).
    Tiny,
    /// Inputs for the CI reproduction gate: large enough that the
    /// paper's shape claims hold, small enough that the full `repro all`
    /// sweep finishes in CI minutes.
    Ci,
    /// Medium inputs for integration tests and quick runs.
    Small,
    /// Full-size inputs for the figure-regeneration harness.
    Paper,
}

impl Scale {
    /// A characteristic item count: workloads size their inputs as
    /// multiples of this.
    pub fn items(self) -> u32 {
        match self {
            Scale::Tiny => 256,
            Scale::Ci => 2048,
            Scale::Small => 4096,
            Scale::Paper => 8192,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Ci => "ci",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        assert!(Scale::Tiny.items() < Scale::Ci.items());
        assert!(Scale::Ci.items() < Scale::Small.items());
        assert!(Scale::Small.items() < Scale::Paper.items());
    }

    #[test]
    fn names() {
        assert_eq!(Scale::Tiny.to_string(), "tiny");
        assert_eq!(Scale::Paper.to_string(), "paper");
    }
}
