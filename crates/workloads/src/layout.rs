//! Simulated global-memory layout.
//!
//! Each workload places its arrays in disjoint address regions of the
//! simulated 64-bit global address space. [`Layout`] is a simple bump
//! allocator over that space; [`Region`] provides typed element
//! addressing so program generators cannot produce overlapping arrays by
//! accident.

use gpu_sim::types::Addr;

/// Alignment of every region (one 128-byte cache line).
pub const REGION_ALIGN: u64 = 128;

/// A contiguous array in simulated global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    elem_bytes: u32,
    len: u64,
}

impl Region {
    /// Base byte address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the region has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i` is out of bounds.
    pub fn addr(&self, i: u64) -> Addr {
        debug_assert!(i < self.len, "element {i} out of bounds ({} elements)", self.len);
        self.base + i * u64::from(self.elem_bytes)
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len * u64::from(self.elem_bytes)
    }

    /// `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base + self.bytes()
    }
}

/// A bump allocator over the simulated global address space.
#[derive(Debug, Clone)]
pub struct Layout {
    next: Addr,
}

impl Layout {
    /// Creates a layout starting at a nonzero base (address 0 is kept
    /// unmapped to make accidental null-ish addresses visible).
    pub fn new() -> Self {
        Layout { next: REGION_ALIGN }
    }

    /// Allocates a region of `len` elements of `elem_bytes` each,
    /// line-aligned.
    pub fn alloc(&mut self, len: u64, elem_bytes: u32) -> Region {
        let base = self.next;
        let bytes = len * u64::from(elem_bytes);
        self.next = (base + bytes).div_ceil(REGION_ALIGN) * REGION_ALIGN + REGION_ALIGN;
        Region { base, elem_bytes, len }
    }

    /// Total bytes spanned so far.
    pub fn footprint(&self) -> u64 {
        self.next
    }
}

impl Default for Layout {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc(100, 4);
        let b = l.alloc(50, 8);
        assert!(a.base() + a.bytes() <= b.base());
        assert!(!b.contains(a.addr(99)));
        assert!(!a.contains(b.addr(0)));
    }

    #[test]
    fn regions_are_line_aligned() {
        let mut l = Layout::new();
        let a = l.alloc(3, 4);
        let b = l.alloc(3, 4);
        assert_eq!(a.base() % REGION_ALIGN, 0);
        assert_eq!(b.base() % REGION_ALIGN, 0);
    }

    #[test]
    fn element_addressing() {
        let mut l = Layout::new();
        let r = l.alloc(10, 4);
        assert_eq!(r.addr(0), r.base());
        assert_eq!(r.addr(9), r.base() + 36);
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        assert_eq!(r.elem_bytes(), 4);
    }

    #[test]
    fn zero_is_unmapped() {
        let mut l = Layout::new();
        let r = l.alloc(1, 4);
        assert!(r.base() > 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_addr_panics() {
        let mut l = Layout::new();
        let r = l.alloc(1, 4);
        let _ = r.addr(1);
    }

    #[test]
    fn footprint_grows() {
        let mut l = Layout::new();
        let before = l.footprint();
        l.alloc(1000, 4);
        assert!(l.footprint() > before);
    }
}
