//! The eight irregular dynamic-parallelism benchmarks of the LaPerm paper
//! (Table II), re-expressed as TB-program generators over synthetic
//! inputs with the same structural properties as the paper's data sets.
//!
//! | Application | Inputs |
//! |---|---|
//! | Adaptive Mesh Refinement (AMR) | combustion-simulation-like mesh |
//! | Barnes-Hut Tree (BHT) | random data points |
//! | Breadth-First Search (BFS) | citation, graph500, cage15 |
//! | Graph Coloring (CLR) | citation, graph500, cage15 |
//! | Regular Expression Match (REGX) | DARPA-packet-like, random strings |
//! | Product Recommendation (PRE) | MovieLens-like ratings |
//! | Relational Join (JOIN) | uniform, Gaussian key distributions |
//! | Single-Source Shortest Path (SSSP) | citation, graph500, cage15 |
//!
//! Every benchmark implements [`Workload`]: it owns its input data,
//! produces per-TB instruction streams through its
//! [`ProgramSource`], and reports the
//! host kernels that start it. Device-side launches are embedded in the
//! generated programs, so the same workload runs under CDP or DTBL and
//! under any TB scheduler.
//!
//! # Example
//!
//! ```
//! use workloads::{suite, Scale};
//!
//! let all = suite(Scale::Tiny);
//! assert_eq!(all.len(), 16);
//! assert!(all.iter().any(|w| w.full_name() == "bfs-citation"));
//! ```

pub mod apps;
pub mod dsl_emit;
pub mod graph;
pub mod layout;
pub mod rng;
pub mod scale;
pub mod validate;

use std::sync::Arc;

use gpu_sim::kernel::ResourceReq;
use gpu_sim::program::{KernelKindId, ProgramSource, TbProgram};

pub use scale::Scale;
pub use validate::{validate_workload, ValidationError};

/// A kernel launched from the host to start a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostKernel {
    /// Kernel kind (workload-local id).
    pub kind: KernelKindId,
    /// Opaque parameter.
    pub param: u64,
    /// Grid size in TBs.
    pub num_tbs: u32,
    /// Per-TB resources.
    pub req: ResourceReq,
}

/// A benchmark application: input data plus program generation.
///
/// # Implementing your own workload
///
/// A workload owns its input data, names the host kernels that start it,
/// and generates each TB's program on demand. Device-side launches are
/// just [`TbOp::Launch`](gpu_sim::program::TbOp) ops inside parent
/// programs:
///
/// ```
/// use gpu_sim::kernel::ResourceReq;
/// use gpu_sim::program::{
///     AddrPattern, KernelKindId, LaunchSpec, MemOp, ProgramSource, TbOp, TbProgram,
/// };
/// use workloads::{HostKernel, Workload};
///
/// /// Each parent TB scans a private block and spawns one child that
/// /// re-reads it.
/// struct Scan { blocks: u32 }
///
/// impl ProgramSource for Scan {
///     fn tb_program(&self, kind: KernelKindId, param: u64, tb: u32) -> TbProgram {
///         let block = if kind.0 == 0 { u64::from(tb) } else { param } * 4096;
///         let load = TbOp::Mem(MemOp::load(AddrPattern::Strided { base: block, stride: 4 }));
///         if kind.0 == 0 {
///             TbProgram::new(vec![
///                 load.clone(),
///                 TbOp::Launch(LaunchSpec {
///                     kind: KernelKindId(1),
///                     param: u64::from(tb),
///                     num_tbs: 1,
///                     req: ResourceReq::new(64, 16, 0),
///                 }),
///                 TbOp::Compute(32),
///             ])
///         } else {
///             TbProgram::new(vec![load, TbOp::Compute(16)])
///         }
///     }
/// }
///
/// impl Workload for Scan {
///     fn name(&self) -> &str { "scan" }
///     fn input(&self) -> String { String::new() }
///     fn host_kernels(&self) -> Vec<HostKernel> {
///         vec![HostKernel {
///             kind: KernelKindId(0),
///             param: 0,
///             num_tbs: self.blocks,
///             req: ResourceReq::new(128, 16, 0),
///         }]
///     }
/// }
///
/// // It now runs under any scheduler and launch model:
/// use gpu_sim::{config::GpuConfig, engine::Simulator};
/// let w = Scan { blocks: 16 };
/// let hk = w.host_kernels()[0];
/// let mut sim = Simulator::new(GpuConfig::small_test(), Box::new(w));
/// sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req).unwrap();
/// let stats = sim.run_to_completion().unwrap();
/// assert_eq!(stats.tb_records.len(), 32); // 16 parents + 16 children
/// ```
pub trait Workload: ProgramSource {
    /// Application name ("bfs", "amr", …).
    fn name(&self) -> &str;

    /// Input data-set name ("citation", "uniform", …); empty when the
    /// application has a single canonical input.
    fn input(&self) -> String;

    /// Kernels the host launches to run the benchmark, in order.
    fn host_kernels(&self) -> Vec<HostKernel>;

    /// `name` and `input` joined for reports ("bfs-citation").
    fn full_name(&self) -> String {
        let input = self.input();
        if input.is_empty() {
            self.name().to_string()
        } else {
            format!("{}-{}", self.name(), input)
        }
    }

    /// The workload's programs expressed as workload-DSL source text,
    /// when the application provides a port (every suite workload does).
    /// The compiled program stream must be byte-identical to this
    /// generator's — the `wdsl` crate's suite-equivalence tests and the
    /// CI corpus gate enforce that. `None` means generator-only.
    fn dsl_text(&self) -> Option<String> {
        None
    }
}

/// Adapter that lets an `Arc<dyn Workload>` serve as the engine's program
/// source while the harness keeps its own handle.
#[derive(Clone)]
pub struct SharedSource(pub Arc<dyn Workload>);

impl std::fmt::Debug for SharedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedSource({})", self.0.full_name())
    }
}

impl ProgramSource for SharedSource {
    fn tb_program(&self, kind: KernelKindId, param: u64, tb_index: u32) -> TbProgram {
        self.0.tb_program(kind, param, tb_index)
    }

    fn kind_name(&self, kind: KernelKindId) -> String {
        self.0.kind_name(kind)
    }
}

/// The full Table II suite at the given scale: 16 application/input
/// pairs, in the paper's order.
pub fn suite(scale: Scale) -> Vec<Arc<dyn Workload>> {
    suite_seeded(scale, 0)
}

/// [`suite`] with an explicit input seed, for multi-sample experiments
/// (seed 0 is the canonical instance used throughout the repository).
pub fn suite_seeded(scale: Scale, seed: u64) -> Vec<Arc<dyn Workload>> {
    use crate::graph::GraphKind;
    let mut out: Vec<Arc<dyn Workload>> = Vec::new();
    out.push(Arc::new(apps::amr::Amr::new_seeded(scale, seed)));
    out.push(Arc::new(apps::bht::Bht::new_seeded(scale, seed)));
    for kind in GraphKind::all() {
        out.push(Arc::new(apps::bfs::Bfs::new_seeded(kind, scale, seed)));
    }
    for kind in GraphKind::all() {
        out.push(Arc::new(apps::clr::Clr::new_seeded(kind, scale, seed)));
    }
    for input in apps::regx::RegxInput::all() {
        out.push(Arc::new(apps::regx::Regx::new_seeded(input, scale, seed)));
    }
    out.push(Arc::new(apps::pre::Pre::new_seeded(scale, seed)));
    for input in apps::join::JoinInput::all() {
        out.push(Arc::new(apps::join::Join::new_seeded(input, scale, seed)));
    }
    for kind in GraphKind::all() {
        out.push(Arc::new(apps::sssp::Sssp::new_seeded(kind, scale, seed)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_sixteen_workloads() {
        let s = suite(Scale::Tiny);
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn full_names_are_unique() {
        let s = suite(Scale::Tiny);
        let mut names: Vec<String> = s.iter().map(|w| w.full_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16, "duplicate workload names");
    }

    #[test]
    fn every_workload_has_host_kernels() {
        for w in suite(Scale::Tiny) {
            assert!(!w.host_kernels().is_empty(), "{} has no host kernels", w.full_name());
            for hk in w.host_kernels() {
                assert!(hk.num_tbs > 0);
                assert!(hk.req.threads > 0);
            }
        }
    }

    #[test]
    fn every_workload_generates_nonempty_parent_programs() {
        for w in suite(Scale::Tiny) {
            let hk = w.host_kernels()[0];
            let prog = w.tb_program(hk.kind, hk.param, 0);
            assert!(!prog.is_empty(), "{} parent TB 0 has empty program", w.full_name());
        }
    }

    #[test]
    fn every_workload_launches_children_somewhere() {
        for w in suite(Scale::Tiny) {
            let hk = w.host_kernels()[0];
            let launches: usize = (0..hk.num_tbs)
                .map(|tb| w.tb_program(hk.kind, hk.param, tb).launches().count())
                .sum();
            assert!(launches > 0, "{} launches no children", w.full_name());
        }
    }

    #[test]
    fn seeded_suites_differ_from_canonical() {
        let a = suite_seeded(Scale::Tiny, 0);
        let b = suite_seeded(Scale::Tiny, 12345);
        // Same structure...
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.full_name(), y.full_name());
        }
        // ...but different generated inputs for at least the graph apps.
        let hk = a[2].host_kernels()[0];
        let differs = (0..hk.num_tbs).any(|tb| {
            a[2].tb_program(hk.kind, hk.param, tb) != b[2].tb_program(hk.kind, hk.param, tb)
        });
        assert!(differs, "seeds must change the generated inputs");
    }

    #[test]
    fn shared_source_delegates() {
        let w = suite(Scale::Tiny).remove(0);
        let hk = w.host_kernels()[0];
        let src = SharedSource(w.clone());
        assert_eq!(src.tb_program(hk.kind, hk.param, 0), w.tb_program(hk.kind, hk.param, 0));
    }
}
