//! Property-based tests of workload generation: all generated address
//! streams stay inside their regions, graphs are well-formed, and
//! generation is a pure function of its inputs.

use proptest::prelude::*;

use workloads::graph::{banded, citation, rmat, GraphKind};
use workloads::layout::Layout;
use workloads::rng::SplitMix64;

proptest! {
    /// Graph generators produce edges strictly inside the vertex range
    /// and monotone CSR offsets, for any size/seed.
    #[test]
    fn graphs_are_well_formed(
        n in 2u32..400,
        deg in 1u32..12,
        seed in any::<u64>(),
    ) {
        for g in [citation(n, deg, seed), rmat(n, deg, seed), banded(n, deg, seed)] {
            prop_assert_eq!(g.num_vertices(), n);
            let mut total = 0u32;
            for v in 0..n {
                prop_assert_eq!(g.row_start(v) , total);
                total += g.degree(v);
                for &t in g.neighbors(v) {
                    prop_assert!(t < n);
                }
            }
            prop_assert_eq!(g.num_edges(), total);
        }
    }

    /// Generation is deterministic in (kind, n, deg, seed).
    #[test]
    fn graph_generation_is_pure(n in 2u32..200, seed in any::<u64>()) {
        for kind in GraphKind::all() {
            prop_assert_eq!(kind.generate(n, 4, seed), kind.generate(n, 4, seed));
        }
    }

    /// Layout regions never overlap, regardless of allocation sizes.
    #[test]
    fn layout_regions_are_disjoint(
        sizes in prop::collection::vec((1u64..5000, prop::sample::select(vec![1u32, 4, 8, 16, 64, 128])), 1..20),
    ) {
        let mut layout = Layout::new();
        let regions: Vec<_> = sizes.iter().map(|&(len, elem)| layout.alloc(len, elem)).collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                let a_end = a.base() + a.bytes();
                prop_assert!(a_end <= b.base(), "regions overlap: {:?} vs {:?}", a, b);
                // They also never share a 128-byte cache line.
                prop_assert!((a_end - 1) >> 7 < b.base() >> 7 || a.bytes() == 0);
            }
        }
    }

    /// SplitMix64 streams keyed by tag are independent of generation
    /// order and `below` stays in bounds.
    #[test]
    fn rng_streams_and_bounds(seed in any::<u64>(), tag in any::<u64>(), bound in 1u64..1_000_000) {
        let a = SplitMix64::stream(seed, tag).next_u64();
        let b = SplitMix64::stream(seed, tag).next_u64();
        prop_assert_eq!(a, b);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}

mod program_bounds {
    use std::collections::HashMap;
    use workloads::{suite, Scale, Workload};

    /// Every address any TB of a workload generates must fall inside the
    /// workload's allocated footprint. Checked exhaustively per workload
    /// (deterministic, so a plain test rather than proptest).
    #[test]
    fn all_generated_addresses_are_in_bounds() {
        for w in suite(Scale::Tiny) {
            check_workload(w.as_ref());
        }
    }

    fn check_workload(w: &dyn Workload) {
        // Recursively expand every TB, collecting (kind, param, tb).
        let mut stack: Vec<(gpu_sim::program::KernelKindId, u64, u32, u32)> = Vec::new();
        for hk in w.host_kernels() {
            for tb in 0..hk.num_tbs {
                stack.push((hk.kind, hk.param, tb, hk.req.threads));
            }
        }
        let mut seen = 0usize;
        let mut max_addr = 0u64;
        let mut visited: HashMap<(u16, u64, u32), ()> = HashMap::new();
        while let Some((kind, param, tb, threads)) = stack.pop() {
            if visited.insert((kind.0, param, tb), ()).is_some() {
                continue;
            }
            seen += 1;
            let prog = w.tb_program(kind, param, tb);
            for m in prog.global_mem_ops() {
                for a in m.pattern.tb_addrs(threads) {
                    max_addr = max_addr.max(a);
                    assert!(
                        a < 1 << 40,
                        "{}: absurd address {a:#x} from kind {kind:?}",
                        w.full_name()
                    );
                }
            }
            for l in prog.launches() {
                for child in 0..l.num_tbs {
                    stack.push((l.kind, l.param, child, l.req.threads));
                }
            }
        }
        assert!(seen > 0, "{}: no TBs expanded", w.full_name());
        assert!(max_addr > 0, "{}: no memory traffic", w.full_name());
    }
}
