//! Randomized (seeded, deterministic) tests of workload generation: all
//! generated address streams stay inside their regions, graphs are
//! well-formed, and generation is a pure function of its inputs.
//! Formerly proptest properties; now driven by the crate's own
//! SplitMix64 so the suite has no external dependencies.

use workloads::graph::{banded, citation, rmat, GraphKind};
use workloads::layout::Layout;
use workloads::rng::SplitMix64;

/// Graph generators produce edges strictly inside the vertex range and
/// monotone CSR offsets, for any size/seed.
#[test]
fn graphs_are_well_formed() {
    let mut rng = SplitMix64::new(0xFEED);
    for _ in 0..24 {
        let n = 2 + rng.below(398) as u32;
        let deg = 1 + rng.below(11) as u32;
        let seed = rng.next_u64();
        for g in [citation(n, deg, seed), rmat(n, deg, seed), banded(n, deg, seed)] {
            assert_eq!(g.num_vertices(), n);
            let mut total = 0u32;
            for v in 0..n {
                assert_eq!(g.row_start(v), total);
                total += g.degree(v);
                for &t in g.neighbors(v) {
                    assert!(t < n);
                }
            }
            assert_eq!(g.num_edges(), total);
        }
    }
}

/// Generation is deterministic in (kind, n, deg, seed).
#[test]
fn graph_generation_is_pure() {
    let mut rng = SplitMix64::new(0xBEEF);
    for _ in 0..16 {
        let n = 2 + rng.below(198) as u32;
        let seed = rng.next_u64();
        for kind in GraphKind::all() {
            assert_eq!(kind.generate(n, 4, seed), kind.generate(n, 4, seed));
        }
    }
}

/// Layout regions never overlap, regardless of allocation sizes.
#[test]
fn layout_regions_are_disjoint() {
    let elems = [1u32, 4, 8, 16, 64, 128];
    let mut rng = SplitMix64::new(0xCAFE);
    for _ in 0..32 {
        let count = 1 + rng.below(19) as usize;
        let mut layout = Layout::new();
        let regions: Vec<_> = (0..count)
            .map(|_| {
                let len = 1 + rng.below(4999);
                let elem = elems[rng.below(elems.len() as u64) as usize];
                layout.alloc(len, elem)
            })
            .collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                let a_end = a.base() + a.bytes();
                assert!(a_end <= b.base(), "regions overlap: {a:?} vs {b:?}");
                // They also never share a 128-byte cache line.
                assert!((a_end - 1) >> 7 < b.base() >> 7 || a.bytes() == 0);
            }
        }
    }
}

/// SplitMix64 streams keyed by tag are independent of generation order
/// and `below` stays in bounds.
#[test]
fn rng_streams_and_bounds() {
    let mut meta = SplitMix64::new(0xD00D);
    for _ in 0..32 {
        let seed = meta.next_u64();
        let tag = meta.next_u64();
        let bound = 1 + meta.below(999_999);
        let a = SplitMix64::stream(seed, tag).next_u64();
        let b = SplitMix64::stream(seed, tag).next_u64();
        assert_eq!(a, b);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            assert!(rng.below(bound) < bound);
        }
    }
}

mod program_bounds {
    use std::collections::HashMap;
    use workloads::{suite, Scale, Workload};

    /// Every address any TB of a workload generates must fall inside the
    /// workload's allocated footprint. Checked exhaustively per workload
    /// (deterministic, so a plain test).
    #[test]
    fn all_generated_addresses_are_in_bounds() {
        for w in suite(Scale::Tiny) {
            check_workload(w.as_ref());
        }
    }

    fn check_workload(w: &dyn Workload) {
        // Recursively expand every TB, collecting (kind, param, tb).
        let mut stack: Vec<(gpu_sim::program::KernelKindId, u64, u32, u32)> = Vec::new();
        for hk in w.host_kernels() {
            for tb in 0..hk.num_tbs {
                stack.push((hk.kind, hk.param, tb, hk.req.threads));
            }
        }
        let mut seen = 0usize;
        let mut max_addr = 0u64;
        let mut visited: HashMap<(u16, u64, u32), ()> = HashMap::new();
        while let Some((kind, param, tb, threads)) = stack.pop() {
            if visited.insert((kind.0, param, tb), ()).is_some() {
                continue;
            }
            seen += 1;
            let prog = w.tb_program(kind, param, tb);
            for m in prog.global_mem_ops() {
                for a in m.pattern.tb_addrs(threads) {
                    max_addr = max_addr.max(a);
                    assert!(
                        a < 1 << 40,
                        "{}: absurd address {a:#x} from kind {kind:?}",
                        w.full_name()
                    );
                }
            }
            for l in prog.launches() {
                for child in 0..l.num_tbs {
                    stack.push((l.kind, l.param, child, l.req.threads));
                }
            }
        }
        assert!(seen > 0, "{}: no TBs expanded", w.full_name());
        assert!(max_addr > 0, "{}: no memory traffic", w.full_name());
    }
}
