//! Property-based tests of the LaPerm priority-queue hardware model.

use proptest::prelude::*;

use gpu_sim::types::BatchId;
use laperm::PriorityQueues;

proptest! {
    /// `highest` always returns an entry from the highest non-empty
    /// level, FCFS within the level.
    #[test]
    fn highest_respects_priority_then_fcfs(
        pushes in prop::collection::vec((1u8..=4, 0u32..1000), 1..50),
    ) {
        let mut q = PriorityQueues::new(1, 4, 1024);
        for (i, &(level, _)) in pushes.iter().enumerate() {
            let _ = level;
            q.push(0, pushes[i].0, BatchId(i as u32));
        }
        let got = q.highest(0, |_| true).expect("non-empty");
        // Reference: first index among those with the max level.
        let max_level = pushes.iter().map(|&(l, _)| l.clamp(1, 4)).max().unwrap();
        let expected = pushes
            .iter()
            .position(|&(l, _)| l.clamp(1, 4) == max_level)
            .unwrap() as u32;
        prop_assert_eq!(got, BatchId(expected));
    }

    /// Dead entries are pruned and never returned; occupancy shrinks
    /// accordingly.
    #[test]
    fn dead_entries_are_pruned(
        levels in prop::collection::vec(1u8..=4, 1..40),
        dead_mask in prop::collection::vec(any::<bool>(), 40),
    ) {
        let mut q = PriorityQueues::new(1, 4, 1024);
        for (i, &level) in levels.iter().enumerate() {
            q.push(0, level, BatchId(i as u32));
        }
        let is_live = |b: BatchId| !dead_mask[b.0 as usize];
        let got = q.highest(0, is_live);
        match got {
            Some(b) => prop_assert!(is_live(b)),
            None => {
                // Everything reachable was dead; repeated calls agree.
                prop_assert_eq!(q.highest(0, is_live), None);
            }
        }
        prop_assert!(q.occupancy(0) <= levels.len());
    }

    /// Overflow accounting: pushes beyond on-chip capacity are counted,
    /// never lost.
    #[test]
    fn overflow_counts_but_preserves_entries(
        capacity in 1usize..16,
        count in 1usize..64,
    ) {
        let mut q = PriorityQueues::new(1, 2, capacity);
        for i in 0..count {
            q.push(0, 1, BatchId(i as u32));
        }
        let expected_overflow = count.saturating_sub(capacity) as u64;
        prop_assert_eq!(q.stats().onchip_overflows, expected_overflow);
        prop_assert_eq!(q.stats().pushes, count as u64);
        prop_assert_eq!(q.occupancy(0), count);
        // All entries still retrievable in order.
        let mut drained = Vec::new();
        let mut consumed = std::collections::HashSet::new();
        while let Some(b) = q.highest(0, |b| !consumed.contains(&b)) {
            consumed.insert(b);
            drained.push(b.0);
        }
        prop_assert_eq!(drained.len(), count);
    }

    /// `find_nonempty_set` returns a set that actually holds a live entry
    /// and never the excluded set.
    #[test]
    fn find_nonempty_is_correct(
        sets in prop::collection::vec(0usize..8, 0..20),
        start in 0usize..8,
        exclude in 0usize..8,
    ) {
        let mut q = PriorityQueues::new(8, 2, 128);
        for (i, &s) in sets.iter().enumerate() {
            q.push(s, 1, BatchId(i as u32));
        }
        match q.find_nonempty_set(start, exclude, |_| true) {
            Some(found) => {
                prop_assert_ne!(found, exclude);
                prop_assert!(q.highest(found, |_| true).is_some());
            }
            None => {
                for s in 0..8 {
                    if s != exclude {
                        prop_assert!(q.highest(s, |_| true).is_none());
                    }
                }
            }
        }
    }

    /// Level clamping: any pushed level ends up retrievable, regardless
    /// of how deep the nesting claims to be.
    #[test]
    fn levels_clamp_to_configured_max(level in 0u8..=255) {
        let mut q = PriorityQueues::new(1, 3, 128);
        q.push(0, level, BatchId(7));
        prop_assert_eq!(q.highest(0, |_| true), Some(BatchId(7)));
    }
}
