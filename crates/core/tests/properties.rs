//! Randomized (seeded, deterministic) tests of the LaPerm priority-queue
//! hardware model. Formerly proptest properties; now driven by a local
//! SplitMix64 so the suite has no external dependencies.

use gpu_sim::types::BatchId;
use laperm::PriorityQueues;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

/// `highest` always returns an entry from the highest non-empty level,
/// FCFS within the level.
#[test]
fn highest_respects_priority_then_fcfs() {
    for seed in 0..64 {
        let mut rng = Rng(seed);
        let len = rng.range(1, 50) as usize;
        let levels: Vec<u8> = (0..len).map(|_| rng.range(1, 5) as u8).collect();
        let mut q = PriorityQueues::new(1, 4, 1024);
        for (i, &level) in levels.iter().enumerate() {
            q.push(0, level, BatchId(i as u32));
        }
        let got = q.highest(0, |_| true).expect("non-empty");
        // Reference: first index among those with the max level.
        let max_level = levels.iter().map(|&l| l.clamp(1, 4)).max().unwrap();
        let expected = levels.iter().position(|&l| l.clamp(1, 4) == max_level).unwrap() as u32;
        assert_eq!(got, BatchId(expected), "seed {seed}");
    }
}

/// Dead entries are pruned and never returned; occupancy shrinks
/// accordingly.
#[test]
fn dead_entries_are_pruned() {
    for seed in 0..64 {
        let mut rng = Rng(1000 + seed);
        let len = rng.range(1, 40) as usize;
        let levels: Vec<u8> = (0..len).map(|_| rng.range(1, 5) as u8).collect();
        let dead_mask: Vec<bool> = (0..40).map(|_| rng.below(2) == 0).collect();
        let mut q = PriorityQueues::new(1, 4, 1024);
        for (i, &level) in levels.iter().enumerate() {
            q.push(0, level, BatchId(i as u32));
        }
        let is_live = |b: BatchId| !dead_mask[b.0 as usize];
        match q.highest(0, is_live) {
            Some(b) => assert!(is_live(b)),
            None => {
                // Everything reachable was dead; repeated calls agree.
                assert_eq!(q.highest(0, is_live), None);
            }
        }
        assert!(q.occupancy(0) <= levels.len());
    }
}

/// Overflow accounting: pushes beyond on-chip capacity are counted,
/// never lost.
#[test]
fn overflow_counts_but_preserves_entries() {
    for seed in 0..64 {
        let mut rng = Rng(2000 + seed);
        let capacity = rng.range(1, 16) as usize;
        let count = rng.range(1, 64) as usize;
        let mut q = PriorityQueues::new(1, 2, capacity);
        for i in 0..count {
            q.push(0, 1, BatchId(i as u32));
        }
        let expected_overflow = count.saturating_sub(capacity) as u64;
        assert_eq!(q.stats().onchip_overflows, expected_overflow);
        assert_eq!(q.stats().pushes, count as u64);
        assert_eq!(q.occupancy(0), count);
        // All entries still retrievable in order.
        let mut drained = Vec::new();
        let mut consumed = std::collections::HashSet::new();
        while let Some(b) = q.highest(0, |b| !consumed.contains(&b)) {
            consumed.insert(b);
            drained.push(b.0);
        }
        assert_eq!(drained.len(), count);
    }
}

/// `find_nonempty_set` returns a set that actually holds a live entry
/// and never the excluded set.
#[test]
fn find_nonempty_is_correct() {
    for seed in 0..64 {
        let mut rng = Rng(3000 + seed);
        let len = rng.below(20) as usize;
        let sets: Vec<usize> = (0..len).map(|_| rng.below(8) as usize).collect();
        let start = rng.below(8) as usize;
        let exclude = rng.below(8) as usize;
        let mut q = PriorityQueues::new(8, 2, 128);
        for (i, &s) in sets.iter().enumerate() {
            q.push(s, 1, BatchId(i as u32));
        }
        match q.find_nonempty_set(start, exclude, |_| true) {
            Some(found) => {
                assert_ne!(found, exclude);
                assert!(q.highest(found, |_| true).is_some());
            }
            None => {
                for s in 0..8 {
                    if s != exclude {
                        assert!(q.highest(s, |_| true).is_none());
                    }
                }
            }
        }
    }
}

/// Level clamping: any pushed level ends up retrievable, regardless of
/// how deep the nesting claims to be.
#[test]
fn levels_clamp_to_configured_max() {
    for level in 0..=255u8 {
        let mut q = PriorityQueues::new(1, 3, 128);
        q.push(0, level, BatchId(7));
        assert_eq!(q.highest(0, |_| true), Some(BatchId(7)));
    }
}
