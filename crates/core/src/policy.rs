//! The three LaPerm scheduling decisions.

use std::fmt;

/// Which of the paper's three scheduling decisions to apply (Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaPermPolicy {
    /// TB Prioritizing: dynamic TBs dispatch before lower-priority TBs,
    /// on any SMX (round-robin placement). Exploits temporal locality;
    /// mostly an L2 benefit (Section IV-A).
    TbPri,
    /// Prioritized SMX Binding: TB-Pri plus binding child TBs to the SMX
    /// of their direct parent via per-SMX priority queues. Exploits L1
    /// locality but can idle SMXs (Section IV-B).
    SmxBind,
    /// Adaptive Prioritized SMX Binding: SMX-Bind plus a third dispatch
    /// stage that lets an idle SMX adopt a backup SMX's queues,
    /// rebalancing work (Section IV-C).
    AdaptiveBind,
}

impl LaPermPolicy {
    /// All policies, in the paper's order of increasing sophistication.
    pub fn all() -> [LaPermPolicy; 3] {
        [LaPermPolicy::TbPri, LaPermPolicy::SmxBind, LaPermPolicy::AdaptiveBind]
    }

    /// Short display name used in reports ("tb-pri", "smx-bind",
    /// "adaptive-bind").
    pub fn name(self) -> &'static str {
        match self {
            LaPermPolicy::TbPri => "tb-pri",
            LaPermPolicy::SmxBind => "smx-bind",
            LaPermPolicy::AdaptiveBind => "adaptive-bind",
        }
    }

    /// `true` if the policy binds children to their parent's SMX.
    pub fn binds_to_smx(self) -> bool {
        !matches!(self, LaPermPolicy::TbPri)
    }

    /// `true` if the policy allows cross-SMX work stealing.
    pub fn steals(self) -> bool {
        matches!(self, LaPermPolicy::AdaptiveBind)
    }
}

impl fmt::Display for LaPermPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_three_in_order() {
        assert_eq!(
            LaPermPolicy::all(),
            [LaPermPolicy::TbPri, LaPermPolicy::SmxBind, LaPermPolicy::AdaptiveBind]
        );
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = LaPermPolicy::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["tb-pri", "smx-bind", "adaptive-bind"]);
    }

    #[test]
    fn capability_flags() {
        assert!(!LaPermPolicy::TbPri.binds_to_smx());
        assert!(LaPermPolicy::SmxBind.binds_to_smx());
        assert!(LaPermPolicy::AdaptiveBind.binds_to_smx());
        assert!(!LaPermPolicy::SmxBind.steals());
        assert!(LaPermPolicy::AdaptiveBind.steals());
    }

    #[test]
    fn display_matches_name() {
        for p in LaPermPolicy::all() {
            assert_eq!(p.to_string(), p.name());
        }
    }
}
