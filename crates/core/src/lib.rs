//! LaPerm: locality-aware thread-block scheduling for dynamic parallelism
//! on GPUs (Wang, Rubin, Sidelnik, Yalamanchili — ISCA 2016).
//!
//! Dynamic parallelism (CDP device kernels, DTBL TB groups) creates
//! *parent-child* and *child-sibling* reference locality that the
//! baseline round-robin TB scheduler cannot exploit: child TBs start long
//! after their direct parents and land on arbitrary SMXs. LaPerm is a
//! family of three TB scheduling decisions, each subsuming the previous:
//!
//! 1. [`TB-Pri`](LaPermPolicy::TbPri) — child TBs get priority
//!    `parent + 1` (clamped to a maximum nesting level `L`) and dispatch
//!    before the remaining parent TBs: temporal locality, mostly an L2
//!    benefit.
//! 2. [`SMX-Bind`](LaPermPolicy::SmxBind) — child TBs are additionally
//!    *bound* to the SMX (or SMX cluster) of their direct parent through
//!    per-SMX priority queues: spatial locality, an L1 benefit, at the
//!    risk of load imbalance.
//! 3. [`Adaptive-Bind`](LaPermPolicy::AdaptiveBind) — SMX-Bind plus a
//!    third dispatch stage in which an SMX whose own queues (and the
//!    global parent queue) are empty adopts a *backup* SMX's queues and
//!    drains them: trades a little locality back for balance.
//!
//! [`LaPermScheduler`] implements the `gpu-sim` crate's
//! [`TbScheduler`](gpu_sim::tb_sched::TbScheduler) interface, so it drops
//! into a [`Simulator`](gpu_sim::engine::Simulator) in place of the
//! baseline:
//!
//! ```
//! use gpu_sim::config::GpuConfig;
//! use gpu_sim::engine::Simulator;
//! use gpu_sim::program::{ProgramSource, TbProgram, TbOp, KernelKindId};
//! use gpu_sim::kernel::ResourceReq;
//! use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
//!
//! struct Trivial;
//! impl ProgramSource for Trivial {
//!     fn tb_program(&self, _: KernelKindId, _: u64, _: u32) -> TbProgram {
//!         TbProgram::new(vec![TbOp::Compute(4)])
//!     }
//! }
//!
//! let cfg = GpuConfig::small_test();
//! let sched = LaPermScheduler::new(
//!     LaPermPolicy::AdaptiveBind,
//!     LaPermConfig::for_gpu(&cfg),
//! );
//! let mut sim = Simulator::new(cfg, Box::new(Trivial)).with_scheduler(Box::new(sched));
//! sim.launch_host_kernel(KernelKindId(0), 0, 8, ResourceReq::new(64, 16, 0)).unwrap();
//! let stats = sim.run_to_completion().unwrap();
//! assert_eq!(stats.scheduler, "laperm-adaptive-bind");
//! ```

// Library code must not panic on fallible lookups; tests opt back
// in locally.
#![deny(clippy::unwrap_used)]

pub mod decomposition;
pub mod paper;
pub mod policy;
pub mod queues;
pub mod scheduler;

pub use decomposition::BindOnlyScheduler;
pub use policy::LaPermPolicy;
pub use queues::{PriorityQueues, QueueStats};
pub use scheduler::{LaPermConfig, LaPermScheduler};
