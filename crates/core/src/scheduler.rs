//! The LaPerm TB scheduler (paper Section IV, Figures 5 and 6).

use gpu_sim::config::{GpuConfig, OverflowPolicy};
use gpu_sim::kernel::Batch;
use gpu_sim::tb_sched::{DispatchDecision, DispatchView, KmuView, TbScheduler};
use gpu_sim::trace::TraceEvent;
use gpu_sim::types::{BatchId, Cycle, Priority, SmxId, TbRef};

use crate::policy::LaPermPolicy;
use crate::queues::PriorityQueues;

/// Configuration of the LaPerm scheduler hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaPermConfig {
    /// Maximum dynamic priority level `L`; deeper nesting clamps to it.
    pub max_level: u8,
    /// Number of SMXs on the GPU.
    pub num_smxs: u16,
    /// SMXs per cluster sharing one L1 and one queue set (1 on Kepler;
    /// >1 models architectures with clustered L1s, Section IV-B).
    pub cluster_size: u16,
    /// On-chip SRAM entries per queue set before overflowing to the
    /// global-memory buffer.
    pub onchip_capacity: usize,
    /// Adaptive-Bind stage 3 fires only when the SMX has at least this
    /// many free TB slots (0 = steal whenever the queues are empty, the
    /// paper's flow chart; higher values add hysteresis so busy SMXs do
    /// not shred other SMXs' locality for marginal balance).
    pub steal_min_free_slots: u32,
    /// Contention-aware TB throttling: cap resident TBs per SMX below the
    /// hardware limit (`None` = hardware limit). Section IV-F suggests
    /// combining LaPerm with the dynamic TB-count adjustment of prior
    /// work when the small L1 cannot hold all resident TBs' reusable
    /// data; this knob is the static form of that optimization.
    pub throttle_tbs: Option<u32>,
    /// The hardware TB-slot limit per SMX (for throttle accounting).
    pub hw_tbs_per_smx: u32,
    /// Hard cap on batches resident across all priority-queue sets
    /// (on-chip plus memory-backed spill); `None` = unbounded. Taken
    /// from [`GpuConfig::launch_limits`]. When the cap is reached,
    /// `queue_overflow_policy` decides what the KMU extension does.
    pub queue_capacity: Option<usize>,
    /// What happens at the queue cap: `StallParent` declines KMU
    /// dispatch (kernels wait in the KMU), `SpillVirtual` admits the
    /// kernel anyway and counts a virtual-queue spill.
    pub queue_overflow_policy: OverflowPolicy,
}

impl LaPermConfig {
    /// The paper's defaults for a GPU configuration: `L = 4`, one SMX per
    /// cluster, 128 on-chip entries per set.
    pub fn for_gpu(cfg: &GpuConfig) -> Self {
        LaPermConfig {
            max_level: 4,
            num_smxs: cfg.num_smxs,
            cluster_size: 1,
            onchip_capacity: PriorityQueues::ONCHIP_ENTRIES,
            steal_min_free_slots: 0,
            throttle_tbs: None,
            hw_tbs_per_smx: cfg.max_tbs_per_smx,
            queue_capacity: cfg.launch_limits.smx_queue_capacity,
            queue_overflow_policy: cfg.launch_limits.policy,
        }
    }

    /// Caps resident TBs per SMX (contention-aware throttling, §IV-F).
    pub fn with_throttle_tbs(mut self, tbs: u32) -> Self {
        self.throttle_tbs = Some(tbs.max(1));
        self
    }

    /// Overrides the stage-3 steal hysteresis.
    pub fn with_steal_min_free_slots(mut self, slots: u32) -> Self {
        self.steal_min_free_slots = slots;
        self
    }

    /// Overrides the maximum nesting level `L`.
    pub fn with_max_level(mut self, max_level: u8) -> Self {
        self.max_level = max_level.max(1);
        self
    }

    /// Overrides the SMX cluster size.
    pub fn with_cluster_size(mut self, cluster_size: u16) -> Self {
        self.cluster_size = cluster_size.max(1);
        self
    }

    /// Overrides the on-chip queue capacity.
    pub fn with_onchip_capacity(mut self, entries: usize) -> Self {
        self.onchip_capacity = entries.max(1);
        self
    }

    fn num_clusters(&self) -> usize {
        usize::from(self.num_smxs).div_ceil(usize::from(self.cluster_size))
    }

    fn cluster_of(&self, smx: SmxId) -> usize {
        smx.index() / usize::from(self.cluster_size)
    }
}

/// The LaPerm TB scheduler.
///
/// Implements all three scheduling decisions behind one
/// [`TbScheduler`]: the [`LaPermPolicy`] chooses how much of the
/// mechanism is active. See the crate docs for the scheduling rules and
/// the paper mapping.
#[derive(Debug)]
pub struct LaPermScheduler {
    policy: LaPermPolicy,
    cfg: LaPermConfig,
    queues: PriorityQueues,
    /// SMX placement cursor (TB-Pri) or the per-cycle SMX under
    /// consideration (binding policies).
    cursor: usize,
    /// Recorded backup queue set per cluster (Adaptive-Bind stage 3).
    backup: Vec<Option<usize>>,
    stage1_dispatches: u64,
    stage2_dispatches: u64,
    stage3_steals: u64,
    kmu_search_cycles: u64,
    /// KMU dispatches admitted past the queue hard cap under
    /// `SpillVirtual` (0 and unreported when the cap is unbounded).
    queue_hard_spills: u64,
    /// Event reporting, off by default; the engine enables it when a
    /// trace sink is attached (`TbScheduler::set_tracing`). While off the
    /// buffer stays empty and untraced runs allocate nothing here.
    tracing: bool,
    trace_buf: Vec<TraceEvent>,
}

impl LaPermScheduler {
    /// Creates a LaPerm scheduler.
    pub fn new(policy: LaPermPolicy, cfg: LaPermConfig) -> Self {
        let sets = if policy.binds_to_smx() { cfg.num_clusters() } else { 1 };
        LaPermScheduler {
            policy,
            queues: PriorityQueues::new(sets, cfg.max_level, cfg.onchip_capacity),
            cursor: 0,
            backup: vec![None; sets],
            stage1_dispatches: 0,
            stage2_dispatches: 0,
            stage3_steals: 0,
            kmu_search_cycles: 0,
            queue_hard_spills: 0,
            tracing: false,
            trace_buf: Vec::new(),
            cfg,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> LaPermPolicy {
        self.policy
    }

    /// The configuration in use.
    pub fn config(&self) -> &LaPermConfig {
        &self.cfg
    }

    /// Work-stealing (stage 3) dispatches so far.
    pub fn steals(&self) -> u64 {
        self.stage3_steals
    }

    fn clamped_level(&self, batch: &Batch) -> u8 {
        batch.priority.0.clamp(1, self.cfg.max_level)
    }

    /// Buffers `event` for the engine to drain (no-op unless tracing).
    fn trace(&mut self, event: TraceEvent) {
        if self.tracing {
            self.trace_buf.push(event);
        }
    }

    /// Records a dispatch served from `set`'s dynamic queues.
    fn trace_dequeue(&mut self, batch: &Batch, set: usize) {
        if self.tracing {
            let level = self.clamped_level(batch);
            let depth = self.queues.occupancy(set) as u32;
            self.trace_buf.push(TraceEvent::QueueDequeued {
                batch: batch.id,
                set: set as u16,
                level,
                depth,
            });
        }
    }

    /// Records a dispatch served from the shared level-0 queue, consulted
    /// on behalf of queue set `set`.
    fn trace_global_dequeue(&mut self, batch: BatchId, set: usize) {
        if self.tracing {
            let depth = self.queues.global_occupancy() as u32;
            self.trace_buf.push(TraceEvent::QueueDequeued {
                batch,
                set: set as u16,
                level: 0,
                depth,
            });
        }
    }

    /// `true` if dispatching one more TB to `smx` respects the
    /// contention throttle.
    fn under_throttle(&self, view: &DispatchView<'_>, smx: SmxId) -> bool {
        match self.cfg.throttle_tbs {
            None => true,
            Some(limit) => {
                let free = view.smx_free[smx.index()].tb_slots;
                let resident = self.cfg.hw_tbs_per_smx.saturating_sub(free);
                resident < limit
            }
        }
    }

    fn pick_tb_pri(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision> {
        let live = |b: BatchId| view.batch(b).has_undispatched_tbs();
        let (candidate, from_queue0) = match self.queues.highest(0, live) {
            Some(b) => (b, false),
            None => (self.queues.global_front(live)?, true),
        };
        let req = view.batch(candidate).req;
        let n = view.num_smxs();
        let smx = (0..n)
            .map(|i| SmxId(((self.cursor + i) % n) as u16))
            .find(|&s| view.fits(s, &req) && self.under_throttle(view, s))?;
        self.cursor = (smx.index() + 1) % n;
        if from_queue0 {
            self.stage2_dispatches += 1;
            self.trace_global_dequeue(candidate, 0);
        } else {
            self.stage1_dispatches += 1;
            self.trace_dequeue(view.batch(candidate), 0);
        }
        Some(DispatchDecision { batch: candidate, smx })
    }

    fn pick_bound(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision> {
        // One SMX is considered per cycle (paper Figure 6).
        let smx = SmxId(self.cursor as u16);
        self.cursor = (self.cursor + 1) % view.num_smxs();
        let set = self.cfg.cluster_of(smx);
        let live = |b: BatchId| view.batch(b).has_undispatched_tbs();

        if !self.under_throttle(view, smx) {
            return None;
        }

        // Stage 1: this SMX's own priority queues, highest level first.
        if let Some(candidate) = self.queues.highest(set, live) {
            if view.fits(smx, &view.batch(candidate).req) {
                self.stage1_dispatches += 1;
                self.trace_dequeue(view.batch(candidate), set);
                return Some(DispatchDecision { batch: candidate, smx });
            }
            return None;
        }

        // Stage 2: the shared parent queue (level 0).
        if let Some(candidate) = self.queues.global_front(live) {
            if view.fits(smx, &view.batch(candidate).req) {
                self.stage2_dispatches += 1;
                self.trace_global_dequeue(candidate, set);
                return Some(DispatchDecision { batch: candidate, smx });
            }
            return None;
        }

        // Stage 3 (Adaptive-Bind only): adopt a backup SMX's queues.
        if !self.policy.steals() {
            return None;
        }
        if view.smx_free[smx.index()].tb_slots < self.cfg.steal_min_free_slots {
            return None;
        }
        let prev_backup = self.backup[set];
        let backup = self.backup[set]
            .filter(|&b| self.queues.highest(b, live).is_some())
            .or_else(|| self.queues.find_nonempty_set(set + 1, set, live));
        self.backup[set] = backup;
        if let Some(b) = backup {
            if prev_backup != Some(b) {
                self.trace(TraceEvent::BackupAdopted { smx, backup_set: b as u16 });
            }
        }
        let victim_set = backup?;
        let candidate = self.queues.highest(victim_set, live)?;
        if view.fits(smx, &view.batch(candidate).req) {
            self.stage3_steals += 1;
            self.trace_dequeue(view.batch(candidate), victim_set);
            self.trace(TraceEvent::Stage3Steal {
                thief: smx,
                victim_set: victim_set as u16,
                batch: candidate,
                tbs_moved: 1,
            });
            return Some(DispatchDecision { batch: candidate, smx });
        }
        None
    }
}

impl TbScheduler for LaPermScheduler {
    fn name(&self) -> &'static str {
        match self.policy {
            LaPermPolicy::TbPri => "laperm-tb-pri",
            LaPermPolicy::SmxBind => "laperm-smx-bind",
            LaPermPolicy::AdaptiveBind => "laperm-adaptive-bind",
        }
    }

    fn on_batch_schedulable(&mut self, batch: &Batch, _cycle: Cycle) {
        match &batch.origin {
            None => {
                self.queues.push_global(batch.id);
                if self.tracing {
                    let depth = self.queues.global_occupancy() as u32;
                    self.trace_buf.push(TraceEvent::QueueEnqueued {
                        batch: batch.id,
                        set: 0,
                        level: 0,
                        depth,
                    });
                }
            }
            Some(origin) => {
                let level = self.clamped_level(batch);
                let set = if self.policy.binds_to_smx() {
                    self.cfg.cluster_of(origin.parent_smx)
                } else {
                    0
                };
                self.queues.push(set, level, batch.id);
                if self.tracing {
                    self.trace_buf.push(TraceEvent::PriorityAssigned {
                        batch: batch.id,
                        raw: batch.priority,
                        clamped: Priority(level),
                    });
                    let depth = self.queues.occupancy(set) as u32;
                    self.trace_buf.push(TraceEvent::QueueEnqueued {
                        batch: batch.id,
                        set: set as u16,
                        level,
                        depth,
                    });
                }
            }
        }
    }

    fn on_tb_finished(&mut self, _tb: TbRef, _smx: SmxId, _cycle: Cycle) {}

    fn pick(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision> {
        match self.policy {
            LaPermPolicy::TbPri => self.pick_tb_pri(view),
            LaPermPolicy::SmxBind | LaPermPolicy::AdaptiveBind => self.pick_bound(view),
        }
    }

    fn kmu_pick(&mut self, view: &KmuView<'_>) -> Option<usize> {
        // The KMU extension searches its priority queues highest-first;
        // worst case it scans all L levels (Section IV-E).
        self.kmu_search_cycles += u64::from(self.cfg.max_level);
        // Backpressure: with the scheduler's queues at their hard cap,
        // StallParent declines dispatch (the kernel waits in the KMU);
        // SpillVirtual admits it and charges a virtual-queue spill.
        if let Some(cap) = self.cfg.queue_capacity {
            if self.queues.total_occupancy() >= cap {
                match self.cfg.queue_overflow_policy {
                    OverflowPolicy::StallParent => return None,
                    OverflowPolicy::SpillVirtual { .. } => self.queue_hard_spills += 1,
                }
            }
        }
        let level = |batch: &Batch| {
            if batch.origin.is_some() {
                self.clamped_level(batch)
            } else {
                0
            }
        };
        let mut best = 0;
        let mut best_level = level(view.batch(0));
        for i in 1..view.len() {
            let l = level(view.batch(i));
            if l > best_level {
                best = i;
                best_level = l;
            }
        }
        Some(best)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let q = self.queues.stats();
        let mut counters = vec![
            ("stage1_dispatches", self.stage1_dispatches),
            ("stage2_dispatches", self.stage2_dispatches),
            ("stage3_steals", self.stage3_steals),
            ("queue_pushes", q.pushes),
            ("onchip_overflows", q.onchip_overflows),
            ("queue_search_cycles", q.search_cycles),
            ("kmu_search_cycles", self.kmu_search_cycles),
            ("max_queue_depth", q.max_depth as u64),
        ];
        // Only surfaced when the cap exists, so default-run reports (and
        // the goldens derived from them) are unchanged.
        if self.cfg.queue_capacity.is_some() {
            counters.push(("queue_hard_spills", self.queue_hard_spills));
        }
        counters
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
    }

    fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.trace_buf);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use dynpar::{LaunchLatency, LaunchModelKind};
    use gpu_sim::config::GpuConfig;
    use gpu_sim::engine::Simulator;
    use gpu_sim::kernel::ResourceReq;
    use gpu_sim::program::{KernelKindId, LaunchSpec, ProgramSource, TbOp, TbProgram};
    use gpu_sim::stats::SimStats;
    use gpu_sim::tb_sched::RoundRobinScheduler;

    const PARENT: KernelKindId = KernelKindId(0);
    const CHILD: KernelKindId = KernelKindId(1);

    /// The paper's Figure 4(a) launch structure: 8 parent TBs; P2 launches
    /// 2 children, P4 launches 4 children.
    struct Figure4Source;

    impl ProgramSource for Figure4Source {
        fn tb_program(&self, kind: KernelKindId, _param: u64, tb_index: u32) -> TbProgram {
            match kind {
                PARENT => {
                    let mut ops = vec![TbOp::Compute(20)];
                    let children = match tb_index {
                        2 => 2,
                        4 => 4,
                        _ => 0,
                    };
                    if children > 0 {
                        ops.push(TbOp::Launch(LaunchSpec {
                            kind: CHILD,
                            param: u64::from(tb_index),
                            num_tbs: children,
                            req: ResourceReq::new(32, 8, 0),
                        }));
                    }
                    ops.push(TbOp::Compute(20));
                    TbProgram::new(ops)
                }
                _ => TbProgram::new(vec![TbOp::Compute(20)]),
            }
        }
    }

    fn run(policy: Option<LaPermPolicy>) -> SimStats {
        let cfg = GpuConfig::figure4_toy();
        let mut sim = Simulator::new(cfg.clone(), Box::new(Figure4Source));
        sim = match policy {
            Some(p) => {
                sim.with_scheduler(Box::new(LaPermScheduler::new(p, LaPermConfig::for_gpu(&cfg))))
            }
            None => sim.with_scheduler(Box::new(RoundRobinScheduler::new())),
        };
        sim = sim.with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::zero()));
        sim.launch_host_kernel(PARENT, 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
        sim.run_to_completion().unwrap()
    }

    #[test]
    fn all_policies_complete_all_tbs() {
        for policy in LaPermPolicy::all() {
            let stats = run(Some(policy));
            assert_eq!(stats.tb_records.len(), 8 + 6, "policy {policy}");
            assert_eq!(stats.dynamic_tbs(), 6, "policy {policy}");
        }
    }

    #[test]
    fn smx_bind_runs_children_on_parent_smx() {
        let stats = run(Some(LaPermPolicy::SmxBind));
        assert_eq!(stats.parent_smx_affinity(), 1.0);
    }

    #[test]
    fn round_robin_scatters_children() {
        let stats = run(None);
        assert!(stats.parent_smx_affinity() < 1.0);
    }

    #[test]
    fn tb_pri_dispatches_children_before_remaining_parents() {
        let stats = run(Some(LaPermPolicy::TbPri));
        // Find the dispatch position of the first child and the last
        // parent; with prioritization some child must jump the queue.
        let first_child = stats.tb_records.iter().position(|r| r.is_dynamic).unwrap();
        let last_parent = stats.tb_records.iter().rposition(|r| !r.is_dynamic).unwrap();
        assert!(
            first_child < last_parent,
            "child at {first_child} should dispatch before parent at {last_parent}"
        );
    }

    #[test]
    fn baseline_dispatches_all_parents_first() {
        let stats = run(None);
        let first_child = stats.tb_records.iter().position(|r| r.is_dynamic).unwrap();
        let last_parent = stats.tb_records.iter().rposition(|r| !r.is_dynamic).unwrap();
        assert!(first_child > last_parent);
    }

    #[test]
    fn tb_pri_reduces_child_wait() {
        let rr = run(None);
        let pri = run(Some(LaPermPolicy::TbPri));
        assert!(
            pri.mean_child_wait() < rr.mean_child_wait(),
            "TB-Pri wait {} should beat RR wait {}",
            pri.mean_child_wait(),
            rr.mean_child_wait()
        );
    }

    #[test]
    fn adaptive_bind_steals_on_skewed_launches() {
        let stats = run(Some(LaPermPolicy::AdaptiveBind));
        let steals = stats
            .scheduler_counters
            .iter()
            .find(|(k, _)| *k == "stage3_steals")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(steals > 0, "P4's four children should trigger stealing");
        // Stolen children run off their parent's SMX, so affinity < 1.
        assert!(stats.parent_smx_affinity() < 1.0);
        assert!(stats.parent_smx_affinity() > 0.0);
    }

    #[test]
    fn smx_bind_never_steals() {
        let stats = run(Some(LaPermPolicy::SmxBind));
        let steals = stats
            .scheduler_counters
            .iter()
            .find(|(k, _)| *k == "stage3_steals")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(steals, 0);
    }

    #[test]
    fn tracing_emits_queue_steal_and_priority_events() {
        let cfg = GpuConfig::figure4_toy();
        let sink = gpu_sim::trace::VecSink::new();
        let mut sim = Simulator::new(cfg.clone(), Box::new(Figure4Source))
            .with_trace(Box::new(sink.clone()))
            .with_scheduler(Box::new(LaPermScheduler::new(
                LaPermPolicy::AdaptiveBind,
                LaPermConfig::for_gpu(&cfg),
            )))
            .with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::zero()));
        sim.launch_host_kernel(PARENT, 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();

        let records = sink.records();
        let count =
            |f: &dyn Fn(&TraceEvent) -> bool| records.iter().filter(|r| f(&r.event)).count() as u64;
        let steals_in_trace = count(&|e| matches!(e, TraceEvent::Stage3Steal { .. }));
        let steals_counted = stats
            .scheduler_counters
            .iter()
            .find(|(k, _)| *k == "stage3_steals")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(steals_in_trace > 0);
        assert_eq!(steals_in_trace, steals_counted);
        // 1 host + 2 dynamic batches enqueue; only dynamic ones get a
        // priority assignment.
        assert_eq!(count(&|e| matches!(e, TraceEvent::QueueEnqueued { .. })), 3);
        assert_eq!(count(&|e| matches!(e, TraceEvent::PriorityAssigned { .. })), 2);
        // Every dispatched TB was served from some queue.
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::QueueDequeued { .. })),
            stats.tb_records.len() as u64
        );
    }

    #[test]
    fn untraced_scheduler_buffers_nothing() {
        use gpu_sim::kernel::{BatchKind, BatchState, Origin};
        use gpu_sim::types::Priority;

        let cfg = LaPermConfig::for_gpu(&GpuConfig::small_test());
        let mut sched = LaPermScheduler::new(LaPermPolicy::AdaptiveBind, cfg);
        let batch = Batch {
            id: BatchId(0),
            batch_kind: BatchKind::TbGroup,
            kind: gpu_sim::program::KernelKindId(1),
            param: 0,
            num_tbs: 4,
            req: ResourceReq::new(32, 8, 0),
            origin: Some(Origin {
                parent_batch: BatchId(0),
                parent_tb: 0,
                parent_smx: SmxId(0),
                parent_priority: Priority::HOST,
            }),
            priority: Priority(1),
            created_at: 0,
            schedulable_at: Some(0),
            state: BatchState::Schedulable,
            next_tb: 0,
            finished_tbs: 0,
            kdu_entry: Some(0),
        };
        // Tracing off (the default): enqueueing must leave nothing to
        // drain, so untraced runs never grow the event buffer.
        sched.on_batch_schedulable(&batch, 0);
        let mut out = Vec::new();
        sched.drain_trace(&mut out);
        assert!(out.is_empty());

        // Flipped on, the same notification produces events.
        sched.set_tracing(true);
        sched.on_batch_schedulable(&batch, 0);
        sched.drain_trace(&mut out);
        assert!(out
            .iter()
            .any(|e| matches!(e, TraceEvent::QueueEnqueued { batch: BatchId(0), .. })));
        assert!(out.iter().any(|e| matches!(
            e,
            TraceEvent::PriorityAssigned { raw: Priority(1), clamped: Priority(1), .. }
        )));
    }

    #[test]
    fn kmu_pick_prefers_highest_clamped_priority() {
        use gpu_sim::kernel::{Batch, BatchKind, BatchState, Origin, ResourceReq};
        use gpu_sim::program::KernelKindId;
        use gpu_sim::types::{BatchId, Priority};

        let make = |id: u32, depth: u8| Batch {
            id: BatchId(id),
            batch_kind: if depth == 0 { BatchKind::HostKernel } else { BatchKind::DeviceKernel },
            kind: KernelKindId(0),
            param: 0,
            num_tbs: 1,
            req: ResourceReq::new(32, 8, 0),
            origin: (depth > 0).then(|| Origin {
                parent_batch: BatchId(0),
                parent_tb: 0,
                parent_smx: SmxId(0),
                parent_priority: Priority(depth - 1),
            }),
            priority: Priority(depth),
            created_at: 0,
            schedulable_at: None,
            state: BatchState::Pending,
            next_tb: 0,
            finished_tbs: 0,
            kdu_entry: None,
        };

        let cfg = LaPermConfig::for_gpu(&GpuConfig::small_test()).with_max_level(2);
        let mut sched = LaPermScheduler::new(LaPermPolicy::TbPri, cfg);
        let batches = vec![
            make(0, 0), // host
            make(1, 1), // child
            make(2, 7), // clamps to 2
            make(3, 9), // also clamps to 2 — FCFS tie
        ];
        let pick = |sched: &mut LaPermScheduler, ids: &[u32]| {
            let pending: Vec<BatchId> = ids.iter().map(|&i| BatchId(i)).collect();
            sched.kmu_pick(&gpu_sim::tb_sched::KmuView { pending: &pending, batches: &batches })
        };

        // Highest clamped priority wins.
        assert_eq!(pick(&mut sched, &[0, 1]), Some(1));
        // Clamped ties resolve FCFS (earlier index).
        assert_eq!(pick(&mut sched, &[0, 2, 3]), Some(1));
        // Host-only stays FCFS.
        assert_eq!(pick(&mut sched, &[0]), Some(0));
        // The search cost is accounted (L cycles per pick).
        let kmu_cycles = sched
            .counters()
            .iter()
            .find(|(k, _)| *k == "kmu_search_cycles")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(kmu_cycles, 3 * 2);
    }

    #[test]
    fn kmu_pick_backpressure_at_queue_cap() {
        use gpu_sim::kernel::{Batch, BatchKind, BatchState};
        use gpu_sim::types::Priority;

        let host = Batch {
            id: BatchId(0),
            batch_kind: BatchKind::HostKernel,
            kind: KernelKindId(0),
            param: 0,
            num_tbs: 1,
            req: ResourceReq::new(32, 8, 0),
            origin: None,
            priority: Priority::HOST,
            created_at: 0,
            schedulable_at: None,
            state: BatchState::Pending,
            next_tb: 0,
            finished_tbs: 0,
            kdu_entry: None,
        };
        let batches = vec![host.clone()];
        let pending = vec![BatchId(0)];
        let view = gpu_sim::tb_sched::KmuView { pending: &pending, batches: &batches };

        // StallParent: at the cap the scheduler declines to dispatch.
        let mut cfg = LaPermConfig::for_gpu(&GpuConfig::small_test());
        cfg.queue_capacity = Some(1);
        cfg.queue_overflow_policy = gpu_sim::config::OverflowPolicy::StallParent;
        let mut sched = LaPermScheduler::new(LaPermPolicy::TbPri, cfg);
        assert_eq!(sched.kmu_pick(&view), Some(0));
        sched.on_batch_schedulable(&host, 0);
        assert_eq!(sched.kmu_pick(&view), None);

        // SpillVirtual: the pick proceeds, charged as a hard spill.
        cfg.queue_overflow_policy =
            gpu_sim::config::OverflowPolicy::SpillVirtual { extra_latency: 10 };
        let mut sched = LaPermScheduler::new(LaPermPolicy::TbPri, cfg);
        sched.on_batch_schedulable(&host, 0);
        assert_eq!(sched.kmu_pick(&view), Some(0));
        let spills = sched
            .counters()
            .iter()
            .find(|(k, _)| *k == "queue_hard_spills")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(spills, 1);
    }

    #[test]
    fn bound_policies_dispatch_parents_only_on_the_cursor_smx() {
        // Under SMX-Bind, stage 2 considers exactly one SMX per cycle, so
        // parent TBs fill SMX0, SMX1, SMX2, SMX3 in cursor order.
        let stats = run(Some(LaPermPolicy::SmxBind));
        let first_four: Vec<u16> =
            stats.tb_records.iter().filter(|r| !r.is_dynamic).take(4).map(|r| r.smx.0).collect();
        assert_eq!(first_four, vec![0, 1, 2, 3]);
    }

    #[test]
    fn throttle_builder_sets_and_floors() {
        let cfg = LaPermConfig::for_gpu(&GpuConfig::small_test()).with_throttle_tbs(0);
        assert_eq!(cfg.throttle_tbs, Some(1));
        let cfg = cfg.with_throttle_tbs(6);
        assert_eq!(cfg.throttle_tbs, Some(6));
    }

    #[test]
    fn scheduler_names_match_policy() {
        let cfg = LaPermConfig::for_gpu(&GpuConfig::small_test());
        assert_eq!(LaPermScheduler::new(LaPermPolicy::TbPri, cfg).name(), "laperm-tb-pri");
        assert_eq!(LaPermScheduler::new(LaPermPolicy::SmxBind, cfg).name(), "laperm-smx-bind");
        assert_eq!(
            LaPermScheduler::new(LaPermPolicy::AdaptiveBind, cfg).name(),
            "laperm-adaptive-bind"
        );
    }

    #[test]
    fn config_builders_clamp() {
        let cfg = LaPermConfig::for_gpu(&GpuConfig::small_test())
            .with_max_level(0)
            .with_cluster_size(0)
            .with_onchip_capacity(0);
        assert_eq!(cfg.max_level, 1);
        assert_eq!(cfg.cluster_size, 1);
        assert_eq!(cfg.onchip_capacity, 1);
    }

    #[test]
    fn cluster_mapping() {
        let cfg = LaPermConfig {
            max_level: 2,
            num_smxs: 8,
            cluster_size: 2,
            onchip_capacity: 128,
            steal_min_free_slots: 0,
            throttle_tbs: None,
            hw_tbs_per_smx: 16,
            queue_capacity: None,
            queue_overflow_policy: OverflowPolicy::StallParent,
        };
        assert_eq!(cfg.num_clusters(), 4);
        assert_eq!(cfg.cluster_of(SmxId(0)), 0);
        assert_eq!(cfg.cluster_of(SmxId(1)), 0);
        assert_eq!(cfg.cluster_of(SmxId(7)), 3);
    }

    #[test]
    fn clustered_binding_keeps_children_in_cluster() {
        let gpu = GpuConfig::figure4_toy();
        let laperm_cfg = LaPermConfig::for_gpu(&gpu).with_cluster_size(2);
        let mut sim = Simulator::new(gpu, Box::new(Figure4Source))
            .with_scheduler(Box::new(LaPermScheduler::new(LaPermPolicy::SmxBind, laperm_cfg)))
            .with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::zero()));
        sim.launch_host_kernel(PARENT, 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
        let stats = sim.run_to_completion().unwrap();
        for r in stats.tb_records.iter().filter(|r| r.is_dynamic) {
            let (_, _, parent_smx) = r.parent.unwrap();
            assert_eq!(
                r.smx.index() / 2,
                parent_smx.index() / 2,
                "child must stay in its parent's cluster"
            );
        }
    }
}
