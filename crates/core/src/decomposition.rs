//! Mechanism decomposition: binding *without* prioritization.
//!
//! LaPerm couples two mechanisms — dispatch **prioritization** (children
//! before remaining parents) and SMX **binding** (children on their
//! parent's SMX). [`LaPermPolicy::TbPri`](crate::LaPermPolicy::TbPri) is
//! prioritization alone; [`BindOnlyScheduler`] is the missing corner of
//! the 2×2: children keep the baseline's FCFS dispatch order but are
//! placed on their direct parent's SMX. Comparing
//! `rr / tb-pri / bind-only / smx-bind` separates how much of LaPerm's
//! gain comes from *when* children run vs *where* they run.
//!
//! Not part of the paper; used by the `repro ablate` decomposition
//! table.

use std::collections::VecDeque;

use gpu_sim::kernel::Batch;
use gpu_sim::tb_sched::{DispatchDecision, DispatchView, TbScheduler};
use gpu_sim::types::{BatchId, Cycle, SmxId};

/// FCFS dispatch order with parent-SMX placement for children.
#[derive(Debug, Default)]
pub struct BindOnlyScheduler {
    /// Batches in arrival order, with the bound SMX for dynamic ones.
    fifo: VecDeque<(BatchId, Option<SmxId>)>,
    /// Round-robin cursor for host-kernel placement.
    cursor: usize,
    bound_dispatches: u64,
}

impl BindOnlyScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dispatches that were placed on the parent's SMX.
    pub fn bound_dispatches(&self) -> u64 {
        self.bound_dispatches
    }
}

impl TbScheduler for BindOnlyScheduler {
    fn name(&self) -> &'static str {
        "bind-only"
    }

    fn on_batch_schedulable(&mut self, batch: &Batch, _cycle: Cycle) {
        let bound = batch.origin.as_ref().map(|o| o.parent_smx);
        self.fifo.push_back((batch.id, bound));
    }

    fn pick(&mut self, view: &DispatchView<'_>) -> Option<DispatchDecision> {
        // Drop exhausted batches from the front (FCFS consumption).
        while let Some(&(front, _)) = self.fifo.front() {
            if view.batch(front).has_undispatched_tbs() {
                break;
            }
            self.fifo.pop_front();
        }
        let &(batch, bound) = self.fifo.front()?;
        let req = view.batch(batch).req;
        match bound {
            Some(smx) => {
                // A child goes to its parent's SMX or waits.
                if view.fits(smx, &req) {
                    self.bound_dispatches += 1;
                    Some(DispatchDecision { batch, smx })
                } else {
                    None
                }
            }
            None => {
                let smx = view.first_fit_from(self.cursor, &req)?;
                self.cursor = (smx.index() + 1) % view.num_smxs();
                Some(DispatchDecision { batch, smx })
            }
        }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("bound_dispatches", self.bound_dispatches)]
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use dynpar::{LaunchLatency, LaunchModelKind};
    use gpu_sim::config::GpuConfig;
    use gpu_sim::engine::Simulator;
    use gpu_sim::kernel::ResourceReq;
    use gpu_sim::program::{KernelKindId, LaunchSpec, ProgramSource, TbOp, TbProgram};

    struct Spawner;

    impl ProgramSource for Spawner {
        fn tb_program(&self, kind: KernelKindId, _p: u64, tb: u32) -> TbProgram {
            if kind.0 == 0 {
                let mut ops = vec![TbOp::Compute(10)];
                if tb.is_multiple_of(2) {
                    ops.push(TbOp::Launch(LaunchSpec {
                        kind: KernelKindId(1),
                        param: u64::from(tb),
                        num_tbs: 2,
                        req: ResourceReq::new(32, 8, 0),
                    }));
                }
                ops.push(TbOp::Compute(200));
                TbProgram::new(ops)
            } else {
                TbProgram::new(vec![TbOp::Compute(10)])
            }
        }
    }

    fn run() -> gpu_sim::SimStats {
        let cfg = GpuConfig::small_test();
        let mut sim = Simulator::new(cfg, Box::new(Spawner))
            .with_scheduler(Box::new(BindOnlyScheduler::new()))
            .with_launch_model(LaunchModelKind::Dtbl.build(LaunchLatency::uniform(20)));
        sim.launch_host_kernel(KernelKindId(0), 0, 8, ResourceReq::new(32, 8, 0)).unwrap();
        sim.run_to_completion().unwrap()
    }

    #[test]
    fn children_land_on_their_parents_smx() {
        let stats = run();
        assert!(stats.dynamic_tbs() > 0);
        assert_eq!(stats.parent_smx_affinity(), 1.0);
    }

    #[test]
    fn dispatch_order_stays_fcfs() {
        let stats = run();
        // Children arrive after every parent TB is queued (8 parents fit
        // the toy machine), so FCFS puts all parents first — unlike
        // TB-Pri, which would jump children ahead.
        let first_child = stats.tb_records.iter().position(|r| r.is_dynamic).unwrap();
        let parents_before =
            stats.tb_records[..first_child].iter().filter(|r| !r.is_dynamic).count();
        assert_eq!(parents_before, 8);
    }

    #[test]
    fn counters_report_bound_dispatches() {
        let stats = run();
        let bound = stats
            .scheduler_counters
            .iter()
            .find(|(k, _)| *k == "bound_dispatches")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(bound as usize, stats.dynamic_tbs());
    }
}
