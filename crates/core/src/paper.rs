//! Paper-to-code map: where each part of the LaPerm paper lives in this
//! repository.
//!
//! This module contains no code — it is a navigation aid for readers
//! following along with the paper (Wang, Rubin, Sidelnik, Yalamanchili,
//! ISCA 2016).
//!
//! | Paper section | Concept | Code |
//! |---|---|---|
//! | §II-A | BSP execution model, TBs, warps | [`gpu_sim::kernel`], [`gpu_sim::warp`], [`gpu_sim::smx`] |
//! | §II-B | Baseline architecture: KMU, KDU, SMX scheduler | [`gpu_sim::kmu`], [`gpu_sim::kdu`], [`gpu_sim::tb_sched::RoundRobinScheduler`] |
//! | §II-B | "TB 39 → SMX4" round-robin example | tests in [`gpu_sim::tb_sched`] |
//! | §II-C | CDP device kernels, DTBL TB groups | [`dynpar::CdpModel`](https://docs.rs/), [`dynpar::DtblModel`](https://docs.rs/) (see the `dynpar` crate) |
//! | §III-A | Shared footprint ratios (Figure 2) | `sim_metrics::footprint` |
//! | §III-B | Round-robin's locality failure (Figure 4b) | `laperm_bench::fig4` |
//! | §IV-A | TB Prioritizing | [`LaPermPolicy::TbPri`](crate::LaPermPolicy::TbPri), [`scheduler`](crate::scheduler) |
//! | §IV-A | Priority queues (Figure 5) | [`queues`](crate::queues) |
//! | §IV-B | Prioritized SMX Binding, SMX clusters | [`LaPermPolicy::SmxBind`](crate::LaPermPolicy::SmxBind), [`LaPermConfig::cluster_size`](crate::LaPermConfig) |
//! | §IV-C | Adaptive binding, 3-stage flow (Figure 6), backup queues | [`LaPermPolicy::AdaptiveBind`](crate::LaPermPolicy::AdaptiveBind), `LaPermScheduler::pick` stage 3 |
//! | §IV-C | KMU priority extension, 32-kernel CDP visibility limit | `LaPermScheduler::kmu_pick`, [`gpu_sim::kdu::Kdu`] |
//! | §IV-D | Launch latency impact | `dynpar::LaunchLatency`, `repro latency` |
//! | §IV-E | Hardware/timing overheads (3 KB SRAM, search cycles) | [`queues::QueueStats`](crate::queues::QueueStats), `repro overhead` |
//! | §IV-F | Orthogonality to warp scheduling | [`gpu_sim::warp_sched`], `repro ablate` |
//! | §V-A | Methodology: Table I config, Table II benchmarks | [`gpu_sim::config::GpuConfig::kepler_k20c`], the `workloads` crate |
//! | §V-B | Figures 7/8/9 | `laperm_bench::experiments` |
//!
//! Where this reproduction extends the paper (all marked "extension" in
//! DESIGN.md): input-seed variance, cache-size sweeps, a Maxwell-like
//! generality check, run timelines, a seeded-random control scheduler,
//! and a steal-hysteresis knob on stage 3.
