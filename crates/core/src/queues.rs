//! The LaPerm priority-queue hardware model (paper Figure 5).
//!
//! LaPerm manages dynamic TBs through multi-level priority queues:
//!
//! * **Queue 0** is shared by all SMXs and reserved for top-level
//!   (host-launched) parent kernels.
//! * **Queues 1..=L** hold dynamic batches at their (clamped) nesting
//!   level. Under TB-Pri there is one shared set; under the binding
//!   policies there is one set per SMX (or SMX cluster), fed by the SMX
//!   of the launching parent.
//!
//! The hardware stores up to 128 entries (24 bytes each, ~3 KB SRAM) per
//! SMX on chip; additional entries overflow to a global-memory buffer.
//! The model keeps all entries addressable but counts overflow events and
//! models the entry-search work, which the paper's overhead analysis
//! (Section IV-E) reasons about.

use std::collections::VecDeque;

use gpu_sim::types::BatchId;

/// Occupancy and overhead counters for the queue hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Entries ever pushed (dynamic batches).
    pub pushes: u64,
    /// Pushes that exceeded the on-chip SRAM capacity of their set.
    pub onchip_overflows: u64,
    /// Largest entry count observed in any single set.
    pub max_depth: usize,
    /// Accumulated modeled entry-search work (cycles).
    pub search_cycles: u64,
}

/// The multi-level priority queues of the LaPerm scheduler.
#[derive(Debug, Clone)]
pub struct PriorityQueues {
    sets: Vec<Vec<VecDeque<BatchId>>>,
    global: VecDeque<BatchId>,
    levels: u8,
    onchip_capacity: usize,
    stats: QueueStats,
}

impl PriorityQueues {
    /// On-chip SRAM entries per SMX queue set (paper Section IV-E).
    pub const ONCHIP_ENTRIES: usize = 128;

    /// Creates `num_sets` queue sets with levels `1..=levels` plus the
    /// shared level-0 queue.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets == 0` or `levels == 0`.
    pub fn new(num_sets: usize, levels: u8, onchip_capacity: usize) -> Self {
        assert!(num_sets > 0, "need at least one queue set");
        assert!(levels > 0, "need at least one priority level");
        PriorityQueues {
            sets: (0..num_sets).map(|_| (0..levels).map(|_| VecDeque::new()).collect()).collect(),
            global: VecDeque::new(),
            levels,
            onchip_capacity,
            stats: QueueStats::default(),
        }
    }

    /// Number of queue sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Maximum dynamic priority level `L`.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Enqueues a top-level parent kernel on the shared queue 0.
    pub fn push_global(&mut self, batch: BatchId) {
        self.global.push_back(batch);
    }

    /// Enqueues a dynamic batch at `level` (clamped to `1..=L`) in `set`.
    pub fn push(&mut self, set: usize, level: u8, batch: BatchId) {
        let level = level.clamp(1, self.levels);
        let occupancy = self.occupancy(set);
        // Inserting searches the set's entries for the position matching
        // the batch's priority (worst case the whole on-chip queue, which
        // is whatever capacity this instance was configured with).
        self.stats.search_cycles += occupancy.min(self.onchip_capacity) as u64;
        if occupancy >= self.onchip_capacity {
            self.stats.onchip_overflows += 1;
        }
        self.sets[set][usize::from(level) - 1].push_back(batch);
        self.stats.pushes += 1;
        self.stats.max_depth = self.stats.max_depth.max(occupancy + 1);
    }

    /// Total entries currently in a set.
    pub fn occupancy(&self, set: usize) -> usize {
        self.sets[set].iter().map(VecDeque::len).sum()
    }

    /// Entries in the shared level-0 queue.
    pub fn global_occupancy(&self) -> usize {
        self.global.len()
    }

    /// Entries across every set and the shared level-0 queue — the
    /// figure a hard queue-capacity bound compares against. Counts stale
    /// (exhausted but not yet pruned) entries too: those still occupy
    /// physical queue slots until a dispatch pass prunes them.
    pub fn total_occupancy(&self) -> usize {
        self.global.len() + (0..self.sets.len()).map(|s| self.occupancy(s)).sum::<usize>()
    }

    /// Front batch of the highest non-empty priority queue of `set`,
    /// pruning entries for which `is_live` is false (exhausted batches).
    pub fn highest(
        &mut self,
        set: usize,
        mut is_live: impl FnMut(BatchId) -> bool,
    ) -> Option<BatchId> {
        for level in (0..usize::from(self.levels)).rev() {
            let q = &mut self.sets[set][level];
            while let Some(&front) = q.front() {
                if is_live(front) {
                    return Some(front);
                }
                q.pop_front();
            }
        }
        None
    }

    /// Front live batch of the shared level-0 queue.
    pub fn global_front(&mut self, mut is_live: impl FnMut(BatchId) -> bool) -> Option<BatchId> {
        while let Some(&front) = self.global.front() {
            if is_live(front) {
                return Some(front);
            }
            self.global.pop_front();
        }
        None
    }

    /// The next set after `start` (wrapping, excluding `exclude`) whose
    /// queues hold a live batch, for backup-queue selection.
    pub fn find_nonempty_set(
        &mut self,
        start: usize,
        exclude: usize,
        mut is_live: impl FnMut(BatchId) -> bool,
    ) -> Option<usize> {
        let n = self.sets.len();
        for offset in 0..n {
            let set = (start + offset) % n;
            if set == exclude {
                continue;
            }
            if self.highest(set, &mut is_live).is_some() {
                return Some(set);
            }
        }
        None
    }

    /// Hardware counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(_: BatchId) -> bool {
        true
    }

    #[test]
    fn higher_level_served_first() {
        let mut q = PriorityQueues::new(1, 3, 128);
        q.push(0, 1, BatchId(10));
        q.push(0, 3, BatchId(30));
        q.push(0, 2, BatchId(20));
        assert_eq!(q.highest(0, live), Some(BatchId(30)));
    }

    #[test]
    fn fcfs_within_level() {
        let mut q = PriorityQueues::new(1, 2, 128);
        q.push(0, 1, BatchId(1));
        q.push(0, 1, BatchId(2));
        assert_eq!(q.highest(0, live), Some(BatchId(1)));
    }

    #[test]
    fn exhausted_entries_are_pruned() {
        let mut q = PriorityQueues::new(1, 2, 128);
        q.push(0, 2, BatchId(1));
        q.push(0, 2, BatchId(2));
        assert_eq!(q.highest(0, |b| b != BatchId(1)), Some(BatchId(2)));
        // BatchId(1) was removed; occupancy reflects the prune.
        assert_eq!(q.occupancy(0), 1);
    }

    #[test]
    fn level_clamps_to_max() {
        let mut q = PriorityQueues::new(1, 2, 128);
        q.push(0, 200, BatchId(5));
        assert_eq!(q.highest(0, live), Some(BatchId(5)));
    }

    #[test]
    fn global_queue_is_separate() {
        let mut q = PriorityQueues::new(2, 2, 128);
        q.push_global(BatchId(0));
        q.push(1, 1, BatchId(1));
        assert_eq!(q.global_front(live), Some(BatchId(0)));
        assert_eq!(q.highest(0, live), None);
        assert_eq!(q.highest(1, live), Some(BatchId(1)));
        assert_eq!(q.global_occupancy(), 1);
    }

    #[test]
    fn overflow_counted_past_capacity() {
        let mut q = PriorityQueues::new(1, 1, 2);
        q.push(0, 1, BatchId(0));
        q.push(0, 1, BatchId(1));
        assert_eq!(q.stats().onchip_overflows, 0);
        q.push(0, 1, BatchId(2));
        assert_eq!(q.stats().onchip_overflows, 1);
        assert_eq!(q.stats().pushes, 3);
        assert_eq!(q.stats().max_depth, 3);
    }

    #[test]
    fn search_cost_clamps_to_configured_capacity() {
        // A non-default (smaller) on-chip capacity must bound the modeled
        // search work, not the hard-coded 128-entry default.
        let cap = 4;
        let mut q = PriorityQueues::new(1, 1, cap);
        for i in 0..10 {
            q.push(0, 1, BatchId(i));
        }
        // Pushes see occupancies 0,1,2,3 then saturate at `cap`.
        let expected: u64 = (0..10).map(|occ: u64| occ.min(cap as u64)).sum();
        assert_eq!(q.stats().search_cycles, expected);

        // A capacity above the default constant is honored too.
        let big = PriorityQueues::ONCHIP_ENTRIES * 2;
        let mut q = PriorityQueues::new(1, 1, big);
        for i in 0..(big as u32 + 8) {
            q.push(0, 1, BatchId(i));
        }
        let expected: u64 = (0..big as u64 + 8).map(|occ| occ.min(big as u64)).sum();
        assert_eq!(q.stats().search_cycles, expected);
    }

    #[test]
    fn total_occupancy_spans_sets_and_global() {
        let mut q = PriorityQueues::new(2, 2, 128);
        assert_eq!(q.total_occupancy(), 0);
        q.push_global(BatchId(0));
        q.push(0, 1, BatchId(1));
        q.push(1, 2, BatchId(2));
        assert_eq!(q.total_occupancy(), 3);
    }

    #[test]
    fn find_nonempty_skips_excluded_and_empty() {
        let mut q = PriorityQueues::new(4, 1, 128);
        q.push(2, 1, BatchId(9));
        assert_eq!(q.find_nonempty_set(0, 0, live), Some(2));
        // The only non-empty set is excluded: nothing to adopt.
        assert_eq!(q.find_nonempty_set(2, 2, live), None);
    }

    #[test]
    fn find_nonempty_wraps() {
        let mut q = PriorityQueues::new(3, 1, 128);
        q.push(0, 1, BatchId(1));
        assert_eq!(q.find_nonempty_set(2, 1, live), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one queue set")]
    fn zero_sets_panics() {
        let _ = PriorityQueues::new(0, 1, 128);
    }
}
