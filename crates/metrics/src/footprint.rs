//! Shared-footprint analysis (paper Section III-A, Figure 2).
//!
//! The analysis expands a workload's complete TB tree *statically* — no
//! timing simulation — by walking host-kernel TB programs, collecting
//! every global-memory line each TB touches, and recursing into
//! device-side launches. From the tree it computes the paper's three
//! shared-footprint ratios:
//!
//! * **parent-child** `pc/c`: lines shared between a direct parent TB and
//!   the union of its children's lines, over the children's union size.
//! * **child-sibling** `cos/cs`: lines shared between one child TB and
//!   the union of its siblings' lines, over the siblings' union size
//!   (averaged over children).
//! * **parent-parent**: lines shared between adjacent parent TBs, over
//!   the other's size (the paper reports ~9%, far below parent-child).

use std::collections::HashSet;

use gpu_sim::program::KernelKindId;
use gpu_sim::types::LineAddr;
use workloads::Workload;

const LINE_BITS: u32 = 7; // 128-byte lines, as in the paper's analysis

/// Safety cap on recursive launch depth.
const MAX_DEPTH: u32 = 8;

#[derive(Debug)]
struct TbNode {
    lines: HashSet<LineAddr>,
    /// Children grouped per launch (each launch spawns `num_tbs` TBs).
    children: Vec<TbNode>,
}

/// Results of the footprint analysis of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintAnalysis {
    /// Workload display name.
    pub workload: String,
    /// Mean parent-child shared footprint ratio over launching TBs.
    pub parent_child: f64,
    /// Mean child-sibling shared footprint ratio over child TBs with at
    /// least one sibling.
    pub child_sibling: f64,
    /// Mean adjacent parent-parent shared footprint ratio.
    pub parent_parent: f64,
    /// Number of direct-parent (launching) TBs analyzed.
    pub launching_tbs: usize,
    /// Total child TBs analyzed.
    pub child_tbs: usize,
}

impl FootprintAnalysis {
    /// Runs the analysis on a workload.
    pub fn analyze(workload: &dyn Workload) -> Self {
        let mut parents: Vec<TbNode> = Vec::new();
        for hk in workload.host_kernels() {
            for tb in 0..hk.num_tbs {
                parents.push(expand(workload, hk.kind, hk.param, tb, hk.req.threads, 0));
            }
        }

        // Parent-child and child-sibling ratios over every launching TB
        // in the tree (host parents and nested launchers alike).
        let mut pc_ratios = Vec::new();
        let mut cs_ratios = Vec::new();
        let mut launching = 0usize;
        let mut child_count = 0usize;
        let mut stack: Vec<&TbNode> = parents.iter().collect();
        while let Some(node) = stack.pop() {
            if !node.children.is_empty() {
                launching += 1;
                child_count += node.children.len();
                let child_union: HashSet<LineAddr> =
                    node.children.iter().flat_map(|c| c.lines.iter().copied()).collect();
                if !child_union.is_empty() {
                    let shared = child_union.intersection(&node.lines).count();
                    pc_ratios.push(shared as f64 / child_union.len() as f64);
                }
                if node.children.len() >= 2 {
                    for (i, child) in node.children.iter().enumerate() {
                        let sibling_union: HashSet<LineAddr> = node
                            .children
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .flat_map(|(_, s)| s.lines.iter().copied())
                            .collect();
                        if !sibling_union.is_empty() {
                            let shared = sibling_union.intersection(&child.lines).count();
                            cs_ratios.push(shared as f64 / sibling_union.len() as f64);
                        }
                    }
                }
            }
            stack.extend(node.children.iter());
        }

        // Adjacent parent-parent sharing.
        let mut pp_ratios = Vec::new();
        for pair in parents.windows(2) {
            if !pair[1].lines.is_empty() {
                let shared = pair[0].lines.intersection(&pair[1].lines).count();
                pp_ratios.push(shared as f64 / pair[1].lines.len() as f64);
            }
        }

        FootprintAnalysis {
            workload: workload.full_name(),
            parent_child: mean(&pc_ratios),
            child_sibling: mean(&cs_ratios),
            parent_parent: mean(&pp_ratios),
            launching_tbs: launching,
            child_tbs: child_count,
        }
    }
}

fn expand(
    workload: &dyn Workload,
    kind: KernelKindId,
    param: u64,
    tb_index: u32,
    threads: u32,
    depth: u32,
) -> TbNode {
    let program = workload.tb_program(kind, param, tb_index);
    let lines: HashSet<LineAddr> = program
        .global_mem_ops()
        .flat_map(|m| m.pattern.tb_addrs(threads))
        .map(|a| a >> LINE_BITS)
        .collect();
    let mut children = Vec::new();
    if depth < MAX_DEPTH {
        for launch in program.launches() {
            for child_tb in 0..launch.num_tbs {
                children.push(expand(
                    workload,
                    launch.kind,
                    launch.param,
                    child_tb,
                    launch.req.threads,
                    depth + 1,
                ));
            }
        }
    }
    TbNode { lines, children }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Figure 2 for a whole suite: one row per workload plus the averages the
/// paper quotes in the text.
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintSummary {
    /// Per-workload analyses, in suite order.
    pub rows: Vec<FootprintAnalysis>,
}

impl FootprintSummary {
    /// Analyzes every workload in a suite.
    pub fn analyze_suite(suite: &[std::sync::Arc<dyn Workload>]) -> Self {
        FootprintSummary {
            rows: suite.iter().map(|w| FootprintAnalysis::analyze(w.as_ref())).collect(),
        }
    }

    /// Mean parent-child ratio over the suite (paper: ~38%).
    pub fn mean_parent_child(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.parent_child).collect::<Vec<_>>())
    }

    /// Mean child-sibling ratio over the suite (paper: ~30%).
    pub fn mean_child_sibling(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.child_sibling).collect::<Vec<_>>())
    }

    /// Mean parent-parent ratio over the suite (paper: ~9%).
    pub fn mean_parent_parent(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.parent_parent).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::apps::amr::Amr;
    use workloads::apps::bfs::Bfs;
    use workloads::apps::join::{Join, JoinInput};
    use workloads::graph::GraphKind;
    use workloads::Scale;

    #[test]
    fn ratios_are_in_unit_interval() {
        let a = FootprintAnalysis::analyze(&Bfs::new(GraphKind::Citation, Scale::Tiny));
        for r in [a.parent_child, a.child_sibling, a.parent_parent] {
            assert!((0.0..=1.0).contains(&r), "ratio {r} out of range");
        }
        assert!(a.launching_tbs > 0);
        assert!(a.child_tbs > 0);
    }

    #[test]
    fn parent_child_exceeds_parent_parent() {
        let a = FootprintAnalysis::analyze(&Bfs::new(GraphKind::Citation, Scale::Tiny));
        assert!(
            a.parent_child > a.parent_parent,
            "parent-child {} should exceed parent-parent {}",
            a.parent_child,
            a.parent_parent
        );
    }

    #[test]
    fn clustered_graph_has_more_sibling_sharing_than_random() {
        let cite = FootprintAnalysis::analyze(&Bfs::new(GraphKind::Citation, Scale::Tiny));
        let rmat = FootprintAnalysis::analyze(&Bfs::new(GraphKind::Graph500, Scale::Tiny));
        assert!(
            cite.child_sibling > rmat.child_sibling,
            "citation sibling {} should exceed graph500 sibling {}",
            cite.child_sibling,
            rmat.child_sibling
        );
    }

    #[test]
    fn amr_and_join_have_low_sibling_sharing() {
        let amr = FootprintAnalysis::analyze(&Amr::new(Scale::Tiny));
        let join = FootprintAnalysis::analyze(&Join::new(JoinInput::Uniform, Scale::Tiny));
        let bfs = FootprintAnalysis::analyze(&Bfs::new(GraphKind::Citation, Scale::Tiny));
        assert!(amr.child_sibling < 0.1, "amr sibling {}", amr.child_sibling);
        assert!(join.child_sibling < bfs.child_sibling);
    }

    #[test]
    fn amr_counts_nested_launchers() {
        let a = FootprintAnalysis::analyze(&Amr::new(Scale::Tiny));
        // First-level children that deep-refine are launching TBs too.
        let amr = Amr::new(Scale::Tiny);
        assert!(a.launching_tbs > amr.host_kernels()[0].num_tbs as usize / 4);
    }

    #[test]
    fn regx_siblings_share_the_transition_table() {
        use workloads::apps::regx::{Regx, RegxInput};
        let regx = FootprintAnalysis::analyze(&Regx::new(RegxInput::Strings, Scale::Tiny));
        let bfs = FootprintAnalysis::analyze(&Bfs::new(GraphKind::Citation, Scale::Tiny));
        assert!(
            regx.child_sibling > bfs.child_sibling,
            "regx sibling {} should top bfs {} (shared NFA table)",
            regx.child_sibling,
            bfs.child_sibling
        );
    }

    #[test]
    fn suite_summary_matches_paper_structure() {
        let all = workloads::suite(Scale::Tiny);
        let summary = FootprintSummary::analyze_suite(&all);
        assert_eq!(summary.rows.len(), all.len());
        // The headline structure: parent-child sharing is substantial and
        // exceeds parent-parent sharing on average.
        assert!(summary.mean_parent_child() > 0.2);
        assert!(summary.mean_parent_child() > summary.mean_parent_parent());
        assert!(summary.mean_child_sibling() > 0.0);
    }

    #[test]
    fn analysis_is_deterministic() {
        let w = Bfs::new(GraphKind::Cage15, Scale::Tiny);
        assert_eq!(FootprintAnalysis::analyze(&w), FootprintAnalysis::analyze(&w));
    }
}
