//! Append-only, checksummed record journal for the sweep cell cache.
//!
//! The resilient sweep layer (`laperm-bench`) persists every completed
//! matrix cell to a journal file so a crashed-and-restarted `repro all`
//! resumes from what it already computed instead of starting over. The
//! format is deliberately minimal and self-healing:
//!
//! ```text
//! magic   : 8 bytes, b"LPJRNL01"
//! record  : [len: u32 LE] [checksum: u64 LE] [payload: len bytes]
//! ...     : records repeat to end of file
//! ```
//!
//! The checksum is FNV-1a 64 over the payload bytes. A process killed
//! mid-append leaves a truncated tail record; a disk flipping bits
//! leaves a checksum mismatch. Both are *detected, reported, and
//! dropped* by [`read_journal`] — a damaged record (and anything after
//! it, since record boundaries can no longer be trusted) is never
//! served. [`JournalWriter::open_repairing`] truncates the file back to
//! its longest valid prefix before appending, so one crash cannot
//! compound into permanent corruption.
//!
//! Payload contents are opaque here: the bench crate stores one JSON
//! object per record (cache key + serialized run record). Duplicate
//! keys are legal — append-only means a recomputed cell simply appends
//! a fresh record, and the reader's last-writer-wins merge picks it up.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: identifies a cell journal and its framing version.
pub const MAGIC: &[u8; 8] = b"LPJRNL01";

/// Bytes of framing per record before the payload (u32 length + u64
/// checksum).
pub const RECORD_HEADER_BYTES: u64 = 12;

/// FNV-1a 64-bit hash (the journal checksum and the cache-key hash
/// primitive). Dependency-free and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a journal file deviated from its well-formed framing. At most
/// one damage site is reported per read: everything at and after it is
/// dropped, so later records never mask earlier corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalDamage {
    /// The file does not start with [`MAGIC`] (wrong file, or a
    /// framing-version bump). Nothing in it is trusted.
    BadMagic,
    /// The file ends mid-record (crash during append). `offset` is the
    /// file position of the truncated record's header.
    TruncatedRecord {
        /// File offset of the incomplete record.
        offset: u64,
    },
    /// A record's payload does not hash to its stored checksum.
    /// `offset` is the file position of the damaged record's header.
    ChecksumMismatch {
        /// File offset of the damaged record.
        offset: u64,
    },
}

impl std::fmt::Display for JournalDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalDamage::BadMagic => write!(f, "bad magic (not a cell journal)"),
            JournalDamage::TruncatedRecord { offset } => {
                write!(f, "truncated record at byte {offset}")
            }
            JournalDamage::ChecksumMismatch { offset } => {
                write!(f, "checksum mismatch at byte {offset}")
            }
        }
    }
}

/// The result of reading a journal: every intact payload in append
/// order, plus where (if anywhere) the file stopped being trustworthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRead {
    /// Intact record payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// First damage site, or `None` for a clean file.
    pub damage: Option<JournalDamage>,
    /// Length in bytes of the longest valid prefix (magic + intact
    /// records). Repair truncates the file to this length.
    pub valid_len: u64,
}

impl JournalRead {
    /// A read of a journal that does not exist yet: no payloads, no
    /// damage, and a zero valid length (the writer must emit magic).
    fn fresh() -> JournalRead {
        JournalRead { payloads: Vec::new(), damage: None, valid_len: 0 }
    }
}

/// Reads a journal file, stopping at the first damaged or truncated
/// record. A missing file reads as empty and undamaged.
///
/// # Errors
///
/// Propagates I/O errors other than "file not found".
pub fn read_journal(path: &Path) -> io::Result<JournalRead> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalRead::fresh()),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() {
        return Ok(JournalRead::fresh());
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(JournalRead {
            payloads: Vec::new(),
            damage: Some(JournalDamage::BadMagic),
            valid_len: 0,
        });
    }
    let mut payloads = Vec::new();
    let mut at = MAGIC.len();
    loop {
        if at == bytes.len() {
            return Ok(JournalRead { payloads, damage: None, valid_len: at as u64 });
        }
        let header_end = at + RECORD_HEADER_BYTES as usize;
        if header_end > bytes.len() {
            return Ok(JournalRead {
                payloads,
                damage: Some(JournalDamage::TruncatedRecord { offset: at as u64 }),
                valid_len: at as u64,
            });
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[at..at + 4]);
        let len = u32::from_le_bytes(len4) as usize;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&bytes[at + 4..header_end]);
        let stored = u64::from_le_bytes(sum8);
        let payload_end = header_end + len;
        if payload_end > bytes.len() {
            return Ok(JournalRead {
                payloads,
                damage: Some(JournalDamage::TruncatedRecord { offset: at as u64 }),
                valid_len: at as u64,
            });
        }
        let payload = &bytes[header_end..payload_end];
        if fnv1a64(payload) != stored {
            return Ok(JournalRead {
                payloads,
                damage: Some(JournalDamage::ChecksumMismatch { offset: at as u64 }),
                valid_len: at as u64,
            });
        }
        payloads.push(payload.to_vec());
        at = payload_end;
    }
}

/// An append handle to a journal whose damaged tail (if any) has been
/// truncated away. Every append is a single unbuffered `write_all`, so
/// records committed before a SIGKILL survive it.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Opens (creating if necessary) the journal at `path`, reads its
    /// intact records, truncates any damaged tail, and returns the
    /// writer positioned for appending plus what was read.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors (open, read, truncate, seek).
    pub fn open_repairing(path: &Path) -> io::Result<(JournalWriter, JournalRead)> {
        let read = read_journal(path)?;
        // Deliberately not `truncate(true)`: the repair below keeps the
        // valid prefix and cuts only the damaged tail.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        if read.valid_len == 0 {
            // Fresh or fully untrusted file: start over with magic.
            file.set_len(0)?;
            file.write_all(MAGIC)?;
        } else {
            file.set_len(read.valid_len)?;
            file.seek(SeekFrom::End(0))?;
        }
        Ok((JournalWriter { file }, read))
    }

    /// Appends one record (length, checksum, payload) in a single
    /// write. The payload length must fit in a `u32`.
    ///
    /// # Errors
    ///
    /// Propagates write errors, and rejects payloads over 4 GiB.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "journal payload exceeds u32 length")
        })?;
        let mut record = Vec::with_capacity(RECORD_HEADER_BYTES as usize + payload.len());
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        record.extend_from_slice(payload);
        self.file.write_all(&record)
    }
}

/// Byte offset of the `index`-th intact record's header, or `None` if
/// the journal holds fewer records. Shared by the corruption helpers.
fn record_offset(path: &Path, index: usize) -> io::Result<Option<(u64, u64)>> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(None);
    }
    let mut at = MAGIC.len();
    let mut seen = 0usize;
    while at + RECORD_HEADER_BYTES as usize <= bytes.len() {
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[at..at + 4]);
        let len = u32::from_le_bytes(len4) as u64;
        let total = RECORD_HEADER_BYTES + len;
        if at as u64 + total > bytes.len() as u64 {
            return Ok(None);
        }
        if seen == index {
            return Ok(Some((at as u64, total)));
        }
        seen += 1;
        at += total as usize;
    }
    Ok(None)
}

/// Test/fault-injection helper: flips one byte of the `index`-th
/// record's stored checksum in place. Returns `false` when the journal
/// has no such record.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn corrupt_record_checksum(path: &Path, index: usize) -> io::Result<bool> {
    let Some((offset, _)) = record_offset(path, index)? else {
        return Ok(false);
    };
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.seek(SeekFrom::Start(offset + 4))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(offset + 4))?;
    file.write_all(&byte)?;
    Ok(true)
}

/// Test/fault-injection helper: truncates the file in the middle of
/// the `index`-th record (half-way through its payload), simulating a
/// crash during append. Returns `false` when the journal has no such
/// record.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn truncate_mid_record(path: &Path, index: usize) -> io::Result<bool> {
    let Some((offset, total)) = record_offset(path, index)? else {
        return Ok(false);
    };
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(offset + RECORD_HEADER_BYTES + (total - RECORD_HEADER_BYTES) / 2)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("laperm-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn payloads(read: &JournalRead) -> Vec<&str> {
        read.payloads.iter().map(|p| std::str::from_utf8(p).unwrap()).collect()
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn missing_and_empty_files_read_as_fresh() {
        let path = temp_path("fresh");
        assert_eq!(read_journal(&path).unwrap(), JournalRead::fresh());
        std::fs::write(&path, b"").unwrap();
        assert_eq!(read_journal(&path).unwrap(), JournalRead::fresh());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_path("roundtrip");
        {
            let (mut w, read) = JournalWriter::open_repairing(&path).unwrap();
            assert!(read.payloads.is_empty());
            w.append(b"one").unwrap();
            w.append(b"two").unwrap();
            w.append(b"").unwrap();
        }
        let read = read_journal(&path).unwrap();
        assert_eq!(payloads(&read), ["one", "two", ""]);
        assert_eq!(read.damage, None);
        assert_eq!(read.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_detected_and_repaired() {
        let path = temp_path("truncate");
        {
            let (mut w, _) = JournalWriter::open_repairing(&path).unwrap();
            w.append(b"keep-me").unwrap();
            w.append(b"torn-record").unwrap();
        }
        assert!(truncate_mid_record(&path, 1).unwrap());
        let read = read_journal(&path).unwrap();
        assert_eq!(payloads(&read), ["keep-me"]);
        assert!(matches!(read.damage, Some(JournalDamage::TruncatedRecord { .. })));

        // Repairing reopen drops the torn tail; new appends land after
        // the surviving record.
        {
            let (mut w, read) = JournalWriter::open_repairing(&path).unwrap();
            assert_eq!(payloads(&read), ["keep-me"]);
            w.append(b"after-repair").unwrap();
        }
        let read = read_journal(&path).unwrap();
        assert_eq!(payloads(&read), ["keep-me", "after-repair"]);
        assert_eq!(read.damage, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn single_truncated_record_reads_as_empty() {
        let path = temp_path("truncate-first");
        {
            let (mut w, _) = JournalWriter::open_repairing(&path).unwrap();
            w.append(b"only").unwrap();
        }
        assert!(truncate_mid_record(&path, 0).unwrap());
        let read = read_journal(&path).unwrap();
        assert!(read.payloads.is_empty());
        assert!(matches!(read.damage, Some(JournalDamage::TruncatedRecord { .. })));
        assert_eq!(read.valid_len, MAGIC.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_mismatch_mid_file_drops_the_suffix() {
        let path = temp_path("checksum");
        {
            let (mut w, _) = JournalWriter::open_repairing(&path).unwrap();
            w.append(b"alpha").unwrap();
            w.append(b"beta").unwrap();
            w.append(b"gamma").unwrap();
        }
        assert!(corrupt_record_checksum(&path, 1).unwrap());
        let read = read_journal(&path).unwrap();
        // Record boundaries after a damaged record are untrusted:
        // "gamma" is dropped along with "beta" and must be recomputed.
        assert_eq!(payloads(&read), ["alpha"]);
        assert!(matches!(read.damage, Some(JournalDamage::ChecksumMismatch { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_trusts_nothing() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAJRNL-and-some-bytes").unwrap();
        let read = read_journal(&path).unwrap();
        assert!(read.payloads.is_empty());
        assert_eq!(read.damage, Some(JournalDamage::BadMagic));
        assert_eq!(read.valid_len, 0);
        // Repairing open starts the journal over.
        {
            let (mut w, _) = JournalWriter::open_repairing(&path).unwrap();
            w.append(b"fresh-start").unwrap();
        }
        let read = read_journal(&path).unwrap();
        assert_eq!(payloads(&read), ["fresh-start"]);
        assert_eq!(read.damage, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_helpers_report_missing_records() {
        let path = temp_path("helpers");
        {
            let (mut w, _) = JournalWriter::open_repairing(&path).unwrap();
            w.append(b"only").unwrap();
        }
        assert!(!corrupt_record_checksum(&path, 5).unwrap());
        assert!(!truncate_mid_record(&path, 5).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
}
