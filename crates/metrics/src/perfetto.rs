//! Chrome/Perfetto `trace_event` JSON export.
//!
//! [`perfetto_json`] renders one run — its [`TraceRecord`] stream, final
//! [`SimStats`], and optional [`MachineSample`] series — as a JSON
//! document loadable directly in <https://ui.perfetto.dev> or
//! `chrome://tracing`:
//!
//! * each SMX is a process track (pid = SMX index) carrying the TB
//!   residency spans that ran on it, as async `b`/`e` pairs whose
//!   category distinguishes `parent` from `child` TBs;
//! * device launches, stage-3 steals, and backup adoptions are instant
//!   events on the SMX they happened on;
//! * queue-set occupancies and windowed IPC are counter tracks;
//! * KMU/KDU activity, priority assignment, and fast-forward jumps live
//!   on a synthetic "Engine" track (pid = number of SMXs);
//! * engine-profiled runs add a "Host" track (pid = number of SMXs + 1)
//!   whose `host:<component>` spans lay the sampled host-nanosecond
//!   cost of each pipeline stage end to end, so wall-time hot spots
//!   render next to the sim-time story they explain;
//! * latency-profiled runs draw the launch-DAG critical path as flow
//!   arrows (`s`/`f` pairs): one arrow per parent→child edge on the
//!   chain, leaving the parent's track when the child is created and
//!   landing on the child's track when it dispatches, so the
//!   scheduling-induced inflation is visible as arrow length.
//!
//! Timestamps are simulation cycles used directly as the format's
//! microsecond `ts` field (1 cycle = 1 µs on screen). Everything is
//! hand-rolled — the workspace has no serde — and [`validate_trace`]
//! re-parses a document line by line to enforce the invariants CI cares
//! about: well-formed shape, non-decreasing `ts`, and matched `b`/`e`
//! pairs.

use gpu_sim::stats::{MachineSample, SimStats, ENGINE_HOST_COMPONENTS};
use gpu_sim::trace::{TraceEvent, TraceRecord};
use std::collections::HashMap;

/// Sort rank so simultaneous events order sensibly: metadata first, then
/// span opens, then counters/instants, then span closes.
fn rank(ph: char) -> u8 {
    match ph {
        'M' => 0,
        'b' => 1,
        // Flow points sort with counters/instants: an `f` landing at a
        // child's dispatch cycle must follow the `b` that opens its span.
        'C' | 'i' | 'X' | 's' | 'f' => 2,
        _ => 3,
    }
}

/// Renders a run as a Chrome `trace_event` JSON document (object format,
/// one event per line). `samples`, when non-empty, adds a windowed IPC
/// counter; pass `&[]` if none were collected.
pub fn perfetto_json(
    records: &[TraceRecord],
    stats: &SimStats,
    samples: &[MachineSample],
    num_smxs: u16,
) -> String {
    let engine_pid = u64::from(num_smxs);
    let mut events: Vec<(u64, u8, String)> = Vec::new();
    let mut push = |ts: u64, ph: char, line: String| {
        events.push((ts, rank(ph), line));
    };

    // Track metadata: one process per SMX plus the engine track, with
    // sort indices keeping SMX order stable in the UI.
    for p in 0..u64::from(num_smxs) {
        push(
            0,
            'M',
            format!(
                "{{\"ph\": \"M\", \"pid\": {p}, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"SMX{p}\"}}}}"
            ),
        );
        push(
            0,
            'M',
            format!(
                "{{\"ph\": \"M\", \"pid\": {p}, \"tid\": 0, \"name\": \"process_sort_index\", \
                 \"args\": {{\"sort_index\": {p}}}}}"
            ),
        );
    }
    push(
        0,
        'M',
        format!(
            "{{\"ph\": \"M\", \"pid\": {engine_pid}, \"tid\": 0, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"Engine\"}}}}"
        ),
    );

    // TB residency spans: async begin/end pairs matched by category + id,
    // drawn on the SMX the TB ran on. The record index is a unique id.
    let mut smx_of: HashMap<(u32, u32), u64> = HashMap::new();
    for (i, r) in stats.tb_records.iter().enumerate() {
        let pid = u64::from(r.smx.0);
        smx_of.insert((r.tb.batch.0, r.tb.index), pid);
        let cat = if r.is_dynamic { "child" } else { "parent" };
        let name = format!("B{}.{}", r.tb.batch.0, r.tb.index);
        let end = if r.finished_at >= r.dispatched_at { r.finished_at } else { stats.cycles };
        let parent = match r.parent {
            Some((pb, ptb, psmx)) => {
                format!(", \"parent\": \"B{}.{}\", \"parent_smx\": {}", pb.0, ptb, psmx.0)
            }
            None => String::new(),
        };
        push(
            r.dispatched_at,
            'b',
            format!(
                "{{\"ph\": \"b\", \"cat\": \"{cat}\", \"id\": \"0x{i:x}\", \"pid\": {pid}, \
                 \"tid\": 0, \"name\": \"{name}\", \"ts\": {}, \
                 \"args\": {{\"priority\": {}, \"kind\": {}, \"created_at\": {}{parent}}}}}",
                r.dispatched_at, r.priority.0, r.kind.0, r.created_at
            ),
        );
        push(
            end,
            'e',
            format!(
                "{{\"ph\": \"e\", \"cat\": \"{cat}\", \"id\": \"0x{i:x}\", \"pid\": {pid}, \
                 \"tid\": 0, \"name\": \"{name}\", \"ts\": {end}}}"
            ),
        );
    }

    // Launch-DAG critical path: one flow arrow per edge of the chain,
    // from the parent's track at the child's creation cycle to the
    // child's track at its dispatch cycle. The arrow's length on screen
    // IS the child's launch-path + queue-wait — the scheduling-induced
    // part of the critical path.
    if let Some(lat) = &stats.latency {
        let mut index_of: HashMap<(u32, u32), usize> = HashMap::new();
        for (i, r) in stats.tb_records.iter().enumerate() {
            index_of.insert((r.tb.batch.0, r.tb.index), i);
        }
        for (edge, pair) in lat.critical_path.chain.windows(2).enumerate() {
            let (Some(&pi), Some(&ci)) = (
                index_of.get(&(pair[0].batch.0, pair[0].index)),
                index_of.get(&(pair[1].batch.0, pair[1].index)),
            ) else {
                continue;
            };
            let (parent, child) = (&stats.tb_records[pi], &stats.tb_records[ci]);
            let queue_wait = child.dispatched_at.saturating_sub(child.created_at);
            push(
                child.created_at,
                's',
                format!(
                    "{{\"ph\": \"s\", \"cat\": \"critical_path\", \"id\": \"0xcp{edge:x}\", \
                     \"pid\": {}, \"tid\": 0, \"name\": \"critical-path\", \"ts\": {}, \
                     \"args\": {{\"from\": \"B{}.{}\", \"to\": \"B{}.{}\"}}}}",
                    u64::from(parent.smx.0),
                    child.created_at,
                    parent.tb.batch.0,
                    parent.tb.index,
                    child.tb.batch.0,
                    child.tb.index
                ),
            );
            push(
                child.dispatched_at,
                'f',
                format!(
                    "{{\"ph\": \"f\", \"bp\": \"e\", \"cat\": \"critical_path\", \
                     \"id\": \"0xcp{edge:x}\", \"pid\": {}, \"tid\": 0, \
                     \"name\": \"critical-path\", \"ts\": {}, \
                     \"args\": {{\"queue_wait\": {queue_wait}}}}}",
                    u64::from(child.smx.0),
                    child.dispatched_at
                ),
            );
        }
    }

    // Engine events, queue counters, and SMX instants from the trace.
    for r in records {
        let ts = r.cycle;
        match r.event {
            TraceEvent::KernelQueued { batch } => push(
                ts,
                'i',
                format!(
                    "{{\"ph\": \"i\", \"pid\": {engine_pid}, \"tid\": 0, \"s\": \"p\", \
                     \"name\": \"kernel-queued\", \"ts\": {ts}, \"args\": {{\"batch\": {}}}}}",
                    batch.0
                ),
            ),
            TraceEvent::KernelToKdu { batch, entry } => push(
                ts,
                'i',
                format!(
                    "{{\"ph\": \"i\", \"pid\": {engine_pid}, \"tid\": 0, \"s\": \"p\", \
                     \"name\": \"kernel-to-kdu\", \"ts\": {ts}, \
                     \"args\": {{\"batch\": {}, \"entry\": {entry}}}}}",
                    batch.0
                ),
            ),
            TraceEvent::GroupCoalesced { batch, entry } => push(
                ts,
                'i',
                format!(
                    "{{\"ph\": \"i\", \"pid\": {engine_pid}, \"tid\": 0, \"s\": \"p\", \
                     \"name\": \"group-coalesced\", \"ts\": {ts}, \
                     \"args\": {{\"batch\": {}, \"entry\": {entry}}}}}",
                    batch.0
                ),
            ),
            // Dispatch/retire pairs are already rendered as spans from
            // `stats.tb_records`.
            TraceEvent::TbDispatched { .. } | TraceEvent::TbCompleted { .. } => {}
            TraceEvent::LaunchIssued { by, num_tbs } => {
                let pid = smx_of.get(&(by.batch.0, by.index)).copied().unwrap_or(engine_pid);
                push(
                    ts,
                    'i',
                    format!(
                        "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": 0, \"s\": \"t\", \
                         \"name\": \"launch\", \"ts\": {ts}, \
                         \"args\": {{\"by\": \"B{}.{}\", \"num_tbs\": {num_tbs}}}}}",
                        by.batch.0, by.index
                    ),
                );
            }
            TraceEvent::QueueEnqueued { set, depth, .. }
            | TraceEvent::QueueDequeued { set, depth, .. } => push(
                ts,
                'C',
                format!(
                    "{{\"ph\": \"C\", \"pid\": {}, \"tid\": 0, \"name\": \"queue_depth\", \
                     \"ts\": {ts}, \"args\": {{\"entries\": {depth}}}}}",
                    u64::from(set)
                ),
            ),
            TraceEvent::Stage3Steal { thief, victim_set, batch, tbs_moved } => push(
                ts,
                'i',
                format!(
                    "{{\"ph\": \"i\", \"pid\": {}, \"tid\": 0, \"s\": \"t\", \
                     \"name\": \"steal\", \"ts\": {ts}, \
                     \"args\": {{\"victim_set\": {victim_set}, \"batch\": {}, \
                     \"tbs_moved\": {tbs_moved}}}}}",
                    u64::from(thief.0),
                    batch.0
                ),
            ),
            TraceEvent::PriorityAssigned { batch, raw, clamped } => push(
                ts,
                'i',
                format!(
                    "{{\"ph\": \"i\", \"pid\": {engine_pid}, \"tid\": 0, \"s\": \"p\", \
                     \"name\": \"priority-assigned\", \"ts\": {ts}, \
                     \"args\": {{\"batch\": {}, \"raw\": {}, \"clamped\": {}}}}}",
                    batch.0, raw.0, clamped.0
                ),
            ),
            TraceEvent::BackupAdopted { smx, backup_set } => push(
                ts,
                'i',
                format!(
                    "{{\"ph\": \"i\", \"pid\": {}, \"tid\": 0, \"s\": \"t\", \
                     \"name\": \"backup-adopted\", \"ts\": {ts}, \
                     \"args\": {{\"backup_set\": {backup_set}}}}}",
                    u64::from(smx.0)
                ),
            ),
            TraceEvent::FastForward { from, to } => push(
                from,
                'X',
                format!(
                    "{{\"ph\": \"X\", \"pid\": {engine_pid}, \"tid\": 0, \
                     \"name\": \"fast-forward\", \"ts\": {from}, \"dur\": {}}}",
                    to - from
                ),
            ),
        }
    }

    // Host-time track: one span per pipeline stage, durations in
    // sampled host nanoseconds laid end to end from ts 0. Only emitted
    // when a run profiled the engine and actually sampled something —
    // the track is telemetry about the simulator process, not the
    // simulated machine.
    let host_pid = u64::from(num_smxs) + 1;
    if let Some(eng) = stats.engine.as_ref().filter(|e| e.host_total_ns() > 0) {
        push(
            0,
            'M',
            format!(
                "{{\"ph\": \"M\", \"pid\": {host_pid}, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"Host\"}}}}"
            ),
        );
        let mut at = 0u64;
        for (i, comp) in ENGINE_HOST_COMPONENTS.iter().enumerate() {
            let ns = eng.host_ns[i];
            if ns == 0 {
                continue;
            }
            push(
                at,
                'X',
                format!(
                    "{{\"ph\": \"X\", \"pid\": {host_pid}, \"tid\": 0, \
                     \"name\": \"host:{comp}\", \"ts\": {at}, \"dur\": {ns}, \
                     \"args\": {{\"samples\": {}}}}}",
                    eng.host_samples
                ),
            );
            at += ns;
        }
    }

    // Windowed IPC counter on the engine track.
    for pair in samples.windows(2) {
        let ts = pair[1].cycle;
        push(
            ts,
            'C',
            format!(
                "{{\"ph\": \"C\", \"pid\": {engine_pid}, \"tid\": 0, \"name\": \"ipc\", \
                 \"ts\": {ts}, \"args\": {{\"ipc\": {:.4}}}}}",
                pair[1].ipc_since(&pair[0])
            ),
        );
    }

    // Windowed parent-child reuse counters, only for profiled runs (the
    // sample fields are all-zero otherwise and would draw flat tracks).
    if stats.locality.is_some() {
        for pair in samples.windows(2) {
            let ts = pair[1].cycle;
            let l1 = pair[1].l1_parent_child_hits.saturating_sub(pair[0].l1_parent_child_hits);
            let l2 = pair[1].l2_parent_child_hits.saturating_sub(pair[0].l2_parent_child_hits);
            push(
                ts,
                'C',
                format!(
                    "{{\"ph\": \"C\", \"pid\": {engine_pid}, \"tid\": 0, \
                     \"name\": \"l1_parent_child_hits\", \"ts\": {ts}, \
                     \"args\": {{\"hits\": {l1}}}}}"
                ),
            );
            push(
                ts,
                'C',
                format!(
                    "{{\"ph\": \"C\", \"pid\": {engine_pid}, \"tid\": 0, \
                     \"name\": \"l2_parent_child_hits\", \"ts\": {ts}, \
                     \"args\": {{\"hits\": {l2}}}}}"
                ),
            );
        }
    }

    events.sort_by_key(|a| (a.0, a.1));
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, (_, _, line)) in events.iter().enumerate() {
        out.push_str(line);
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// Summary counts from a validated trace document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events.
    pub events: usize,
    /// `SMX<n>` process tracks declared.
    pub smx_tracks: usize,
    /// Completed `b`/`e` span pairs.
    pub spans: usize,
    /// Counter samples (`ph: C`).
    pub counters: usize,
    /// Of `counters`, locality provenance samples (the
    /// `l1_parent_child_hits` / `l2_parent_child_hits` tracks emitted
    /// for profiled runs).
    pub prov_counters: usize,
    /// Instant events (`ph: i`).
    pub instants: usize,
    /// Host-time stage spans (`ph: X` events named `host:*`, emitted
    /// only for engine-profiled runs).
    pub host_spans: usize,
    /// Completed `s`/`f` flow pairs (critical-path edges, emitted only
    /// for latency-profiled runs).
    pub flows: usize,
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Re-parses a [`perfetto_json`] document and checks the invariants the
/// CI smoke step enforces: the object wrapper is well formed, braces
/// balance on every event line, `ts` never decreases, every async
/// span open has exactly one matching close (by category + id), and
/// every flow start (`s`) has exactly one finish (`f`).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_trace(json: &str) -> Result<TraceCheck, String> {
    let trimmed = json.trim();
    if !trimmed.starts_with("{\"traceEvents\": [") || !trimmed.ends_with("]}") {
        return Err("missing traceEvents object wrapper".to_string());
    }
    let mut check = TraceCheck::default();
    let mut last_ts = 0u64;
    let mut open_spans: HashMap<(String, String), usize> = HashMap::new();
    let mut open_flows: HashMap<(String, String), usize> = HashMap::new();
    for (lineno, raw) in json.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"ph\"") {
            continue;
        }
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        if opens != closes {
            return Err(format!("line {}: unbalanced braces", lineno + 1));
        }
        let ph = field_str(line, "ph").ok_or_else(|| format!("line {}: no ph", lineno + 1))?;
        check.events += 1;
        if ph != "M" {
            let ts = field_num(line, "ts").ok_or_else(|| format!("line {}: no ts", lineno + 1))?;
            if ts < last_ts {
                return Err(format!("line {}: ts {} decreases below {}", lineno + 1, ts, last_ts));
            }
            last_ts = ts;
        }
        match ph.as_str() {
            "M" => {
                if field_str(line, "name").as_deref() == Some("process_name") {
                    let args_name = line.rfind("\"name\": \"").map(|i| &line[i + 9..]);
                    if args_name.is_some_and(|n| n.starts_with("SMX")) {
                        check.smx_tracks += 1;
                    }
                }
            }
            "b" | "e" => {
                let cat = field_str(line, "cat")
                    .ok_or_else(|| format!("line {}: span without cat", lineno + 1))?;
                let id = field_str(line, "id")
                    .ok_or_else(|| format!("line {}: span without id", lineno + 1))?;
                let entry = open_spans.entry((cat, id)).or_insert(0);
                if ph == "b" {
                    *entry += 1;
                } else {
                    if *entry == 0 {
                        return Err(format!("line {}: e without matching b", lineno + 1));
                    }
                    *entry -= 1;
                    check.spans += 1;
                }
            }
            "C" => {
                check.counters += 1;
                if matches!(
                    field_str(line, "name").as_deref(),
                    Some("l1_parent_child_hits" | "l2_parent_child_hits")
                ) {
                    check.prov_counters += 1;
                }
            }
            "i" | "X" => {
                check.instants += 1;
                if ph == "X" && field_str(line, "name").is_some_and(|n| n.starts_with("host:")) {
                    check.host_spans += 1;
                }
            }
            "s" | "t" | "f" => {
                let cat = field_str(line, "cat")
                    .ok_or_else(|| format!("line {}: flow without cat", lineno + 1))?;
                let id = field_str(line, "id")
                    .ok_or_else(|| format!("line {}: flow without id", lineno + 1))?;
                let entry = open_flows.entry((cat, id)).or_insert(0);
                match ph.as_str() {
                    "s" => *entry += 1,
                    "t" => {
                        if *entry == 0 {
                            return Err(format!("line {}: t without matching s", lineno + 1));
                        }
                    }
                    _ => {
                        if *entry == 0 {
                            return Err(format!("line {}: f without matching s", lineno + 1));
                        }
                        *entry -= 1;
                        check.flows += 1;
                    }
                }
            }
            other => return Err(format!("line {}: unknown ph {other}", lineno + 1)),
        }
    }
    if let Some(((cat, id), _)) = open_spans.iter().find(|(_, &n)| n > 0) {
        return Err(format!("unclosed span {cat}/{id}"));
    }
    if let Some(((cat, id), _)) = open_flows.iter().find(|(_, &n)| n > 0) {
        return Err(format!("unfinished flow {cat}/{id}"));
    }
    if check.events == 0 {
        return Err("empty trace".to_string());
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use gpu_sim::program::KernelKindId;
    use gpu_sim::stats::TbRecord;
    use gpu_sim::types::{BatchId, Priority, SmxId, TbRef};

    fn tb(batch: u32, index: u32, smx: u16, dynamic: bool, span: (u64, u64)) -> TbRecord {
        TbRecord {
            tb: TbRef { batch: BatchId(batch), index },
            kind: KernelKindId(u16::from(dynamic)),
            smx: SmxId(smx),
            priority: Priority(u8::from(dynamic)),
            is_dynamic: dynamic,
            parent: dynamic.then_some((BatchId(0), 0, SmxId(0))),
            created_at: span.0.saturating_sub(2),
            dispatched_at: span.0,
            finished_at: span.1,
        }
    }

    fn sample_stats() -> SimStats {
        SimStats {
            cycles: 100,
            tb_records: vec![tb(0, 0, 0, false, (0, 50)), tb(1, 0, 1, true, (20, 70))],
            ..Default::default()
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord { cycle: 0, event: TraceEvent::KernelQueued { batch: BatchId(0) } },
            TraceRecord {
                cycle: 4,
                event: TraceEvent::QueueEnqueued { batch: BatchId(1), set: 0, level: 1, depth: 1 },
            },
            TraceRecord {
                cycle: 10,
                event: TraceEvent::LaunchIssued {
                    by: TbRef { batch: BatchId(0), index: 0 },
                    num_tbs: 1,
                },
            },
            TraceRecord {
                cycle: 18,
                event: TraceEvent::Stage3Steal {
                    thief: SmxId(1),
                    victim_set: 0,
                    batch: BatchId(1),
                    tbs_moved: 1,
                },
            },
            TraceRecord { cycle: 80, event: TraceEvent::FastForward { from: 80, to: 100 } },
        ]
    }

    #[test]
    fn export_validates_and_counts_tracks() {
        let json = perfetto_json(&sample_records(), &sample_stats(), &[], 4);
        let check = validate_trace(&json).expect("valid trace");
        assert_eq!(check.smx_tracks, 4);
        assert_eq!(check.spans, 2);
        assert!(check.counters >= 1);
        assert!(check.instants >= 3);
        assert!(json.contains("\"cat\": \"parent\""));
        assert!(json.contains("\"cat\": \"child\""));
        assert!(json.contains("\"name\": \"steal\""));
        assert!(json.contains("\"name\": \"fast-forward\""));
    }

    #[test]
    fn ipc_counter_from_samples() {
        let samples = [
            MachineSample { cycle: 0, thread_instructions: 0, ..Default::default() },
            MachineSample { cycle: 50, thread_instructions: 100, ..Default::default() },
            MachineSample { cycle: 100, thread_instructions: 300, ..Default::default() },
        ];
        let json = perfetto_json(&[], &sample_stats(), &samples, 2);
        assert!(json.contains("\"name\": \"ipc\""));
        assert!(json.contains("\"ipc\": 2.0000"));
        assert!(json.contains("\"ipc\": 4.0000"));
        validate_trace(&json).expect("valid trace");
    }

    #[test]
    fn prov_counters_emitted_only_for_profiled_runs() {
        let samples = [
            MachineSample { cycle: 0, ..Default::default() },
            MachineSample {
                cycle: 50,
                thread_instructions: 100,
                l1_parent_child_hits: 30,
                l2_parent_child_hits: 10,
                ..Default::default()
            },
            MachineSample {
                cycle: 100,
                thread_instructions: 200,
                l1_parent_child_hits: 70,
                l2_parent_child_hits: 15,
                ..Default::default()
            },
        ];
        let plain = perfetto_json(&[], &sample_stats(), &samples, 2);
        assert_eq!(validate_trace(&plain).unwrap().prov_counters, 0);
        assert!(!plain.contains("l1_parent_child_hits"));

        let mut stats = sample_stats();
        stats.locality = Some(Default::default());
        let profiled = perfetto_json(&[], &stats, &samples, 2);
        let check = validate_trace(&profiled).expect("valid trace");
        assert_eq!(check.prov_counters, 4, "two windows x two levels");
        assert!(profiled.contains("\"name\": \"l1_parent_child_hits\""));
        assert!(profiled.contains("\"hits\": 40")); // 70 - 30 in window 2
        assert!(profiled.contains("\"hits\": 5")); // 15 - 10 in window 2
    }

    #[test]
    fn host_track_emitted_only_for_engine_profiled_runs() {
        use gpu_sim::stats::EngineStats;

        let plain = perfetto_json(&sample_records(), &sample_stats(), &[], 4);
        assert_eq!(validate_trace(&plain).unwrap().host_spans, 0);
        assert!(!plain.contains("\"name\": \"Host\""));

        let mut stats = sample_stats();
        stats.engine = Some(EngineStats {
            loop_iterations: 10,
            host_samples: 2,
            host_ns: [100, 0, 50, 900, 25],
            ..EngineStats::default()
        });
        let profiled = perfetto_json(&sample_records(), &stats, &[], 4);
        let check = validate_trace(&profiled).expect("valid trace");
        assert_eq!(check.host_spans, 4, "four stages with nonzero host time");
        assert!(profiled.contains("\"name\": \"Host\""));
        // Spans lay end to end: tb_dispatch starts after the 150 ns of
        // the two stages before it.
        assert!(profiled.contains("\"name\": \"host:smx\", \"ts\": 150, \"dur\": 900"));
        assert!(!profiled.contains("host:kmu_dispatch"), "zero-cost stage omitted");
    }

    #[test]
    fn critical_path_flows_emitted_only_for_latency_profiled_runs() {
        use gpu_sim::stats::{CriticalPath, LatencyStats};

        let plain = perfetto_json(&[], &sample_stats(), &[], 4);
        assert_eq!(validate_trace(&plain).unwrap().flows, 0);
        assert!(!plain.contains("critical_path"));

        let mut stats = sample_stats();
        stats.latency = Some(LatencyStats {
            critical_path: CriticalPath {
                len: 2,
                cycles: 70,
                queue_cycles: 20,
                exec_cycles: 50,
                chain: vec![
                    TbRef { batch: BatchId(0), index: 0 },
                    TbRef { batch: BatchId(1), index: 0 },
                ],
            },
            ..LatencyStats::default()
        });
        let profiled = perfetto_json(&[], &stats, &[], 4);
        let check = validate_trace(&profiled).expect("valid trace");
        assert_eq!(check.flows, 1, "one edge in a two-TB chain");
        // The arrow leaves SMX0 (parent) when the child is created at
        // cycle 18 and lands on SMX1 (child) at its dispatch, cycle 20.
        assert!(profiled.contains("\"ph\": \"s\", \"cat\": \"critical_path\""));
        assert!(
            profiled.contains("\"pid\": 0, \"tid\": 0, \"name\": \"critical-path\", \"ts\": 18")
        );
        assert!(profiled.contains("\"ph\": \"f\", \"bp\": \"e\""));
        assert!(profiled.contains("\"queue_wait\": 2"));
    }

    #[test]
    fn validator_rejects_unmatched_flows() {
        let json = "{\"traceEvents\": [\n\
            {\"ph\": \"s\", \"cat\": \"critical_path\", \"id\": \"0xcp0\", \"pid\": 0, \
             \"tid\": 0, \"name\": \"critical-path\", \"ts\": 1}\n\
            ]}";
        let err = validate_trace(json).unwrap_err();
        assert!(err.contains("unfinished flow"), "{err}");

        let json = "{\"traceEvents\": [\n\
            {\"ph\": \"f\", \"bp\": \"e\", \"cat\": \"critical_path\", \"id\": \"0xcp0\", \
             \"pid\": 0, \"tid\": 0, \"name\": \"critical-path\", \"ts\": 1}\n\
            ]}";
        let err = validate_trace(json).unwrap_err();
        assert!(err.contains("f without matching s"), "{err}");
    }

    #[test]
    fn validator_rejects_decreasing_ts() {
        let json = "{\"traceEvents\": [\n\
            {\"ph\": \"i\", \"pid\": 0, \"tid\": 0, \"s\": \"p\", \"name\": \"a\", \"ts\": 5},\n\
            {\"ph\": \"i\", \"pid\": 0, \"tid\": 0, \"s\": \"p\", \"name\": \"b\", \"ts\": 3}\n\
            ]}";
        let err = validate_trace(json).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }

    #[test]
    fn validator_rejects_unmatched_spans() {
        let json = "{\"traceEvents\": [\n\
            {\"ph\": \"b\", \"cat\": \"parent\", \"id\": \"0x1\", \"pid\": 0, \"tid\": 0, \
             \"name\": \"B0.0\", \"ts\": 1}\n\
            ]}";
        let err = validate_trace(json).unwrap_err();
        assert!(err.contains("unclosed"), "{err}");

        let json = "{\"traceEvents\": [\n\
            {\"ph\": \"e\", \"cat\": \"parent\", \"id\": \"0x1\", \"pid\": 0, \"tid\": 0, \
             \"name\": \"B0.0\", \"ts\": 1}\n\
            ]}";
        let err = validate_trace(json).unwrap_err();
        assert!(err.contains("without matching"), "{err}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace("{\"traceEvents\": [\n]}").is_err());
    }
}
