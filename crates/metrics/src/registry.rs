//! A lightweight counter/gauge/histogram registry.
//!
//! One [`MetricsRegistry`] collects everything a run wants to report:
//! monotonically accumulated counters, point-in-time gauges, and
//! [`Histogram`]s with fixed power-of-two buckets (so recording is two
//! instructions and the memory footprint is constant, no matter how many
//! samples go in). The harness, timeline, Perfetto exporter, and the
//! `laperm-trace` CLI all speak this one vocabulary; [`registry_for_run`]
//! builds the standard registry from a finished run's statistics and
//! trace.

use std::collections::BTreeMap;

use gpu_sim::cache::ReuseClass;
use gpu_sim::stats::{Pow2Hist, SimStats, WakeSource, ENGINE_HOST_COMPONENTS};
use gpu_sim::trace::{TraceEvent, TraceRecord};

/// A histogram with fixed power-of-two buckets.
///
/// Bucket 0 counts the value 0; bucket `i >= 1` counts values in
/// `[2^(i-1), 2^i)`. With 65 buckets every `u64` is representable, so
/// [`record`](Self::record) never reallocates or saturates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Imports a simulator-side [`Pow2Hist`]. Both types use the same
    /// bucket rule (bucket 0 holds the value 0, bucket `i >= 1` holds
    /// `[2^(i-1), 2^i)`), so the copy is lossless.
    pub fn from_pow2(h: &Pow2Hist) -> Self {
        Histogram { buckets: h.buckets, count: h.count, sum: h.sum, max: h.max }
    }

    fn bucket_of(value: u64) -> usize {
        64 - value.leading_zeros() as usize
    }

    /// The inclusive upper bound of bucket `i` (its label).
    fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i).wrapping_sub(1).max(1u64 << (i - 1))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the top of the
    /// first bucket at which the cumulative count reaches `q * count`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= threshold {
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_hi(i), c))
            .collect()
    }
}

/// A named collection of counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (creating it at 0).
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge `name`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The histogram `name`, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Reads a counter (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A human-readable dump: one metric per line, histograms with
    /// count/mean/p50/p99/max.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<32}{v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name:<32}{v:.4}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<32}count {} / mean {:.1} / p50 <= {} / p99 <= {} / max {}\n",
                h.count(),
                h.mean(),
                h.quantile_upper_bound(0.5),
                h.quantile_upper_bound(0.99),
                h.max(),
            ));
        }
        out
    }

    /// Renders the registry as a JSON object (hand-rolled; the workspace
    /// has no serde). Histograms serialize their summary plus the
    /// non-empty `[bucket upper bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{name}\": {v}"));
            first = false;
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let mut first = true;
        for (name, v) in &self.gauges {
            out.push_str(if first { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{name}\": {v:.6}"));
            first = false;
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            out.push_str(if first { "\n" } else { ",\n" });
            let buckets: Vec<String> =
                h.nonzero_buckets().iter().map(|(hi, c)| format!("[{hi}, {c}]")).collect();
            out.push_str(&format!(
                "    \"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                h.count(),
                h.sum(),
                h.max(),
                buckets.join(", ")
            ));
            first = false;
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Builds the standard registry for one finished run: headline counters
/// and gauges from `stats`, plus child-wait, TB-residency, and
/// queue-depth histograms (the latter sampled from the trace's
/// enqueue/dequeue events, empty when no trace was collected).
pub fn registry_for_run(stats: &SimStats, records: &[TraceRecord]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.count("cycles", stats.cycles);
    reg.count("warp_instructions", stats.warp_instructions);
    reg.count("thread_instructions", stats.thread_instructions);
    reg.count("dram_accesses", stats.dram_accesses);
    reg.count("tbs_total", stats.tb_records.len() as u64);
    reg.count("tbs_dynamic", stats.dynamic_tbs() as u64);
    for (name, v) in &stats.scheduler_counters {
        reg.count(name, *v);
    }
    for (name, v) in &stats.launch_counters {
        reg.count(name, *v);
    }
    let stalls = stats.total_stalls();
    reg.count("stall_scoreboard_cycles", stalls.scoreboard);
    reg.count("stall_memory_pending_cycles", stalls.memory_pending);
    reg.count("stall_mshr_full_cycles", stalls.mshr_full);
    reg.count("stall_barrier_cycles", stalls.barrier);
    reg.count("stall_no_tb_cycles", stalls.no_tb);
    reg.count("stall_launch_path_cycles", stalls.launch_path);

    reg.gauge("ipc", stats.ipc());
    reg.gauge("l1_hit_rate", stats.l1.hit_rate());
    reg.gauge("l2_hit_rate", stats.l2.hit_rate());
    reg.gauge("parent_smx_affinity", stats.parent_smx_affinity());
    reg.gauge("smx_utilization", stats.smx_utilization());
    reg.gauge("load_imbalance", stats.load_imbalance());
    reg.gauge("mean_child_wait", stats.mean_child_wait());

    for r in &stats.tb_records {
        if r.is_dynamic {
            reg.histogram("child_wait_cycles").record(r.dispatched_at.saturating_sub(r.created_at));
        }
        let name = if r.is_dynamic { "child_resident_cycles" } else { "parent_resident_cycles" };
        reg.histogram(name).record(r.finished_at.saturating_sub(r.dispatched_at));
    }
    for r in records {
        match r.event {
            TraceEvent::QueueEnqueued { depth, .. } | TraceEvent::QueueDequeued { depth, .. } => {
                reg.histogram("queue_depth").record(u64::from(depth));
            }
            _ => {}
        }
    }
    if let Some(loc) = &stats.locality {
        for class in ReuseClass::ALL {
            reg.count(&format!("l1_hits_{}", class.name()), stats.l1.prov.class(class));
            reg.count(&format!("l2_hits_{}", class.name()), stats.l2.prov.class(class));
            let l1h = &loc.l1_reuse_dist[class.index()];
            if l1h.count > 0 {
                *reg.histogram(&format!("l1_reuse_dist_{}", class.name())) =
                    Histogram::from_pow2(l1h);
            }
            let l2h = &loc.l2_reuse_dist[class.index()];
            if l2h.count > 0 {
                *reg.histogram(&format!("l2_reuse_dist_{}", class.name())) =
                    Histogram::from_pow2(l2h);
            }
        }
        reg.count("l2_hits_same_smx", stats.l2.prov.same_smx);
        reg.count("l2_hits_cross_smx", stats.l2.prov.cross_smx);
        reg.count("bound_child_hits", loc.bind.bound_hits);
        reg.count("bound_child_parent_child_hits", loc.bind.bound_parent_child);
        reg.count("stolen_child_hits", loc.bind.stolen_hits);
        reg.count("stolen_child_parent_child_hits", loc.bind.stolen_parent_child);
        reg.gauge("l1_parent_child_share", stats.l1.prov.share(ReuseClass::ParentChild));
        reg.gauge("l2_parent_child_share", stats.l2.prov.share(ReuseClass::ParentChild));
    }
    if let Some(eng) = &stats.engine {
        reg.count("engine_loop_iterations", eng.loop_iterations);
        for source in WakeSource::ALL {
            reg.count(&format!("engine_wake_{}", source.name()), eng.wake_count(source));
        }
        for (hist, name) in [
            (&eng.heap_depth, "engine_heap_depth"),
            (&eng.events_per_cycle, "engine_events_per_cycle"),
            (&eng.jump_len, "engine_jump_len"),
        ] {
            if hist.count > 0 {
                *reg.histogram(name) = Histogram::from_pow2(hist);
            }
        }
        // Host-side wall time is telemetry, not simulation state: it
        // lives here (and in the Perfetto host track) but never in
        // repro.json.
        reg.count("engine_host_samples", eng.host_samples);
        for (i, comp) in ENGINE_HOST_COMPONENTS.iter().enumerate() {
            reg.count(&format!("engine_host_{comp}_ns"), eng.host_ns[i]);
        }
    }
    if let Some(lat) = &stats.latency {
        reg.count("latency_tbs", lat.tbs);
        reg.count("latency_partition_violations", lat.partition_violations);
        reg.count("latency_kmu_depth_hwm", lat.kmu_depth_hwm);
        for (hist, name) in [
            (&lat.launch_path, "latency_launch_path"),
            (&lat.kmu_wait, "latency_kmu_wait"),
            (&lat.queue_wait, "latency_queue_wait"),
            (&lat.dispatch_gap, "latency_dispatch_gap"),
            (&lat.exec, "latency_exec"),
            (&lat.lifetime, "latency_lifetime"),
            (&lat.child_queue_wait, "latency_child_queue_wait"),
            (&lat.bound_queue_wait, "latency_bound_queue_wait"),
            (&lat.stolen_queue_wait, "latency_stolen_queue_wait"),
        ] {
            if hist.count > 0 {
                *reg.histogram(name) = Histogram::from_pow2(hist);
            }
        }
        for (depth, hist) in &lat.depth_queue_wait {
            *reg.histogram(&format!("latency_queue_wait_depth{depth}")) =
                Histogram::from_pow2(hist);
        }
        reg.count("critical_path_len", u64::from(lat.critical_path.len));
        reg.count("critical_path_cycles", lat.critical_path.cycles);
        reg.count("critical_path_queue_cycles", lat.critical_path.queue_cycles);
        reg.count("critical_path_exec_cycles", lat.critical_path.exec_cycles);
    }
    reg
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use gpu_sim::types::BatchId;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.max(), 1024);
        let buckets = h.nonzero_buckets();
        // 0 | 1 | [2,3] | [4,7] | [8,15] | [1024,2047]
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1), (2047, 1)]);
    }

    #[test]
    fn histogram_quantiles_bound_from_above() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1000);
        assert!(h.quantile_upper_bound(0.5) >= 4);
        assert!(h.quantile_upper_bound(0.5) < 8);
        assert_eq!(h.quantile_upper_bound(1.0), 1000);
        assert_eq!(Histogram::new().quantile_upper_bound(0.5), 0);
        assert!((h.mean() - (99.0 * 4.0 + 1000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn registry_counts_gauges_and_renders() {
        let mut reg = MetricsRegistry::new();
        reg.count("widgets", 2);
        reg.count("widgets", 3);
        reg.gauge("speed", 1.5);
        reg.histogram("lat").record(7);
        assert_eq!(reg.counter_value("widgets"), 5);
        assert_eq!(reg.gauge_value("speed"), Some(1.5));
        assert_eq!(reg.histogram_value("lat").unwrap().count(), 1);
        let text = reg.render();
        assert!(text.contains("widgets"));
        assert!(text.contains("1.5000"));
        assert!(text.contains("p99"));
        let json = reg.to_json();
        assert!(json.contains("\"widgets\": 5"));
        assert!(json.contains("\"lat\": {\"count\": 1"));
    }

    #[test]
    fn run_registry_builds_standard_metrics() {
        use gpu_sim::program::KernelKindId;
        use gpu_sim::stats::TbRecord;
        use gpu_sim::types::{Priority, SmxId, TbRef};

        let stats = SimStats {
            cycles: 100,
            tb_records: vec![
                TbRecord {
                    tb: TbRef { batch: BatchId(0), index: 0 },
                    kind: KernelKindId(0),
                    smx: SmxId(0),
                    priority: Priority(0),
                    is_dynamic: false,
                    parent: None,
                    created_at: 0,
                    dispatched_at: 0,
                    finished_at: 50,
                },
                TbRecord {
                    tb: TbRef { batch: BatchId(1), index: 0 },
                    kind: KernelKindId(1),
                    smx: SmxId(0),
                    priority: Priority(1),
                    is_dynamic: true,
                    parent: Some((BatchId(0), 0, SmxId(0))),
                    created_at: 10,
                    dispatched_at: 30,
                    finished_at: 60,
                },
            ],
            ..Default::default()
        };
        let trace = vec![
            TraceRecord {
                cycle: 5,
                event: TraceEvent::QueueEnqueued { batch: BatchId(1), set: 0, level: 1, depth: 3 },
            },
            TraceRecord {
                cycle: 9,
                event: TraceEvent::QueueDequeued { batch: BatchId(1), set: 0, level: 1, depth: 2 },
            },
        ];
        let reg = registry_for_run(&stats, &trace);
        assert_eq!(reg.counter_value("cycles"), 100);
        assert_eq!(reg.counter_value("tbs_dynamic"), 1);
        let wait = reg.histogram_value("child_wait_cycles").unwrap();
        assert_eq!(wait.count(), 1);
        assert_eq!(wait.sum(), 20);
        assert_eq!(reg.histogram_value("queue_depth").unwrap().count(), 2);
        assert_eq!(reg.histogram_value("parent_resident_cycles").unwrap().sum(), 50);
        assert_eq!(reg.histogram_value("child_resident_cycles").unwrap().sum(), 30);
    }

    #[test]
    fn run_registry_includes_locality_when_profiled() {
        use gpu_sim::stats::LocalityStats;

        let mut stats = SimStats::default();
        assert!(
            !registry_for_run(&stats, &[]).render().contains("l1_hits_parent_child"),
            "unprofiled runs carry no locality metrics"
        );

        stats.l1.prov.by_class[ReuseClass::ParentChild.index()] = 7;
        stats.l2.prov.same_smx = 3;
        stats.l2.prov.cross_smx = 1;
        let mut loc = LocalityStats::default();
        loc.l1_reuse_dist[ReuseClass::ParentChild.index()].record(100);
        loc.l1_reuse_dist[ReuseClass::ParentChild.index()].record(300);
        loc.bind.bound_hits = 5;
        loc.bind.bound_parent_child = 4;
        stats.locality = Some(loc);

        let reg = registry_for_run(&stats, &[]);
        assert_eq!(reg.counter_value("l1_hits_parent_child"), 7);
        assert_eq!(reg.counter_value("l2_hits_same_smx"), 3);
        assert_eq!(reg.counter_value("bound_child_parent_child_hits"), 4);
        let h = reg.histogram_value("l1_reuse_dist_parent_child").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400);
        assert_eq!(reg.gauge_value("l1_parent_child_share"), Some(1.0));
    }

    #[test]
    fn run_registry_includes_engine_when_profiled() {
        use gpu_sim::stats::EngineStats;

        let mut stats = SimStats::default();
        assert!(
            !registry_for_run(&stats, &[]).render().contains("engine_loop_iterations"),
            "unprofiled runs carry no engine metrics"
        );

        let mut eng = EngineStats {
            loop_iterations: 10,
            wake_counts: [6, 1, 1, 0, 2],
            host_samples: 3,
            host_ns: [0, 0, 0, 9000, 0],
            ..EngineStats::default()
        };
        eng.heap_depth.record(4);
        eng.jump_len.record(128);
        eng.jump_len.record(2);
        stats.engine = Some(eng);

        let reg = registry_for_run(&stats, &[]);
        assert_eq!(reg.counter_value("engine_loop_iterations"), 10);
        assert_eq!(reg.counter_value("engine_wake_component_tick"), 6);
        assert_eq!(reg.counter_value("engine_wake_fast_forward_jump"), 2);
        assert_eq!(reg.histogram_value("engine_heap_depth").unwrap().count(), 1);
        let jumps = reg.histogram_value("engine_jump_len").unwrap();
        assert_eq!(jumps.count(), 2);
        assert_eq!(jumps.sum(), 130);
        assert!(reg.histogram_value("engine_events_per_cycle").is_none());
        assert_eq!(reg.counter_value("engine_host_smx_ns"), 9000);
        assert_eq!(reg.counter_value("engine_host_samples"), 3);
    }

    #[test]
    fn run_registry_includes_latency_when_profiled() {
        use gpu_sim::stats::{CriticalPath, LatencyStats};

        let mut stats = SimStats::default();
        assert!(
            !registry_for_run(&stats, &[]).render().contains("latency_tbs"),
            "unprofiled runs carry no latency metrics"
        );

        let mut lat = LatencyStats {
            tbs: 4,
            kmu_depth_hwm: 2,
            critical_path: CriticalPath {
                len: 2,
                cycles: 900,
                queue_cycles: 300,
                exec_cycles: 600,
                ..CriticalPath::default()
            },
            ..LatencyStats::default()
        };
        lat.queue_wait.record(10);
        lat.queue_wait.record(600);
        lat.depth_queue_wait.push((1, lat.child_queue_wait));
        lat.depth_queue_wait[0].1.record(600);
        stats.latency = Some(lat);

        let reg = registry_for_run(&stats, &[]);
        assert_eq!(reg.counter_value("latency_tbs"), 4);
        assert_eq!(reg.counter_value("latency_kmu_depth_hwm"), 2);
        assert_eq!(reg.counter_value("critical_path_cycles"), 900);
        assert_eq!(reg.counter_value("critical_path_queue_cycles"), 300);
        let qw = reg.histogram_value("latency_queue_wait").unwrap();
        assert_eq!(qw.count(), 2);
        assert_eq!(qw.sum(), 610);
        assert_eq!(reg.histogram_value("latency_queue_wait_depth1").unwrap().count(), 1);
        assert!(reg.histogram_value("latency_exec").is_none(), "empty hists are omitted");
    }

    #[test]
    fn pow2_import_preserves_buckets() {
        let mut p = Pow2Hist::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            p.record(v);
        }
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(Histogram::from_pow2(&p), h);
    }
}
