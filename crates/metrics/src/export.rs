//! CSV export of experiment results, for external plotting tools.

use crate::harness::RunRecord;
use crate::timeline::TimelinePoint;

/// Escapes one CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders run records as CSV with a header row.
pub fn runs_to_csv(records: &[RunRecord]) -> String {
    let mut out = String::from(
        "workload,launch_model,scheduler,cycles,ipc,l1_hit_rate,l2_hit_rate,\
         child_l1_hit_rate,mean_child_wait,parent_smx_affinity,smx_utilization,\
         load_imbalance,dynamic_tbs,total_tbs,steals,queue_overflows,table_overflows,\
         stall_scoreboard,stall_memory_pending,stall_mshr_full,stall_barrier,stall_no_tb,\
         stall_launch_path,host_ns,dominant_component,\
         child_queue_wait_p50,child_queue_wait_p99,critical_path_cycles\n",
    );
    for r in records {
        // The latency columns stay empty when the run was not profiled,
        // so unprofiled sweeps keep a stable shape without inventing
        // zero quantiles.
        let lat = r.latency.as_ref().map_or_else(
            || ",,".to_string(),
            |lat| {
                format!(
                    "{},{},{}",
                    lat.child_queue_wait.percentile(0.50),
                    lat.child_queue_wait.percentile(0.99),
                    lat.critical_path_cycles,
                )
            },
        );
        out.push_str(&format!(
            "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.2},{:.6},{:.6},{:.6},{},{},{},{},{},\
             {},{},{},{},{},{},{},{},{}\n",
            field(&r.workload),
            field(&r.launch_model),
            field(&r.scheduler),
            r.cycles,
            r.ipc,
            r.l1_hit_rate,
            r.l2_hit_rate,
            r.child_l1_hit_rate,
            r.mean_child_wait,
            r.parent_smx_affinity,
            r.smx_utilization,
            r.load_imbalance,
            r.dynamic_tbs,
            r.total_tbs,
            r.steals,
            r.queue_overflows,
            r.table_overflows,
            r.stalls.scoreboard,
            r.stalls.memory_pending,
            r.stalls.mshr_full,
            r.stalls.barrier,
            r.stalls.no_tb,
            r.stalls.launch_path,
            r.host.ns,
            field(r.host.dominant_component.as_deref().unwrap_or("-")),
            lat,
        ));
    }
    out
}

/// Renders a timeline as CSV with a header row.
pub fn timeline_to_csv(points: &[TimelinePoint]) -> String {
    let mut out = String::from(
        "cycle,ipc,instructions,l1_hit_rate,l2_hit_rate,resident_tbs,undispatched_tbs\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{:.6},{},{:.6},{:.6},{},{}\n",
            p.cycle,
            p.ipc,
            p.instructions,
            p.l1_hit_rate,
            p.l2_hit_rate,
            p.resident_tbs,
            p.undispatched_tbs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunRecord {
        RunRecord {
            workload: "bfs,weird\"name".to_string(),
            launch_model: "dtbl".to_string(),
            scheduler: "rr".to_string(),
            cycles: 100,
            ipc: 1.5,
            l1_hit_rate: 0.5,
            l2_hit_rate: 0.75,
            child_l1_hit_rate: 0.25,
            mean_child_wait: 12.0,
            parent_smx_affinity: 0.1,
            smx_utilization: 0.9,
            load_imbalance: 1.1,
            dynamic_tbs: 3,
            total_tbs: 7,
            steals: 2,
            queue_overflows: 0,
            queue_pushes: 3,
            max_queue_depth: 2,
            queue_search_cycles: 9,
            table_overflows: 0,
            stalls: gpu_sim::stats::StallBreakdown {
                scoreboard: 40,
                memory_pending: 30,
                mshr_full: 10,
                barrier: 5,
                no_tb: 15,
                launch_path: 0,
            },
            locality: None,
            engine: None,
            latency: None,
            host: crate::harness::HostCost { ns: 1_500_000, dominant_component: None },
        }
    }

    #[test]
    fn runs_csv_has_header_and_rows() {
        let csv = runs_to_csv(&[record()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("workload,launch_model,scheduler,cycles"));
        assert!(lines[0].ends_with(
            "dominant_component,child_queue_wait_p50,child_queue_wait_p99,critical_path_cycles"
        ));
        assert!(lines[1].contains(",dtbl,rr,100,1.5"));
        // Host cost precedes the latency columns; an unprofiled run's
        // dominant component renders as "-" and the latency columns
        // stay empty.
        assert!(lines[1].ends_with(",1500000,-,,,"));
    }

    #[test]
    fn dominant_component_column_carries_profiled_value() {
        let mut r = record();
        r.host.dominant_component = Some("smx".to_string());
        let csv = runs_to_csv(&[r]);
        assert!(csv.lines().nth(1).is_some_and(|l| l.ends_with(",1500000,smx,,,")));
    }

    #[test]
    fn latency_columns_carry_quantiles_when_profiled() {
        let mut r = record();
        let mut child_queue_wait = gpu_sim::stats::Pow2Hist::default();
        for v in [4, 5, 6, 200] {
            child_queue_wait.record(v);
        }
        r.latency = Some(crate::harness::LatencyRecord {
            child_queue_wait,
            critical_path_cycles: 950,
            ..Default::default()
        });
        let csv = runs_to_csv(&[r]);
        let p50 = 7; // bucket [4,7] upper bound
        let p99 = 200; // top bucket clamped to the observed max
        assert!(csv.lines().nth(1).is_some_and(|l| l.ends_with(&format!(",{p50},{p99},950"))));
    }

    #[test]
    fn fields_with_separators_are_quoted() {
        let csv = runs_to_csv(&[record()]);
        assert!(csv.contains("\"bfs,weird\"\"name\""));
    }

    #[test]
    fn timeline_csv_roundtrips_values() {
        let p = TimelinePoint {
            cycle: 42,
            ipc: 3.25,
            instructions: 130,
            l1_hit_rate: 0.5,
            l2_hit_rate: 0.25,
            resident_tbs: 7,
            undispatched_tbs: 9,
        };
        let csv = timeline_to_csv(&[p]);
        assert!(csv.contains("42,3.250000,130,0.500000,0.250000,7,9"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn empty_inputs_give_header_only() {
        assert_eq!(runs_to_csv(&[]).lines().count(), 1);
        assert_eq!(timeline_to_csv(&[]).lines().count(), 1);
    }
}
