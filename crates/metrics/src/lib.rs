//! Locality analysis and experiment harness for the LaPerm reproduction.
//!
//! * [`footprint`] — static shared-footprint analysis of a workload's TB
//!   tree (regenerates the paper's Figure 2).
//! * [`harness`] — runs one (workload × launch model × scheduler)
//!   simulation and collects a [`harness::RunRecord`]; the building block
//!   for Figures 7, 8, and 9.
//! * [`report`] — mean/geomean aggregation and fixed-width table
//!   rendering for the `repro` binary and EXPERIMENTS.md.
//! * [`timeline`] — windowed time-series sampling of a running
//!   simulation (when does the locality benefit materialize?).
//! * [`export`] — CSV rendering of run records and timelines for
//!   external plotting.
//! * [`json`] — minimal JSON value/parser/writer plus exact-round-trip
//!   [`harness::RunRecord`] serialization for the `repro.json` sweep
//!   artifact.
//! * [`journal`] — append-only, checksummed record journal backing the
//!   resilient sweep's content-addressed cell cache (truncated or
//!   corrupt tails are detected and dropped, never served).
//! * [`registry`] — counter/gauge/histogram registry with a standard
//!   metric set derived from a run's stats and trace.
//! * [`perfetto`] — Chrome/Perfetto `trace_event` JSON export of a
//!   traced run, plus the validator the CI smoke step uses.

// Library code must not panic on fallible lookups; tests opt back
// in locally.
#![deny(clippy::unwrap_used)]

pub mod export;
pub mod footprint;
pub mod harness;
pub mod journal;
pub mod json;
pub mod perfetto;
pub mod registry;
pub mod report;
pub mod timeline;

pub use footprint::{FootprintAnalysis, FootprintSummary};
pub use harness::{run_once, LocalityRecord, RunRecord, SchedulerKind};
pub use journal::{fnv1a64, read_journal, JournalDamage, JournalRead, JournalWriter};
pub use json::{run_from_json, run_to_json, Json};
pub use perfetto::{perfetto_json, validate_trace, TraceCheck};
pub use registry::{registry_for_run, Histogram, MetricsRegistry};
pub use timeline::{run_timeline, TimelinePoint};
