//! Aggregation and table rendering for experiment reports.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is negative.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(xs.iter().all(|&x| x >= 0.0), "geomean of negative value");
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// A fixed-width text table (the `repro` binary's output format).
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Mean and sample standard deviation; (0, 0) for an empty slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (m, var.sqrt())
}

/// Renders labeled values as a horizontal ASCII bar chart, scaled so the
/// largest value spans `width` characters.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bars = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
        out.push_str(&format!("{label:<label_width$}  {:<width$}  {value:.2}\n", "#".repeat(bars)));
    }
    out
}

/// Formats a ratio as a percentage with one decimal ("38.4%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a normalized value with two decimals ("1.27x").
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn mean_and_geomean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_handles_zero() {
        assert!(geomean(&[0.0, 1.0]) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn geomean_rejects_negative() {
        geomean(&[-1.0]);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer-name"));
        // The value column starts at the same offset in all data rows.
        let col = lines[3].find('2').unwrap();
        assert_eq!(lines[2].as_bytes()[col], b'1');
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.384), "38.4%");
        assert_eq!(ratio(1.266), "1.27x");
    }

    #[test]
    fn mean_std_basics() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let chart = bar_chart(&rows, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('#').count(), 5);
        assert_eq!(lines[1].matches('#').count(), 10);
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn bar_chart_handles_zero_max() {
        let rows = vec![("x".to_string(), 0.0)];
        assert!(bar_chart(&rows, 10).contains("0.00"));
    }
}
