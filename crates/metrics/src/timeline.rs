//! Windowed time-series measurement of a running simulation.
//!
//! The aggregate results of [`harness`](crate::harness) hide *when* the
//! locality benefit materializes: LaPerm's gains concentrate in the
//! phase where children run interleaved with their parents. The timeline
//! runner steps a simulation manually and samples the machine's cheap
//! counters every `window` cycles, yielding per-window IPC and cache hit
//! rates.

use std::sync::Arc;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::error::SimError;
use gpu_sim::stats::MachineSample;
use workloads::{SharedSource, Workload};

use crate::harness::SchedulerKind;

/// One window of a run's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Cycle at the end of the window.
    pub cycle: u64,
    /// IPC within the window.
    pub ipc: f64,
    /// Thread instructions retired within the window. Windows tile the
    /// run exactly, so these sum to the run's total instruction count.
    pub instructions: u64,
    /// L1 hit rate within the window.
    pub l1_hit_rate: f64,
    /// L2 hit rate within the window.
    pub l2_hit_rate: f64,
    /// Resident TBs at the end of the window.
    pub resident_tbs: usize,
    /// Undispatched (visible) TBs at the end of the window.
    pub undispatched_tbs: u64,
}

/// Runs a workload to completion, sampling every `window` cycles.
///
/// # Errors
///
/// Propagates any [`SimError`] from the engine.
pub fn run_timeline(
    workload: &Arc<dyn Workload>,
    model: LaunchModelKind,
    scheduler: SchedulerKind,
    cfg: &GpuConfig,
    window: u64,
) -> Result<Vec<TimelinePoint>, SimError> {
    let window = window.max(1);
    // Step cycle by cycle: fast-forward would jump over window
    // boundaries and make the sampling grid depend on the workload's
    // idle structure. Statistics are identical either way; only the
    // sample spacing is at stake.
    let mut cfg = cfg.clone();
    cfg.fast_forward = false;
    let cfg = &cfg;
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(workload.clone())))
        .with_scheduler(scheduler.build(cfg))
        .with_launch_model(model.build(LaunchLatency::default_for(model)));
    for hk in workload.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req)?;
    }

    let mut points = Vec::new();
    let mut previous = sim.sample();
    while !sim.is_done() {
        for _ in 0..window {
            if sim.is_done() {
                break;
            }
            sim.step()?;
            if sim.cycle() > cfg.max_cycles {
                return Err(SimError::CycleLimitExceeded { limit: cfg.max_cycles });
            }
        }
        let sample = sim.sample();
        points.push(point_between(&previous, &sample));
        previous = sample;
    }
    Ok(points)
}

fn point_between(earlier: &MachineSample, later: &MachineSample) -> TimelinePoint {
    TimelinePoint {
        cycle: later.cycle,
        ipc: later.ipc_since(earlier),
        instructions: later.thread_instructions.saturating_sub(earlier.thread_instructions),
        l1_hit_rate: later.l1_rate_since(earlier),
        l2_hit_rate: later.l2_rate_since(earlier),
        resident_tbs: later.resident_tbs,
        undispatched_tbs: later.undispatched_tbs,
    }
}

/// Downsamples a timeline to at most `max_points` evenly spaced windows
/// (for compact text reports).
pub fn downsample(points: &[TimelinePoint], max_points: usize) -> Vec<TimelinePoint> {
    if points.len() <= max_points || max_points == 0 {
        return points.to_vec();
    }
    let stride = points.len().div_ceil(max_points);
    points.iter().copied().step_by(stride).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use workloads::{suite, Scale};

    #[test]
    fn timeline_covers_whole_run() {
        let all = suite(Scale::Tiny);
        let w = &all[2]; // bfs-citation
        let mut cfg = GpuConfig::small_test();
        cfg.num_smxs = 4;
        let points = run_timeline(w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &cfg, 500)
            .expect("timeline runs");
        assert!(!points.is_empty());
        // Cycles strictly increase and end at the run's end.
        for pair in points.windows(2) {
            assert!(pair[0].cycle < pair[1].cycle);
        }
        // The machine drains by the last window.
        let last = points.last().unwrap();
        assert_eq!(last.resident_tbs, 0);
        assert_eq!(last.undispatched_tbs, 0);
        // Rates stay in range.
        for p in &points {
            assert!((0.0..=1.0).contains(&p.l1_hit_rate), "{p:?}");
            assert!((0.0..=1.0).contains(&p.l2_hit_rate), "{p:?}");
            assert!(p.ipc >= 0.0);
        }
    }

    #[test]
    fn timeline_aggregate_matches_run_once() {
        let all = suite(Scale::Tiny);
        let w = &all[0]; // amr
        let mut cfg = GpuConfig::small_test();
        cfg.num_smxs = 4;
        let points =
            run_timeline(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg, 1000)
                .expect("timeline");
        let rec =
            crate::harness::run_once(w, LaunchModelKind::Dtbl, SchedulerKind::AdaptiveBind, &cfg)
                .expect("run");
        // Total cycles agree (same deterministic simulation).
        assert_eq!(points.last().unwrap().cycle, rec.cycles);
        // Windows tile the run: per-window instruction counts sum to
        // the run's total (RunRecord stores it as ipc = total / cycles).
        let total: u64 = points.iter().map(|p| p.instructions).sum();
        assert!(total > 0);
        assert!((total as f64 - rec.ipc * rec.cycles as f64).abs() < 0.5, "{total} vs {}", rec.ipc);
    }

    #[test]
    fn downsample_bounds_length() {
        let p = TimelinePoint {
            cycle: 0,
            ipc: 0.0,
            instructions: 0,
            l1_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            resident_tbs: 0,
            undispatched_tbs: 0,
        };
        let points: Vec<TimelinePoint> =
            (0..100).map(|i| TimelinePoint { cycle: i, ..p }).collect();
        let d = downsample(&points, 10);
        assert!(d.len() <= 10);
        assert_eq!(d[0].cycle, 0);
        assert_eq!(downsample(&points, 1000).len(), 100);
    }
}
