//! One-shot experiment runner: workload × launch model × TB scheduler.

use std::sync::Arc;
use std::time::Instant;

use dynpar::{LaunchLatency, LaunchModelKind};
use gpu_sim::cache::{ReuseClass, NUM_REUSE_CLASSES};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::Simulator;
use gpu_sim::error::SimError;
use gpu_sim::fault::FaultPlan;
use gpu_sim::stats::{Pow2Hist, SimStats, StallBreakdown, NUM_WAKE_SOURCES};
use gpu_sim::tb_sched::{RoundRobinScheduler, TbScheduler};
use laperm::{LaPermConfig, LaPermPolicy, LaPermScheduler};
use workloads::{SharedSource, Workload};

/// Which TB scheduler a run uses: the baseline or one of the three
/// LaPerm policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Baseline round-robin (Section II-B).
    RoundRobin,
    /// LaPerm TB-Pri.
    TbPri,
    /// LaPerm SMX-Bind.
    SmxBind,
    /// LaPerm Adaptive-Bind.
    AdaptiveBind,
}

impl SchedulerKind {
    /// All four schedulers, in the paper's figure order.
    pub fn all() -> [SchedulerKind; 4] {
        [
            SchedulerKind::RoundRobin,
            SchedulerKind::TbPri,
            SchedulerKind::SmxBind,
            SchedulerKind::AdaptiveBind,
        ]
    }

    /// Display name used in figures ("rr", "tb-pri", …).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "rr",
            SchedulerKind::TbPri => "tb-pri",
            SchedulerKind::SmxBind => "smx-bind",
            SchedulerKind::AdaptiveBind => "adaptive-bind",
        }
    }

    /// Builds the scheduler for a GPU configuration.
    pub fn build(self, cfg: &GpuConfig) -> Box<dyn TbScheduler> {
        let laperm_cfg = LaPermConfig::for_gpu(cfg);
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
            SchedulerKind::TbPri => Box::new(LaPermScheduler::new(LaPermPolicy::TbPri, laperm_cfg)),
            SchedulerKind::SmxBind => {
                Box::new(LaPermScheduler::new(LaPermPolicy::SmxBind, laperm_cfg))
            }
            SchedulerKind::AdaptiveBind => {
                Box::new(LaPermScheduler::new(LaPermPolicy::AdaptiveBind, laperm_cfg))
            }
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Provenance summary of one profiled run: which scheduling relation
/// (see [`ReuseClass`]) produced each cache hit. Present only when the
/// run's [`GpuConfig::profile_locality`] was on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityRecord {
    /// Total L1 hits at profiling time (partition denominator).
    pub l1_hits: u64,
    /// Total L2 hits at profiling time.
    pub l2_hits: u64,
    /// L1 hits by reuse class, indexed by [`ReuseClass::index`].
    pub l1_class_hits: [u64; NUM_REUSE_CLASSES],
    /// L2 hits by reuse class.
    pub l2_class_hits: [u64; NUM_REUSE_CLASSES],
    /// L2 hits whose accessor ran on the installing SMX.
    pub l2_same_smx: u64,
    /// L2 hits crossing SMXs.
    pub l2_cross_smx: u64,
    /// L1 hits by child TBs placed on their parent's SMX (bound).
    pub bound_hits: u64,
    /// Of `bound_hits`, those on lines installed by the direct parent.
    pub bound_parent_child: u64,
    /// L1 hits by child TBs placed elsewhere (stolen / spilled).
    pub stolen_hits: u64,
    /// Of `stolen_hits`, those on lines installed by the direct parent.
    pub stolen_parent_child: u64,
    /// Mean install-to-hit distance of L1 parent-child hits, in cycles.
    pub l1_pc_mean_dist: f64,
    /// Mean install-to-hit distance of L2 parent-child hits, in cycles.
    pub l2_pc_mean_dist: f64,
}

impl LocalityRecord {
    /// Share of classified L1 hits in `class` (0 when none classified).
    pub fn l1_share(&self, class: ReuseClass) -> f64 {
        share(self.l1_class_hits[class.index()], self.l1_class_hits.iter().sum())
    }

    /// Share of classified L2 hits in `class`.
    pub fn l2_share(&self, class: ReuseClass) -> f64 {
        share(self.l2_class_hits[class.index()], self.l2_class_hits.iter().sum())
    }

    /// Parent-child fraction of bound child hits.
    pub fn bound_share(&self) -> f64 {
        share(self.bound_parent_child, self.bound_hits)
    }

    /// Parent-child fraction of stolen child hits.
    pub fn stolen_share(&self) -> f64 {
        share(self.stolen_parent_child, self.stolen_hits)
    }
}

fn share(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64
    }
}

/// Engine introspection summary of one profiled run: the deterministic,
/// sim-side slice of [`gpu_sim::stats::EngineStats`] (wall-clock fields
/// stay out so profiled documents remain bit-reproducible). Present only
/// when the run's [`GpuConfig::profile_engine`] was on.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRecord {
    /// Total engine loop iterations (event-mode: ≪ `cycles`).
    pub loop_iterations: u64,
    /// Loop iterations by wake source, indexed by
    /// [`gpu_sim::stats::WakeSource::index`]; sums to `loop_iterations`.
    pub wake_counts: [u64; NUM_WAKE_SOURCES],
    /// Event-heap depth at each event-mode iteration.
    pub heap_depth: Pow2Hist,
    /// Due SMX wake-ups serviced per event-mode iteration.
    pub events_per_cycle: Pow2Hist,
    /// Lengths of cycle jumps (fast-forward and watchdog).
    pub jump_len: Pow2Hist,
}

/// Per-TB lifecycle latency summary of one profiled run: the
/// deterministic aggregation of [`gpu_sim::stats::LatencyStats`] (the
/// critical-path TB chain stays sim-side; documents carry only its
/// weights). Present only when the run's [`GpuConfig::profile_latency`]
/// was on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyRecord {
    /// TBs recorded into the histograms.
    pub tbs: u64,
    /// TBs with out-of-order lifecycle stamps (must be 0; gated by the
    /// `lat-partition-exact` shape assertion).
    pub partition_violations: u64,
    /// High-water mark of the KMU pending-kernel queue depth.
    pub kmu_depth_hwm: u64,
    /// Launch issue to scheduler enqueue, all TBs.
    pub launch_path: Pow2Hist,
    /// KMU maturation to scheduler enqueue (informational sub-interval
    /// of `launch_path`).
    pub kmu_wait: Pow2Hist,
    /// Scheduler enqueue to SMX dispatch, all TBs.
    pub queue_wait: Pow2Hist,
    /// SMX dispatch to first instruction issue, all TBs.
    pub dispatch_gap: Pow2Hist,
    /// First instruction issue to retirement, all TBs.
    pub exec: Pow2Hist,
    /// Full lifetime (launch issue to retirement), all TBs.
    pub lifetime: Pow2Hist,
    /// `queue_wait` restricted to dynamic (child) TBs.
    pub child_queue_wait: Pow2Hist,
    /// `child_queue_wait` for children on their parent's SMX.
    pub bound_queue_wait: Pow2Hist,
    /// `child_queue_wait` for children placed elsewhere.
    pub stolen_queue_wait: Pow2Hist,
    /// `queue_wait` by batch nesting depth (0 = host kernels).
    pub depth_queue_wait: Vec<(u8, Pow2Hist)>,
    /// `lifetime` rolled up per kernel kind.
    pub kind_lifetime: Vec<(u16, Pow2Hist)>,
    /// TBs on the launch-DAG critical path.
    pub critical_path_len: u32,
    /// Total critical-path weight in cycles.
    pub critical_path_cycles: u64,
    /// Critical-path cycles attributed to queueing.
    pub critical_path_queue: u64,
    /// Critical-path cycles attributed to execution.
    pub critical_path_exec: u64,
}

/// Host-side cost of producing one sweep cell: wall time and (when
/// engine profiling was on) the component that dominated it. This is
/// telemetry, not a measurement of the simulated machine — it varies
/// run to run, so it compares equal to everything: sweep results stay
/// `==`-identical across job counts and hosts, and the repro.json
/// document never carries it.
#[derive(Debug, Clone, Default)]
pub struct HostCost {
    /// Wall nanoseconds spent simulating this cell.
    pub ns: u64,
    /// Stage with the largest sampled host-time share
    /// (see [`gpu_sim::stats::ENGINE_HOST_COMPONENTS`]); `None` when the
    /// run did not profile the engine.
    pub dominant_component: Option<String>,
}

impl PartialEq for HostCost {
    /// Always equal: host cost is nondeterministic telemetry and must
    /// not break the sweep executor's bit-identity guarantees.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// The measurements of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Workload display name.
    pub workload: String,
    /// "cdp" or "dtbl".
    pub launch_model: String,
    /// Scheduler display name.
    pub scheduler: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Overall L1 hit rate.
    pub l1_hit_rate: f64,
    /// Overall L2 hit rate.
    pub l2_hit_rate: f64,
    /// L1 hit rate of child-TB accesses only.
    pub child_l1_hit_rate: f64,
    /// Mean cycles between a child launch and its first TB dispatch.
    pub mean_child_wait: f64,
    /// Fraction of child TBs that ran on their direct parent's SMX.
    pub parent_smx_affinity: f64,
    /// Mean SMX busy fraction.
    pub smx_utilization: f64,
    /// Max/mean SMX busy cycles.
    pub load_imbalance: f64,
    /// Dynamic (child) TB count.
    pub dynamic_tbs: usize,
    /// Total TB count.
    pub total_tbs: usize,
    /// Work-stealing dispatches (Adaptive-Bind stage 3).
    pub steals: u64,
    /// On-chip priority-queue overflows.
    pub queue_overflows: u64,
    /// Dynamic batches pushed into the priority queues.
    pub queue_pushes: u64,
    /// Largest priority-queue occupancy observed in any set.
    pub max_queue_depth: u64,
    /// Modeled queue entry-search work in cycles.
    pub queue_search_cycles: u64,
    /// DTBL aggregation-table overflows (0 under CDP, which has no
    /// table). A non-zero value at paper scale means the 128-entry
    /// on-chip table saturated and launches paid the overflow penalty.
    pub table_overflows: u64,
    /// Stall cycles summed over all SMXs, by cause.
    pub stalls: StallBreakdown,
    /// Locality provenance summary (`None` unless the run profiled).
    pub locality: Option<LocalityRecord>,
    /// Engine introspection summary (`None` unless the run profiled
    /// the engine).
    pub engine: Option<EngineRecord>,
    /// Per-TB lifecycle latency summary (`None` unless the run profiled
    /// latency).
    pub latency: Option<LatencyRecord>,
    /// Host-side cost telemetry (always recorded; excluded from
    /// equality and from repro.json).
    pub host: HostCost,
}

impl RunRecord {
    fn from_stats(workload: &str, stats: &SimStats) -> Self {
        let counter = |name: &str| {
            stats.scheduler_counters.iter().find(|(k, _)| *k == name).map(|(_, v)| *v).unwrap_or(0)
        };
        let launch_counter = |name: &str| {
            stats.launch_counters.iter().find(|(k, _)| *k == name).map(|(_, v)| *v).unwrap_or(0)
        };
        RunRecord {
            workload: workload.to_string(),
            launch_model: stats.launch_model.clone(),
            scheduler: stats.scheduler.clone(),
            cycles: stats.cycles,
            ipc: stats.ipc(),
            l1_hit_rate: stats.l1.hit_rate(),
            l2_hit_rate: stats.l2.hit_rate(),
            child_l1_hit_rate: stats.l1.child_hit_rate(),
            mean_child_wait: stats.mean_child_wait(),
            parent_smx_affinity: stats.parent_smx_affinity(),
            smx_utilization: stats.smx_utilization(),
            load_imbalance: stats.load_imbalance(),
            dynamic_tbs: stats.dynamic_tbs(),
            total_tbs: stats.tb_records.len(),
            steals: counter("stage3_steals"),
            queue_overflows: counter("onchip_overflows"),
            queue_pushes: counter("queue_pushes"),
            max_queue_depth: counter("max_queue_depth"),
            queue_search_cycles: counter("queue_search_cycles"),
            table_overflows: launch_counter("dtbl_table_overflows"),
            stalls: stats.total_stalls(),
            locality: stats.locality.as_ref().map(|loc| {
                let pc = ReuseClass::ParentChild.index();
                LocalityRecord {
                    l1_hits: stats.l1.hits,
                    l2_hits: stats.l2.hits,
                    l1_class_hits: stats.l1.prov.by_class,
                    l2_class_hits: stats.l2.prov.by_class,
                    l2_same_smx: stats.l2.prov.same_smx,
                    l2_cross_smx: stats.l2.prov.cross_smx,
                    bound_hits: loc.bind.bound_hits,
                    bound_parent_child: loc.bind.bound_parent_child,
                    stolen_hits: loc.bind.stolen_hits,
                    stolen_parent_child: loc.bind.stolen_parent_child,
                    l1_pc_mean_dist: loc.l1_reuse_dist[pc].mean(),
                    l2_pc_mean_dist: loc.l2_reuse_dist[pc].mean(),
                }
            }),
            engine: stats.engine.as_ref().map(|eng| EngineRecord {
                loop_iterations: eng.loop_iterations,
                wake_counts: eng.wake_counts,
                heap_depth: eng.heap_depth,
                events_per_cycle: eng.events_per_cycle,
                jump_len: eng.jump_len,
            }),
            latency: stats.latency.as_ref().map(|lat| LatencyRecord {
                tbs: lat.tbs,
                partition_violations: lat.partition_violations,
                kmu_depth_hwm: lat.kmu_depth_hwm,
                launch_path: lat.launch_path,
                kmu_wait: lat.kmu_wait,
                queue_wait: lat.queue_wait,
                dispatch_gap: lat.dispatch_gap,
                exec: lat.exec,
                lifetime: lat.lifetime,
                child_queue_wait: lat.child_queue_wait,
                bound_queue_wait: lat.bound_queue_wait,
                stolen_queue_wait: lat.stolen_queue_wait,
                depth_queue_wait: lat.depth_queue_wait.clone(),
                kind_lifetime: lat.kind_lifetime.clone(),
                critical_path_len: lat.critical_path.len,
                critical_path_cycles: lat.critical_path.cycles,
                critical_path_queue: lat.critical_path.queue_cycles,
                critical_path_exec: lat.critical_path.exec_cycles,
            }),
            host: HostCost {
                ns: 0, // filled in by the runner, which owns the clock
                dominant_component: stats
                    .engine
                    .as_ref()
                    .and_then(|eng| eng.dominant_component())
                    .map(str::to_string),
            },
        }
    }
}

/// Runs one workload to completion under the given launch model and
/// scheduler, with the model's default launch latency.
///
/// # Errors
///
/// Propagates any [`SimError`] from the engine (invalid kernels, cycle
/// limit, scheduler misbehavior).
pub fn run_once(
    workload: &Arc<dyn Workload>,
    model: LaunchModelKind,
    scheduler: SchedulerKind,
    cfg: &GpuConfig,
) -> Result<RunRecord, SimError> {
    run_with_latency(workload, model, LaunchLatency::default_for(model), scheduler, cfg)
}

/// [`run_once`] with an explicit launch latency (for sensitivity sweeps).
///
/// # Errors
///
/// Propagates any [`SimError`] from the engine.
pub fn run_with_latency(
    workload: &Arc<dyn Workload>,
    model: LaunchModelKind,
    latency: LaunchLatency,
    scheduler: SchedulerKind,
    cfg: &GpuConfig,
) -> Result<RunRecord, SimError> {
    run_with_latency_faulted(workload, model, latency, scheduler, cfg, None)
}

/// [`run_with_latency`] with an optional simulator-level fault plan
/// attached before the host kernels launch. This is how the resilient
/// sweep layer composes the PR-5 in-simulator fault injection with its
/// own harness-level plan: the simulator sees exactly the same faults
/// it would in a standalone liveness run.
///
/// # Errors
///
/// Propagates any [`SimError`] from the engine (including the
/// structured liveness errors a fault plan can force).
pub fn run_with_latency_faulted(
    workload: &Arc<dyn Workload>,
    model: LaunchModelKind,
    latency: LaunchLatency,
    scheduler: SchedulerKind,
    cfg: &GpuConfig,
    fault_plan: Option<FaultPlan>,
) -> Result<RunRecord, SimError> {
    let mut sim = Simulator::new(cfg.clone(), Box::new(SharedSource(workload.clone())))
        .with_scheduler(scheduler.build(cfg))
        .with_launch_model(model.build(latency));
    if let Some(plan) = fault_plan {
        sim = sim.with_fault_plan(plan);
    }
    for hk in workload.host_kernels() {
        sim.launch_host_kernel(hk.kind, hk.param, hk.num_tbs, hk.req)?;
    }
    let t0 = Instant::now();
    let stats = sim.run_to_completion()?;
    let host_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut record = RunRecord::from_stats(&workload.full_name(), &stats);
    // Use the harness's short scheduler labels in figures ("tb-pri"
    // rather than the engine's "laperm-tb-pri").
    record.scheduler = scheduler.name().to_string();
    record.host.ns = host_ns;
    Ok(record)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use workloads::apps::bfs::Bfs;
    use workloads::graph::GraphKind;
    use workloads::Scale;

    fn workload() -> Arc<dyn Workload> {
        Arc::new(Bfs::new(GraphKind::Citation, Scale::Tiny))
    }

    #[test]
    fn run_once_completes_and_reports() {
        let rec = run_once(
            &workload(),
            LaunchModelKind::Dtbl,
            SchedulerKind::RoundRobin,
            &GpuConfig::small_test(),
        )
        .unwrap();
        assert!(rec.cycles > 0);
        assert!(rec.ipc > 0.0);
        assert!((0.0..=1.0).contains(&rec.l1_hit_rate));
        assert!((0.0..=1.0).contains(&rec.l2_hit_rate));
        assert!(rec.dynamic_tbs > 0);
        assert!(rec.total_tbs > rec.dynamic_tbs);
        assert_eq!(rec.launch_model, "dtbl");
        assert_eq!(rec.scheduler, "rr");
        assert_eq!(rec.workload, "bfs-citation");
    }

    #[test]
    fn all_scheduler_kinds_run() {
        let w = workload();
        let cfg = GpuConfig::small_test();
        for s in SchedulerKind::all() {
            let rec = run_once(&w, LaunchModelKind::Dtbl, s, &cfg).unwrap();
            assert_eq!(rec.scheduler, s.name());
            assert!(rec.cycles > 0, "{s} produced no cycles");
        }
    }

    #[test]
    fn smx_bind_has_full_affinity() {
        let rec = run_once(
            &workload(),
            LaunchModelKind::Dtbl,
            SchedulerKind::SmxBind,
            &GpuConfig::small_test(),
        )
        .unwrap();
        assert_eq!(rec.parent_smx_affinity, 1.0);
        assert_eq!(rec.steals, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let w = workload();
        let cfg = GpuConfig::small_test();
        let a = run_once(&w, LaunchModelKind::Cdp, SchedulerKind::AdaptiveBind, &cfg).unwrap();
        let b = run_once(&w, LaunchModelKind::Cdp, SchedulerKind::AdaptiveBind, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cdp_children_wait_longer_than_dtbl() {
        let w = workload();
        let cfg = GpuConfig::small_test();
        let cdp = run_once(&w, LaunchModelKind::Cdp, SchedulerKind::RoundRobin, &cfg).unwrap();
        let dtbl = run_once(&w, LaunchModelKind::Dtbl, SchedulerKind::RoundRobin, &cfg).unwrap();
        assert!(
            cdp.mean_child_wait > dtbl.mean_child_wait,
            "cdp wait {} should exceed dtbl wait {}",
            cdp.mean_child_wait,
            dtbl.mean_child_wait
        );
    }
}
