//! Minimal JSON value type, writer, and parser (the workspace has no
//! serde), plus [`RunRecord`] serialization for the `repro.json` sweep
//! artifact.
//!
//! Numbers are kept as their raw JSON text ([`Json::Num`] stores a
//! `String`), so integer fields round-trip exactly at any magnitude and
//! floats round-trip through Rust's shortest-representation `{}`
//! formatting. This is what makes the sweep harness's "bit-identical
//! `repro.json` for any `--jobs N`" guarantee checkable by comparing
//! document strings.

use crate::harness::{EngineRecord, HostCost, LatencyRecord, LocalityRecord, RunRecord};
use gpu_sim::cache::NUM_REUSE_CLASSES;
use gpu_sim::stats::{Pow2Hist, StallBreakdown, WakeSource, NUM_WAKE_SOURCES};

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw JSON text (exact round-trip).
    Num(String),
    /// A string (unescaped content).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from an unsigned integer.
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from a float (shortest round-trip representation).
    /// Non-finite values have no JSON encoding and become `null`.
    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// The value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`; `null` reads as NaN (the writer encodes
    /// non-finite floats as `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
            text.parse::<f64>().map_err(|_| format!("bad number at byte {start}"))?;
            Ok(Json::Num(text.to_string()))
        }
        Some(c) => Err(format!("unexpected '{}' at byte {pos}", *c as char)),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (continuation bytes included).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf-8")?);
            }
        }
    }
}

/// Serializes one [`RunRecord`] as a JSON object (the `runs[]` element
/// of the `repro.json` schema; see `docs/ARCHITECTURE.md`). The
/// `locality` key is present only for profiled runs, so unprofiled
/// records keep the schema-v1 byte layout.
pub fn run_to_json(r: &RunRecord) -> Json {
    let mut fields = vec![
        ("workload".into(), Json::Str(r.workload.clone())),
        ("launch_model".into(), Json::Str(r.launch_model.clone())),
        ("scheduler".into(), Json::Str(r.scheduler.clone())),
        ("cycles".into(), Json::from_u64(r.cycles)),
        ("ipc".into(), Json::from_f64(r.ipc)),
        ("l1_hit_rate".into(), Json::from_f64(r.l1_hit_rate)),
        ("l2_hit_rate".into(), Json::from_f64(r.l2_hit_rate)),
        ("child_l1_hit_rate".into(), Json::from_f64(r.child_l1_hit_rate)),
        ("mean_child_wait".into(), Json::from_f64(r.mean_child_wait)),
        ("parent_smx_affinity".into(), Json::from_f64(r.parent_smx_affinity)),
        ("smx_utilization".into(), Json::from_f64(r.smx_utilization)),
        ("load_imbalance".into(), Json::from_f64(r.load_imbalance)),
        ("dynamic_tbs".into(), Json::from_u64(r.dynamic_tbs as u64)),
        ("total_tbs".into(), Json::from_u64(r.total_tbs as u64)),
        ("steals".into(), Json::from_u64(r.steals)),
        ("queue_overflows".into(), Json::from_u64(r.queue_overflows)),
        ("queue_pushes".into(), Json::from_u64(r.queue_pushes)),
        ("max_queue_depth".into(), Json::from_u64(r.max_queue_depth)),
        ("queue_search_cycles".into(), Json::from_u64(r.queue_search_cycles)),
        ("table_overflows".into(), Json::from_u64(r.table_overflows)),
        (
            "stalls".into(),
            Json::Obj(vec![
                ("scoreboard".into(), Json::from_u64(r.stalls.scoreboard)),
                ("memory_pending".into(), Json::from_u64(r.stalls.memory_pending)),
                ("mshr_full".into(), Json::from_u64(r.stalls.mshr_full)),
                ("barrier".into(), Json::from_u64(r.stalls.barrier)),
                ("no_tb".into(), Json::from_u64(r.stalls.no_tb)),
                ("launch_path".into(), Json::from_u64(r.stalls.launch_path)),
            ]),
        ),
    ];
    if let Some(loc) = &r.locality {
        fields.push(("locality".into(), locality_to_json(loc)));
    }
    // The profiling keys come last, newest-schema last, so enabling any
    // profiler is a pure suffix extension of the unprofiled byte
    // layout. Host-side cost (`RunRecord::host`) is deliberately
    // absent: the document carries no wall-clock fields, keeping it
    // bit-reproducible.
    if let Some(eng) = &r.engine {
        fields.push(("engine".into(), engine_to_json(eng)));
    }
    if let Some(lat) = &r.latency {
        fields.push(("latency".into(), latency_to_json(lat)));
    }
    Json::Obj(fields)
}

fn class_array(hits: &[u64; NUM_REUSE_CLASSES]) -> Json {
    Json::Arr(hits.iter().map(|&v| Json::from_u64(v)).collect())
}

fn locality_to_json(loc: &LocalityRecord) -> Json {
    Json::Obj(vec![
        ("l1_hits".into(), Json::from_u64(loc.l1_hits)),
        ("l2_hits".into(), Json::from_u64(loc.l2_hits)),
        ("l1_class_hits".into(), class_array(&loc.l1_class_hits)),
        ("l2_class_hits".into(), class_array(&loc.l2_class_hits)),
        ("l2_same_smx".into(), Json::from_u64(loc.l2_same_smx)),
        ("l2_cross_smx".into(), Json::from_u64(loc.l2_cross_smx)),
        ("bound_hits".into(), Json::from_u64(loc.bound_hits)),
        ("bound_parent_child".into(), Json::from_u64(loc.bound_parent_child)),
        ("stolen_hits".into(), Json::from_u64(loc.stolen_hits)),
        ("stolen_parent_child".into(), Json::from_u64(loc.stolen_parent_child)),
        ("l1_pc_mean_dist".into(), Json::from_f64(loc.l1_pc_mean_dist)),
        ("l2_pc_mean_dist".into(), Json::from_f64(loc.l2_pc_mean_dist)),
    ])
}

/// Encodes a [`Pow2Hist`] with its bucket array trimmed of trailing
/// zeros (the decoder pads back to 65), so sparse histograms stay
/// compact while round-tripping exactly.
fn hist_to_json(h: &Pow2Hist) -> Json {
    let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    Json::Obj(vec![
        ("count".into(), Json::from_u64(h.count)),
        ("sum".into(), Json::from_u64(h.sum)),
        ("max".into(), Json::from_u64(h.max)),
        (
            "buckets".into(),
            Json::Arr(h.buckets[..last].iter().map(|&b| Json::from_u64(b)).collect()),
        ),
    ])
}

fn hist_from_json(v: &Json, what: &str) -> Result<Pow2Hist, String> {
    let u64_field = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{what} missing integer field '{key}'"))
    };
    let arr = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{what} missing array field 'buckets'"))?;
    let mut hist = Pow2Hist {
        count: u64_field("count")?,
        sum: u64_field("sum")?,
        max: u64_field("max")?,
        ..Pow2Hist::default()
    };
    if arr.len() > hist.buckets.len() {
        return Err(format!("{what} has {} buckets (max 65)", arr.len()));
    }
    for (slot, item) in hist.buckets.iter_mut().zip(arr) {
        *slot = item.as_u64().ok_or_else(|| format!("{what} bucket not integer"))?;
    }
    Ok(hist)
}

fn engine_to_json(eng: &EngineRecord) -> Json {
    Json::Obj(vec![
        ("loop_iterations".into(), Json::from_u64(eng.loop_iterations)),
        (
            "wake_counts".into(),
            Json::Obj(
                WakeSource::ALL
                    .iter()
                    .map(|s| (s.name().to_string(), Json::from_u64(eng.wake_counts[s.index()])))
                    .collect(),
            ),
        ),
        ("heap_depth".into(), hist_to_json(&eng.heap_depth)),
        ("events_per_cycle".into(), hist_to_json(&eng.events_per_cycle)),
        ("jump_len".into(), hist_to_json(&eng.jump_len)),
    ])
}

fn engine_from_json(v: &Json) -> Result<EngineRecord, String> {
    let wakes = v.get("wake_counts").ok_or("engine missing 'wake_counts'")?;
    let mut wake_counts = [0u64; NUM_WAKE_SOURCES];
    for s in WakeSource::ALL {
        wake_counts[s.index()] = wakes
            .get(s.name())
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("engine wake_counts missing '{}'", s.name()))?;
    }
    Ok(EngineRecord {
        loop_iterations: v
            .get("loop_iterations")
            .and_then(Json::as_u64)
            .ok_or("engine missing integer field 'loop_iterations'")?,
        wake_counts,
        heap_depth: hist_from_json(
            v.get("heap_depth").ok_or("engine missing 'heap_depth'")?,
            "engine heap_depth",
        )?,
        events_per_cycle: hist_from_json(
            v.get("events_per_cycle").ok_or("engine missing 'events_per_cycle'")?,
            "engine events_per_cycle",
        )?,
        jump_len: hist_from_json(
            v.get("jump_len").ok_or("engine missing 'jump_len'")?,
            "engine jump_len",
        )?,
    })
}

fn latency_to_json(lat: &LatencyRecord) -> Json {
    let keyed = |key: &str, pairs: &[(u64, Pow2Hist)]| -> Json {
        Json::Arr(
            pairs
                .iter()
                .map(|(k, h)| {
                    Json::Obj(vec![
                        (key.to_string(), Json::from_u64(*k)),
                        ("hist".into(), hist_to_json(h)),
                    ])
                })
                .collect(),
        )
    };
    let depths: Vec<(u64, Pow2Hist)> =
        lat.depth_queue_wait.iter().map(|&(d, h)| (u64::from(d), h)).collect();
    let kinds: Vec<(u64, Pow2Hist)> =
        lat.kind_lifetime.iter().map(|&(k, h)| (u64::from(k), h)).collect();
    Json::Obj(vec![
        ("tbs".into(), Json::from_u64(lat.tbs)),
        ("partition_violations".into(), Json::from_u64(lat.partition_violations)),
        ("kmu_depth_hwm".into(), Json::from_u64(lat.kmu_depth_hwm)),
        ("launch_path".into(), hist_to_json(&lat.launch_path)),
        ("kmu_wait".into(), hist_to_json(&lat.kmu_wait)),
        ("queue_wait".into(), hist_to_json(&lat.queue_wait)),
        ("dispatch_gap".into(), hist_to_json(&lat.dispatch_gap)),
        ("exec".into(), hist_to_json(&lat.exec)),
        ("lifetime".into(), hist_to_json(&lat.lifetime)),
        ("child_queue_wait".into(), hist_to_json(&lat.child_queue_wait)),
        ("bound_queue_wait".into(), hist_to_json(&lat.bound_queue_wait)),
        ("stolen_queue_wait".into(), hist_to_json(&lat.stolen_queue_wait)),
        ("depth_queue_wait".into(), keyed("depth", &depths)),
        ("kind_lifetime".into(), keyed("kind", &kinds)),
        ("critical_path_len".into(), Json::from_u64(u64::from(lat.critical_path_len))),
        ("critical_path_cycles".into(), Json::from_u64(lat.critical_path_cycles)),
        ("critical_path_queue".into(), Json::from_u64(lat.critical_path_queue)),
        ("critical_path_exec".into(), Json::from_u64(lat.critical_path_exec)),
    ])
}

fn latency_from_json(v: &Json) -> Result<LatencyRecord, String> {
    let u64_field = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("latency missing integer field '{key}'"))
    };
    let hist_field = |key: &str| -> Result<Pow2Hist, String> {
        hist_from_json(
            v.get(key).ok_or_else(|| format!("latency missing '{key}'"))?,
            &format!("latency {key}"),
        )
    };
    let keyed_field = |field: &str, key: &str| -> Result<Vec<(u64, Pow2Hist)>, String> {
        let arr = v
            .get(field)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("latency missing array field '{field}'"))?;
        arr.iter()
            .map(|item| {
                let k = item
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("latency {field} entry missing '{key}'"))?;
                let h = hist_from_json(
                    item.get("hist")
                        .ok_or_else(|| format!("latency {field} entry missing 'hist'"))?,
                    &format!("latency {field}"),
                )?;
                Ok((k, h))
            })
            .collect()
    };
    let narrow = |what: &str, v: u64, max: u64| -> Result<u64, String> {
        if v > max {
            Err(format!("latency {what} {v} out of range"))
        } else {
            Ok(v)
        }
    };
    let depth_queue_wait = keyed_field("depth_queue_wait", "depth")?
        .into_iter()
        .map(|(d, h)| Ok((narrow("depth", d, u64::from(u8::MAX))? as u8, h)))
        .collect::<Result<Vec<_>, String>>()?;
    let kind_lifetime = keyed_field("kind_lifetime", "kind")?
        .into_iter()
        .map(|(k, h)| Ok((narrow("kind", k, u64::from(u16::MAX))? as u16, h)))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(LatencyRecord {
        tbs: u64_field("tbs")?,
        partition_violations: u64_field("partition_violations")?,
        kmu_depth_hwm: u64_field("kmu_depth_hwm")?,
        launch_path: hist_field("launch_path")?,
        kmu_wait: hist_field("kmu_wait")?,
        queue_wait: hist_field("queue_wait")?,
        dispatch_gap: hist_field("dispatch_gap")?,
        exec: hist_field("exec")?,
        lifetime: hist_field("lifetime")?,
        child_queue_wait: hist_field("child_queue_wait")?,
        bound_queue_wait: hist_field("bound_queue_wait")?,
        stolen_queue_wait: hist_field("stolen_queue_wait")?,
        depth_queue_wait,
        kind_lifetime,
        critical_path_len: u32::try_from(u64_field("critical_path_len")?)
            .map_err(|_| "latency critical_path_len out of range".to_string())?,
        critical_path_cycles: u64_field("critical_path_cycles")?,
        critical_path_queue: u64_field("critical_path_queue")?,
        critical_path_exec: u64_field("critical_path_exec")?,
    })
}

fn locality_from_json(v: &Json) -> Result<LocalityRecord, String> {
    let u64_field = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("locality missing integer field '{key}'"))
    };
    let f64_field = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("locality missing number field '{key}'"))
    };
    let class_field = |key: &str| -> Result<[u64; NUM_REUSE_CLASSES], String> {
        let arr = v
            .get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("locality missing array field '{key}'"))?;
        if arr.len() != NUM_REUSE_CLASSES {
            return Err(format!("locality '{key}' must have {NUM_REUSE_CLASSES} entries"));
        }
        let mut out = [0u64; NUM_REUSE_CLASSES];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = item.as_u64().ok_or_else(|| format!("locality '{key}' entry not integer"))?;
        }
        Ok(out)
    };
    Ok(LocalityRecord {
        l1_hits: u64_field("l1_hits")?,
        l2_hits: u64_field("l2_hits")?,
        l1_class_hits: class_field("l1_class_hits")?,
        l2_class_hits: class_field("l2_class_hits")?,
        l2_same_smx: u64_field("l2_same_smx")?,
        l2_cross_smx: u64_field("l2_cross_smx")?,
        bound_hits: u64_field("bound_hits")?,
        bound_parent_child: u64_field("bound_parent_child")?,
        stolen_hits: u64_field("stolen_hits")?,
        stolen_parent_child: u64_field("stolen_parent_child")?,
        l1_pc_mean_dist: f64_field("l1_pc_mean_dist")?,
        l2_pc_mean_dist: f64_field("l2_pc_mean_dist")?,
    })
}

/// Deserializes a [`RunRecord`] from the object shape [`run_to_json`]
/// writes.
///
/// # Errors
///
/// Names the first missing or mistyped field.
pub fn run_from_json(v: &Json) -> Result<RunRecord, String> {
    let str_field = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("run record missing string field '{key}'"))
    };
    let f64_field = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("run record missing number field '{key}'"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("run record missing integer field '{key}'"))
    };
    let stalls = v.get("stalls").ok_or("run record missing 'stalls'")?;
    let stall_field = |key: &str| -> Result<u64, String> {
        stalls
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("stalls missing integer field '{key}'"))
    };
    Ok(RunRecord {
        workload: str_field("workload")?,
        launch_model: str_field("launch_model")?,
        scheduler: str_field("scheduler")?,
        cycles: u64_field("cycles")?,
        ipc: f64_field("ipc")?,
        l1_hit_rate: f64_field("l1_hit_rate")?,
        l2_hit_rate: f64_field("l2_hit_rate")?,
        child_l1_hit_rate: f64_field("child_l1_hit_rate")?,
        mean_child_wait: f64_field("mean_child_wait")?,
        parent_smx_affinity: f64_field("parent_smx_affinity")?,
        smx_utilization: f64_field("smx_utilization")?,
        load_imbalance: f64_field("load_imbalance")?,
        dynamic_tbs: u64_field("dynamic_tbs")? as usize,
        total_tbs: u64_field("total_tbs")? as usize,
        steals: u64_field("steals")?,
        queue_overflows: u64_field("queue_overflows")?,
        queue_pushes: u64_field("queue_pushes")?,
        max_queue_depth: u64_field("max_queue_depth")?,
        queue_search_cycles: u64_field("queue_search_cycles")?,
        table_overflows: u64_field("table_overflows")?,
        stalls: StallBreakdown {
            scoreboard: stall_field("scoreboard")?,
            memory_pending: stall_field("memory_pending")?,
            mshr_full: stall_field("mshr_full")?,
            barrier: stall_field("barrier")?,
            no_tb: stall_field("no_tb")?,
            launch_path: stall_field("launch_path")?,
        },
        locality: v.get("locality").map(locality_from_json).transpose()?,
        engine: v.get("engine").map(engine_from_json).transpose()?,
        latency: v.get("latency").map(latency_from_json).transpose()?,
        // Host cost never enters the document; a parsed record reports
        // zero wall time and no dominant component.
        host: HostCost::default(),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn record() -> RunRecord {
        RunRecord {
            workload: "bfs-citation".to_string(),
            launch_model: "dtbl".to_string(),
            scheduler: "adaptive-bind".to_string(),
            cycles: 123_456_789_012,
            ipc: 61.25,
            l1_hit_rate: 0.5123456789,
            l2_hit_rate: 0.75,
            child_l1_hit_rate: 0.25,
            mean_child_wait: 12.5,
            parent_smx_affinity: 0.875,
            smx_utilization: 0.9,
            load_imbalance: 1.125,
            dynamic_tbs: 331,
            total_tbs: 843,
            steals: 17,
            queue_overflows: 0,
            queue_pushes: 331,
            max_queue_depth: 12,
            queue_search_cycles: 400,
            table_overflows: 2,
            stalls: StallBreakdown {
                scoreboard: 40,
                memory_pending: 30,
                mshr_full: 10,
                barrier: 5,
                no_tb: 15,
                launch_path: 3,
            },
            locality: None,
            engine: None,
            latency: None,
            host: HostCost::default(),
        }
    }

    fn engine() -> EngineRecord {
        let mut heap_depth = Pow2Hist::default();
        let mut events_per_cycle = Pow2Hist::default();
        let mut jump_len = Pow2Hist::default();
        for v in [0, 1, 3, 9] {
            heap_depth.record(v);
            events_per_cycle.record(v);
        }
        jump_len.record(17);
        jump_len.record(1024);
        EngineRecord {
            loop_iterations: 1200,
            wake_counts: [1000, 50, 30, 20, 100],
            heap_depth,
            events_per_cycle,
            jump_len,
        }
    }

    fn locality() -> LocalityRecord {
        LocalityRecord {
            l1_hits: 1000,
            l2_hits: 500,
            l1_class_hits: [600, 250, 100, 30, 20],
            l2_class_hits: [200, 150, 100, 25, 25],
            l2_same_smx: 300,
            l2_cross_smx: 200,
            bound_hits: 400,
            bound_parent_child: 240,
            stolen_hits: 100,
            stolen_parent_child: 20,
            l1_pc_mean_dist: 384.5,
            l2_pc_mean_dist: 2048.25,
        }
    }

    #[test]
    fn run_record_roundtrips_exactly() {
        let r = record();
        let text = run_to_json(&r).render();
        let parsed = run_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, r);
        // Re-rendering is byte-identical (the invariance tests rely on
        // string comparison of whole documents).
        assert_eq!(run_to_json(&parsed).render(), text);
    }

    #[test]
    fn locality_roundtrips_exactly() {
        let mut r = record();
        r.locality = Some(locality());
        let text = run_to_json(&r).render();
        let parsed = run_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(run_to_json(&parsed).render(), text);
    }

    #[test]
    fn unprofiled_record_keeps_schema_v1_bytes() {
        // An unprofiled record must serialize without any locality key,
        // so pre-provenance consumers (and the golden diffs) see the
        // exact schema-v1 byte layout.
        let text = run_to_json(&record()).render();
        assert!(!text.contains("locality"));
        let mut profiled = record();
        profiled.locality = Some(locality());
        let profiled_text = run_to_json(&profiled).render();
        assert!(profiled_text.starts_with(text.trim_end_matches('}')));
        assert!(profiled_text.contains("\"locality\":{\"l1_hits\":1000"));
    }

    #[test]
    fn engine_roundtrips_exactly() {
        let mut r = record();
        r.engine = Some(engine());
        let text = run_to_json(&r).render();
        let parsed = run_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(run_to_json(&parsed).render(), text);
    }

    #[test]
    fn engine_key_is_a_pure_suffix_extension() {
        // Enabling engine profiling appends one key: every byte of the
        // unprofiled record is a prefix of the profiled one, and the
        // host-cost telemetry never appears in either.
        let plain = run_to_json(&record()).render();
        assert!(!plain.contains("engine"));
        assert!(!plain.contains("host"));
        let mut profiled = record();
        profiled.engine = Some(engine());
        profiled.host = HostCost { ns: 987_654_321, dominant_component: Some("dram".into()) };
        let profiled_text = run_to_json(&profiled).render();
        assert!(profiled_text.starts_with(plain.trim_end_matches('}')));
        assert!(profiled_text.contains("\"engine\":{\"loop_iterations\":1200"));
        assert!(profiled_text.contains("\"wake_counts\":{\"component_tick\":1000"));
        assert!(!profiled_text.contains("host"));
        assert!(!profiled_text.contains("987654321"));
        assert!(!profiled_text.contains("dram"));
    }

    fn latency() -> LatencyRecord {
        let hist = |vals: &[u64]| {
            let mut h = Pow2Hist::default();
            for &v in vals {
                h.record(v);
            }
            h
        };
        LatencyRecord {
            tbs: 12,
            partition_violations: 0,
            kmu_depth_hwm: 4,
            launch_path: hist(&[3, 9, 17]),
            kmu_wait: hist(&[1, 2]),
            queue_wait: hist(&[0, 5, 130]),
            dispatch_gap: hist(&[1, 1, 1]),
            exec: hist(&[64, 300]),
            lifetime: hist(&[70, 400, 900]),
            child_queue_wait: hist(&[5, 130]),
            bound_queue_wait: hist(&[5]),
            stolen_queue_wait: hist(&[130]),
            depth_queue_wait: vec![(0, hist(&[0])), (1, hist(&[5, 130]))],
            kind_lifetime: vec![(0, hist(&[70])), (3, hist(&[400, 900]))],
            critical_path_len: 3,
            critical_path_cycles: 950,
            critical_path_queue: 200,
            critical_path_exec: 750,
        }
    }

    #[test]
    fn latency_roundtrips_exactly() {
        let mut r = record();
        r.latency = Some(latency());
        let text = run_to_json(&r).render();
        let parsed = run_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(run_to_json(&parsed).render(), text);
    }

    #[test]
    fn latency_key_is_a_pure_suffix_extension() {
        // The latency key appends after every earlier profiling key, so
        // an engine-profiled document stays a byte prefix of the same
        // run with latency profiling also enabled.
        let mut engine_only = record();
        engine_only.engine = Some(engine());
        let plain = run_to_json(&engine_only).render();
        assert!(!plain.contains("latency"));
        let mut profiled = engine_only.clone();
        profiled.latency = Some(latency());
        let profiled_text = run_to_json(&profiled).render();
        assert!(profiled_text.starts_with(plain.trim_end_matches('}')));
        assert!(profiled_text.contains("\"latency\":{\"tbs\":12"));
        assert!(profiled_text.contains("\"critical_path_cycles\":950"));
    }

    #[test]
    fn latency_with_out_of_range_depth_rejected() {
        let mut r = record();
        r.latency = Some(latency());
        let text = run_to_json(&r).render();
        let broken = text.replace("{\"depth\":1,", "{\"depth\":300,");
        assert_ne!(broken, text, "replacement must hit");
        assert!(run_from_json(&parse(&broken).unwrap()).is_err());
    }

    #[test]
    fn engine_with_oversized_bucket_array_rejected() {
        let mut r = record();
        r.engine = Some(engine());
        let text = run_to_json(&r).render();
        let too_many = format!("[{}]", vec!["1"; 66].join(","));
        let broken = text.replace("\"jump_len\":{\"count\":2,\"sum\":1041,\"max\":1024,\"buckets\":[0,0,0,0,0,1,0,0,0,0,0,1]}", &format!("\"jump_len\":{{\"count\":2,\"sum\":1041,\"max\":1024,\"buckets\":{too_many}}}"));
        assert_ne!(broken, text, "replacement must hit");
        assert!(run_from_json(&parse(&broken).unwrap()).is_err());
    }

    #[test]
    fn locality_with_wrong_class_arity_rejected() {
        let mut r = record();
        r.locality = Some(locality());
        let text = run_to_json(&r).render();
        let broken = text.replace("[600,250,100,30,20]", "[600,250,100,30]");
        assert!(run_from_json(&parse(&broken).unwrap()).is_err());
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let doc = r#"{"a": [1, -2.5, 1e3, "x\"\\\n\u0041"], "b": {"c": null, "d": true}}"#;
        let v = parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(arr[3].as_str(), Some("x\"\\\nA"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1} x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn writer_escapes_control_characters() {
        let v = Json::Str("line\nbreak \"q\" \\ \u{1}".to_string());
        let text = v.render();
        assert_eq!(text, "\"line\\nbreak \\\"q\\\" \\\\ \\u0001\"");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from_f64(f64::NAN), Json::Null);
        assert!(Json::Null.as_f64().unwrap().is_nan());
    }

    #[test]
    fn large_integers_roundtrip_exactly() {
        let v = Json::from_u64(u64::MAX);
        let text = v.render();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }
}
