//! Launch-path latency model.
//!
//! Section IV-D of the paper identifies launch latency as the factor that
//! can "kill any potential parent-child locality": a child that matures
//! long after its parent finds the caches cold no matter how cleverly it
//! is scheduled. The model here charges each launch a base cost, a
//! per-TB cost (parameter-buffer setup), and a congestion cost
//! proportional to the number of launches already in flight (the
//! software launch path serializes).

use gpu_sim::types::Cycle;

use crate::LaunchModelKind;

/// Latency parameters for the device-side launch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchLatency {
    /// Fixed cycles per launch.
    pub base: u32,
    /// Additional cycles per child TB.
    pub per_tb: u32,
    /// Additional cycles per launch already in flight (congestion).
    pub per_inflight: u32,
}

impl LaunchLatency {
    /// Creates a latency model.
    pub fn new(base: u32, per_tb: u32, per_inflight: u32) -> Self {
        LaunchLatency { base, per_tb, per_inflight }
    }

    /// A zero-latency model (launches mature instantly).
    pub fn zero() -> Self {
        LaunchLatency::new(0, 0, 0)
    }

    /// The default calibration for a mechanism.
    ///
    /// CDP device-kernel launches cost several microseconds on Kepler
    /// (thousands of SMX cycles); DTBL's hardware TB-group path is roughly
    /// an order of magnitude cheaper (per the DTBL paper this reproduction
    /// follows).
    pub fn default_for(kind: LaunchModelKind) -> Self {
        match kind {
            LaunchModelKind::Cdp => LaunchLatency::new(2500, 8, 4),
            LaunchModelKind::Dtbl => LaunchLatency::new(350, 4, 1),
        }
    }

    /// A uniform latency with no per-TB or congestion terms, for
    /// sensitivity sweeps.
    pub fn uniform(base: u32) -> Self {
        LaunchLatency::new(base, 0, 0)
    }

    /// Cycles until a launch of `num_tbs` TBs matures, given `in_flight`
    /// launches already pending.
    pub fn cycles(&self, num_tbs: u32, in_flight: usize) -> Cycle {
        u64::from(self.base)
            + u64::from(self.per_tb) * u64::from(num_tbs)
            + u64::from(self.per_inflight) * in_flight as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_is_zero() {
        assert_eq!(LaunchLatency::zero().cycles(100, 100), 0);
    }

    #[test]
    fn cycles_compose_terms() {
        let l = LaunchLatency::new(100, 2, 5);
        assert_eq!(l.cycles(10, 3), 100 + 20 + 15);
    }

    #[test]
    fn cdp_default_is_much_slower_than_dtbl() {
        let cdp = LaunchLatency::default_for(LaunchModelKind::Cdp);
        let dtbl = LaunchLatency::default_for(LaunchModelKind::Dtbl);
        assert!(cdp.cycles(4, 0) > 5 * dtbl.cycles(4, 0));
    }

    #[test]
    fn uniform_has_no_scaling_terms() {
        let l = LaunchLatency::uniform(500);
        assert_eq!(l.cycles(1, 0), 500);
        assert_eq!(l.cycles(1000, 1000), 500);
    }
}
