//! Dynamic-parallelism launch models for the GPU simulator.
//!
//! The LaPerm paper studies two device-side launch mechanisms:
//!
//! * **CDP** (CUDA Dynamic Parallelism): a device thread launches a new
//!   *kernel*. The launch travels through the software/driver path back
//!   to the KMU, costs thousands of cycles, and the child kernel occupies
//!   one of the 32 KDU entries — so at most 32 dynamic kernels are
//!   visible to the SMX scheduler at a time.
//! * **DTBL** (Dynamic Thread Block Launch): a device thread launches a
//!   lightweight *TB group* that is coalesced onto an existing kernel's
//!   KDU entry. Launches mature far faster and every dynamic TB is always
//!   visible to the SMX scheduler.
//!
//! Both are implemented as [`gpu_sim::launch::DynamicLaunchModel`]s:
//! [`CdpModel`] and [`DtblModel`]. [`LaunchLatency`] captures the timing
//! of the launch path and [`LaunchModelKind`] selects a model by name.
//!
//! # Example
//!
//! ```
//! use dynpar::{LaunchLatency, LaunchModelKind};
//!
//! let cdp = LaunchModelKind::Cdp.build(LaunchLatency::default_for(LaunchModelKind::Cdp));
//! assert_eq!(cdp.name(), "cdp");
//! ```

// Library code must not panic on fallible lookups; tests opt back
// in locally.
#![deny(clippy::unwrap_used)]

pub mod cdp;
pub mod dtbl;
pub mod latency;
pub mod tracking;

pub use cdp::CdpModel;
pub use dtbl::DtblModel;
pub use latency::LaunchLatency;
pub use tracking::FamilyTree;

use gpu_sim::launch::DynamicLaunchModel;

/// Selects one of the two dynamic-parallelism mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaunchModelKind {
    /// CUDA Dynamic Parallelism: device-side kernel launch.
    Cdp,
    /// Dynamic Thread Block Launch: device-side TB-group launch.
    Dtbl,
}

impl LaunchModelKind {
    /// Builds the launch model with the given latency parameters.
    pub fn build(self, latency: LaunchLatency) -> Box<dyn DynamicLaunchModel> {
        match self {
            LaunchModelKind::Cdp => Box::new(CdpModel::new(latency)),
            LaunchModelKind::Dtbl => Box::new(DtblModel::new(latency)),
        }
    }

    /// Builds the launch model with its default latency.
    pub fn build_default(self) -> Box<dyn DynamicLaunchModel> {
        self.build(LaunchLatency::default_for(self))
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LaunchModelKind::Cdp => "cdp",
            LaunchModelKind::Dtbl => "dtbl",
        }
    }

    /// Both mechanisms, in paper order.
    pub fn all() -> [LaunchModelKind; 2] {
        [LaunchModelKind::Cdp, LaunchModelKind::Dtbl]
    }
}

impl std::fmt::Display for LaunchModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_matching_model() {
        assert_eq!(LaunchModelKind::Cdp.build_default().name(), "cdp");
        assert_eq!(LaunchModelKind::Dtbl.build_default().name(), "dtbl");
    }

    #[test]
    fn all_lists_both() {
        assert_eq!(LaunchModelKind::all(), [LaunchModelKind::Cdp, LaunchModelKind::Dtbl]);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(LaunchModelKind::Cdp.to_string(), "cdp");
        assert_eq!(LaunchModelKind::Dtbl.to_string(), "dtbl");
    }
}
