//! The CUDA Dynamic Parallelism (CDP) launch model.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gpu_sim::launch::{Delivery, DynamicLaunchModel, LaunchRequest};
use gpu_sim::types::Cycle;

use crate::latency::LaunchLatency;

#[derive(Debug)]
struct Pending {
    ready_at: Cycle,
    seq: u64,
    req: LaunchRequest,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.ready_at, self.seq) == (other.ready_at, other.seq)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready_at, self.seq).cmp(&(other.ready_at, other.seq))
    }
}

/// Device-side *kernel* launches (CDP).
///
/// Every launch matures after [`LaunchLatency`] cycles and is delivered
/// as a [`Delivery::DeviceKernel`]: it goes through the KMU and occupies
/// its own KDU entry, subject to the concurrent-kernel limit.
#[derive(Debug)]
pub struct CdpModel {
    latency: LaunchLatency,
    pending: BinaryHeap<Reverse<Pending>>,
    next_seq: u64,
    submitted: u64,
}

impl CdpModel {
    /// Creates a CDP launch model.
    pub fn new(latency: LaunchLatency) -> Self {
        CdpModel { latency, pending: BinaryHeap::new(), next_seq: 0, submitted: 0 }
    }

    /// Total launches ever submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// The latency parameters in use.
    pub fn latency(&self) -> LaunchLatency {
        self.latency
    }
}

impl DynamicLaunchModel for CdpModel {
    fn submit(&mut self, req: LaunchRequest) {
        let delay = self.latency.cycles(req.num_tbs, self.pending.len());
        self.pending.push(Reverse(Pending {
            ready_at: req.issued_at + delay,
            seq: self.next_seq,
            req,
        }));
        self.next_seq += 1;
        self.submitted += 1;
    }

    fn drain_ready(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.ready_at > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked");
            out.push(Delivery::DeviceKernel(p.req));
        }
    }

    fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn next_ready(&self) -> Option<Cycle> {
        self.pending.peek().map(|Reverse(p)| p.ready_at)
    }

    fn name(&self) -> &'static str {
        "cdp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::{Origin, ResourceReq};
    use gpu_sim::program::KernelKindId;
    use gpu_sim::types::{BatchId, Priority, SmxId};

    fn drain(m: &mut CdpModel, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        m.drain_ready(now, &mut out);
        out
    }

    fn req(param: u64, issued_at: Cycle, num_tbs: u32) -> LaunchRequest {
        LaunchRequest {
            kind: KernelKindId(1),
            param,
            num_tbs,
            req: ResourceReq::new(32, 8, 0),
            origin: Origin {
                parent_batch: BatchId(0),
                parent_tb: 0,
                parent_smx: SmxId(0),
                parent_priority: Priority::HOST,
            },
            issued_at,
        }
    }

    #[test]
    fn launch_matures_after_latency() {
        let mut m = CdpModel::new(LaunchLatency::uniform(100));
        m.submit(req(1, 10, 1));
        assert_eq!(m.next_ready(), Some(110));
        assert!(drain(&mut m, 109).is_empty());
        let out = drain(&mut m, 110);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Delivery::DeviceKernel(_)));
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.next_ready(), None);
    }

    #[test]
    fn maturation_preserves_issue_order_for_equal_latency() {
        let mut m = CdpModel::new(LaunchLatency::zero());
        m.submit(req(1, 5, 1));
        m.submit(req(2, 5, 1));
        let out = drain(&mut m, 5);
        let params: Vec<u64> = out.iter().map(|d| d.request().param).collect();
        assert_eq!(params, vec![1, 2]);
    }

    #[test]
    fn congestion_delays_later_launches() {
        let mut m = CdpModel::new(LaunchLatency::new(100, 0, 50));
        m.submit(req(1, 0, 1)); // matures at 100
        m.submit(req(2, 0, 1)); // matures at 150
        assert_eq!(drain(&mut m, 100).len(), 1);
        assert_eq!(m.next_ready(), Some(150));
        assert!(drain(&mut m, 149).is_empty());
        assert_eq!(drain(&mut m, 150).len(), 1);
    }

    #[test]
    fn per_tb_cost_scales_with_grid() {
        let mut m = CdpModel::new(LaunchLatency::new(0, 10, 0));
        m.submit(req(1, 0, 8));
        assert!(drain(&mut m, 79).is_empty());
        assert_eq!(drain(&mut m, 80).len(), 1);
        assert_eq!(m.submitted(), 1);
    }
}
