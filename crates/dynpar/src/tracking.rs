//! Parent/child relationship tracking.
//!
//! The locality analysis (paper Section III-A) needs, for every dynamic
//! batch, its *direct parent* TB, and for every launching TB, the set of
//! batches it launched (whose TBs are mutual *siblings*). [`FamilyTree`]
//! derives both from the engine's batch table.

use std::collections::HashMap;

use gpu_sim::cache::ReuseClass;
use gpu_sim::kernel::Batch;
use gpu_sim::types::{BatchId, TbRef};

/// Parent/child relations of one finished (or running) simulation.
#[derive(Debug, Clone, Default)]
pub struct FamilyTree {
    parent_of_batch: HashMap<BatchId, TbRef>,
    children_of_tb: HashMap<TbRef, Vec<BatchId>>,
}

impl FamilyTree {
    /// Builds the tree from the engine's batch table.
    pub fn from_batches(batches: &[Batch]) -> Self {
        let mut tree = FamilyTree::default();
        for b in batches {
            if let Some(origin) = &b.origin {
                let parent = TbRef { batch: origin.parent_batch, index: origin.parent_tb };
                tree.parent_of_batch.insert(b.id, parent);
                tree.children_of_tb.entry(parent).or_default().push(b.id);
            }
        }
        tree
    }

    /// The direct parent TB of a dynamic batch (`None` for host kernels).
    pub fn direct_parent(&self, batch: BatchId) -> Option<TbRef> {
        self.parent_of_batch.get(&batch).copied()
    }

    /// Batches launched by a given TB, in creation order.
    pub fn children(&self, tb: TbRef) -> &[BatchId] {
        self.children_of_tb.get(&tb).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All TBs that launched at least one batch.
    pub fn launching_tbs(&self) -> impl Iterator<Item = (TbRef, &[BatchId])> {
        self.children_of_tb.iter().map(|(tb, v)| (*tb, v.as_slice()))
    }

    /// Number of dynamic batches tracked.
    pub fn dynamic_batches(&self) -> usize {
        self.parent_of_batch.len()
    }

    /// Classifies the relation between two TBs, mirroring the rules the
    /// simulator's provenance profiler applies per cache hit
    /// ([`gpu_sim::cache::Lineage::classify`]): same TB is `SelfReuse`,
    /// direct parent and child (either way) is `ParentChild`, same batch
    /// or same launching TB is `Sibling`, a transitive ancestor relation
    /// at distance >= 2 is `Ancestor`, anything else `Unrelated`. Used to
    /// cross-check the in-cache classification from the batch table.
    pub fn classify(&self, a: TbRef, b: TbRef) -> ReuseClass {
        if a == b {
            return ReuseClass::SelfReuse;
        }
        let pa = self.direct_parent(a.batch);
        let pb = self.direct_parent(b.batch);
        if pa == Some(b) || pb == Some(a) {
            return ReuseClass::ParentChild;
        }
        if a.batch == b.batch || (pa.is_some() && pa == pb) {
            return ReuseClass::Sibling;
        }
        let is_ancestor = |anc: TbRef, mut desc: TbRef, skip_direct: bool| {
            let mut dist = 0u32;
            while let Some(parent) = self.direct_parent(desc.batch) {
                dist += 1;
                if parent == anc {
                    return !skip_direct || dist >= 2;
                }
                desc = parent;
                if dist as usize > self.parent_of_batch.len() {
                    break; // cycle guard
                }
            }
            false
        };
        if is_ancestor(b, a, true) || is_ancestor(a, b, true) {
            return ReuseClass::Ancestor;
        }
        ReuseClass::Unrelated
    }

    /// Nesting depth of a batch: 0 for host batches, 1 + parent's depth
    /// otherwise. `batches` must be the same table the tree was built
    /// from.
    pub fn depth(&self, batch: BatchId, batches: &[Batch]) -> u32 {
        let mut depth = 0;
        let mut current = batch;
        while let Some(parent) = self.direct_parent(current) {
            depth += 1;
            current = parent.batch;
            debug_assert!((current.index()) < batches.len());
            if depth > batches.len() as u32 {
                break; // cycle guard; cannot happen with engine-produced data
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::{BatchKind, BatchState, Origin, ResourceReq};
    use gpu_sim::program::KernelKindId;
    use gpu_sim::types::{Priority, SmxId};

    fn batch(id: u32, origin: Option<(u32, u32)>) -> Batch {
        Batch {
            id: BatchId(id),
            batch_kind: if origin.is_some() {
                BatchKind::DeviceKernel
            } else {
                BatchKind::HostKernel
            },
            kind: KernelKindId(0),
            param: 0,
            num_tbs: 4,
            req: ResourceReq::new(32, 8, 0),
            origin: origin.map(|(b, t)| Origin {
                parent_batch: BatchId(b),
                parent_tb: t,
                parent_smx: SmxId(0),
                parent_priority: Priority::HOST,
            }),
            priority: Priority(u8::from(origin.is_some())),
            created_at: 0,
            schedulable_at: None,
            state: BatchState::Complete,
            next_tb: 4,
            finished_tbs: 4,
            kdu_entry: None,
        }
    }

    #[test]
    fn tree_links_children_to_direct_parents() {
        let batches = vec![
            batch(0, None),
            batch(1, Some((0, 2))),
            batch(2, Some((0, 2))),
            batch(3, Some((0, 4))),
        ];
        let tree = FamilyTree::from_batches(&batches);
        let p2 = TbRef { batch: BatchId(0), index: 2 };
        let p4 = TbRef { batch: BatchId(0), index: 4 };
        assert_eq!(tree.direct_parent(BatchId(1)), Some(p2));
        assert_eq!(tree.children(p2), &[BatchId(1), BatchId(2)]);
        assert_eq!(tree.children(p4), &[BatchId(3)]);
        assert_eq!(tree.dynamic_batches(), 3);
        assert_eq!(tree.direct_parent(BatchId(0)), None);
    }

    #[test]
    fn unknown_tb_has_no_children() {
        let tree = FamilyTree::from_batches(&[batch(0, None)]);
        assert!(tree.children(TbRef { batch: BatchId(0), index: 0 }).is_empty());
    }

    #[test]
    fn depth_counts_nesting() {
        let batches = vec![batch(0, None), batch(1, Some((0, 0))), batch(2, Some((1, 1)))];
        let tree = FamilyTree::from_batches(&batches);
        assert_eq!(tree.depth(BatchId(0), &batches), 0);
        assert_eq!(tree.depth(BatchId(1), &batches), 1);
        assert_eq!(tree.depth(BatchId(2), &batches), 2);
    }

    #[test]
    fn launching_tbs_iterates_all_parents() {
        let batches = vec![batch(0, None), batch(1, Some((0, 1))), batch(2, Some((0, 3)))];
        let tree = FamilyTree::from_batches(&batches);
        assert_eq!(tree.launching_tbs().count(), 2);
    }

    #[test]
    fn classify_matches_lineage_rules() {
        // batch 0: host; batches 1, 2 launched by TB (0,1); batch 3
        // launched by TB (0,2); batch 4 launched by TB (1,0).
        let batches = vec![
            batch(0, None),
            batch(1, Some((0, 1))),
            batch(2, Some((0, 1))),
            batch(3, Some((0, 2))),
            batch(4, Some((1, 0))),
        ];
        let tree = FamilyTree::from_batches(&batches);
        let t = |b: u32, i: u32| TbRef { batch: BatchId(b), index: i };

        assert_eq!(tree.classify(t(1, 0), t(1, 0)), ReuseClass::SelfReuse);
        assert_eq!(tree.classify(t(1, 0), t(0, 1)), ReuseClass::ParentChild);
        assert_eq!(tree.classify(t(0, 1), t(1, 0)), ReuseClass::ParentChild);
        // Same batch, and same launching parent across batches.
        assert_eq!(tree.classify(t(1, 0), t(1, 3)), ReuseClass::Sibling);
        assert_eq!(tree.classify(t(1, 0), t(2, 0)), ReuseClass::Sibling);
        // Grandparent relation at distance 2.
        assert_eq!(tree.classify(t(4, 0), t(0, 1)), ReuseClass::Ancestor);
        assert_eq!(tree.classify(t(0, 1), t(4, 0)), ReuseClass::Ancestor);
        // Different parents, no shared ancestry path.
        assert_eq!(tree.classify(t(1, 0), t(3, 0)), ReuseClass::Unrelated);
        // Host TBs of different batches share nothing.
        assert_eq!(tree.classify(t(0, 0), t(0, 3)), ReuseClass::Sibling);
    }
}
