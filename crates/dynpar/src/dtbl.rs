//! The Dynamic Thread Block Launch (DTBL) model.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gpu_sim::launch::{Delivery, DynamicLaunchModel, LaunchRequest};
use gpu_sim::types::Cycle;

use crate::latency::LaunchLatency;

#[derive(Debug)]
struct Pending {
    ready_at: Cycle,
    seq: u64,
    req: LaunchRequest,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.ready_at, self.seq) == (other.ready_at, other.seq)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready_at, self.seq).cmp(&(other.ready_at, other.seq))
    }
}

/// Device-side *TB group* launches (DTBL).
///
/// Launches mature quickly and are delivered as [`Delivery::TbGroup`]s
/// coalesced onto the parent kernel's KDU entry, so dynamic TBs are
/// always visible to the SMX scheduler (no 32-kernel limit).
///
/// The DTBL hardware stores TB-group descriptors in a per-SMX on-chip
/// SRAM table with a global-memory overflow buffer (the same structure
/// LaPerm later reuses for its priority queues). The model charges
/// `overflow_penalty` extra cycles to launches submitted while more than
/// `onchip_capacity` are in flight, and counts those overflows.
#[derive(Debug)]
pub struct DtblModel {
    latency: LaunchLatency,
    pending: BinaryHeap<Reverse<Pending>>,
    next_seq: u64,
    submitted: u64,
    onchip_capacity: usize,
    overflow_penalty: u32,
    overflows: u64,
}

impl DtblModel {
    /// Default on-chip TB-group table capacity (128 entries/SMX in the
    /// paper; a shared pool is modeled).
    pub const DEFAULT_ONCHIP_CAPACITY: usize = 128;

    /// Default extra cycles for an overflowed (global-memory) group.
    pub const DEFAULT_OVERFLOW_PENALTY: u32 = 300;

    /// Creates a DTBL launch model with default table parameters.
    pub fn new(latency: LaunchLatency) -> Self {
        Self::with_table(latency, Self::DEFAULT_ONCHIP_CAPACITY, Self::DEFAULT_OVERFLOW_PENALTY)
    }

    /// Creates a DTBL launch model with an explicit on-chip table size and
    /// overflow penalty.
    pub fn with_table(
        latency: LaunchLatency,
        onchip_capacity: usize,
        overflow_penalty: u32,
    ) -> Self {
        DtblModel {
            latency,
            pending: BinaryHeap::new(),
            next_seq: 0,
            submitted: 0,
            onchip_capacity,
            overflow_penalty,
            overflows: 0,
        }
    }

    /// Total launches ever submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Launches that overflowed the on-chip table.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// The latency parameters in use.
    pub fn latency(&self) -> LaunchLatency {
        self.latency
    }
}

impl DynamicLaunchModel for DtblModel {
    fn submit(&mut self, req: LaunchRequest) {
        let mut delay = self.latency.cycles(req.num_tbs, self.pending.len());
        if self.pending.len() >= self.onchip_capacity {
            delay += u64::from(self.overflow_penalty);
            self.overflows += 1;
        }
        self.pending.push(Reverse(Pending {
            ready_at: req.issued_at + delay,
            seq: self.next_seq,
            req,
        }));
        self.next_seq += 1;
        self.submitted += 1;
    }

    fn drain_ready(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.ready_at > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked");
            out.push(Delivery::TbGroup(p.req));
        }
    }

    fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn next_ready(&self) -> Option<Cycle> {
        self.pending.peek().map(|Reverse(p)| p.ready_at)
    }

    fn name(&self) -> &'static str {
        "dtbl"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("dtbl_table_overflows", self.overflows)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::{Origin, ResourceReq};
    use gpu_sim::program::KernelKindId;
    use gpu_sim::types::{BatchId, Priority, SmxId};

    fn drain(m: &mut DtblModel, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        m.drain_ready(now, &mut out);
        out
    }

    fn req(param: u64, issued_at: Cycle) -> LaunchRequest {
        LaunchRequest {
            kind: KernelKindId(1),
            param,
            num_tbs: 1,
            req: ResourceReq::new(32, 8, 0),
            origin: Origin {
                parent_batch: BatchId(0),
                parent_tb: 0,
                parent_smx: SmxId(0),
                parent_priority: Priority::HOST,
            },
            issued_at,
        }
    }

    #[test]
    fn delivers_tb_groups() {
        let mut m = DtblModel::new(LaunchLatency::uniform(10));
        m.submit(req(1, 0));
        assert_eq!(m.next_ready(), Some(10));
        let out = drain(&mut m, 10);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Delivery::TbGroup(_)));
        assert_eq!(m.next_ready(), None);
    }

    #[test]
    fn overflow_charges_penalty() {
        let mut m = DtblModel::with_table(LaunchLatency::uniform(10), 1, 1000);
        m.submit(req(1, 0)); // on-chip, ready at 10
        m.submit(req(2, 0)); // overflow, ready at 1010
        assert_eq!(m.overflows(), 1);
        assert_eq!(drain(&mut m, 10).len(), 1);
        assert_eq!(m.next_ready(), Some(1010));
        assert!(drain(&mut m, 1009).is_empty());
        assert_eq!(drain(&mut m, 1010).len(), 1);
    }

    #[test]
    fn no_overflow_under_capacity() {
        let mut m = DtblModel::new(LaunchLatency::zero());
        for i in 0..10 {
            m.submit(req(i, 0));
        }
        assert_eq!(m.overflows(), 0);
        assert_eq!(drain(&mut m, 0).len(), 10);
        assert_eq!(m.submitted(), 10);
    }
}
