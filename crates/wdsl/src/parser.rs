//! Recursive-descent parser: token stream → [`WorkloadAst`].
//!
//! The grammar is LL(1) except for the statement-initial identifier,
//! where one token of lookahead distinguishes keywords (`let`, `if`,
//! `compute`, …) from plain assignments (`name = expr;`). Every error
//! carries the position of the offending token.

use crate::ast::{BinOp, Builtin, Expr, HostDecl, KernelDecl, Stmt, StmtKind, WorkloadAst};
use crate::error::{DslError, Pos};
use crate::lexer::{lex, Token, TokenKind};

/// Parses a complete `.dsl` source text.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its source
/// position.
pub fn parse(src: &str) -> Result<WorkloadAst, DslError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, at: 0 };
    p.file()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        // The lexer always terminates the stream with Eof, so clamping
        // to the final token keeps every lookahead in bounds.
        &self.tokens[self.at.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.at + 1).min(self.tokens.len() - 1)].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at.min(self.tokens.len() - 1)].pos
    }

    fn line(&self) -> u32 {
        self.pos().line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.at.min(self.tokens.len() - 1)].kind.clone();
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> DslError {
        DslError::Parse { pos: self.pos(), message: message.into() }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), DslError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {}", self.peek().describe())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, DslError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DslError> {
        match self.peek() {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => {
                Err(self.error(format!("expected keyword '{kw}', found {}", other.describe())))
            }
        }
    }

    fn expect_str(&mut self, what: &str) -> Result<String, DslError> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    // ---- file structure -------------------------------------------------

    fn file(&mut self) -> Result<WorkloadAst, DslError> {
        let mut ast = WorkloadAst::default();
        self.expect_keyword("workload")?;
        ast.name = self.expect_str("workload name string")?;
        if self.at_keyword("input") {
            self.bump();
            ast.input = self.expect_str("input name string")?;
        }
        self.expect(&TokenKind::Semi, "';'")?;
        while self.peek() != &TokenKind::Eof {
            let line = self.line();
            match self.peek().clone() {
                TokenKind::Ident(kw) if kw == "const" => {
                    self.bump();
                    let name = self.expect_ident("constant name")?;
                    self.expect(&TokenKind::Assign, "'='")?;
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    ast.consts.push((line, name, value));
                }
                TokenKind::Ident(kw) if kw == "region" => {
                    self.bump();
                    let name = self.expect_ident("region name")?;
                    self.expect(&TokenKind::LBracket, "'['")?;
                    let len = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let elem = self.expr()?;
                    self.expect(&TokenKind::RBracket, "']'")?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    ast.regions.push((line, name, len, elem));
                }
                TokenKind::Ident(kw) if kw == "data" => {
                    self.bump();
                    let name = self.expect_ident("data array name")?;
                    self.expect(&TokenKind::Assign, "'='")?;
                    self.expect(&TokenKind::LBracket, "'['")?;
                    let mut values = Vec::new();
                    while self.peek() != &TokenKind::RBracket {
                        match self.peek().clone() {
                            TokenKind::Int(v) => {
                                self.bump();
                                values.push(v);
                            }
                            other => {
                                return Err(self.error(format!(
                                    "expected integer in data array, found {}",
                                    other.describe()
                                )))
                            }
                        }
                        if self.peek() == &TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBracket, "']'")?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    ast.datas.push((line, name, values));
                }
                TokenKind::Ident(kw) if kw == "host" => {
                    self.bump();
                    let kind = self.named_arg("kind")?;
                    let param = self.named_arg("param")?;
                    let tbs = self.named_arg("tbs")?;
                    let threads = self.named_arg("threads")?;
                    let regs = self.named_arg("regs")?;
                    let smem = self.named_arg("smem")?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    ast.hosts.push(HostDecl { line, kind, param, tbs, threads, regs, smem });
                }
                TokenKind::Ident(kw) if kw == "kernel" => {
                    self.bump();
                    let kind = self.expr()?;
                    let name = self.expect_str("kernel name string")?;
                    let threads = self.named_arg("threads")?;
                    let body = self.block()?;
                    ast.kernels.push(KernelDecl { line, kind, name, threads, body });
                }
                other => {
                    return Err(self.error(format!(
                        "expected 'const', 'region', 'data', 'host' or 'kernel', found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(ast)
    }

    fn named_arg(&mut self, name: &str) -> Result<Expr, DslError> {
        self.expect_keyword(name)?;
        self.expect(&TokenKind::Assign, "'='")?;
        self.expr()
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, DslError> {
        self.expect(&TokenKind::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unclosed block: expected '}'"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // consume '}'
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, DslError> {
        let line = self.line();
        let kind = match self.peek().clone() {
            TokenKind::Ident(kw) => match kw.as_str() {
                "let" => {
                    self.bump();
                    let name = self.expect_ident("variable name")?;
                    self.expect(&TokenKind::Assign, "'='")?;
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Let(name, value)
                }
                "if" => {
                    self.bump();
                    let cond = self.expr()?;
                    let then = self.block()?;
                    let otherwise = if self.at_keyword("else") {
                        self.bump();
                        self.block()?
                    } else {
                        Vec::new()
                    };
                    StmtKind::If(cond, then, otherwise)
                }
                "for" => {
                    self.bump();
                    let name = self.expect_ident("loop variable name")?;
                    self.expect_keyword("in")?;
                    let lo = self.expr()?;
                    self.expect(&TokenKind::DotDot, "'..'")?;
                    let hi = self.expr()?;
                    let body = self.block()?;
                    StmtKind::For(name, lo, hi, body)
                }
                "while" => {
                    self.bump();
                    let cond = self.expr()?;
                    let body = self.block()?;
                    StmtKind::While(cond, body)
                }
                "return" => {
                    self.bump();
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Return
                }
                "compute" => {
                    self.bump();
                    let cycles = self.expr()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Compute(cycles)
                }
                "compute_masked" => {
                    self.bump();
                    let cycles = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let active = self.expr()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::ComputeMasked(cycles, active)
                }
                "sync" => {
                    self.bump();
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Sync
                }
                "shared" => {
                    self.bump();
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Shared
                }
                "load_slice" | "store_slice" => {
                    self.bump();
                    let region = self.expect_ident("region name")?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let start = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let count = self.expr()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Slice { store: kw == "store_slice", region, start, count }
                }
                "load_bcast" | "store_bcast" => {
                    self.bump();
                    let region = self.expect_ident("region name")?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let index = self.expr()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Bcast { store: kw == "store_bcast", region, index }
                }
                "gather" | "scatter" => {
                    self.bump();
                    let body = self.block()?;
                    StmtKind::Addrs { store: kw == "scatter", body }
                }
                "yield" => {
                    self.bump();
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Yield(value)
                }
                "launch" => {
                    self.bump();
                    let kind = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let param = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let num_tbs = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let threads = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let regs = self.expr()?;
                    self.expect(&TokenKind::Comma, "','")?;
                    let smem = self.expr()?;
                    self.expect(&TokenKind::Semi, "';'")?;
                    StmtKind::Launch { kind, param, num_tbs, threads, regs, smem }
                }
                _ => {
                    // Plain assignment: `name = expr;`. Anything else
                    // starting with an identifier is a mistake.
                    if self.peek2() == &TokenKind::Assign {
                        self.bump();
                        self.expect(&TokenKind::Assign, "'='")?;
                        let value = self.expr()?;
                        self.expect(&TokenKind::Semi, "';'")?;
                        StmtKind::Assign(kw, value)
                    } else {
                        return Err(self.error(format!(
                            "expected a statement, found identifier '{kw}' \
                             (did you mean '{kw} = …;' or a keyword?)"
                        )));
                    }
                }
            },
            other => {
                return Err(self.error(format!("expected a statement, found {}", other.describe())))
            }
        };
        Ok(Stmt { line, kind })
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, DslError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::PipePipe {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &TokenKind::AmpAmp {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.bitor_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.bitor_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.bitand_expr()?;
        while self.peek() == &TokenKind::Pipe {
            self.bump();
            let rhs = self.bitand_expr()?;
            lhs = Expr::Bin(BinOp::BitOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.shift_expr()?;
        while self.peek() == &TokenKind::Amp {
            self.bump();
            let rhs = self.shift_expr()?;
            lhs = Expr::Bin(BinOp::BitAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, DslError> {
        if self.peek() == &TokenKind::Bang {
            self.bump();
            let inner = self.unary_expr()?;
            Ok(Expr::Not(Box::new(inner)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, DslError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek() {
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(&TokenKind::RBracket, "']'")?;
                        Ok(Expr::Index(name, Box::new(index)))
                    }
                    TokenKind::LParen => self.call(&name),
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => Err(self.error(format!("expected an expression, found {}", other.describe()))),
        }
    }

    fn call(&mut self, name: &str) -> Result<Expr, DslError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let expr = match name {
            "len" => {
                let data = self.expect_ident("data array name")?;
                Expr::Len(data)
            }
            "addr" => {
                let region = self.expect_ident("region name")?;
                self.expect(&TokenKind::Comma, "','")?;
                let index = self.expr()?;
                Expr::Addr(region, Box::new(index))
            }
            "min" | "max" | "div_ceil" => {
                let builtin = match name {
                    "min" => Builtin::Min,
                    "max" => Builtin::Max,
                    _ => Builtin::DivCeil,
                };
                let a = self.expr()?;
                self.expect(&TokenKind::Comma, "','")?;
                let b = self.expr()?;
                Expr::Call(builtin, Box::new(a), Box::new(b))
            }
            other => {
                return Err(self.error(format!(
                    "unknown function '{other}' (expected len, addr, min, max or div_ceil)"
                )))
            }
        };
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
workload "toy" input "tiny";
const HEAVY = 4 * 2;
region values[16, 4];
data deg = [3, 0, 7, 1];
host kind = 0 param = 0 tbs = 2 threads = 32 regs = 24 smem = 256;
kernel 0 "toy-parent" threads = 32 {
    let a = tb * 8;
    let cnt = min(8, 16 - a);
    if cnt == 0 { compute 1; return; }
    load_slice values, a, cnt;
    gather {
        for i in 0 .. cnt {
            if deg[a + i] >= HEAVY { yield addr(values, a + i); }
        }
    }
    launch 1, a, div_ceil(cnt, 2), 32, 20, 0;
    sync;
    store_slice values, a, cnt;
}
"#;

    #[test]
    fn parses_a_full_workload() {
        let ast = parse(SMALL).expect("parses");
        assert_eq!(ast.name, "toy");
        assert_eq!(ast.input, "tiny");
        assert_eq!(ast.consts.len(), 1);
        assert_eq!(ast.regions.len(), 1);
        assert_eq!(ast.datas[0].2, vec![3, 0, 7, 1]);
        assert_eq!(ast.hosts.len(), 1);
        assert_eq!(ast.kernels[0].name, "toy-parent");
        assert_eq!(ast.kernels[0].body.len(), 8);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let ast = parse("workload \"p\"; const C = 1 + 2 * 3;").expect("parses");
        let (_, _, expr) = &ast.consts[0];
        assert_eq!(
            *expr,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Bin(BinOp::Mul, Box::new(Expr::Int(2)), Box::new(Expr::Int(3)))),
            )
        );
    }

    #[test]
    fn precedence_comparison_over_logic() {
        let ast = parse("workload \"p\"; const C = 1 < 2 && 3 < 4;").expect("parses");
        let (_, _, expr) = &ast.consts[0];
        match expr {
            Expr::Bin(BinOp::And, lhs, rhs) => {
                assert!(matches!(**lhs, Expr::Bin(BinOp::Lt, _, _)));
                assert!(matches!(**rhs, Expr::Bin(BinOp::Lt, _, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn missing_semicolon_is_a_parse_error() {
        let err = parse("workload \"p\"; const C = 1").expect_err("must fail");
        assert_eq!(err.stage(), "parse");
        assert!(err.to_string().contains("expected ';'"), "{err}");
    }

    #[test]
    fn unknown_function_is_a_parse_error() {
        let err = parse("workload \"p\"; kernel 0 \"k\" threads = 32 { compute foo(1, 2); }")
            .expect_err("must fail");
        assert!(err.to_string().contains("unknown function 'foo'"), "{err}");
    }

    #[test]
    fn unclosed_block_is_a_parse_error() {
        let err = parse("workload \"p\"; kernel 0 \"k\" threads = 32 { compute 1;")
            .expect_err("must fail");
        assert!(err.to_string().contains("unclosed block"), "{err}");
    }

    #[test]
    fn bare_identifier_statement_is_rejected_with_hint() {
        let err = parse("workload \"p\"; kernel 0 \"k\" threads = 32 { frobnicate; }")
            .expect_err("must fail");
        assert!(err.to_string().contains("frobnicate"), "{err}");
    }

    #[test]
    fn else_branch_parses() {
        let ast = parse(
            "workload \"p\"; kernel 0 \"k\" threads = 32 \
             { if tb == 0 { compute 1; } else { compute 2; } }",
        )
        .expect("parses");
        match &ast.kernels[0].body[0].kind {
            StmtKind::If(_, then, otherwise) => {
                assert_eq!(then.len(), 1);
                assert_eq!(otherwise.len(), 1);
            }
            other => panic!("unexpected statement: {other:?}"),
        }
    }
}
