//! Reference AST-walking interpreter.
//!
//! This is the semantic oracle: slow, obvious, and structured exactly
//! like the resolved tree. The bytecode VM must agree with it on every
//! program — including the error cases — which the differential fuzzer
//! checks over randomized programs and the suite-equivalence tests
//! check over the real corpus.

use gpu_sim::program::TbProgram;

use crate::emit::{element_addr, EmitCtx};
use crate::error::{runtime, DslError};
use crate::resolve::{eval_bin, RExpr, RKernel, RStmt, ResolvedWorkload};

/// Statement budget per TB program (the VM uses the same constant as an
/// instruction budget). Generous: corpus programs execute a few
/// thousand statements; only a runaway loop gets anywhere near it.
pub const FUEL: u64 = 64 * 1024 * 1024;

/// Control-flow outcome of running a statement list.
enum Flow {
    Normal,
    Return,
}

struct Interp<'a> {
    w: &'a ResolvedWorkload,
    kernel: &'a str,
    param: u64,
    tb: u64,
    slots: Vec<u64>,
    fuel: u64,
}

/// Runs `kernel` for one TB via tree walking.
///
/// # Errors
///
/// Returns the same structured runtime errors as the VM: data index out
/// of bounds, division by zero, or fuel exhaustion.
pub fn interpret_tb(
    w: &ResolvedWorkload,
    kernel: &RKernel,
    param: u64,
    tb: u32,
) -> Result<TbProgram, DslError> {
    let mut interp = Interp {
        w,
        kernel: &kernel.name,
        param,
        tb: u64::from(tb),
        slots: vec![0; kernel.slots as usize],
        fuel: FUEL,
    };
    let mut ctx = EmitCtx::new(kernel.threads);
    interp.run(&kernel.body, &mut ctx)?;
    Ok(ctx.finish())
}

impl Interp<'_> {
    fn run(&mut self, stmts: &[RStmt], ctx: &mut EmitCtx) -> Result<Flow, DslError> {
        for stmt in stmts {
            self.fuel =
                self.fuel.checked_sub(1).ok_or_else(|| runtime::fuel_exhausted(self.kernel))?;
            match stmt {
                RStmt::Set(slot, value) => {
                    self.slots[*slot as usize] = self.eval(value)?;
                }
                RStmt::If(cond, then, otherwise) => {
                    let branch = if self.eval(cond)? != 0 { then } else { otherwise };
                    if let Flow::Return = self.run(branch, ctx)? {
                        return Ok(Flow::Return);
                    }
                }
                RStmt::For(slot, lo, hi, body) => {
                    let lo = self.eval(lo)?;
                    let hi = self.eval(hi)?;
                    // Mirror the VM lowering exactly: the loop variable
                    // is an ordinary slot re-read at the loop head, so a
                    // body write to it redirects iteration, and the
                    // increment wraps.
                    self.slots[*slot as usize] = lo;
                    while self.slots[*slot as usize] < hi {
                        // Charge one unit per iteration so an empty body
                        // still consumes fuel (the VM pays per
                        // instruction for the same loop).
                        self.fuel = self
                            .fuel
                            .checked_sub(1)
                            .ok_or_else(|| runtime::fuel_exhausted(self.kernel))?;
                        if let Flow::Return = self.run(body, ctx)? {
                            return Ok(Flow::Return);
                        }
                        self.slots[*slot as usize] = self.slots[*slot as usize].wrapping_add(1);
                    }
                }
                RStmt::While(cond, body) => {
                    while self.eval(cond)? != 0 {
                        self.fuel = self
                            .fuel
                            .checked_sub(1)
                            .ok_or_else(|| runtime::fuel_exhausted(self.kernel))?;
                        if let Flow::Return = self.run(body, ctx)? {
                            return Ok(Flow::Return);
                        }
                    }
                }
                RStmt::Return => return Ok(Flow::Return),
                RStmt::Compute(c) => {
                    let c = self.eval(c)?;
                    ctx.compute(c);
                }
                RStmt::ComputeMasked(c, a) => {
                    let c = self.eval(c)?;
                    let a = self.eval(a)?;
                    ctx.compute_masked(c, a);
                }
                RStmt::Sync => ctx.sync(),
                RStmt::Shared => ctx.shared(),
                RStmt::Slice { store, region, start, count } => {
                    let start = self.eval(start)?;
                    let count = self.eval(count)?;
                    ctx.slice(*store, self.w.regions[*region as usize].region, start, count);
                }
                RStmt::Bcast { store, region, index } => {
                    let index = self.eval(index)?;
                    ctx.bcast(*store, self.w.regions[*region as usize].region, index);
                }
                RStmt::Addrs { store, body } => {
                    ctx.begin_addrs(*store);
                    let flow = self.run(body, ctx)?;
                    ctx.end_addrs();
                    debug_assert!(
                        matches!(flow, Flow::Normal),
                        "return inside gather (resolver invariant)"
                    );
                }
                RStmt::Yield(value) => {
                    let addr = self.eval(value)?;
                    ctx.push_addr(addr);
                }
                RStmt::Launch { kind, param, num_tbs, threads, regs, smem } => {
                    let kind = self.eval(kind)?;
                    let param = self.eval(param)?;
                    let num_tbs = self.eval(num_tbs)?;
                    let threads = self.eval(threads)?;
                    let regs = self.eval(regs)?;
                    let smem = self.eval(smem)?;
                    ctx.launch(kind, param, num_tbs, threads, regs, smem);
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn eval(&self, expr: &RExpr) -> Result<u64, DslError> {
        use crate::ast::{BinOp, Builtin};
        match expr {
            RExpr::Lit(v) => Ok(*v),
            RExpr::Slot(slot) => Ok(self.slots[*slot as usize]),
            RExpr::Param => Ok(self.param),
            RExpr::Tb => Ok(self.tb),
            RExpr::Data(id, index) => {
                let index = self.eval(index)?;
                let data = &self.w.datas[*id as usize];
                data.values.get(usize::try_from(index).unwrap_or(usize::MAX)).copied().ok_or_else(
                    || runtime::data_oob(self.kernel, &data.name, index, data.values.len()),
                )
            }
            RExpr::Addr(id, index) => {
                let index = self.eval(index)?;
                Ok(element_addr(self.w.regions[*id as usize].region, index))
            }
            RExpr::Call(b, x, y) => {
                let x = self.eval(x)?;
                let y = self.eval(y)?;
                match b {
                    Builtin::Min => Ok(x.min(y)),
                    Builtin::Max => Ok(x.max(y)),
                    Builtin::DivCeil => {
                        if y == 0 {
                            Err(runtime::div_by_zero(self.kernel))
                        } else {
                            Ok(x.div_ceil(y))
                        }
                    }
                }
            }
            RExpr::Not(x) => Ok(u64::from(self.eval(x)? == 0)),
            RExpr::Bin(op, x, y) => match op {
                // Short-circuit: the right operand of `&&`/`||` is not
                // evaluated when the left decides — so `0 && (1/0)` is
                // 0, not an error, in both back ends.
                BinOp::And => {
                    if self.eval(x)? == 0 {
                        Ok(0)
                    } else {
                        Ok(u64::from(self.eval(y)? != 0))
                    }
                }
                BinOp::Or => {
                    if self.eval(x)? != 0 {
                        Ok(1)
                    } else {
                        Ok(u64::from(self.eval(y)? != 0))
                    }
                }
                BinOp::Div | BinOp::Mod => {
                    let a = self.eval(x)?;
                    let b = self.eval(y)?;
                    if b == 0 {
                        Err(runtime::div_by_zero(self.kernel))
                    } else {
                        Ok(eval_bin(*op, a, b))
                    }
                }
                _ => {
                    let a = self.eval(x)?;
                    let b = self.eval(y)?;
                    Ok(eval_bin(*op, a, b))
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;
    use gpu_sim::program::{AddrPattern, TbOp};

    fn run_one(src: &str, param: u64, tb: u32) -> Result<TbProgram, DslError> {
        let w = resolve(&parse(src).expect("parses")).expect("resolves");
        let hk = w.hosts[0];
        let k = w.kernel(hk.kind).expect("kernel exists").clone();
        interpret_tb(&w, &k, param, tb)
    }

    fn kernel_src(body: &str) -> String {
        format!(
            "workload \"t\";\nregion r[64, 4];\ndata d = [5, 0, 9];\n\
             host kind = 0 param = 3 tbs = 2 threads = 32 regs = 8 smem = 0;\n\
             kernel 0 \"k\" threads = 32 {{ {body} }}"
        )
    }

    #[test]
    fn emits_chunked_slice_like_a_generator() {
        let prog = run_one(
            &kernel_src("let a = tb * 32; let cnt = min(32, 64 - a); load_slice r, a, cnt;"),
            0,
            1,
        )
        .expect("runs");
        match prog.ops() {
            [TbOp::Mem(m)] => match m.pattern {
                AddrPattern::Strided { base, stride } => {
                    assert_eq!(stride, 4);
                    assert_eq!(base, 128 + 32 * 4);
                }
                ref p => panic!("expected strided, got {p:?}"),
            },
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn for_loop_and_gather_collect_addresses() {
        let prog =
            run_one(&kernel_src("gather { for i in 0 .. 3 { yield addr(r, i * 2); } }"), 0, 0)
                .expect("runs");
        match prog.ops() {
            [TbOp::Mem(m)] => match &m.pattern {
                AddrPattern::Gather(a) => assert_eq!(a.as_ref(), [128, 136, 144]),
                p => panic!("expected gather, got {p:?}"),
            },
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn return_stops_the_program() {
        let prog = run_one(&kernel_src("compute 1; if tb == 0 { return; } compute 2;"), 0, 0)
            .expect("runs");
        assert_eq!(prog.ops(), &[TbOp::Compute(1)]);
    }

    #[test]
    fn data_oob_is_a_structured_error() {
        let err = run_one(&kernel_src("compute d[7];"), 0, 0).expect_err("must fail");
        assert_eq!(err, runtime::data_oob("k", "d", 7, 3));
    }

    #[test]
    fn division_by_zero_is_a_structured_error() {
        let err = run_one(&kernel_src("compute 1 / (tb - 5);"), 0, 0).expect_err("must fail");
        assert_eq!(err, runtime::div_by_zero("k"));
    }

    #[test]
    fn short_circuit_skips_faulting_operand() {
        let prog =
            run_one(&kernel_src("compute 1 + (0 && 1 / 0); compute 1 + (1 || d[99]);"), 0, 0)
                .expect("runs");
        assert_eq!(prog.ops(), &[TbOp::Compute(1), TbOp::Compute(2)]);
    }

    #[test]
    fn runaway_loop_exhausts_fuel() {
        let err = run_one(&kernel_src("while 1 { let x = 0; }"), 0, 0).expect_err("must fail");
        assert_eq!(err, runtime::fuel_exhausted("k"));
    }

    #[test]
    fn param_and_tb_are_visible() {
        let prog = run_one(&kernel_src("compute param * 10 + tb;"), 3, 1).expect("runs");
        assert_eq!(prog.ops(), &[TbOp::Compute(31)]);
    }
}
