//! Compact bytecode and its verifier.
//!
//! The VM executes this code with *no bounds checks* on the hot path:
//! program counter, value stack, variable slots, literal pool, and
//! region table are all accessed unchecked. That is sound because every
//! [`CompiledKernel`] is validated by `verify` at compile time — an
//! abstract interpretation that walks every reachable instruction,
//! tracking the exact stack depth and gather state at each pc, and
//! rejects anything that could read or write out of range:
//!
//! * every jump target is inside the code, and control can never fall
//!   off the end (each reachable non-`Jump`/`Ret` pc has `pc + 1 < len`),
//! * stack depth is a *function of pc* (join points must agree), never
//!   underflows, and its maximum is recorded so the VM can preallocate,
//! * literal, slot, data, and region ids are all in range,
//! * `EmitYield` only executes between `BeginAddrs`/`EndAddrs`, gather
//!   blocks never nest, and `Ret` only fires with an empty stack outside
//!   a gather block.
//!
//! Only data-array indexing remains checked at runtime, because the
//! index is a runtime value; it fails with a structured
//! [`DslError::Runtime`], never a panic.
//!
//! The compiler always produces verifying code; running the verifier
//! anyway turns any future compiler bug into a clean [`DslError`]
//! instead of undefined behavior.

use gpu_sim::program::KernelKindId;

use crate::error::DslError;

/// One VM instruction. 8 bytes; `Copy` so the dispatch loop reads it
/// out of the code slice by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push literal-pool entry `id`.
    Lit(u32),
    /// Push variable slot `id`.
    Slot(u32),
    /// Pop into variable slot `id`.
    SetSlot(u32),
    /// Push the kernel `param`.
    Param,
    /// Push the TB index.
    Tb,
    /// Pop an index, push `data[id][index]` (bounds-checked at runtime).
    Data(u32),
    /// Pop an index, push the byte address of that element of region
    /// `id` (`base + index * elem_bytes`, wrapping).
    RegionAddr(u32),
    /// Pop `b`, pop `a`, push `min(a, b)`.
    Min,
    /// Pop `b`, pop `a`, push `max(a, b)`.
    Max,
    /// Pop `b`, pop `a`, push `a.div_ceil(b)`; runtime error when `b == 0`.
    DivCeil,
    /// Pop `b`, pop `a`, push `a ⊕ b` for the corresponding
    /// [`crate::ast::BinOp`] (same total semantics as
    /// [`crate::resolve::eval_bin`]).
    Add,
    /// See [`Op::Add`].
    Sub,
    /// See [`Op::Add`].
    Mul,
    /// Pop `b`, pop `a`, push `a / b`; runtime error when `b == 0`.
    Div,
    /// Pop `b`, pop `a`, push `a % b`; runtime error when `b == 0`.
    Mod,
    /// See [`Op::Add`].
    Shl,
    /// See [`Op::Add`].
    Shr,
    /// See [`Op::Add`].
    BitAnd,
    /// See [`Op::Add`].
    BitOr,
    /// See [`Op::Add`].
    Eq,
    /// See [`Op::Add`].
    Ne,
    /// See [`Op::Add`].
    Lt,
    /// See [`Op::Add`].
    Le,
    /// See [`Op::Add`].
    Gt,
    /// See [`Op::Add`].
    Ge,
    /// Pop `x`, push `x == 0`.
    Not,
    /// Pop `x`, push `x != 0` (normalization for `&&`/`||` lowering).
    Bool,
    /// Unconditional jump to an absolute pc.
    Jump(u32),
    /// Pop a condition; jump when it is zero.
    JumpIfZero(u32),
    /// Pop a condition; jump when it is nonzero.
    JumpIfNonZero(u32),
    /// End the program.
    Ret,
    /// Pop cycles, emit `TbOp::Compute`.
    Compute,
    /// Pop `active`, pop `cycles`, emit `TbOp::ComputeMasked`.
    ComputeMasked,
    /// Emit `TbOp::Sync`.
    Sync,
    /// Emit a shared-memory staging access.
    Shared,
    /// Pop `count`, pop `start`, emit a clamped slice access of region
    /// `region`.
    Slice {
        /// `true` for a store.
        store: bool,
        /// Region id.
        region: u32,
    },
    /// Pop an index, emit a broadcast access of region `region`.
    Bcast {
        /// `true` for a store.
        store: bool,
        /// Region id.
        region: u32,
    },
    /// Open a gather/scatter address collection.
    BeginAddrs {
        /// `true` for a scatter.
        store: bool,
    },
    /// Close the collection and emit the op (none when empty).
    EndAddrs,
    /// Pop an address into the open collection.
    EmitYield,
    /// Pop `smem`, `regs`, `threads`, `num_tbs`, `param`, `kind` (in
    /// that order) and emit `TbOp::Launch`.
    Launch,
}

impl Op {
    /// `(pops, pushes)` stack effect.
    fn stack_effect(self) -> (u32, u32) {
        match self {
            Op::Lit(_) | Op::Slot(_) | Op::Param | Op::Tb => (0, 1),
            Op::SetSlot(_) => (1, 0),
            Op::Data(_) | Op::RegionAddr(_) | Op::Not | Op::Bool => (1, 1),
            Op::Min
            | Op::Max
            | Op::DivCeil
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Mod
            | Op::Shl
            | Op::Shr
            | Op::BitAnd
            | Op::BitOr
            | Op::Eq
            | Op::Ne
            | Op::Lt
            | Op::Le
            | Op::Gt
            | Op::Ge => (2, 1),
            Op::Jump(_)
            | Op::Ret
            | Op::Sync
            | Op::Shared
            | Op::BeginAddrs { .. }
            | Op::EndAddrs => (0, 0),
            Op::JumpIfZero(_)
            | Op::JumpIfNonZero(_)
            | Op::Compute
            | Op::Bcast { .. }
            | Op::EmitYield => (1, 0),
            Op::ComputeMasked | Op::Slice { .. } => (2, 0),
            Op::Launch => (6, 0),
        }
    }
}

/// A verified, executable kernel. Construction goes through
/// [`crate::compile()`], which runs `verify`; the `pub(crate)` fields
/// plus that invariant are what make the VM's unchecked accesses sound.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub(crate) kind: KernelKindId,
    pub(crate) name: String,
    pub(crate) threads: u32,
    /// Total variable slots (resolver slots + compiler temporaries).
    pub(crate) slots: u32,
    pub(crate) code: Vec<Op>,
    pub(crate) literals: Vec<u64>,
    /// Maximum stack depth any reachable pc can observe (from [`verify`]).
    pub(crate) max_stack: u32,
    /// Size of the data-array table the code was verified against; the
    /// VM checks the tables it is handed are at least this large before
    /// switching to unchecked id lookups.
    pub(crate) num_datas: u32,
    /// Size of the region table the code was verified against.
    pub(crate) num_regions: u32,
}

impl CompiledKernel {
    /// Workload-local kernel kind.
    pub fn kind(&self) -> KernelKindId {
        self.kind
    }

    /// Kernel name for traces.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Threads per TB.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Number of bytecode instructions.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Size of the literal pool.
    pub fn literals_len(&self) -> usize {
        self.literals.len()
    }

    /// Verified maximum operand-stack depth.
    pub fn max_stack(&self) -> u32 {
        self.max_stack
    }
}

/// Static limits the verifier checks ids against.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Limits {
    pub(crate) literals: usize,
    pub(crate) slots: u32,
    pub(crate) datas: usize,
    pub(crate) regions: usize,
}

/// Verifies `code` and returns the maximum stack depth.
///
/// # Errors
///
/// Returns [`DslError::Bytecode`] naming the first violated invariant
/// and its pc.
pub(crate) fn verify(kernel: &str, code: &[Op], limits: Limits) -> Result<u32, DslError> {
    let fail = |pc: usize, message: String| -> DslError {
        DslError::Bytecode { kernel: kernel.to_string(), message: format!("pc {pc}: {message}") }
    };
    if code.is_empty() {
        return Err(DslError::Bytecode {
            kernel: kernel.to_string(),
            message: "empty code (must end in Ret)".to_string(),
        });
    }
    // Abstract state per pc: stack depth and gather nesting (0 or 1),
    // discovered by worklist traversal from pc 0.
    let mut states: Vec<Option<(u32, u8)>> = vec![None; code.len()];
    states[0] = Some((0, 0));
    let mut worklist = vec![0usize];
    let mut max_stack = 0u32;

    // Records `state` for `target`, queueing it if new; errors if a
    // previously recorded state disagrees (stack depth must be a
    // function of pc for unchecked indexing to be sound).
    let merge = |states: &mut Vec<Option<(u32, u8)>>,
                 worklist: &mut Vec<usize>,
                 from: usize,
                 target: usize,
                 state: (u32, u8)|
     -> Result<(), DslError> {
        match states[target] {
            None => {
                states[target] = Some(state);
                worklist.push(target);
                Ok(())
            }
            Some(existing) if existing == state => Ok(()),
            Some(existing) => Err(fail(
                target,
                format!(
                    "inconsistent state at join: ({}, {}) from pc {from} vs ({}, {})",
                    state.0, state.1, existing.0, existing.1
                ),
            )),
        }
    };

    while let Some(pc) = worklist.pop() {
        let Some((depth, gather)) = states[pc] else { continue };
        max_stack = max_stack.max(depth);
        let op = code[pc];
        let (pops, pushes) = op.stack_effect();
        let after_depth = depth
            .checked_sub(pops)
            .ok_or_else(|| fail(pc, format!("stack underflow: {op:?} pops {pops}, depth {depth}")))?
            .checked_add(pushes)
            .ok_or_else(|| fail(pc, "stack depth overflow".to_string()))?;

        // Static id ranges.
        match op {
            Op::Lit(id) if id as usize >= limits.literals => {
                return Err(fail(pc, format!("literal id {id} out of range")));
            }
            Op::Slot(id) | Op::SetSlot(id) if id >= limits.slots => {
                return Err(fail(pc, format!("slot id {id} out of range")));
            }
            Op::Data(id) if id as usize >= limits.datas => {
                return Err(fail(pc, format!("data id {id} out of range")));
            }
            Op::RegionAddr(id) | Op::Slice { region: id, .. } | Op::Bcast { region: id, .. }
                if id as usize >= limits.regions =>
            {
                return Err(fail(pc, format!("region id {id} out of range")));
            }
            _ => {}
        }

        // Gather-state transitions.
        let after_gather = match op {
            Op::BeginAddrs { .. } => {
                if gather != 0 {
                    return Err(fail(pc, "nested gather block".to_string()));
                }
                1
            }
            Op::EndAddrs => {
                if gather != 1 {
                    return Err(fail(pc, "EndAddrs outside a gather block".to_string()));
                }
                0
            }
            Op::EmitYield => {
                if gather != 1 {
                    return Err(fail(pc, "EmitYield outside a gather block".to_string()));
                }
                gather
            }
            // Ops that would interleave foreign TbOps into an open
            // collection are compiler-unreachable inside blocks; the
            // resolver enforces that, so the verifier only polices what
            // soundness needs.
            _ => gather,
        };

        // Successors.
        let state = (after_depth, after_gather);
        match op {
            Op::Ret => {
                if after_depth != 0 || after_gather != 0 {
                    return Err(fail(
                        pc,
                        format!("Ret with stack depth {after_depth}, gather {after_gather}"),
                    ));
                }
            }
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNonZero(t) => {
                if t as usize >= code.len() {
                    return Err(fail(pc, format!("jump target {t} out of range")));
                }
                merge(&mut states, &mut worklist, pc, t as usize, state)?;
                if !matches!(op, Op::Jump(_)) {
                    if pc + 1 >= code.len() {
                        return Err(fail(pc, "fallthrough past end of code".to_string()));
                    }
                    merge(&mut states, &mut worklist, pc, pc + 1, state)?;
                }
            }
            _ => {
                if pc + 1 >= code.len() {
                    return Err(fail(pc, "fallthrough past end of code".to_string()));
                }
                merge(&mut states, &mut worklist, pc, pc + 1, state)?;
            }
        }
        max_stack = max_stack.max(after_depth);
    }
    Ok(max_stack)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: Limits = Limits { literals: 2, slots: 2, datas: 1, regions: 1 };

    fn check(code: &[Op]) -> Result<u32, DslError> {
        verify("k", code, LIMITS)
    }

    #[test]
    fn accepts_a_straight_line_program() {
        let max =
            check(&[Op::Lit(0), Op::Lit(1), Op::Add, Op::Compute, Op::Ret]).expect("verifies");
        assert_eq!(max, 2);
    }

    #[test]
    fn rejects_empty_code() {
        assert!(check(&[]).is_err());
    }

    #[test]
    fn rejects_stack_underflow() {
        let err = check(&[Op::Add, Op::Ret]).expect_err("must fail");
        assert!(err.to_string().contains("stack underflow"), "{err}");
    }

    #[test]
    fn rejects_fallthrough_past_end() {
        let err = check(&[Op::Lit(0), Op::Compute]).expect_err("must fail");
        assert!(err.to_string().contains("fallthrough"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_jump() {
        let err = check(&[Op::Jump(99)]).expect_err("must fail");
        assert!(err.to_string().contains("jump target"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_ids() {
        for op in [Op::Lit(9), Op::Slot(9), Op::SetSlot(9)] {
            let code = match op {
                Op::Lit(_) | Op::Slot(_) => vec![op, Op::Compute, Op::Ret],
                _ => vec![Op::Lit(0), op, Op::Ret],
            };
            let err = check(&code).expect_err("must fail");
            assert!(err.to_string().contains("out of range"), "{op:?}: {err}");
        }
        let err = check(&[Op::Lit(0), Op::Data(4), Op::Compute, Op::Ret]).expect_err("fails");
        assert!(err.to_string().contains("data id 4"), "{err}");
        let err =
            check(&[Op::Lit(0), Op::Bcast { store: false, region: 3 }, Op::Ret]).expect_err("f");
        assert!(err.to_string().contains("region id 3"), "{err}");
    }

    #[test]
    fn rejects_ret_with_nonempty_stack() {
        let err = check(&[Op::Lit(0), Op::Ret]).expect_err("must fail");
        assert!(err.to_string().contains("Ret with stack depth 1"), "{err}");
    }

    #[test]
    fn rejects_yield_outside_gather_and_nesting() {
        let err = check(&[Op::Lit(0), Op::EmitYield, Op::Ret]).expect_err("must fail");
        assert!(err.to_string().contains("EmitYield outside"), "{err}");
        let err = check(&[
            Op::BeginAddrs { store: false },
            Op::BeginAddrs { store: false },
            Op::EndAddrs,
            Op::EndAddrs,
            Op::Ret,
        ])
        .expect_err("must fail");
        assert!(err.to_string().contains("nested gather"), "{err}");
        let err = check(&[Op::EndAddrs, Op::Ret]).expect_err("must fail");
        assert!(err.to_string().contains("EndAddrs outside"), "{err}");
    }

    #[test]
    fn rejects_ret_inside_gather() {
        let err = check(&[Op::BeginAddrs { store: false }, Op::Ret]).expect_err("must fail");
        assert!(err.to_string().contains("gather 1"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_join_depths() {
        // pc2 is reached with depth 1 (fallthrough) and depth 0 (jump).
        let code = [
            Op::Lit(0),        // 0: depth 0 -> 1
            Op::JumpIfZero(3), // 1: pops -> depth 0; targets 3 and 2
            Op::Lit(0),        // 2: depth 0 -> 1, falls to 3 with 1
            Op::Compute,       // 3: joined with depth 0 and 1
            Op::Ret,
        ];
        let err = check(&code).expect_err("must fail");
        assert!(err.to_string().contains("inconsistent state"), "{err}");
    }

    #[test]
    fn loop_shaped_code_verifies() {
        // slot0 = 0; while slot0 < lit1 { slot0 = slot0 + lit0 } ret
        let code = [
            Op::Lit(0),         // 0
            Op::SetSlot(0),     // 1
            Op::Slot(0),        // 2: loop head
            Op::Lit(1),         // 3
            Op::Lt,             // 4
            Op::JumpIfZero(11), // 5
            Op::Slot(0),        // 6
            Op::Lit(0),         // 7
            Op::Add,            // 8
            Op::SetSlot(0),     // 9
            Op::Jump(2),        // 10
            Op::Ret,            // 11
        ];
        assert_eq!(check(&code).expect("verifies"), 2);
    }

    #[test]
    fn dead_code_after_ret_is_tolerated() {
        // The compiler can emit unreachable tails (e.g. statements after
        // `return;`); they never execute, so the verifier ignores them.
        assert!(check(&[Op::Ret, Op::Add, Op::Add]).is_ok());
    }
}
