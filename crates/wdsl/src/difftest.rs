//! Differential-testing support: seeded random DSL programs and a
//! VM-vs-interpreter comparator.
//!
//! [`random_program`] emits random *source text* — so the lexer and
//! parser are exercised too, not just the back ends — that is
//! well-formed by construction but free to fault at runtime (data
//! indices out of bounds, divisions by zero): the comparator requires
//! the two back ends to agree on faults as much as on programs. Loops
//! are generated in terminating shapes only, keeping runs far from the
//! fuel limit so a fuel-count mismatch between back ends cannot mask a
//! real divergence.
//!
//! The CI `dsl-differential` job runs [`fuzz_case`] over a seed range;
//! on failure the offending program text is written to a file and
//! uploaded as an artifact (see `crates/wdsl/tests/differential.rs`).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use workloads::rng::SplitMix64;
use workloads::Workload;

use crate::source::{CompiledWorkload, ExecMode};

/// Parameter probes used besides host/launch parameters.
const PROBE_PARAMS: [u64; 4] = [0, 1, 7, 63];
/// TB indices probed per (kind, param).
const PROBE_TBS: u32 = 3;
/// Cap on distinct programs compared per case (the host-driven walk
/// follows launches and could otherwise blow up).
const MAX_PROGRAMS: usize = 512;

struct Gen {
    rng: SplitMix64,
    src: String,
    /// Names of data arrays with their lengths.
    datas: Vec<(String, usize)>,
    /// Region names.
    regions: Vec<String>,
    /// Number of kernels (kinds `0..kinds`).
    kinds: u64,
    /// In-scope variable names, innermost last.
    vars: Vec<String>,
    /// Subset of `vars` that random assignments may target: `let`-vars
    /// only. Loop counters are excluded so every generated loop is
    /// terminating by construction (loop conditions reference nothing
    /// else), keeping runs far from the fuel limit.
    muts: Vec<String>,
    next_var: u32,
    /// Statement budget for the kernel being generated.
    budget: u32,
}

impl Gen {
    fn below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound.max(1))
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn pick_data(&mut self) -> String {
        let i = self.below(self.datas.len() as u64) as usize;
        self.datas[i].0.clone()
    }

    fn pick_region(&mut self) -> String {
        let i = self.below(self.regions.len() as u64) as usize;
        self.regions[i].clone()
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.chance(35) {
            return self.atom();
        }
        match self.below(8) {
            0 => format!("!{}", self.atom()),
            1 => {
                let f = ["min", "max", "div_ceil"][self.below(3) as usize];
                format!("{f}({}, {})", self.expr(depth - 1), self.expr(depth - 1))
            }
            2 if !self.datas.is_empty() => {
                let d = self.pick_data();
                format!("{d}[{}]", self.expr(depth - 1))
            }
            3 if !self.regions.is_empty() => {
                let r = self.pick_region();
                format!("addr({r}, {})", self.expr(depth - 1))
            }
            _ => {
                let op = [
                    "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "==", "!=", "<", "<=", ">",
                    ">=", "&&", "||",
                ][self.below(17) as usize];
                format!("({} {op} {})", self.expr(depth - 1), self.expr(depth - 1))
            }
        }
    }

    fn atom(&mut self) -> String {
        match self.below(6) {
            0 => "param".to_string(),
            1 => "tb".to_string(),
            2 if !self.vars.is_empty() => {
                let i = self.below(self.vars.len() as u64) as usize;
                self.vars[i].clone()
            }
            3 if !self.datas.is_empty() => {
                let d = self.pick_data();
                format!("len({d})")
            }
            4 if self.chance(10) => {
                // Extreme literals to poke wrap/saturate/shift edges.
                ["18446744073709551615", "9223372036854775808", "4294967296", "64"]
                    [self.below(4) as usize]
                    .to_string()
            }
            _ => format!("{}", self.below(100)),
        }
    }

    // ---- statements -----------------------------------------------------

    fn fresh_var(&mut self) -> String {
        let name = format!("v{}", self.next_var);
        self.next_var += 1;
        name
    }

    fn stmts(&mut self, indent: usize, depth: u32, in_gather: bool) {
        let n = 1 + self.below(4);
        for _ in 0..n {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            self.stmt(indent, depth, in_gather);
        }
    }

    fn stmt(&mut self, indent: usize, depth: u32, in_gather: bool) {
        let pad = "    ".repeat(indent);
        let outer_vars = self.vars.len();
        let outer_muts = self.muts.len();
        let choice = self.below(if in_gather { 6 } else { 14 });
        match choice {
            0 => {
                let e = self.expr(2);
                let v = self.fresh_var();
                let _ = writeln!(self.src, "{pad}let {v} = {e};");
                self.vars.push(v.clone());
                self.muts.push(v);
                // Stays visible to later siblings in this block; the
                // enclosing block statement truncates on exit.
                return;
            }
            1 if !self.muts.is_empty() => {
                let i = self.below(self.muts.len() as u64) as usize;
                let v = self.muts[i].clone();
                let e = self.expr(2);
                let _ = writeln!(self.src, "{pad}{v} = {e};");
            }
            2 if depth > 0 => {
                let c = self.expr(2);
                let _ = writeln!(self.src, "{pad}if {c} {{");
                self.stmts(indent + 1, depth - 1, in_gather);
                // Then-branch `let`s are block-scoped: drop them before
                // generating the else-branch, which cannot see them.
                self.vars.truncate(outer_vars);
                self.muts.truncate(outer_muts);
                if self.chance(40) {
                    let _ = writeln!(self.src, "{pad}}} else {{");
                    self.stmts(indent + 1, depth - 1, in_gather);
                }
                let _ = writeln!(self.src, "{pad}}}");
            }
            3 if depth > 0 => {
                let v = self.fresh_var();
                let lo = self.below(4);
                let hi = lo + self.below(6);
                let _ = writeln!(self.src, "{pad}for {v} in {lo} .. {hi} {{");
                self.vars.push(v);
                self.stmts(indent + 1, depth - 1, in_gather);
                let _ = writeln!(self.src, "{pad}}}");
            }
            4 if depth > 0 => {
                // Terminating-by-construction while: counts a fresh
                // variable down to zero with saturating subtraction.
                let v = self.fresh_var();
                let start = self.below(6);
                let _ = writeln!(self.src, "{pad}let {v} = {start};");
                let _ = writeln!(self.src, "{pad}while {v} > 0 {{");
                self.vars.push(v.clone());
                self.stmts(indent + 1, depth - 1, in_gather);
                let _ = writeln!(self.src, "{pad}    {v} = {v} - 1;");
                let _ = writeln!(self.src, "{pad}}}");
            }
            5 if in_gather => {
                let e = self.expr(2);
                let _ = writeln!(self.src, "{pad}yield {e};");
            }
            _ if in_gather => {
                let e = self.expr(1);
                let _ = writeln!(self.src, "{pad}yield {e};");
            }
            5 => {
                let e = self.expr(2);
                let _ = writeln!(self.src, "{pad}compute {e};");
            }
            6 => {
                let c = self.expr(1);
                let a = self.expr(1);
                let _ = writeln!(self.src, "{pad}compute_masked {c}, {a};");
            }
            7 => {
                let _ = writeln!(self.src, "{pad}sync;");
            }
            8 => {
                let _ = writeln!(self.src, "{pad}shared;");
            }
            9 if !self.regions.is_empty() => {
                let r = self.pick_region();
                let op = if self.chance(50) { "load_slice" } else { "store_slice" };
                let s = self.expr(1);
                let c = self.expr(1);
                let _ = writeln!(self.src, "{pad}{op} {r}, {s}, {c};");
            }
            10 if !self.regions.is_empty() => {
                let r = self.pick_region();
                let op = if self.chance(50) { "load_bcast" } else { "store_bcast" };
                let i = self.expr(1);
                let _ = writeln!(self.src, "{pad}{op} {r}, {i};");
            }
            11 if depth > 0 => {
                let op = if self.chance(50) { "gather" } else { "scatter" };
                let _ = writeln!(self.src, "{pad}{op} {{");
                self.stmts(indent + 1, depth - 1, true);
                let _ = writeln!(self.src, "{pad}}}");
            }
            12 => {
                let kind = self.below(self.kinds);
                let p = self.expr(1);
                let tbs = 1 + self.below(4);
                let _ = writeln!(self.src, "{pad}launch {kind}, {p}, {tbs}, 32, 8, 0;");
            }
            13 if self.chance(20) && !in_gather => {
                let _ = writeln!(self.src, "{pad}return;");
            }
            _ => {
                let e = self.expr(1);
                let _ = writeln!(self.src, "{pad}compute {e};");
            }
        }
        self.vars.truncate(outer_vars);
        self.muts.truncate(outer_muts);
    }
}

/// Generates one random, well-formed-by-construction DSL program.
pub fn random_program(seed: u64) -> String {
    let mut rng = SplitMix64::new(seed ^ 0xD1F7_7E57);
    let mut g = Gen {
        src: String::new(),
        datas: Vec::new(),
        regions: Vec::new(),
        kinds: 1 + rng.below(3),
        vars: Vec::new(),
        muts: Vec::new(),
        next_var: 0,
        budget: 0,
        rng,
    };
    let _ = writeln!(g.src, "workload \"fuzz\" input \"s{seed}\";");
    let n_data = g.below(3);
    for i in 0..n_data {
        let len = 1 + g.below(12) as usize;
        let values: Vec<String> = (0..len).map(|_| format!("{}", g.below(1 << 20))).collect();
        let _ = writeln!(g.src, "data d{i} = [{}];", values.join(", "));
        g.datas.push((format!("d{i}"), len));
    }
    let n_regions = 1 + g.below(2);
    for i in 0..n_regions {
        let len = 1 + g.below(96);
        let elem = [4u64, 8][g.below(2) as usize];
        let _ = writeln!(g.src, "region r{i}[{len}, {elem}];");
        g.regions.push(format!("r{i}"));
    }
    let kinds = g.kinds;
    let host_param = g.below(8);
    let host_tbs = 1 + g.below(4);
    let _ = writeln!(
        g.src,
        "host kind = 0 param = {host_param} tbs = {host_tbs} threads = 32 regs = 8 smem = 0;"
    );
    for kind in 0..kinds {
        let _ = writeln!(g.src, "kernel {kind} \"fz-k{kind}\" threads = 32 {{");
        g.vars.clear();
        g.muts.clear();
        g.budget = 40;
        g.stmts(1, 3, false);
        let _ = writeln!(g.src, "}}");
    }
    g.src
}

/// Compiles `src` and compares the VM against the interpreter over the
/// probe matrix plus a host-driven walk that follows every launch.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence (or
/// pipeline failure — generated programs must always compile).
pub fn compare_backends(src: &str) -> Result<usize, String> {
    let vm = CompiledWorkload::from_source(src, ExecMode::Vm)
        .map_err(|e| format!("pipeline failed: {e}"))?;
    let interp = vm.clone().with_mode(ExecMode::Interp);

    let kinds: Vec<u16> = vm.resolved().kernels.iter().map(|k| k.kind.0).collect();
    let mut queue: Vec<(u16, u64, u32)> = Vec::new();
    for &kind in &kinds {
        for &param in &PROBE_PARAMS {
            for tb in 0..PROBE_TBS {
                queue.push((kind, param, tb));
            }
        }
    }
    for hk in vm.host_kernels() {
        for tb in 0..hk.num_tbs.min(PROBE_TBS) {
            queue.push((hk.kind.0, hk.param, tb));
        }
    }

    let mut seen: BTreeSet<(u16, u64, u32)> = BTreeSet::new();
    let mut compared = 0usize;
    while let Some(case) = queue.pop() {
        if seen.len() >= MAX_PROGRAMS || !seen.insert(case) {
            continue;
        }
        let (kind, param, tb) = case;
        let kid = gpu_sim::program::KernelKindId(kind);
        let a = vm.try_tb_program(kid, param, tb);
        let b = interp.try_tb_program(kid, param, tb);
        if a != b {
            return Err(format!(
                "divergence at kind {kind}, param {param}, tb {tb}:\n  vm:     {a:?}\n  interp: {b:?}"
            ));
        }
        compared += 1;
        if let Ok(prog) = a {
            for spec in prog.launches() {
                for child_tb in 0..spec.num_tbs.min(PROBE_TBS) {
                    queue.push((spec.kind.0, spec.param, child_tb));
                }
            }
        }
    }
    Ok(compared)
}

/// One fuzz iteration: generate program `seed`, compare back ends.
///
/// # Errors
///
/// Returns the failure description *and* the full program text, ready
/// to be written to a CI artifact.
pub fn fuzz_case(seed: u64) -> Result<usize, String> {
    let src = random_program(seed);
    compare_backends(&src).map_err(|e| format!("seed {seed}: {e}\n--- program ---\n{src}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_programs_are_deterministic() {
        assert_eq!(random_program(7), random_program(7));
        assert_ne!(random_program(7), random_program(8));
    }

    #[test]
    fn random_programs_compile_and_agree_smoke() {
        for seed in 0..32 {
            let compared = fuzz_case(seed).expect("back ends agree");
            assert!(compared > 0, "seed {seed} compared nothing");
        }
    }

    #[test]
    fn comparator_reports_pipeline_failures() {
        let err = compare_backends("workload \"x\";").expect_err("must fail");
        assert!(err.contains("pipeline failed"), "{err}");
    }
}
