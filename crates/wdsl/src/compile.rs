//! Bytecode compiler: resolved kernels → verified [`CompiledKernel`]s.
//!
//! Lowering is deliberately boring — straight-line stack code, loops as
//! conditional back-edges, `&&`/`||` as short-circuit jumps with a
//! [`Op::Bool`] normalization so the produced *value* matches the
//! interpreter's 0/1 semantics exactly. Every compiled kernel is passed
//! through the [`crate::bytecode`] verifier before it can execute; the
//! returned maximum stack depth is what lets the VM preallocate and run
//! unchecked.

use std::collections::HashMap;

use crate::ast::{BinOp, Builtin};
use crate::bytecode::{verify, CompiledKernel, Limits, Op};
use crate::error::DslError;
use crate::resolve::{RExpr, RKernel, RStmt, ResolvedWorkload};

/// Compiles one kernel of a resolved workload.
///
/// # Errors
///
/// Returns [`DslError::Bytecode`] if the generated code fails
/// verification (a compiler bug, surfaced as a value rather than UB) or
/// exceeds the `u32` code-size limit.
pub fn compile_kernel(w: &ResolvedWorkload, k: &RKernel) -> Result<CompiledKernel, DslError> {
    let mut c = Compiler {
        code: Vec::new(),
        literals: Vec::new(),
        lit_ids: HashMap::new(),
        next_slot: k.slots,
        kernel: &k.name,
    };
    c.stmts(&k.body)?;
    c.emit(Op::Ret)?;
    let Compiler { code, literals, next_slot, .. } = c;
    let limits = Limits {
        literals: literals.len(),
        slots: next_slot.max(1),
        datas: w.datas.len(),
        regions: w.regions.len(),
    };
    let max_stack = verify(&k.name, &code, limits)?;
    let num_datas = u32::try_from(w.datas.len()).map_err(|_| DslError::Bytecode {
        kernel: k.name.clone(),
        message: "too many data arrays".to_string(),
    })?;
    let num_regions = u32::try_from(w.regions.len()).map_err(|_| DslError::Bytecode {
        kernel: k.name.clone(),
        message: "too many regions".to_string(),
    })?;
    Ok(CompiledKernel {
        kind: k.kind,
        name: k.name.clone(),
        threads: k.threads,
        slots: next_slot,
        code,
        literals,
        max_stack,
        num_datas,
        num_regions,
    })
}

/// Compiles every kernel of a resolved workload, in declaration order.
///
/// # Errors
///
/// Propagates the first [`compile_kernel`] failure.
pub fn compile(w: &ResolvedWorkload) -> Result<Vec<CompiledKernel>, DslError> {
    w.kernels.iter().map(|k| compile_kernel(w, k)).collect()
}

struct Compiler<'a> {
    code: Vec<Op>,
    literals: Vec<u64>,
    lit_ids: HashMap<u64, u32>,
    next_slot: u32,
    kernel: &'a str,
}

impl Compiler<'_> {
    fn bug(&self, message: impl Into<String>) -> DslError {
        DslError::Bytecode { kernel: self.kernel.to_string(), message: message.into() }
    }

    fn here(&self) -> Result<u32, DslError> {
        u32::try_from(self.code.len()).map_err(|_| self.bug("code exceeds u32 length"))
    }

    fn emit(&mut self, op: Op) -> Result<usize, DslError> {
        self.here()?; // length guard
        self.code.push(op);
        Ok(self.code.len() - 1)
    }

    fn patch(&mut self, at: usize, target: u32) -> Result<(), DslError> {
        match self.code[at] {
            Op::Jump(_) => self.code[at] = Op::Jump(target),
            Op::JumpIfZero(_) => self.code[at] = Op::JumpIfZero(target),
            Op::JumpIfNonZero(_) => self.code[at] = Op::JumpIfNonZero(target),
            other => return Err(self.bug(format!("patch of non-jump {other:?} at {at}"))),
        }
        Ok(())
    }

    fn lit(&mut self, value: u64) -> Result<(), DslError> {
        let id = match self.lit_ids.get(&value) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.literals.len())
                    .map_err(|_| self.bug("literal pool exceeds u32 length"))?;
                self.literals.push(value);
                self.lit_ids.insert(value, id);
                id
            }
        };
        self.emit(Op::Lit(id))?;
        Ok(())
    }

    fn temp_slot(&mut self) -> Result<u32, DslError> {
        let slot = self.next_slot;
        self.next_slot =
            self.next_slot.checked_add(1).ok_or_else(|| self.bug("slot count overflow"))?;
        Ok(slot)
    }

    fn stmts(&mut self, stmts: &[RStmt]) -> Result<(), DslError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &RStmt) -> Result<(), DslError> {
        match stmt {
            RStmt::Set(slot, value) => {
                self.expr(value)?;
                self.emit(Op::SetSlot(*slot))?;
            }
            RStmt::If(cond, then, otherwise) => {
                self.expr(cond)?;
                let to_else = self.emit(Op::JumpIfZero(u32::MAX))?;
                self.stmts(then)?;
                if otherwise.is_empty() {
                    let end = self.here()?;
                    self.patch(to_else, end)?;
                } else {
                    let to_end = self.emit(Op::Jump(u32::MAX))?;
                    let else_at = self.here()?;
                    self.patch(to_else, else_at)?;
                    self.stmts(otherwise)?;
                    let end = self.here()?;
                    self.patch(to_end, end)?;
                }
            }
            RStmt::For(slot, lo, hi, body) => {
                // i = lo; limit = hi; while i < limit { body; i = i + 1 }
                let limit = self.temp_slot()?;
                self.expr(lo)?;
                self.emit(Op::SetSlot(*slot))?;
                self.expr(hi)?;
                self.emit(Op::SetSlot(limit))?;
                let head = self.here()?;
                self.emit(Op::Slot(*slot))?;
                self.emit(Op::Slot(limit))?;
                self.emit(Op::Lt)?;
                let to_end = self.emit(Op::JumpIfZero(u32::MAX))?;
                self.stmts(body)?;
                self.emit(Op::Slot(*slot))?;
                self.lit(1)?;
                self.emit(Op::Add)?;
                self.emit(Op::SetSlot(*slot))?;
                self.emit(Op::Jump(head))?;
                let end = self.here()?;
                self.patch(to_end, end)?;
            }
            RStmt::While(cond, body) => {
                let head = self.here()?;
                self.expr(cond)?;
                let to_end = self.emit(Op::JumpIfZero(u32::MAX))?;
                self.stmts(body)?;
                self.emit(Op::Jump(head))?;
                let end = self.here()?;
                self.patch(to_end, end)?;
            }
            RStmt::Return => {
                self.emit(Op::Ret)?;
            }
            RStmt::Compute(c) => {
                self.expr(c)?;
                self.emit(Op::Compute)?;
            }
            RStmt::ComputeMasked(c, a) => {
                self.expr(c)?;
                self.expr(a)?;
                self.emit(Op::ComputeMasked)?;
            }
            RStmt::Sync => {
                self.emit(Op::Sync)?;
            }
            RStmt::Shared => {
                self.emit(Op::Shared)?;
            }
            RStmt::Slice { store, region, start, count } => {
                self.expr(start)?;
                self.expr(count)?;
                self.emit(Op::Slice { store: *store, region: *region })?;
            }
            RStmt::Bcast { store, region, index } => {
                self.expr(index)?;
                self.emit(Op::Bcast { store: *store, region: *region })?;
            }
            RStmt::Addrs { store, body } => {
                self.emit(Op::BeginAddrs { store: *store })?;
                self.stmts(body)?;
                self.emit(Op::EndAddrs)?;
            }
            RStmt::Yield(value) => {
                self.expr(value)?;
                self.emit(Op::EmitYield)?;
            }
            RStmt::Launch { kind, param, num_tbs, threads, regs, smem } => {
                self.expr(kind)?;
                self.expr(param)?;
                self.expr(num_tbs)?;
                self.expr(threads)?;
                self.expr(regs)?;
                self.expr(smem)?;
                self.emit(Op::Launch)?;
            }
        }
        Ok(())
    }

    fn expr(&mut self, expr: &RExpr) -> Result<(), DslError> {
        match expr {
            RExpr::Lit(v) => self.lit(*v)?,
            RExpr::Slot(s) => {
                self.emit(Op::Slot(*s))?;
            }
            RExpr::Param => {
                self.emit(Op::Param)?;
            }
            RExpr::Tb => {
                self.emit(Op::Tb)?;
            }
            RExpr::Data(id, index) => {
                self.expr(index)?;
                self.emit(Op::Data(*id))?;
            }
            RExpr::Addr(id, index) => {
                self.expr(index)?;
                self.emit(Op::RegionAddr(*id))?;
            }
            RExpr::Call(b, x, y) => {
                self.expr(x)?;
                self.expr(y)?;
                self.emit(match b {
                    Builtin::Min => Op::Min,
                    Builtin::Max => Op::Max,
                    Builtin::DivCeil => Op::DivCeil,
                })?;
            }
            RExpr::Not(x) => {
                self.expr(x)?;
                self.emit(Op::Not)?;
            }
            RExpr::Bin(BinOp::And, x, y) => {
                // x && y  ≡  if x == 0 { 0 } else { y != 0 }
                self.expr(x)?;
                let to_false = self.emit(Op::JumpIfZero(u32::MAX))?;
                self.expr(y)?;
                self.emit(Op::Bool)?;
                let to_end = self.emit(Op::Jump(u32::MAX))?;
                let false_at = self.here()?;
                self.patch(to_false, false_at)?;
                self.lit(0)?;
                let end = self.here()?;
                self.patch(to_end, end)?;
            }
            RExpr::Bin(BinOp::Or, x, y) => {
                // x || y  ≡  if x != 0 { 1 } else { y != 0 }
                self.expr(x)?;
                let to_true = self.emit(Op::JumpIfNonZero(u32::MAX))?;
                self.expr(y)?;
                self.emit(Op::Bool)?;
                let to_end = self.emit(Op::Jump(u32::MAX))?;
                let true_at = self.here()?;
                self.patch(to_true, true_at)?;
                self.lit(1)?;
                let end = self.here()?;
                self.patch(to_end, end)?;
            }
            RExpr::Bin(op, x, y) => {
                self.expr(x)?;
                self.expr(y)?;
                self.emit(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Shl => Op::Shl,
                    BinOp::Shr => Op::Shr,
                    BinOp::BitAnd => Op::BitAnd,
                    BinOp::BitOr => Op::BitOr,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => {
                        return Err(self.bug("short-circuit op reached direct lowering"))
                    }
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolve::resolve;

    fn compile_src(src: &str) -> Vec<CompiledKernel> {
        compile(&resolve(&parse(src).expect("parses")).expect("resolves")).expect("compiles")
    }

    fn kernel_src(body: &str) -> String {
        format!(
            "workload \"t\";\nregion r[64, 4];\ndata d = [5, 0, 9];\n\
             host kind = 0 param = 0 tbs = 1 threads = 32 regs = 8 smem = 0;\n\
             kernel 0 \"k\" threads = 32 {{ {body} }}"
        )
    }

    #[test]
    fn every_compiled_kernel_passes_verification() {
        // compile() runs the verifier internally; reaching here means the
        // trickier shapes (loops, short-circuit, gather) all verified.
        let ks = compile_src(&kernel_src(
            "let n = 0;\n\
             for i in 0 .. 4 { if i % 2 == 0 && d[i % 3] > 0 { n = n + 1; } }\n\
             while n > 0 { n = n - 1; compute n; }\n\
             gather { yield addr(r, n); }\n\
             if tb == 0 { return; } else { sync; }\n\
             launch 0, 0, 1, 32, 8, 0;",
        ));
        assert_eq!(ks.len(), 1);
        assert!(ks[0].max_stack() >= 2);
        assert!(ks[0].code_len() > 10);
    }

    #[test]
    fn literals_are_deduplicated() {
        let ks = compile_src(&kernel_src("compute 7; compute 7; compute 7;"));
        assert_eq!(ks[0].literals_len(), 1);
    }

    #[test]
    fn for_loop_allocates_a_hidden_limit_slot() {
        let ks = compile_src(&kernel_src("for i in 0 .. 3 { compute i; }"));
        // Resolver slot for `i` + compiler temp for the bound.
        assert_eq!(ks[0].slots, 2);
    }

    #[test]
    fn code_ends_with_ret() {
        let ks = compile_src(&kernel_src("compute 1;"));
        assert!(matches!(ks[0].code.last(), Some(Op::Ret)));
    }
}
